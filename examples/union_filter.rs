//! UNION and FILTER support (§5.2): the engine rewrites to UNION normal
//! form, pushes safe filters in, and removes rule-(3) spurious results with
//! a final best-match.
//!
//! ```sh
//! cargo run --example union_filter
//! ```

use lbr::sparql::rewrite::rewrite_to_unf;
use lbr::Database;

fn main() {
    let db = Database::builder()
        .ntriples(
            r#"
            <Jerry>  <hasFriend> <Julia> .
            <Jerry>  <hasFriend> <Larry> .
            <Jerry>  <hasFriend> <Elaine> .
            <Julia>  <livesIn>   <NewYorkCity> .
            <Larry>  <livesIn>   <LosAngeles> .
            <Julia>  <age>       "62" .
            <Larry>  <age>       "76" .
            <Elaine> <age>       "59" .
            "#,
        )
        .build()
        .unwrap();

    // UNION inside an OPTIONAL — the non-equivalence rewrite (rule 3).
    let text = r#"
        SELECT * WHERE {
          <Jerry> <hasFriend> ?f .
          FILTER ( ?f != <Elaine> )
          OPTIONAL { { ?f <livesIn> <NewYorkCity> . } UNION { ?f <livesIn> <LosAngeles> . } } }
    "#;
    let prepared = db.prepare(text).unwrap();
    let branches = rewrite_to_unf(&prepared.query().pattern);
    println!(
        "UNION normal form: {} branches (rule 3 used: {})",
        branches.len(),
        branches.iter().any(|b| b.used_rule3)
    );
    for (i, b) in branches.iter().enumerate() {
        println!("  branch {i}: {}", b.pattern.serialized());
    }

    println!("\nresults:");
    let mut rows: Vec<String> = prepared
        .solutions()
        .unwrap()
        .map(|row| format!("  {}", row.render()))
        .collect();
    rows.sort();
    for row in rows {
        println!("{row}");
    }

    // A numeric filter evaluated as an init-time candidate mask, read
    // through the named streaming accessors.
    println!("\nfriends over 60:");
    let solutions = db
        .solutions(r#"SELECT * WHERE { <Jerry> <hasFriend> ?f . ?f <age> ?a . FILTER(?a > 60) }"#)
        .unwrap();
    for row in solutions {
        println!(
            "  {} (age {})",
            row.term("f").expect("f is bound"),
            row.term("a").expect("a is bound").lexical_form(),
        );
    }
}
