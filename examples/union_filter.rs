//! UNION and FILTER support (§5.2): the engine rewrites to UNION normal
//! form, pushes safe filters in, and removes rule-(3) spurious results with
//! a final best-match.
//!
//! ```sh
//! cargo run --example union_filter
//! ```

use lbr::sparql::rewrite::rewrite_to_unf;
use lbr::{parse_query, Database};

fn main() {
    let db = Database::from_ntriples(
        r#"
        <Jerry>  <hasFriend> <Julia> .
        <Jerry>  <hasFriend> <Larry> .
        <Jerry>  <hasFriend> <Elaine> .
        <Julia>  <livesIn>   <NewYorkCity> .
        <Larry>  <livesIn>   <LosAngeles> .
        <Julia>  <age>       "62" .
        <Larry>  <age>       "76" .
        <Elaine> <age>       "59" .
        "#,
    )
    .unwrap();

    // UNION inside an OPTIONAL — the non-equivalence rewrite (rule 3).
    let text = r#"
        SELECT * WHERE {
          <Jerry> <hasFriend> ?f .
          FILTER ( ?f != <Elaine> )
          OPTIONAL { { ?f <livesIn> <NewYorkCity> . } UNION { ?f <livesIn> <LosAngeles> . } } }
    "#;
    let query = parse_query(text).unwrap();
    let branches = rewrite_to_unf(&query.pattern);
    println!(
        "UNION normal form: {} branches (rule 3 used: {})",
        branches.len(),
        branches.iter().any(|b| b.used_rule3)
    );
    for (i, b) in branches.iter().enumerate() {
        println!("  branch {i}: {}", b.pattern.serialized());
    }

    let out = db.execute(text).unwrap();
    println!("\nresults:");
    let mut rows = out.render(db.dict());
    rows.sort();
    for row in rows {
        println!("  {row}");
    }

    // A numeric filter evaluated as an init-time candidate mask.
    let out = db
        .execute(r#"SELECT * WHERE { <Jerry> <hasFriend> ?f . ?f <age> ?a . FILTER(?a > 60) }"#)
        .unwrap();
    println!("\nfriends over 60:");
    for row in out.render(db.dict()) {
        println!("  {row}");
    }
}
