//! Quickstart: build a database, prepare an OPTIONAL query once, stream
//! the rows with name-based accessors.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use lbr::{Database, EngineKind};

fn main() {
    let db = Database::builder()
        .ntriples(
            r#"
            <Jerry>    <hasFriend> <Julia> .
            <Jerry>    <hasFriend> <Larry> .
            <Julia>    <actedIn>   <Seinfeld> .
            <Julia>    <actedIn>   <Veep> .
            <Larry>    <actedIn>   <CurbYourEnthusiasm> .
            <Seinfeld> <location>  <NewYorkCity> .
            <Veep>     <location>  <WashingtonDC> .
            "#,
        )
        .engine(EngineKind::Lbr)
        .build()
        .expect("valid N-Triples");

    // Q2 of the paper's introduction: all of Jerry's friends; for those who
    // acted in a New York City sitcom, also the sitcom. Preparing runs the
    // parse → UNF rewrite → analysis → jvar-order pipeline once; each
    // execution afterwards only touches data.
    let prepared = db
        .prepare(
            r#"
            SELECT ?friend ?sitcom WHERE {
              <Jerry> <hasFriend> ?friend .
              OPTIONAL { ?friend <actedIn> ?sitcom .
                         ?sitcom <location> <NewYorkCity> . } }
            "#,
        )
        .expect("query prepares");

    println!("?friend\t?sitcom");
    let solutions = prepared.solutions().expect("query runs");
    let stats = solutions.stats().clone();
    let mut rows: Vec<String> = solutions
        .map(|row| {
            // Name-based, dictionary-bound access — no column indexes, no
            // dict() threading.
            let friend = row.term("friend").expect("friend is always bound");
            let sitcom = row
                .term("sitcom")
                .map_or_else(|| "—".to_string(), |t| t.to_string());
            format!("{friend}\t{sitcom}")
        })
        .collect();
    rows.sort();
    for row in rows {
        println!("{row}");
    }
    println!(
        "\n{} rows ({} with NULLs) in {:?}; pruned {} → {} candidate triples",
        stats.n_results,
        stats.n_results_with_nulls,
        stats.t_total,
        stats.initial_triples,
        stats.triples_after_pruning,
    );

    // Query forms & solution modifiers: ASK short-circuits the join at
    // the first surviving row; DISTINCT/ORDER BY/LIMIT run through the
    // shared modifier seam (dedup on encoded IDs, documented term order).
    let jerry_has_friends = db
        .ask("ASK { <Jerry> <hasFriend> ?f . }")
        .expect("ask runs");
    println!("\nASK {{ <Jerry> <hasFriend> ?f }} → {jerry_has_friends}");

    let top = db
        .execute(
            "SELECT DISTINCT ?sitcom WHERE { ?a <actedIn> ?sitcom . }
             ORDER BY ?sitcom LIMIT 2",
        )
        .expect("modifier query runs");
    println!("first two sitcoms alphabetically:");
    for line in top.render(db.dict()) {
        println!("  {line}");
    }
}
