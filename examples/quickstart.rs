//! Quickstart: load a few triples, run an OPTIONAL query, print the rows.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use lbr::Database;

fn main() {
    let db = Database::from_ntriples(
        r#"
        <Jerry>    <hasFriend> <Julia> .
        <Jerry>    <hasFriend> <Larry> .
        <Julia>    <actedIn>   <Seinfeld> .
        <Julia>    <actedIn>   <Veep> .
        <Larry>    <actedIn>   <CurbYourEnthusiasm> .
        <Seinfeld> <location>  <NewYorkCity> .
        <Veep>     <location>  <WashingtonDC> .
        "#,
    )
    .expect("valid N-Triples");

    // Q2 of the paper's introduction: all of Jerry's friends; for those who
    // acted in a New York City sitcom, also the sitcom.
    let out = db
        .execute(
            r#"
            SELECT ?friend ?sitcom WHERE {
              <Jerry> <hasFriend> ?friend .
              OPTIONAL { ?friend <actedIn> ?sitcom .
                         ?sitcom <location> <NewYorkCity> . } }
            "#,
        )
        .expect("query runs");

    println!("?friend\t?sitcom");
    let mut rows = out.render(db.dict());
    rows.sort();
    for row in rows {
        println!("{row}");
    }
    println!(
        "\n{} rows ({} with NULLs) in {:?}; pruned {} → {} candidate triples",
        out.len(),
        out.rows_with_nulls(),
        out.stats.t_total,
        out.stats.initial_triples,
        out.stats.triples_after_pruning,
    );
}
