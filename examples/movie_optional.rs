//! The paper's Figure 3.2 worked example, end to end.
//!
//! Shows what goes wrong when left-outer joins are reordered naively
//! (`Res1`), how nullification repairs bindings (`Res2`), how best-match
//! removes subsumed rows (`Res3`) — and how LBR's semi-join pruning reaches
//! the same answer without either repair operator.
//!
//! ```sh
//! cargo run --example movie_optional
//! ```

use lbr::baseline::ReorderedEngine;
use lbr::{parse_query, Database, Term, Triple};

fn t(s: &str, p: &str, o: &str) -> Triple {
    Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
}

fn main() {
    // The data of Figure 3.2.
    let db = Database::builder()
        .triples(vec![
            t("Julia", "actedIn", "Seinfeld"),
            t("Julia", "actedIn", "Veep"),
            t("Julia", "actedIn", "NewAdvOldChristine"),
            t("Julia", "actedIn", "CurbYourEnthu"),
            t("CurbYourEnthu", "location", "LosAngeles"),
            t("Larry", "actedIn", "CurbYourEnthu"),
            t("Jerry", "hasFriend", "Julia"),
            t("Jerry", "hasFriend", "Larry"),
            t("Seinfeld", "location", "NewYorkCity"),
            t("Veep", "location", "D.C."),
            t("NewAdvOldChristine", "location", "Jersey"),
        ])
        .build()
        .expect("in-memory build");

    let text = "PREFIX : <> SELECT ?friend ?sitcom WHERE {
           :Jerry :hasFriend ?friend .
           OPTIONAL { ?friend :actedIn ?sitcom . ?sitcom :location :NewYorkCity . } }";
    let query = parse_query(text).unwrap();

    // The three-stage trace is specific to the reordering baseline, so it
    // is the one place the concrete engine type (not the trait) appears.
    println!("== The reordering baseline (Rao et al. style) ==");
    let engine = ReorderedEngine::new(db.store(), db.dict());
    let trace = engine.execute_traced(&query).unwrap();
    let show = |label: &str, rel: &lbr::baseline::Relation| {
        println!("{label}: {} rows", rel.rows.len());
        let mut rows: Vec<String> = lbr::baseline::relation_to_output(rel.clone())
            .into_solutions(db.dict())
            .map(|row| format!("  {}", row.render()))
            .collect();
        rows.sort();
        for row in rows {
            println!("{row}");
        }
    };
    show("Res1 (reordered joins)", &trace.after_join);
    show("Res2 (after nullification)", &trace.after_nullification);
    show("Res3 (after best-match)", &trace.after_best_match);

    println!("\n== LBR ==");
    let solutions = db.solutions(text).unwrap();
    let stats = solutions.stats().clone();
    let mut rows: Vec<String> = solutions.map(|row| format!("  {}", row.render())).collect();
    rows.sort();
    let n_rows = rows.len();
    for row in &rows {
        println!("{row}");
    }
    println!(
        "nullification fired: {} (Lemma 3.3: acyclic well-designed ⇒ never); \
         triples pruned {} → {}",
        stats.nullification_fired, stats.initial_triples, stats.triples_after_pruning,
    );
    assert_eq!(n_rows, trace.after_best_match.rows.len());
}
