//! Head-to-head of the three executors on one low-selectivity OPTIONAL
//! query: LBR, the pairwise hash-join engine (Virtuoso-analog), and the
//! outer-join-reordering engine with nullification/best-match.
//!
//! ```sh
//! cargo run --release --example compare_engines
//! ```

use lbr::baseline::{JoinOrder, PairwiseEngine, ReorderedEngine};
use lbr::datagen::uniprot;
use lbr::{parse_query, Database};
use std::time::Instant;

fn main() {
    let ds = uniprot::dataset(&uniprot::UniProtConfig {
        proteins: 4000,
        taxa: 30,
        seed: 42,
    });
    let db = Database::from_encoded(ds.graph.clone().encode());
    println!("UniProt-like dataset: {} triples", db.len());

    // Q1: three blocks, two OPTIONALs, low selectivity.
    let q = &ds.queries[0];
    let query = parse_query(&q.text).unwrap();
    println!("query {} — {}", q.id, q.note);

    let t = Instant::now();
    let lbr_out = db.execute_query(&query).unwrap();
    let t_lbr = t.elapsed();

    let t = Instant::now();
    let pw = PairwiseEngine::new(db.store(), db.dict(), JoinOrder::Selectivity)
        .execute(&query)
        .unwrap();
    let t_pw = t.elapsed();

    let t = Instant::now();
    let ro = ReorderedEngine::new(db.store(), db.dict())
        .execute(&query)
        .unwrap();
    let t_ro = t.elapsed();

    assert_eq!(lbr_out.len(), pw.rows.len(), "engines disagree");
    assert_eq!(lbr_out.len(), ro.rows.len(), "engines disagree");

    println!("rows: {}", lbr_out.len());
    println!(
        "LBR                     {t_lbr:>10.2?}  (init {:.2?}, prune {:.2?}, join {:.2?})",
        lbr_out.stats.t_init, lbr_out.stats.t_prune, lbr_out.stats.t_join
    );
    println!("pairwise hash joins     {t_pw:>10.2?}");
    println!("reorder + nullification {t_ro:>10.2?}");
    println!(
        "pruning: {} candidate triples → {}",
        lbr_out.stats.initial_triples, lbr_out.stats.triples_after_pruning
    );
}
