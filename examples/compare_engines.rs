//! Head-to-head of the executors on one low-selectivity OPTIONAL query:
//! LBR, both pairwise hash-join configurations (Virtuoso/MonetDB analogs)
//! and the outer-join-reordering engine — all dispatched through the one
//! `Engine` trait via `EngineKind`, with no per-engine code.
//!
//! ```sh
//! cargo run --release --example compare_engines
//! ```

use lbr::datagen::uniprot;
use lbr::{parse_query, Database, EngineKind};
use std::time::Instant;

fn main() {
    let ds = uniprot::dataset(&uniprot::UniProtConfig {
        proteins: 4000,
        taxa: 30,
        seed: 42,
    });
    let db = Database::builder()
        .encoded(ds.graph.clone().encode())
        .build()
        .expect("encoded graph builds");
    println!("UniProt-like dataset: {} triples", db.len());

    // Q1: three blocks, two OPTIONALs, low selectivity.
    let q = &ds.queries[0];
    let query = parse_query(&q.text).unwrap();
    println!("query {} — {}", q.id, q.note);

    // The reference oracle is O(rows²) — every other engine runs here.
    let contenders = [
        EngineKind::Lbr,
        EngineKind::PairwiseSelectivity,
        EngineKind::PairwiseQueryOrder,
        EngineKind::Reordered,
    ];
    let mut n_rows: Option<usize> = None;
    for kind in contenders {
        let engine = db.engine_of(kind);
        let t = Instant::now();
        let out = engine.execute(&query).expect("query runs");
        let elapsed = t.elapsed();
        match n_rows {
            None => n_rows = Some(out.len()),
            Some(n) => assert_eq!(n, out.len(), "engines disagree"),
        }
        let phases = if kind == EngineKind::Lbr {
            format!(
                "  (init {:.2?}, prune {:.2?}, join {:.2?}; pruning {} → {} candidates)",
                out.stats.t_init,
                out.stats.t_prune,
                out.stats.t_join,
                out.stats.initial_triples,
                out.stats.triples_after_pruning,
            )
        } else {
            String::new()
        };
        println!("{:<12} {elapsed:>10.2?}{phases}", kind.name());
    }
    println!("rows: {}", n_rows.unwrap_or(0));
}
