//! Runs the LUBM-like workload (Appendix E.1) at a small scale and prints
//! per-query statistics — a miniature of Table 6.2. Each query is
//! prepared once and executed repeatedly, the paper's warm-run
//! methodology expressed through the `PreparedQuery` API.
//!
//! ```sh
//! cargo run --release --example lubm_campus
//! ```

use lbr::datagen::lubm;
use lbr::Database;

const RUNS: u32 = 3;

fn main() {
    let cfg = lubm::LubmConfig {
        universities: 3,
        departments: 6,
        seed: 42,
    };
    let ds = lubm::dataset(&cfg);
    println!(
        "generated {} triples for {} universities",
        ds.graph.len(),
        cfg.universities
    );

    let db = Database::builder()
        .encoded(ds.graph.clone().encode())
        .build()
        .expect("encoded graph builds");
    println!(
        "{:<4} {:>10} {:>12} {:>10} {:>10} {:>7} {:>12}",
        "id", "results", "with-nulls", "initial", "pruned-to", "NB?", "avg-total"
    );
    for q in &ds.queries {
        // Plan once; time only the data phases across RUNS executions.
        let prepared = db.prepare(&q.text).expect("query prepares");
        let mut out = prepared.execute().expect("query runs");
        let mut total = out.stats.t_total;
        for _ in 1..RUNS {
            out = prepared.execute().expect("query runs");
            total += out.stats.t_total;
        }
        println!(
            "{:<4} {:>10} {:>12} {:>10} {:>10} {:>7} {:>11.2?}",
            q.id,
            out.len(),
            out.rows_with_nulls(),
            out.stats.initial_triples,
            out.stats.triples_after_pruning,
            if out.stats.nb_required { "yes" } else { "no" },
            total / RUNS,
        );
    }
}
