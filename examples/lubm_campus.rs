//! Runs the LUBM-like workload (Appendix E.1) at a small scale and prints
//! per-query statistics — a miniature of Table 6.2.
//!
//! ```sh
//! cargo run --release --example lubm_campus
//! ```

use lbr::datagen::lubm;
use lbr::Database;

fn main() {
    let cfg = lubm::LubmConfig {
        universities: 3,
        departments: 6,
        seed: 42,
    };
    let ds = lubm::dataset(&cfg);
    println!(
        "generated {} triples for {} universities",
        ds.graph.len(),
        cfg.universities
    );

    let db = Database::from_encoded(ds.graph.clone().encode());
    println!(
        "{:<4} {:>10} {:>12} {:>10} {:>10} {:>7} {:>11}",
        "id", "results", "with-nulls", "initial", "pruned-to", "NB?", "total"
    );
    for q in &ds.queries {
        let out = db.execute(&q.text).expect("query runs");
        println!(
            "{:<4} {:>10} {:>12} {:>10} {:>10} {:>7} {:>10.2?}",
            q.id,
            out.len(),
            out.rows_with_nulls(),
            out.stats.initial_triples,
            out.stats.triples_after_pruning,
            if out.stats.nb_required { "yes" } else { "no" },
            out.stats.t_total,
        );
    }
}
