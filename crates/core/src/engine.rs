//! The query executor: Algorithm 5.1 end-to-end, plus the §5.2 handling of
//! UNION (UNION normal form), FILTER (init masks + FaN) and Cartesian
//! products (×-free components evaluated with LBR, combined pairwise).
//!
//! Execution is split into two phases so prepared queries can cache the
//! expensive front half:
//!
//! * [`LbrEngine::plan`] — UNF rewrite, per-branch GoSN/GoJ analysis and
//!   classification, variable-table construction, selectivity estimation
//!   and jvar ordering, producing an [`LbrPlan`];
//! * [`LbrEngine::execute_plan`] — init, `prune_triples` and the
//!   multi-way join against the current catalog.
//!
//! [`LbrEngine::execute`] simply runs both; repeated execution through a
//! prepared query skips straight to the second phase.

use crate::api::Engine;
use crate::best_match::best_match;
use crate::bindings::{Binding, QueryOutput, VarTable};
use crate::error::LbrError;
use crate::filter_eval::{self, VarLookup};
use crate::init::{absolute_master_empty, init, TpState};
use crate::jvar_order::{get_jvar_order, JvarOrder};
use crate::multiway::{multi_way_join_with, JoinInputs};
use crate::prune::{prune_triples, PruneOutcome, PruneScratch};
use crate::selectivity::estimate_all;
use crate::QueryStats;
use lbr_bitmat::Catalog;
use lbr_rdf::{Dictionary, Term};
use lbr_sparql::algebra::{Expr, GraphPattern, Modifiers, Query, QueryForm};
use lbr_sparql::classify::{analyze, Analyzed};
use lbr_sparql::rewrite::rewrite_to_unf;
use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::time::Instant;

thread_local! {
    /// Per-thread prune scratch pool: one per serving/worker thread, so
    /// repeated queries reuse the fold/intersection buffers across
    /// executions (the zero-allocation steady state on the cached-plan
    /// serving path).
    static PRUNE_SCRATCH: RefCell<PruneScratch> = RefCell::new(PruneScratch::new());
}

/// The Left Bit Right engine over a BitMat catalog.
pub struct LbrEngine<'a, C: Catalog> {
    catalog: &'a C,
    dict: &'a Dictionary,
    /// Worker threads for the multi-way join's root partitioning
    /// (`1` = the exact serial recursion).
    threads: usize,
    /// Execution deadline: evaluation past this instant aborts with
    /// [`LbrError::DeadlineExceeded`] instead of finishing the answer —
    /// the serving layer's per-request timeout seam.
    deadline: Option<Instant>,
}

/// A cached execution plan: everything [`LbrEngine::execute`] derives
/// from the query text before touching data — including the query form
/// and solution modifiers, so a plan alone can be executed to a final
/// answer (and the LIMIT/ASK row quota can be re-derived on every run).
///
/// Plans embed per-TP selectivity estimates, so a plan is specific to the
/// engine (catalog) that produced it. [`Engine::execute_planned`] falls
/// back to unprepared execution when handed a foreign plan.
#[derive(Debug, Clone)]
pub struct LbrPlan {
    /// Final projected variables (what the caller sees).
    projection: Vec<String>,
    /// Raw row schema: projection plus non-projected ORDER BY keys.
    exec_vars: Vec<String>,
    /// The query form (SELECT dedup / ASK).
    form: QueryForm,
    /// The solution modifiers.
    modifiers: Modifiers,
    any_rule3: bool,
    branches: Vec<PlanNode>,
}

impl LbrPlan {
    /// The projected variable names, in projection order.
    pub fn projection(&self) -> &[String] {
        &self.projection
    }

    /// Number of UNION-normal-form branches.
    pub fn n_branches(&self) -> usize {
        self.branches.len()
    }

    /// The raw-row quota the multi-way join runs under (LIMIT/ASK
    /// pushdown), when the plan's form and modifiers admit one.
    pub fn row_quota(&self) -> Option<usize> {
        if self.any_rule3 {
            // Cross-branch minimum-union can drop rows after the join —
            // no raw-row bound is sound.
            return None;
        }
        crate::modifiers::row_quota(&self.form, &self.modifiers)
    }
}

/// One planned evaluation step, mirroring the §5.2 recursion.
#[derive(Debug, Clone)]
enum PlanNode {
    /// A variable-connected, union-free pattern: Algorithm 5.1 proper.
    Connected(Box<ConnectedPlan>),
    /// Cartesian fallback: inner join of two disconnected parts.
    Join(Box<PlanNode>, Box<PlanNode>),
    /// Cartesian fallback: left-outer join of two disconnected parts.
    LeftJoin(Box<PlanNode>, Box<PlanNode>),
    /// Post-hoc FILTER over a disconnected part.
    Filter(Box<PlanNode>, Expr),
    /// A BGP split into variable-connected components, inner-combined.
    Product(Vec<PlanNode>),
}

/// The cached analysis of one connected pattern.
#[derive(Debug, Clone)]
struct ConnectedPlan {
    analyzed: Analyzed,
    vt: VarTable,
    estimates: Vec<u64>,
    jorder: JvarOrder,
}

/// Result of evaluating one union-free / connected sub-pattern.
struct PartResult {
    vars: Vec<String>,
    rows: Vec<Vec<Option<Binding>>>,
    stats: QueryStats,
    /// Whether this part may contain subsumed rows (nullification fired or
    /// a FaN filter nullified a slave).
    needs_best_match: bool,
}

impl<'a, C: Catalog> LbrEngine<'a, C> {
    /// Creates an engine over a catalog and its dictionary, using the
    /// machine's available parallelism for the multi-way join (results
    /// are byte-identical at every thread count; see
    /// [`crate::multiway::multi_way_join_with`]).
    pub fn new(catalog: &'a C, dict: &'a Dictionary) -> Self {
        LbrEngine {
            catalog,
            dict,
            threads: crate::api::default_threads(),
            deadline: None,
        }
    }

    /// Sets the worker-thread count for the multi-way join (`1` runs the
    /// exact serial recursion; values are clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets an execution deadline: once it passes, the multi-way join
    /// stops enumerating seeds (polled on the quota seam, so the abort is
    /// prompt even mid-join) and execution returns
    /// [`LbrError::DeadlineExceeded`]. `None` (the default) never expires.
    pub fn with_deadline(mut self, deadline: Option<Instant>) -> Self {
        self.deadline = deadline;
        self
    }

    /// True once the configured deadline (if any) has passed.
    fn deadline_passed(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes a query: plan, then run the plan (raw evaluation plus the
    /// shared form/modifier seam).
    pub fn execute(&self, query: &Query) -> Result<QueryOutput, LbrError> {
        let t0 = Instant::now();
        let plan = self.plan(query)?;
        let mut out = self.execute_plan(&plan)?;
        out.stats.t_total = t0.elapsed();
        Ok(out)
    }

    /// Runs the planning pipeline: UNF rewrite → per-branch GoSN/GoJ
    /// analysis, classification, variable table, selectivity estimates
    /// and jvar orders.
    pub fn plan(&self, query: &Query) -> Result<LbrPlan, LbrError> {
        let branches = rewrite_to_unf(&query.pattern);
        let any_rule3 = branches.iter().any(|b| b.used_rule3);
        let planned = branches
            .iter()
            .map(|b| self.plan_pattern(&b.pattern))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(LbrPlan {
            projection: query.projected_vars(),
            exec_vars: query.exec_vars(),
            form: query.form.clone(),
            modifiers: query.modifiers.clone(),
            any_rule3,
            branches: planned,
        })
    }

    /// Executes a cached plan end-to-end: raw evaluation
    /// ([`LbrEngine::execute_plan_raw`]) followed by the shared
    /// form/modifier seam ([`crate::modifiers::finalize_parts`]).
    pub fn execute_plan(&self, plan: &LbrPlan) -> Result<QueryOutput, LbrError> {
        let t0 = Instant::now();
        let raw = self.execute_plan_raw(plan)?;
        let t_fin = Instant::now();
        let mut out = crate::modifiers::finalize_parts(
            raw,
            &plan.form,
            &plan.modifiers,
            &plan.projection,
            self.dict,
        );
        lbr_obs::span_since("finalize", t_fin, &[("rows", out.rows.len() as u64)]);
        out.stats.t_total = t0.elapsed();
        Ok(out)
    }

    /// Raw evaluation of a cached plan: per-branch LBR evaluation →
    /// bag-union of branches (+ best-match when rule (3) was used) →
    /// projection onto the plan's execution schema. When the plan admits
    /// a LIMIT/ASK row quota it is pushed into the multi-way join's seed
    /// enumeration, threaded across UNION branches (a later branch only
    /// needs what earlier branches did not already supply).
    pub fn execute_plan_raw(&self, plan: &LbrPlan) -> Result<QueryOutput, LbrError> {
        let t0 = Instant::now();
        let mut stats = QueryStats::default();
        let mut remaining = plan.row_quota();
        let mut parts = Vec::with_capacity(plan.branches.len());
        for (branch_id, branch) in plan.branches.iter().enumerate() {
            if remaining == Some(0) {
                break; // earlier branches already supplied every needed row
            }
            if self.deadline_passed() {
                // Between branches (and before init/prune of the next
                // one): cheap exact check on the same seam the join polls.
                return Err(LbrError::DeadlineExceeded);
            }
            // Zero-duration marker delimiting this branch's span group
            // (the trace renderer partitions stage spans by these).
            lbr_obs::span_at(
                "branch",
                t0,
                std::time::Duration::ZERO,
                &[("branch", branch_id as u64)],
            );
            let mut part = self.exec_node(branch, remaining)?;
            if part.needs_best_match {
                let t_bm = Instant::now();
                best_match(&mut part.rows);
                lbr_obs::span_since("best_match", t_bm, &[("rows", part.rows.len() as u64)]);
            }
            if let Some(r) = remaining {
                remaining = Some(r.saturating_sub(part.rows.len()));
            }
            merge_stats(&mut stats, &part.stats);
            parts.push(part);
        }
        let all_rows = if plan.any_rule3 {
            // Rule (3) branches can produce spurious subsumed rows across
            // branches; minimum-union them away (§5.2). Subsumption is
            // defined over the branches' *full* schemas, so the branches
            // are aligned onto the union of their variables and
            // best-matched there *before* projection — projecting first
            // could erase a column that distinguishes two rows and drop a
            // row that is only spuriously subsumed post-projection.
            let mut full_vars: Vec<String> = Vec::new();
            for part in &parts {
                for v in &part.vars {
                    if !full_vars.contains(v) {
                        full_vars.push(v.clone());
                    }
                }
            }
            let mut full_rows: Vec<Vec<Option<Binding>>> = Vec::new();
            for part in &parts {
                let col_of: Vec<Option<usize>> = full_vars
                    .iter()
                    .map(|v| part.vars.iter().position(|x| x == v))
                    .collect();
                for row in &part.rows {
                    full_rows.push(col_of.iter().map(|c| c.and_then(|i| row[i])).collect());
                }
            }
            let t_bm = Instant::now();
            best_match(&mut full_rows);
            lbr_obs::span_since("best_match", t_bm, &[("rows", full_rows.len() as u64)]);
            let col_of: Vec<Option<usize>> = plan
                .exec_vars
                .iter()
                .map(|v| full_vars.iter().position(|x| x == v))
                .collect();
            full_rows
                .iter()
                .map(|row| col_of.iter().map(|c| c.and_then(|i| row[i])).collect())
                .collect()
        } else {
            // Re-project each branch's rows onto the execution schema
            // (the projection plus any non-projected ORDER BY key — the
            // shared seam drops the extras after sorting).
            let mut all: Vec<Vec<Option<Binding>>> = Vec::new();
            for part in &parts {
                let col_of: Vec<Option<usize>> = plan
                    .exec_vars
                    .iter()
                    .map(|v| part.vars.iter().position(|x| x == v))
                    .collect();
                for row in &part.rows {
                    all.push(col_of.iter().map(|c| c.and_then(|i| row[i])).collect());
                }
            }
            all
        };
        stats.n_results = all_rows.len();
        stats.n_results_with_nulls = all_rows
            .iter()
            .filter(|r| r.iter().any(|c| c.is_none()))
            .count();
        stats.t_total = t0.elapsed();
        Ok(QueryOutput {
            vars: plan.exec_vars.clone(),
            rows: all_rows,
            stats,
        })
    }

    /// Plans one union-free pattern; splits off Cartesian-product
    /// components when the pattern is not variable-connected.
    fn plan_pattern(&self, pattern: &GraphPattern) -> Result<PlanNode, LbrError> {
        let analyzed = analyze(pattern)?;
        if analyzed.class.connected {
            let vt = VarTable::from_tps(analyzed.gosn.tps())?;
            let estimates = estimate_all(analyzed.gosn.tps(), self.dict, self.catalog);
            let jorder = get_jvar_order(&analyzed.gosn, &analyzed.goj, &vt, &estimates);
            return Ok(PlanNode::Connected(Box::new(ConnectedPlan {
                analyzed,
                vt,
                estimates,
                jorder,
            })));
        }
        // §5.2 Cartesian handling: evaluate ×-free sub-patterns with LBR
        // and combine pairwise at the disconnection points.
        match pattern {
            GraphPattern::Join(l, r) => Ok(PlanNode::Join(
                Box::new(self.plan_pattern(l)?),
                Box::new(self.plan_pattern(r)?),
            )),
            GraphPattern::LeftJoin(l, r) => Ok(PlanNode::LeftJoin(
                Box::new(self.plan_pattern(l)?),
                Box::new(self.plan_pattern(r)?),
            )),
            GraphPattern::Filter(inner, e) => Ok(PlanNode::Filter(
                Box::new(self.plan_pattern(inner)?),
                e.clone(),
            )),
            GraphPattern::Bgp(tps) => {
                // Split the BGP into variable-connected components.
                let comps = bgp_components(tps);
                debug_assert!(!comps.is_empty(), "BGP has at least one component");
                Ok(PlanNode::Product(
                    comps
                        .into_iter()
                        .map(|comp| self.plan_pattern(&GraphPattern::Bgp(comp)))
                        .collect::<Result<Vec<_>, _>>()?,
                ))
            }
            GraphPattern::Union(_, _) => Err(LbrError::Unsupported(
                "UNION survived the UNF rewrite".into(),
            )),
        }
    }

    /// Evaluates one planned node. `quota` is the LIMIT/ASK row bound for
    /// this node's own output; it is only exploitable by a directly
    /// connected pattern (Algorithm 5.1 emits final rows), so combiner
    /// nodes — whose post-processing can drop or multiply rows — evaluate
    /// their children unbounded.
    fn exec_node(&self, node: &PlanNode, quota: Option<usize>) -> Result<PartResult, LbrError> {
        match node {
            PlanNode::Connected(cp) => self.eval_connected(cp, quota),
            PlanNode::Join(l, r) => {
                let a = self.exec_node(l, None)?;
                let b = self.exec_node(r, None)?;
                Ok(combine(a, b, JoinKind::Inner))
            }
            PlanNode::LeftJoin(l, r) => {
                let a = self.exec_node(l, None)?;
                let b = self.exec_node(r, None)?;
                Ok(combine(a, b, JoinKind::LeftOuter))
            }
            PlanNode::Filter(inner, e) => {
                let mut part = self.exec_node(inner, None)?;
                // One name → column map per filter, not one linear scan
                // per variable per row.
                let columns: HashMap<&str, usize> = part
                    .vars
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (v.as_str(), i))
                    .collect();
                part.rows.retain(|row| {
                    let lk = IndexedRowLookup {
                        columns: &columns,
                        row,
                        dict: self.dict,
                    };
                    filter_eval::eval(e, &lk)
                });
                Ok(part)
            }
            PlanNode::Product(comps) => {
                let mut acc: Option<PartResult> = None;
                for comp in comps {
                    let part = self.exec_node(comp, None)?;
                    acc = Some(match acc {
                        None => part,
                        Some(prev) => combine(prev, part, JoinKind::Inner),
                    });
                }
                Ok(acc.expect("BGP has at least one component"))
            }
        }
    }

    /// Algorithm 5.1 for one connected, union-free pattern.
    ///
    /// A `quota` (LIMIT/ASK pushdown) short-circuits the multi-way join's
    /// seed enumeration. It is only used when the classification rules
    /// out best-match (`!nb_required` — best-match could drop rows and
    /// leave fewer than available); if nullification unexpectedly fires
    /// as the safety net on a quota-truncated run, the join is re-run
    /// unbounded so correctness never depends on the bound.
    fn eval_connected(
        &self,
        cp: &ConnectedPlan,
        quota: Option<usize>,
    ) -> Result<PartResult, LbrError> {
        let analyzed = &cp.analyzed;
        let gosn = &analyzed.gosn;
        let vt = &cp.vt;
        let jorder = &cp.jorder;
        let estimates = &cp.estimates;
        let dims = self.catalog.dims();
        let mut stats = QueryStats {
            nb_required: analyzed.class.nb_required,
            initial_triples: estimates.iter().sum(),
            ..Default::default()
        };

        // init with active pruning.
        let t = Instant::now();
        let mut loaded = init(gosn, vt, jorder, estimates, self.dict, self.catalog)?;
        // Single-variable supernode filters become init-time masks; the
        // rest go to the FaN hook.
        let mut fan_filters: Vec<(Option<usize>, &Expr)> = Vec::new();
        for sn in 0..gosn.n_supernodes() {
            for expr in gosn.sn_filters(sn) {
                if !self.apply_filter_mask(sn, expr, gosn, vt, &mut loaded.tps) {
                    fan_filters.push((Some(sn), expr));
                }
            }
        }
        for expr in gosn.global_filters() {
            fan_filters.push((None, expr));
        }
        stats.t_init = t.elapsed();
        lbr_obs::span_at("init", t, stats.t_init, &[]);

        if absolute_master_empty(gosn, &loaded.tps) {
            stats.aborted_empty = true;
            stats.t_total = stats.t_init;
            return Ok(PartResult {
                vars: vt.names().to_vec(),
                rows: Vec::new(),
                stats,
                needs_best_match: false,
            });
        }

        // prune_triples, through the worker's long-lived scratch pool:
        // fold masks, intersection results and work lists are reused
        // across every jvar of both passes — and, because the pool is
        // thread-local, across *queries* on a serving thread (no
        // allocation in the steady-state inner loop once warm). The
        // pool's counters are monotone, so this query's share is the
        // before/after delta.
        let t = Instant::now();
        let (outcome, pstats) = PRUNE_SCRATCH.with_borrow_mut(|prune_scratch| {
            let before = prune_scratch.stats();
            let outcome = prune_triples(
                &mut loaded.tps,
                gosn,
                &analyzed.goj,
                vt,
                jorder,
                &dims,
                prune_scratch,
            );
            let after = prune_scratch.stats();
            (
                outcome,
                crate::prune::PruneStats {
                    intersections: after.intersections - before.intersections,
                    scratch_reuses: after.scratch_reuses - before.scratch_reuses,
                },
            )
        });
        stats.t_prune = t.elapsed();
        stats.prune_intersections = pstats.intersections;
        stats.scratch_reuses = pstats.scratch_reuses;
        stats.triples_after_pruning = loaded.tps.iter().map(TpState::count).sum();
        lbr_obs::span_at(
            "prune",
            t,
            stats.t_prune,
            &[
                ("initial_triples", stats.initial_triples),
                ("triples_after_pruning", stats.triples_after_pruning),
                ("intersections", pstats.intersections),
            ],
        );
        if lbr_obs::trace_active() {
            // Per-TP estimate-vs-actual cardinality (the EXPLAIN ANALYZE
            // feed, and ROADMAP item 4's selectivity-error signal).
            // Zero-duration markers stamped at the prune boundary.
            for (tp_id, tp) in loaded.tps.iter().enumerate() {
                lbr_obs::span_at(
                    "tp",
                    t,
                    std::time::Duration::ZERO,
                    &[
                        ("tp", tp_id as u64),
                        ("est", estimates.get(tp_id).copied().unwrap_or(0)),
                        ("actual", tp.count()),
                    ],
                );
            }
        }
        if outcome == PruneOutcome::EmptyAbsoluteMaster {
            stats.aborted_empty = true;
            // The abort still spent the init and prune phases — report
            // them instead of a zero total.
            stats.t_total = stats.t_init + stats.t_prune;
            return Ok(PartResult {
                vars: vt.names().to_vec(),
                rows: Vec::new(),
                stats,
                needs_best_match: false,
            });
        }

        // Multi-way pipelined join.
        let t = Instant::now();
        for tp in &mut loaded.tps {
            tp.build_adjacency();
        }
        let quota = quota.filter(|_| !analyzed.class.nb_required);
        let inputs = JoinInputs {
            tps: &loaded.tps,
            gosn,
            vt,
            dims,
            dict: self.dict,
            fan_filters,
            quota,
            deadline: self.deadline,
        };
        let (mut rows, mut exec) = multi_way_join_with(&inputs, self.threads);
        if let Some(q) = quota {
            if exec.nullification_fired > 0 && rows.len() >= q && !exec.deadline_expired {
                // The safety-net nullification fired on a quota-truncated
                // run: best-match may now drop rows, so the truncation
                // could under-deliver. Re-run unbounded (rare: acyclic WD
                // queries never nullify, Lemma 3.3).
                let inputs = JoinInputs {
                    quota: None,
                    ..inputs
                };
                (rows, exec) = multi_way_join_with(&inputs, self.threads);
            }
        }
        if exec.deadline_expired {
            // The rows are an arbitrary truncation of the answer, not a
            // prefix the caller asked for — discard and report.
            return Err(LbrError::DeadlineExceeded);
        }
        stats.t_join = t.elapsed();
        lbr_obs::span_at(
            "join",
            t,
            stats.t_join,
            &[
                ("seeds", exec.seeds_enumerated),
                ("rows", rows.len() as u64),
                ("workers", self.threads as u64),
            ],
        );
        stats.nullification_fired = exec.nullification_fired;
        stats.join_seeds = exec.seeds_enumerated;
        stats.scratch_reuses += exec.scratch_reuses;
        stats.t_total = stats.t_init + stats.t_prune + stats.t_join;

        Ok(PartResult {
            vars: vt.names().to_vec(),
            rows,
            stats,
            needs_best_match: analyzed.class.nb_required || exec.nullification_fired > 0,
        })
    }

    /// EXPLAIN ANALYZE: plans the query, executes it under a forced local
    /// trace (no sampler involved — the spans are consumed directly), and
    /// renders the planned tree annotated with actual per-stage wall
    /// time, per-TP and per-jvar estimated-vs-actual cardinalities, and
    /// join seeds/rows.
    pub fn explain_analyze(&self, query: &Query) -> Result<String, LbrError> {
        let plan = self.plan(query)?;
        // Forced trace id 0: collection on, publication bypassed. This
        // clobbers any sampler-owned trace on the thread (the serving
        // layer documents `explain=analyze` requests as untraced).
        lbr_obs::trace_begin(0);
        let t0 = Instant::now();
        let result = self.execute_plan(&plan);
        let total = t0.elapsed();
        let mut spans = Vec::new();
        let mut label = String::new();
        lbr_obs::trace_drain(&mut spans, &mut label);
        let output = result?;
        crate::explain::render_analyze(query, self.dict, self.catalog, &spans, total, &output)
    }

    /// Applies a single-variable filter as an init-time candidate mask on
    /// every TP of the supernode containing that variable. Returns `false`
    /// when the filter must be handled by the FaN hook instead: it is not
    /// single-variable, or its variable is not bound inside this supernode
    /// (so the mask would have nothing to apply to).
    fn apply_filter_mask(
        &self,
        sn: usize,
        expr: &Expr,
        gosn: &lbr_sparql::gosn::Gosn,
        vt: &VarTable,
        tps: &mut [TpState],
    ) -> bool {
        let vars: Vec<&str> = expr.vars().into_iter().collect();
        let [name] = vars.as_slice() else {
            return false;
        };
        let Some(var) = vt.id(name) else {
            // The variable occurs nowhere in the pattern, so it can never
            // be bound and the filter is row-independent: evaluate it once
            // with the variable unbound (SPARQL error → `false`, per the
            // documented collapse). `true` keeps every row — a genuine
            // no-op; `false` goes to the FaN hook, which drops every
            // master row / nullifies the slave supernode.
            return filter_eval::eval(expr, &filter_eval::PairLookup(&[]));
        };
        let dims = self.catalog.dims();
        let mut masked_any = false;
        for &tp in gosn.tps_of_sn(sn) {
            // Fold in the TP's own position dimension so candidate IDs
            // decode through the right dictionary dimension.
            let Some(dim) = tps[tp].dim_of(var) else {
                continue;
            };
            let space_len = crate::bindings::op_space_len(&dims, [dim]);
            let Some(cands) = tps[tp].fold_var(var, space_len) else {
                continue;
            };
            let mut mask = lbr_bitmat::BitVec::zeros(space_len);
            for id in cands.iter_ones() {
                let term = self.dict.term(id, dim).expect("candidate decodes");
                let holder = SingleLookup { name, term };
                if filter_eval::eval(expr, &holder) {
                    mask.set(id);
                }
            }
            tps[tp].unfold_var(var, &mask);
            masked_any = true;
        }
        // The variable exists in the pattern but no TP of *this* supernode
        // binds it: FaN the filter — its supernode-scoped evaluation reads
        // the out-of-scope variable as unbound, like the reference oracle.
        masked_any
    }
}

impl<C: Catalog> Engine for LbrEngine<'_, C> {
    fn name(&self) -> &'static str {
        "lbr"
    }

    fn dict(&self) -> &Dictionary {
        self.dict
    }

    fn execute_raw(&self, query: &Query) -> Result<QueryOutput, LbrError> {
        let plan = self.plan(query)?;
        self.execute_plan_raw(&plan)
    }

    fn execute(&self, query: &Query) -> Result<QueryOutput, LbrError> {
        LbrEngine::execute(self, query)
    }

    fn explain(&self, query: &Query) -> Result<String, LbrError> {
        crate::explain::explain(query, self.dict, self.catalog)
    }

    fn explain_analyze(&self, query: &Query) -> Result<String, LbrError> {
        LbrEngine::explain_analyze(self, query)
    }

    fn plan_query(&self, query: &Query) -> Result<Box<dyn Any + Send + Sync>, LbrError> {
        Ok(Box::new(self.plan(query)?))
    }

    fn execute_planned_raw(&self, query: &Query, plan: &dyn Any) -> Result<QueryOutput, LbrError> {
        match plan.downcast_ref::<LbrPlan>() {
            Some(plan) => self.execute_plan_raw(plan),
            None => Engine::execute_raw(self, query),
        }
    }
}

struct SingleLookup<'a> {
    name: &'a str,
    term: &'a Term,
}

impl VarLookup for SingleLookup<'_> {
    fn term(&self, name: &str) -> Option<&Term> {
        (name == self.name).then_some(self.term)
    }
}

/// Row lookup for post-hoc FILTER evaluation backed by a name → column
/// map built once per filter (the per-variable scan was O(vars) per row).
struct IndexedRowLookup<'a> {
    columns: &'a HashMap<&'a str, usize>,
    row: &'a [Option<Binding>],
    dict: &'a Dictionary,
}

impl VarLookup for IndexedRowLookup<'_> {
    fn term(&self, name: &str) -> Option<&Term> {
        let i = *self.columns.get(name)?;
        self.row[i].as_ref().map(|b| b.decode(self.dict))
    }
}

fn merge_stats(acc: &mut QueryStats, part: &QueryStats) {
    acc.t_init += part.t_init;
    acc.t_prune += part.t_prune;
    acc.t_join += part.t_join;
    // Keep totals additive too, so Cartesian-fallback parts report a
    // nonzero `t_total` (the top-level callers overwrite it with the
    // measured wall time at the end).
    acc.t_total += part.t_total;
    acc.initial_triples += part.initial_triples;
    acc.triples_after_pruning += part.triples_after_pruning;
    acc.nb_required |= part.nb_required;
    acc.nullification_fired += part.nullification_fired;
    acc.join_seeds += part.join_seeds;
    acc.prune_intersections += part.prune_intersections;
    acc.scratch_reuses += part.scratch_reuses;
    acc.aborted_empty |= part.aborted_empty;
}

#[derive(Clone, Copy, PartialEq)]
enum JoinKind {
    Inner,
    LeftOuter,
}

/// Pairwise combination of two part results on their shared variables —
/// the "standard relational technique" fallback for Cartesian patterns
/// (§5.2). Null-intolerant on the join keys, as in Appendix B.
fn combine(a: PartResult, b: PartResult, kind: JoinKind) -> PartResult {
    let shared: Vec<(usize, usize)> = a
        .vars
        .iter()
        .enumerate()
        .filter_map(|(i, v)| b.vars.iter().position(|x| x == v).map(|j| (i, j)))
        .collect();
    let b_only: Vec<usize> = (0..b.vars.len())
        .filter(|j| !shared.iter().any(|&(_, sj)| sj == *j))
        .collect();

    let mut vars = a.vars.clone();
    vars.extend(b_only.iter().map(|&j| b.vars[j].clone()));

    // Hash the right side on the shared key.
    let mut table: HashMap<Vec<Binding>, Vec<usize>> = HashMap::new();
    for (idx, row) in b.rows.iter().enumerate() {
        let Some(key) = shared
            .iter()
            .map(|&(_, j)| row[j])
            .collect::<Option<Vec<Binding>>>()
        else {
            continue; // NULL join key: null-intolerant
        };
        table.entry(key).or_default().push(idx);
    }

    // No shared vars ⇒ cross product with all of b.
    let cross: Vec<usize> = (0..b.rows.len()).collect();
    let empty: Vec<usize> = Vec::new();
    let mut rows = Vec::new();
    for arow in &a.rows {
        let matches: &[usize] = if shared.is_empty() {
            &cross
        } else {
            match shared
                .iter()
                .map(|&(i, _)| arow[i])
                .collect::<Option<Vec<Binding>>>()
            {
                Some(k) => table.get(&k).unwrap_or(&empty),
                None => &empty, // NULL join key: null-intolerant
            }
        };
        if matches.is_empty() {
            if kind == JoinKind::LeftOuter {
                let mut row = arow.clone();
                row.extend(b_only.iter().map(|_| None));
                rows.push(row);
            }
        } else {
            for &m in matches {
                let mut row = arow.clone();
                row.extend(b_only.iter().map(|&j| b.rows[m][j]));
                rows.push(row);
            }
        }
    }

    let mut stats = a.stats.clone();
    merge_stats(&mut stats, &b.stats);
    PartResult {
        vars,
        rows,
        stats,
        needs_best_match: a.needs_best_match || b.needs_best_match,
    }
}

/// Splits a BGP's TPs into variable-connected components.
fn bgp_components(
    tps: &[lbr_sparql::algebra::TriplePattern],
) -> Vec<Vec<lbr_sparql::algebra::TriplePattern>> {
    let n = tps.len();
    let mut comp = vec![usize::MAX; n];
    let mut n_comp = 0;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![start];
        comp[start] = n_comp;
        while let Some(i) = stack.pop() {
            for j in 0..n {
                if comp[j] == usize::MAX && tps[i].vars().iter().any(|v| tps[j].has_var(v)) {
                    comp[j] = n_comp;
                    stack.push(j);
                }
            }
        }
        n_comp += 1;
    }
    let mut out = vec![Vec::new(); n_comp];
    for (i, tp) in tps.iter().enumerate() {
        out[comp[i]].push(tp.clone());
    }
    out
}
