//! Variable tables, binding spaces, and decoded query outputs.
//!
//! Every query variable is interned to a dense [`VarId`] and assigned a
//! **binding space**: the bitcube dimension its `u32` bindings live in.
//! A variable used in both subject and object positions binds inside the
//! shared `Vso` prefix (Appendix D), which is what makes S-O joins raw
//! integer comparisons.

use crate::error::LbrError;
use crate::QueryStats;
use lbr_bitmat::CubeDims;
use lbr_rdf::{Dictionary, Dimension, Term};
use lbr_sparql::algebra::TriplePattern;
use std::collections::HashMap;

/// Dense per-query variable index.
pub type VarId = usize;

/// The bitcube dimension a variable's bindings live in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarSpace {
    /// Subject-only variable: IDs in `0..|Vs|`.
    Subject,
    /// Object-only variable: IDs in `0..|Vo|`.
    Object,
    /// Variable used in both S and O positions: IDs in the shared prefix
    /// `0..|Vso|`.
    Shared,
    /// Predicate-position variable (never a join variable, §4 footnote 5).
    Predicate,
}

impl VarSpace {
    /// Length of the space in bits.
    pub fn len(self, dims: &CubeDims) -> u32 {
        match self {
            VarSpace::Subject => dims.n_subjects,
            VarSpace::Object => dims.n_objects,
            VarSpace::Shared => dims.n_shared,
            VarSpace::Predicate => dims.n_predicates,
        }
    }

    /// The dictionary dimension used to decode a binding (shared IDs decode
    /// identically through either dimension; we use Subject).
    pub fn decode_dim(self) -> Dimension {
        match self {
            VarSpace::Subject | VarSpace::Shared => Dimension::Subject,
            VarSpace::Object => Dimension::Object,
            VarSpace::Predicate => Dimension::Predicate,
        }
    }
}

/// The mask domain of one semi-join / clustered-semi-join over a variable:
/// determined by the *positions taking part in the operation*, not by the
/// variable globally. An S-S join ranges over the full subject dimension,
/// O-O over the full object dimension; a mixed S/O join can only match
/// inside the shared `Vso` prefix (Appendix D), and that is exactly where
/// truncating the masks is sound — a dimension-exclusive ID can never
/// equal a value from the other dimension.
pub fn op_space_len(dims: &CubeDims, positions: impl IntoIterator<Item = Dimension>) -> u32 {
    let (mut any_s, mut any_o, mut any_p) = (false, false, false);
    for d in positions {
        match d {
            Dimension::Subject => any_s = true,
            Dimension::Object => any_o = true,
            Dimension::Predicate => any_p = true,
        }
    }
    if any_p {
        dims.n_predicates
    } else if any_s && any_o {
        dims.n_shared
    } else if any_o {
        dims.n_objects
    } else {
        dims.n_subjects
    }
}

/// Per-query variable table: name ↔ id ↔ space.
#[derive(Debug, Clone, Default)]
pub struct VarTable {
    names: Vec<String>,
    index: HashMap<String, VarId>,
    spaces: Vec<VarSpace>,
}

impl VarTable {
    /// Builds the table from the TPs of a query, assigning spaces from the
    /// union of positions each variable occurs in.
    ///
    /// Rejects variables used in the predicate position *and* an S/O
    /// position — such joins cross incompatible ID spaces (the paper does
    /// not consider P-dimension joins).
    pub fn from_tps(tps: &[TriplePattern]) -> Result<VarTable, LbrError> {
        #[derive(Default, Clone, Copy)]
        struct Use {
            s: bool,
            p: bool,
            o: bool,
        }
        let mut names: Vec<String> = Vec::new();
        let mut index: HashMap<String, VarId> = HashMap::new();
        let mut uses: Vec<Use> = Vec::new();
        for tp in tps {
            for (pos, term) in [(0u8, &tp.s), (1, &tp.p), (2, &tp.o)] {
                if let Some(v) = term.as_var() {
                    let id = *index.entry(v.to_string()).or_insert_with(|| {
                        names.push(v.to_string());
                        uses.push(Use::default());
                        names.len() - 1
                    });
                    match pos {
                        0 => uses[id].s = true,
                        1 => uses[id].p = true,
                        _ => uses[id].o = true,
                    }
                }
            }
        }
        let mut spaces = Vec::with_capacity(names.len());
        for (i, u) in uses.iter().enumerate() {
            let space = match (u.s, u.p, u.o) {
                (_, true, false) if !u.s => VarSpace::Predicate,
                (true, false, false) => VarSpace::Subject,
                (false, false, true) => VarSpace::Object,
                (true, false, true) => VarSpace::Shared,
                _ => {
                    return Err(LbrError::Unsupported(format!(
                        "variable ?{} joins the predicate dimension with S/O dimensions",
                        names[i]
                    )));
                }
            };
            spaces.push(space);
        }
        Ok(VarTable {
            names,
            index,
            spaces,
        })
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the query has no variables.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Id of a variable name.
    pub fn id(&self, name: &str) -> Option<VarId> {
        self.index.get(name).copied()
    }

    /// Name of a variable id.
    pub fn name(&self, id: VarId) -> &str {
        &self.names[id]
    }

    /// Binding space of a variable.
    pub fn space(&self, id: VarId) -> VarSpace {
        self.spaces[id]
    }

    /// All names in id order.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

/// One bound value: an ID plus the space it decodes in.
///
/// Bindings taken from an S or O position whose ID falls inside the shared
/// `Vso` prefix are normalized to [`VarSpace::Shared`], so equal terms
/// compare equal regardless of which dimension produced them; IDs above the
/// prefix keep their producing dimension (an object-only term can bind a
/// variable whose OPTIONAL-side subject lookup then correctly fails).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Binding {
    /// Dense ID within `space`.
    pub id: u32,
    /// The space `id` decodes in (never `Shared` unless inside the prefix).
    pub space: BindingSpace,
}

/// Decode space of a [`Binding`] (a subset of [`VarSpace`] ordering-wise).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BindingSpace {
    /// Shared S-O prefix (`id < n_shared`).
    Shared,
    /// Subject dimension, above the shared prefix.
    Subject,
    /// Object dimension, above the shared prefix.
    Object,
    /// Predicate dimension.
    Predicate,
}

impl Binding {
    /// Creates a binding from a position dimension, normalizing prefix IDs
    /// to `Shared`.
    pub fn new(id: u32, dim: Dimension, n_shared: u32) -> Binding {
        let space = match dim {
            Dimension::Predicate => BindingSpace::Predicate,
            Dimension::Subject if id < n_shared => BindingSpace::Shared,
            Dimension::Object if id < n_shared => BindingSpace::Shared,
            Dimension::Subject => BindingSpace::Subject,
            Dimension::Object => BindingSpace::Object,
        };
        Binding { id, space }
    }

    /// Can this binding's value be looked up in a position of dimension
    /// `dim`? (`Shared` probes both S and O; dimension-exclusive IDs probe
    /// only their own dimension.)
    pub fn probes(&self, dim: Dimension) -> bool {
        match self.space {
            BindingSpace::Shared => matches!(dim, Dimension::Subject | Dimension::Object),
            BindingSpace::Subject => dim == Dimension::Subject,
            BindingSpace::Object => dim == Dimension::Object,
            BindingSpace::Predicate => dim == Dimension::Predicate,
        }
    }

    /// The dictionary dimension to decode through.
    pub fn decode_dim(&self) -> Dimension {
        match self.space {
            BindingSpace::Shared | BindingSpace::Subject => Dimension::Subject,
            BindingSpace::Object => Dimension::Object,
            BindingSpace::Predicate => Dimension::Predicate,
        }
    }

    /// Decodes to a term.
    pub fn decode<'d>(&self, dict: &'d Dictionary) -> &'d Term {
        dict.term(self.id, self.decode_dim())
            .expect("binding decodes in its space")
    }
}

/// The outcome of a query: projected variables, encoded rows, statistics.
///
/// Rows hold `Option<Binding>` cells (`None` = NULL produced by an
/// unmatched OPTIONAL); [`QueryOutput::decode`] resolves them to terms.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// Projected variable names, in projection order.
    pub vars: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Option<Binding>>>,
    /// Execution statistics (Tables 6.2–6.4 columns).
    pub stats: QueryStats,
}

impl QueryOutput {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The boolean answer of an `ASK` query: `Some(true)` / `Some(false)`
    /// for the zero-column output the modifier seam produces for ASK,
    /// `None` for ordinary SELECT outputs (which have columns).
    pub fn boolean(&self) -> Option<bool> {
        if self.vars.is_empty() {
            Some(!self.rows.is_empty())
        } else {
            None
        }
    }

    /// Number of rows containing at least one NULL.
    pub fn rows_with_nulls(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.iter().any(|b| b.is_none()))
            .count()
    }

    /// Decodes all rows to terms (`None` = NULL).
    pub fn decode(&self, dict: &Dictionary) -> Vec<Vec<Option<Term>>> {
        self.rows
            .iter()
            .map(|row| {
                row.iter()
                    .map(|b| b.map(|x| x.decode(dict).clone()))
                    .collect()
            })
            .collect()
    }

    /// Decoded rows rendered as tab-separated strings (NULL for nulls) —
    /// handy for examples and debugging.
    pub fn render(&self, dict: &Dictionary) -> Vec<String> {
        self.decode(dict)
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|t| t.map_or("NULL".to_string(), |x| x.to_string()))
                    .collect::<Vec<_>>()
                    .join("\t")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_sparql::algebra::TermPattern;

    fn tp(s: &str, p: &str, o: &str) -> TriplePattern {
        let f = |x: &str| {
            if let Some(v) = x.strip_prefix('?') {
                TermPattern::Var(v.to_string())
            } else {
                TermPattern::Const(Term::iri(x))
            }
        };
        TriplePattern::new(f(s), f(p), f(o))
    }

    #[test]
    fn spaces_follow_positions() {
        let tps = vec![
            tp("?a", "p", "?b"),
            tp("?b", "q", "?c"),
            tp("?d", "?pv", "x"),
        ];
        let vt = VarTable::from_tps(&tps).unwrap();
        assert_eq!(vt.len(), 5);
        assert_eq!(vt.space(vt.id("a").unwrap()), VarSpace::Subject);
        assert_eq!(vt.space(vt.id("b").unwrap()), VarSpace::Shared);
        assert_eq!(vt.space(vt.id("c").unwrap()), VarSpace::Object);
        assert_eq!(vt.space(vt.id("pv").unwrap()), VarSpace::Predicate);
        assert_eq!(vt.name(vt.id("d").unwrap()), "d");
    }

    #[test]
    fn predicate_so_mix_rejected() {
        let tps = vec![tp("?x", "p", "?y"), tp("?a", "?x", "?b")];
        assert!(matches!(
            VarTable::from_tps(&tps),
            Err(LbrError::Unsupported(_))
        ));
    }

    #[test]
    fn space_lengths() {
        let dims = CubeDims {
            n_subjects: 10,
            n_predicates: 3,
            n_objects: 8,
            n_shared: 5,
            n_triples: 0,
        };
        assert_eq!(VarSpace::Subject.len(&dims), 10);
        assert_eq!(VarSpace::Object.len(&dims), 8);
        assert_eq!(VarSpace::Shared.len(&dims), 5);
        assert_eq!(VarSpace::Predicate.len(&dims), 3);
        assert_eq!(VarSpace::Shared.decode_dim(), Dimension::Subject);
    }

    #[test]
    fn binding_normalization_and_probing() {
        // Inside the shared prefix: S and O bindings unify.
        let a = Binding::new(2, Dimension::Subject, 5);
        let b = Binding::new(2, Dimension::Object, 5);
        assert_eq!(a, b);
        assert_eq!(a.space, BindingSpace::Shared);
        assert!(a.probes(Dimension::Subject) && a.probes(Dimension::Object));
        assert!(!a.probes(Dimension::Predicate));
        // Above the prefix: dimension-exclusive.
        let s = Binding::new(7, Dimension::Subject, 5);
        let o = Binding::new(7, Dimension::Object, 5);
        assert_ne!(s, o, "same raw id, different terms");
        assert!(s.probes(Dimension::Subject) && !s.probes(Dimension::Object));
        assert!(o.probes(Dimension::Object) && !o.probes(Dimension::Subject));
        // Predicates.
        let p = Binding::new(1, Dimension::Predicate, 5);
        assert_eq!(p.space, BindingSpace::Predicate);
        assert!(p.probes(Dimension::Predicate) && !p.probes(Dimension::Subject));
        assert_eq!(p.decode_dim(), Dimension::Predicate);
    }
}
