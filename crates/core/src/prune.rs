//! `prune_triples` (Algorithm 3.2): semi-joins and clustered-semi-joins
//! over the jvar orders, implemented with fold/unfold (Algorithms 5.2, 5.3).
//!
//! For each join variable `?j` in the pass order:
//!
//! 1. **semi-joins** `tpj ⋉?j tpi` for every master/slave TP pair sharing
//!    `?j` — the slave's triples are restricted to the master's bindings
//!    (never the other way round: a master row without a slave match must
//!    survive, that is what OPTIONAL means);
//! 2. **clustered-semi-join** over all TPs sharing `?j` within a supernode
//!    and its peers — inner-join restrictions flow in both directions.
//!
//! Acyclic well-designed queries come out *minimal* (Lemma 3.3); cyclic
//! queries are merely reduced and may need nullification/best-match later.
//!
//! All set algebra runs through the `lbr-bitmat` kernel layer with a
//! per-query [`PruneScratch`] pool: fold accumulators, intersection masks,
//! kernel scratch and the per-jvar TP work lists are reused across every
//! semi-join of both passes, so the steady-state inner loop of
//! `prune_one_jvar` performs **no heap allocation** (buffers grow to a
//! high-water mark on the first jvar and circulate afterwards —
//! [`PruneStats`] makes that observable).

use crate::bindings::{op_space_len, VarTable};
use crate::init::TpState;
use crate::jvar_order::JvarOrder;
use lbr_bitmat::{BitVec, CubeDims, SetScratch};
use lbr_sparql::goj::Goj;
use lbr_sparql::gosn::{Gosn, TpId};

/// Outcome of the pruning phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneOutcome {
    /// Pruning completed.
    Done,
    /// A TP in an absolute-master supernode became empty — the query has no
    /// results (§5 "simple optimization").
    EmptyAbsoluteMaster,
}

/// Kernel/scratch counters of one pruning run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Compressed-set intersections performed (one per semi-join mask AND,
    /// one per clustered-semi-join member fold).
    pub intersections: u64,
    /// Scratch-pool acquisitions served without growing a buffer (kernel
    /// scratch reuses plus fold-accumulator reuses). After the first jvar
    /// pass this is the only counter that moves.
    pub scratch_reuses: u64,
}

/// The per-query scratch pool of the pruning phase: fold accumulators, the
/// intersection mask, row-kernel scratch and the per-jvar TP work lists.
/// Create one per query (or reuse across queries) and pass it to
/// [`prune_triples`]; every buffer is cleared, never shrunk, between uses.
#[derive(Debug, Default)]
pub struct PruneScratch {
    /// Intersection accumulator (the β mask of Algorithms 5.2/5.3).
    beta: BitVec,
    /// Per-TP fold target ANDed into `beta`.
    fold: BitVec,
    /// Row-kernel scratch for the unfolds.
    set: SetScratch,
    /// TPs holding the current jvar.
    holders: Vec<TpId>,
    /// `holders` sorted outermost-first for the semi-join sweep.
    by_depth: Vec<TpId>,
    /// Peer groups already clustered this jvar.
    groups_done: Vec<usize>,
    /// Members of the current clustered-semi-join.
    members: Vec<TpId>,
    /// Counters accumulated across [`prune_triples`] calls.
    stats: PruneStats,
}

impl PruneScratch {
    /// A fresh, empty pool.
    pub fn new() -> PruneScratch {
        PruneScratch::default()
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> PruneStats {
        PruneStats {
            scratch_reuses: self.stats.scratch_reuses + self.set.reuses(),
            ..self.stats
        }
    }

    /// Records a fold-accumulator reset: a reuse when nothing grew.
    fn account(&mut self, grew: bool) {
        if !grew {
            self.stats.scratch_reuses += 1;
        }
    }
}
// lbr-lint: no_alloc — Algorithm 5.2 steady state: semi-joins and per-jvar
// pruning reuse PruneScratch masks only.

/// Algorithm 5.2: `semi-join(?j, tpj, tpi)` — prune the slave by the
/// master's bindings. All masks live in `scratch`; nothing is allocated in
/// the steady state.
pub fn semi_join(
    dims: &CubeDims,
    var: usize,
    slave: &mut TpState,
    master: &TpState,
    scratch: &mut PruneScratch,
) {
    let (Some(md), Some(sd)) = (master.dim_of(var), slave.dim_of(var)) else {
        return;
    };
    let space_len = op_space_len(dims, [md, sd]);
    let caps = (scratch.beta.word_capacity(), scratch.fold.word_capacity());
    if !master.fold_var_into(var, space_len, &mut scratch.beta) {
        return;
    }
    if !slave.fold_var_into(var, space_len, &mut scratch.fold) {
        return;
    }
    scratch.account(caps != (scratch.beta.word_capacity(), scratch.fold.word_capacity()));
    scratch.beta.and_assign(&scratch.fold);
    scratch.stats.intersections += 1;
    let PruneScratch { beta, set, .. } = scratch;
    slave.unfold_var_with(var, beta, set);
}

/// Algorithm 5.3: `clustered-semi-join(?j, {tp1..tpk})` — intersect all
/// members' bindings and unfold each with the intersection.
pub fn clustered_semi_join(
    dims: &CubeDims,
    var: usize,
    tps: &mut [TpState],
    members: &[TpId],
    scratch: &mut PruneScratch,
) {
    if members.len() < 2 {
        return;
    }
    let space_len = op_space_len(dims, members.iter().filter_map(|&m| tps[m].dim_of(var)));
    let caps = (scratch.beta.word_capacity(), scratch.fold.word_capacity());
    scratch.beta.reset_ones(space_len);
    let mut any = false;
    for &m in members {
        if tps[m].fold_var_into(var, space_len, &mut scratch.fold) {
            scratch.beta.and_assign(&scratch.fold);
            scratch.stats.intersections += 1;
            any = true;
        }
    }
    scratch.account(caps != (scratch.beta.word_capacity(), scratch.fold.word_capacity()));
    if !any {
        return;
    }
    let PruneScratch { beta, set, .. } = scratch;
    for &m in members {
        tps[m].unfold_var_with(var, beta, set);
    }
}

/// Algorithm 3.2 over both passes of the [`JvarOrder`]. `scratch` carries
/// every reusable buffer (and the [`PruneStats`] counters) across jvars,
/// passes and — if the caller keeps it — queries.
pub fn prune_triples(
    tps: &mut [TpState],
    gosn: &Gosn,
    goj: &Goj,
    vt: &VarTable,
    order: &JvarOrder,
    dims: &CubeDims,
    scratch: &mut PruneScratch,
) -> PruneOutcome {
    for (pass_id, pass) in [&order.bottom_up, &order.top_down].into_iter().enumerate() {
        let t_pass = std::time::Instant::now();
        for &var in pass.iter() {
            if prune_one_jvar(tps, gosn, goj, vt, var, dims, scratch)
                == PruneOutcome::EmptyAbsoluteMaster
            {
                return PruneOutcome::EmptyAbsoluteMaster;
            }
            if lbr_obs::trace_active() {
                record_jvar_cardinality(tps, var, pass_id, dims, scratch);
            }
        }
        lbr_obs::span_since(
            "prune_pass",
            t_pass,
            &[("pass", pass_id as u64), ("jvars", pass.len() as u64)],
        );
    }
    PruneOutcome::Done
}

/// Stamps a zero-duration `jvar` span carrying `?var`'s surviving
/// candidate cardinality (popcount of the first holder TP's fold) after
/// its prune step of pass `pass_id`. Only called while a trace is
/// collecting, so the steady-state serving path never folds for it.
fn record_jvar_cardinality(
    tps: &[TpState],
    var: usize,
    pass_id: usize,
    dims: &CubeDims,
    scratch: &mut PruneScratch,
) {
    for tp in tps {
        let Some(dim) = tp.dim_of(var) else {
            continue;
        };
        let space_len = op_space_len(dims, [dim]);
        if tp.fold_var_into(var, space_len, &mut scratch.fold) {
            lbr_obs::span_at(
                "jvar",
                std::time::Instant::now(),
                std::time::Duration::ZERO,
                &[
                    ("var", var as u64),
                    ("cand", u64::from(scratch.fold.count_ones())),
                    ("pass", pass_id as u64),
                ],
            );
            return;
        }
    }
}

/// One jvar step: master→slave semi-joins then per-peer-group
/// clustered-semi-joins (Alg 3.2 lines 2–8). The work lists live in
/// `scratch`; the loop body is allocation-free once the pool is warm.
fn prune_one_jvar(
    tps: &mut [TpState],
    gosn: &Gosn,
    goj: &Goj,
    vt: &VarTable,
    var: usize,
    dims: &CubeDims,
    scratch: &mut PruneScratch,
) -> PruneOutcome {
    let name = vt.name(var);
    let Some(node) = goj.node_of(name) else {
        return PruneOutcome::Done;
    };
    scratch.holders.clear();
    scratch
        .holders
        .extend((0..gosn.n_tps()).filter(|&tp| goj.jvars_of_tp(tp).contains(&node)));

    // Master/slave semi-joins; masters iterate outermost-first so their
    // restrictions cascade down the hierarchy in one sweep.
    scratch.by_depth.clear();
    scratch.by_depth.extend_from_slice(&scratch.holders);
    scratch
        .by_depth
        .sort_by_key(|&tp| gosn.masters_of(gosn.sn_of_tp(tp)).len());
    for i in 0..scratch.by_depth.len() {
        let tp_i = scratch.by_depth[i];
        for j in 0..scratch.holders.len() {
            let tp_j = scratch.holders[j];
            if gosn.tp_is_master_of(tp_i, tp_j) {
                let (master, slave) = disjoint_pair(tps, tp_i, tp_j);
                semi_join(dims, var, slave, master, scratch);
            }
        }
    }

    // Clustered-semi-joins, one per peer group containing ?j.
    scratch.groups_done.clear();
    for i in 0..scratch.holders.len() {
        let tp = scratch.holders[i];
        let sn = gosn.sn_of_tp(tp);
        let peer_sns = gosn.peers_of(sn);
        let group_key = *peer_sns.first().unwrap();
        if scratch.groups_done.contains(&group_key) {
            continue;
        }
        scratch.groups_done.push(group_key);
        scratch.members.clear();
        scratch.members.extend(
            scratch
                .holders
                .iter()
                .copied()
                .filter(|&t| peer_sns.contains(&gosn.sn_of_tp(t))),
        );
        let mut members = std::mem::take(&mut scratch.members);
        clustered_semi_join(dims, var, tps, &members, scratch);
        members.clear();
        scratch.members = members;
    }

    if crate::init::absolute_master_empty(gosn, tps) {
        PruneOutcome::EmptyAbsoluteMaster
    } else {
        PruneOutcome::Done
    }
}
// lbr-lint: end

/// The operations [`prune_triples`] will issue over both jvar passes,
/// statically enumerable from the plan alone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlannedPruneOps {
    /// Master→slave semi-joins.
    pub semi_joins: usize,
    /// Clustered-semi-joins (one per peer group with ≥ 2 members).
    pub clustered_groups: usize,
    /// Member folds across all clustered-semi-joins (each is one
    /// intersection into the shared β mask).
    pub clustered_folds: usize,
}

/// Statically enumerates the prune operations: **the same holder and
/// peer-group sweep as [`prune_one_jvar`]** — keep the two in lock-step
/// (the `planned_ops_match_runtime_intersections` test ties them
/// together: on data where no fold is empty,
/// `semi_joins + clustered_folds` equals the runtime
/// [`PruneStats::intersections`]). Used by `explain` to render the prune
/// plan.
pub fn planned_prune_ops(
    gosn: &Gosn,
    goj: &Goj,
    vt: &VarTable,
    order: &JvarOrder,
) -> PlannedPruneOps {
    let mut ops = PlannedPruneOps::default();
    for pass in [&order.bottom_up, &order.top_down] {
        for &var in pass.iter() {
            let Some(node) = goj.node_of(vt.name(var)) else {
                continue;
            };
            let holders: Vec<TpId> = (0..gosn.n_tps())
                .filter(|&tp| goj.jvars_of_tp(tp).contains(&node))
                .collect();
            for &tp_i in &holders {
                for &tp_j in &holders {
                    if gosn.tp_is_master_of(tp_i, tp_j) {
                        ops.semi_joins += 1;
                    }
                }
            }
            let mut groups_done: Vec<usize> = Vec::new();
            for &tp in &holders {
                let peer_sns = gosn.peers_of(gosn.sn_of_tp(tp));
                let group_key = *peer_sns.first().unwrap();
                if groups_done.contains(&group_key) {
                    continue;
                }
                groups_done.push(group_key);
                let members = holders
                    .iter()
                    .filter(|&&t| peer_sns.contains(&gosn.sn_of_tp(t)))
                    .count();
                if members >= 2 {
                    ops.clustered_groups += 1;
                    ops.clustered_folds += members;
                }
            }
        }
    }
    ops
}

/// Mutable access to a (master, slave) pair of distinct TPs.
fn disjoint_pair(tps: &mut [TpState], master: TpId, slave: TpId) -> (&TpState, &mut TpState) {
    debug_assert_ne!(master, slave);
    if master < slave {
        let (a, b) = tps.split_at_mut(slave);
        (&a[master], &mut b[0])
    } else {
        let (a, b) = tps.split_at_mut(master);
        (&b[0], &mut a[slave])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bindings::VarTable;
    use crate::init::init;
    use crate::jvar_order::get_jvar_order;
    use crate::selectivity::estimate_all;
    use lbr_bitmat::{BitMatStore, Catalog as _};
    use lbr_rdf::{Graph, Term, Triple};
    use lbr_sparql::classify::analyze;
    use lbr_sparql::parse_query;

    fn graph() -> lbr_rdf::EncodedGraph {
        let t = |s: &str, p: &str, o: &str| Triple::new(Term::iri(s), Term::iri(p), Term::iri(o));
        Graph::from_triples(vec![
            t("Julia", "actedIn", "Seinfeld"),
            t("Julia", "actedIn", "Veep"),
            t("Julia", "actedIn", "NewAdvOldChristine"),
            t("Julia", "actedIn", "CurbYourEnthu"),
            t("CurbYourEnthu", "location", "LosAngeles"),
            t("Larry", "actedIn", "CurbYourEnthu"),
            t("Jerry", "hasFriend", "Julia"),
            t("Jerry", "hasFriend", "Larry"),
            t("Seinfeld", "location", "NewYorkCity"),
            t("Veep", "location", "D.C."),
            t("NewAdvOldChristine", "location", "Jersey"),
        ])
        .encode()
    }

    /// Example-1 of §3.1 end-to-end at the pruning level: tp1 keeps both
    /// friends, tp2 is reduced to the single (Julia, Seinfeld) triple, tp3
    /// keeps Seinfeld.
    #[test]
    fn example_1_minimality() {
        let g = graph();
        let store = BitMatStore::build(&g);
        let q = parse_query(
            "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?friend .
               OPTIONAL { ?friend :actedIn ?sitcom . ?sitcom :location :NewYorkCity . } }",
        )
        .unwrap();
        let a = analyze(&q.pattern).unwrap();
        let vt = VarTable::from_tps(a.gosn.tps()).unwrap();
        let est = estimate_all(a.gosn.tps(), &g.dict, &store);
        let jorder = get_jvar_order(&a.gosn, &a.goj, &vt, &est);
        let mut out = init(&a.gosn, &vt, &jorder, &est, &g.dict, &store).unwrap();
        let outcome = prune_triples(
            &mut out.tps,
            &a.gosn,
            &a.goj,
            &vt,
            &jorder,
            &store.dims(),
            &mut PruneScratch::new(),
        );
        assert_eq!(outcome, PruneOutcome::Done);
        assert_eq!(
            out.tps[0].count(),
            2,
            "master keeps both friends (Larry → NULL row)"
        );
        assert_eq!(out.tps[1].count(), 1, "only (Julia, Seinfeld) remains");
        assert_eq!(out.tps[2].count(), 1);
    }

    /// The master must never be pruned by its slave.
    #[test]
    fn master_not_pruned_by_slave() {
        let g = graph();
        let store = BitMatStore::build(&g);
        // ?sitcom's location list would shrink the master if this were an
        // inner join; with OPTIONAL every actedIn triple must survive in
        // the master.
        let q = parse_query(
            "PREFIX : <> SELECT * WHERE { ?f :actedIn ?sitcom .
               OPTIONAL { ?sitcom :location :NewYorkCity . } }",
        )
        .unwrap();
        let a = analyze(&q.pattern).unwrap();
        let vt = VarTable::from_tps(a.gosn.tps()).unwrap();
        let est = estimate_all(a.gosn.tps(), &g.dict, &store);
        let jorder = get_jvar_order(&a.gosn, &a.goj, &vt, &est);
        let mut out = init(&a.gosn, &vt, &jorder, &est, &g.dict, &store).unwrap();
        prune_triples(
            &mut out.tps,
            &a.gosn,
            &a.goj,
            &vt,
            &jorder,
            &store.dims(),
            &mut PruneScratch::new(),
        );
        assert_eq!(out.tps[0].count(), 5, "all actedIn triples survive");
        assert_eq!(
            out.tps[1].count(),
            1,
            "slave restricted to master's sitcoms ∩ NYC"
        );
    }

    /// Inner-join peers prune each other (both directions).
    #[test]
    fn peers_prune_bidirectionally() {
        let g = graph();
        let store = BitMatStore::build(&g);
        let q = parse_query(
            "PREFIX : <> SELECT * WHERE { ?f :actedIn ?sitcom . ?sitcom :location :NewYorkCity . }",
        )
        .unwrap();
        let a = analyze(&q.pattern).unwrap();
        let vt = VarTable::from_tps(a.gosn.tps()).unwrap();
        let est = estimate_all(a.gosn.tps(), &g.dict, &store);
        let jorder = get_jvar_order(&a.gosn, &a.goj, &vt, &est);
        let mut out = init(&a.gosn, &vt, &jorder, &est, &g.dict, &store).unwrap();
        prune_triples(
            &mut out.tps,
            &a.gosn,
            &a.goj,
            &vt,
            &jorder,
            &store.dims(),
            &mut PruneScratch::new(),
        );
        assert_eq!(out.tps[0].count(), 1, "only Julia–Seinfeld joins NYC");
        assert_eq!(out.tps[1].count(), 1);
    }

    /// The static plan and the runtime sweep must stay in lock-step: on
    /// data where no fold comes up empty, every planned operation runs
    /// exactly once, so `semi_joins + clustered_folds` equals the
    /// [`PruneStats::intersections`] counter. A change to either sweep
    /// that is not mirrored in the other trips this.
    #[test]
    fn planned_ops_match_runtime_intersections() {
        let g = graph();
        let store = BitMatStore::build(&g);
        for query in [
            "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?friend .
               OPTIONAL { ?friend :actedIn ?sitcom . ?sitcom :location :NewYorkCity . } }",
            "PREFIX : <> SELECT * WHERE { ?f :actedIn ?sitcom . ?sitcom :location ?w . }",
            "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?friend .
               OPTIONAL { ?friend :actedIn ?sitcom . OPTIONAL { ?sitcom :location ?loc . } } }",
        ] {
            let q = parse_query(query).unwrap();
            let a = analyze(&q.pattern).unwrap();
            let vt = VarTable::from_tps(a.gosn.tps()).unwrap();
            let est = estimate_all(a.gosn.tps(), &g.dict, &store);
            let jorder = get_jvar_order(&a.gosn, &a.goj, &vt, &est);
            let mut out = init(&a.gosn, &vt, &jorder, &est, &g.dict, &store).unwrap();
            let mut scratch = PruneScratch::new();
            let outcome = prune_triples(
                &mut out.tps,
                &a.gosn,
                &a.goj,
                &vt,
                &jorder,
                &store.dims(),
                &mut scratch,
            );
            assert_eq!(outcome, PruneOutcome::Done);
            let planned = planned_prune_ops(&a.gosn, &a.goj, &vt, &jorder);
            assert_eq!(
                scratch.stats().intersections as usize,
                planned.semi_joins + planned.clustered_folds,
                "plan/runtime sweep diverged on: {query}"
            );
        }
    }

    /// Early abort: an absolute-master TP emptied by pruning.
    #[test]
    fn empty_absolute_master_detected() {
        let g = graph();
        let store = BitMatStore::build(&g);
        // Larry acted only in CurbYourEnthu, which is in LosAngeles; the
        // peer join on ?s empties the second TP.
        let q = parse_query(
            "PREFIX : <> SELECT * WHERE { :Larry :actedIn ?s . ?s :location :NewYorkCity . }",
        )
        .unwrap();
        let a = analyze(&q.pattern).unwrap();
        let vt = VarTable::from_tps(a.gosn.tps()).unwrap();
        let est = estimate_all(a.gosn.tps(), &g.dict, &store);
        let jorder = get_jvar_order(&a.gosn, &a.goj, &vt, &est);
        let mut out = init(&a.gosn, &vt, &jorder, &est, &g.dict, &store).unwrap();
        // Active pruning already empties it at init; prune_triples must
        // report the abort either way.
        let outcome = prune_triples(
            &mut out.tps,
            &a.gosn,
            &a.goj,
            &vt,
            &jorder,
            &store.dims(),
            &mut PruneScratch::new(),
        );
        assert_eq!(outcome, PruneOutcome::EmptyAbsoluteMaster);
    }
}
