//! `prune_triples` (Algorithm 3.2): semi-joins and clustered-semi-joins
//! over the jvar orders, implemented with fold/unfold (Algorithms 5.2, 5.3).
//!
//! For each join variable `?j` in the pass order:
//!
//! 1. **semi-joins** `tpj ⋉?j tpi` for every master/slave TP pair sharing
//!    `?j` — the slave's triples are restricted to the master's bindings
//!    (never the other way round: a master row without a slave match must
//!    survive, that is what OPTIONAL means);
//! 2. **clustered-semi-join** over all TPs sharing `?j` within a supernode
//!    and its peers — inner-join restrictions flow in both directions.
//!
//! Acyclic well-designed queries come out *minimal* (Lemma 3.3); cyclic
//! queries are merely reduced and may need nullification/best-match later.

use crate::bindings::{op_space_len, VarTable};
use crate::init::TpState;
use crate::jvar_order::JvarOrder;
use lbr_bitmat::{BitVec, CubeDims};
use lbr_sparql::goj::Goj;
use lbr_sparql::gosn::{Gosn, TpId};

/// Outcome of the pruning phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneOutcome {
    /// Pruning completed.
    Done,
    /// A TP in an absolute-master supernode became empty — the query has no
    /// results (§5 "simple optimization").
    EmptyAbsoluteMaster,
}

/// Algorithm 5.2: `semi-join(?j, tpj, tpi)` — prune the slave by the
/// master's bindings.
pub fn semi_join(dims: &CubeDims, var: usize, slave: &mut TpState, master: &TpState) {
    let (Some(md), Some(sd)) = (master.dim_of(var), slave.dim_of(var)) else {
        return;
    };
    let space_len = op_space_len(dims, [md, sd]);
    let (Some(m), Some(s)) = (
        master.fold_var(var, space_len),
        slave.fold_var(var, space_len),
    ) else {
        return;
    };
    let mut beta = m;
    beta.and_assign(&s);
    slave.unfold_var(var, &beta);
}

/// Algorithm 5.3: `clustered-semi-join(?j, {tp1..tpk})` — intersect all
/// members' bindings and unfold each with the intersection.
pub fn clustered_semi_join(dims: &CubeDims, var: usize, tps: &mut [TpState], members: &[TpId]) {
    if members.len() < 2 {
        return;
    }
    let space_len = op_space_len(dims, members.iter().filter_map(|&m| tps[m].dim_of(var)));
    let mut beta = BitVec::ones(space_len);
    let mut any = false;
    for &m in members {
        if let Some(f) = tps[m].fold_var(var, space_len) {
            beta.and_assign(&f);
            any = true;
        }
    }
    if !any {
        return;
    }
    for &m in members {
        tps[m].unfold_var(var, &beta);
    }
}

/// Algorithm 3.2 over both passes of the [`JvarOrder`].
pub fn prune_triples(
    tps: &mut [TpState],
    gosn: &Gosn,
    goj: &Goj,
    vt: &VarTable,
    order: &JvarOrder,
    dims: &CubeDims,
) -> PruneOutcome {
    for pass in [&order.bottom_up, &order.top_down] {
        for &var in pass.iter() {
            if prune_one_jvar(tps, gosn, goj, vt, var, dims) == PruneOutcome::EmptyAbsoluteMaster {
                return PruneOutcome::EmptyAbsoluteMaster;
            }
        }
    }
    PruneOutcome::Done
}

/// One jvar step: master→slave semi-joins then per-peer-group
/// clustered-semi-joins (Alg 3.2 lines 2–8).
fn prune_one_jvar(
    tps: &mut [TpState],
    gosn: &Gosn,
    goj: &Goj,
    vt: &VarTable,
    var: usize,
    dims: &CubeDims,
) -> PruneOutcome {
    let name = vt.name(var);
    let Some(node) = goj.node_of(name) else {
        return PruneOutcome::Done;
    };
    let holders: Vec<TpId> = (0..gosn.n_tps())
        .filter(|&tp| goj.jvars_of_tp(tp).contains(&node))
        .collect();

    // Master/slave semi-joins; masters iterate outermost-first so their
    // restrictions cascade down the hierarchy in one sweep.
    let mut by_depth = holders.clone();
    by_depth.sort_by_key(|&tp| gosn.masters_of(gosn.sn_of_tp(tp)).len());
    for &tp_i in &by_depth {
        for &tp_j in &holders {
            if gosn.tp_is_master_of(tp_i, tp_j) {
                let (master, slave) = disjoint_pair(tps, tp_i, tp_j);
                semi_join(dims, var, slave, master);
            }
        }
    }

    // Clustered-semi-joins, one per peer group containing ?j.
    let mut groups_done: Vec<usize> = Vec::new();
    for &tp in &holders {
        let sn = gosn.sn_of_tp(tp);
        let peer_sns = gosn.peers_of(sn);
        let group_key = *peer_sns.first().unwrap();
        if groups_done.contains(&group_key) {
            continue;
        }
        groups_done.push(group_key);
        let members: Vec<TpId> = holders
            .iter()
            .copied()
            .filter(|&t| peer_sns.contains(&gosn.sn_of_tp(t)))
            .collect();
        clustered_semi_join(dims, var, tps, &members);
    }

    if crate::init::absolute_master_empty(gosn, tps) {
        PruneOutcome::EmptyAbsoluteMaster
    } else {
        PruneOutcome::Done
    }
}

/// Mutable access to a (master, slave) pair of distinct TPs.
fn disjoint_pair(tps: &mut [TpState], master: TpId, slave: TpId) -> (&TpState, &mut TpState) {
    debug_assert_ne!(master, slave);
    if master < slave {
        let (a, b) = tps.split_at_mut(slave);
        (&a[master], &mut b[0])
    } else {
        let (a, b) = tps.split_at_mut(master);
        (&b[0], &mut a[slave])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bindings::VarTable;
    use crate::init::init;
    use crate::jvar_order::get_jvar_order;
    use crate::selectivity::estimate_all;
    use lbr_bitmat::{BitMatStore, Catalog as _};
    use lbr_rdf::{Graph, Term, Triple};
    use lbr_sparql::classify::analyze;
    use lbr_sparql::parse_query;

    fn graph() -> lbr_rdf::EncodedGraph {
        let t = |s: &str, p: &str, o: &str| Triple::new(Term::iri(s), Term::iri(p), Term::iri(o));
        Graph::from_triples(vec![
            t("Julia", "actedIn", "Seinfeld"),
            t("Julia", "actedIn", "Veep"),
            t("Julia", "actedIn", "NewAdvOldChristine"),
            t("Julia", "actedIn", "CurbYourEnthu"),
            t("CurbYourEnthu", "location", "LosAngeles"),
            t("Larry", "actedIn", "CurbYourEnthu"),
            t("Jerry", "hasFriend", "Julia"),
            t("Jerry", "hasFriend", "Larry"),
            t("Seinfeld", "location", "NewYorkCity"),
            t("Veep", "location", "D.C."),
            t("NewAdvOldChristine", "location", "Jersey"),
        ])
        .encode()
    }

    /// Example-1 of §3.1 end-to-end at the pruning level: tp1 keeps both
    /// friends, tp2 is reduced to the single (Julia, Seinfeld) triple, tp3
    /// keeps Seinfeld.
    #[test]
    fn example_1_minimality() {
        let g = graph();
        let store = BitMatStore::build(&g);
        let q = parse_query(
            "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?friend .
               OPTIONAL { ?friend :actedIn ?sitcom . ?sitcom :location :NewYorkCity . } }",
        )
        .unwrap();
        let a = analyze(&q.pattern).unwrap();
        let vt = VarTable::from_tps(a.gosn.tps()).unwrap();
        let est = estimate_all(a.gosn.tps(), &g.dict, &store);
        let jorder = get_jvar_order(&a.gosn, &a.goj, &vt, &est);
        let mut out = init(&a.gosn, &vt, &jorder, &est, &g.dict, &store).unwrap();
        let outcome = prune_triples(&mut out.tps, &a.gosn, &a.goj, &vt, &jorder, &store.dims());
        assert_eq!(outcome, PruneOutcome::Done);
        assert_eq!(
            out.tps[0].count(),
            2,
            "master keeps both friends (Larry → NULL row)"
        );
        assert_eq!(out.tps[1].count(), 1, "only (Julia, Seinfeld) remains");
        assert_eq!(out.tps[2].count(), 1);
    }

    /// The master must never be pruned by its slave.
    #[test]
    fn master_not_pruned_by_slave() {
        let g = graph();
        let store = BitMatStore::build(&g);
        // ?sitcom's location list would shrink the master if this were an
        // inner join; with OPTIONAL every actedIn triple must survive in
        // the master.
        let q = parse_query(
            "PREFIX : <> SELECT * WHERE { ?f :actedIn ?sitcom .
               OPTIONAL { ?sitcom :location :NewYorkCity . } }",
        )
        .unwrap();
        let a = analyze(&q.pattern).unwrap();
        let vt = VarTable::from_tps(a.gosn.tps()).unwrap();
        let est = estimate_all(a.gosn.tps(), &g.dict, &store);
        let jorder = get_jvar_order(&a.gosn, &a.goj, &vt, &est);
        let mut out = init(&a.gosn, &vt, &jorder, &est, &g.dict, &store).unwrap();
        prune_triples(&mut out.tps, &a.gosn, &a.goj, &vt, &jorder, &store.dims());
        assert_eq!(out.tps[0].count(), 5, "all actedIn triples survive");
        assert_eq!(
            out.tps[1].count(),
            1,
            "slave restricted to master's sitcoms ∩ NYC"
        );
    }

    /// Inner-join peers prune each other (both directions).
    #[test]
    fn peers_prune_bidirectionally() {
        let g = graph();
        let store = BitMatStore::build(&g);
        let q = parse_query(
            "PREFIX : <> SELECT * WHERE { ?f :actedIn ?sitcom . ?sitcom :location :NewYorkCity . }",
        )
        .unwrap();
        let a = analyze(&q.pattern).unwrap();
        let vt = VarTable::from_tps(a.gosn.tps()).unwrap();
        let est = estimate_all(a.gosn.tps(), &g.dict, &store);
        let jorder = get_jvar_order(&a.gosn, &a.goj, &vt, &est);
        let mut out = init(&a.gosn, &vt, &jorder, &est, &g.dict, &store).unwrap();
        prune_triples(&mut out.tps, &a.gosn, &a.goj, &vt, &jorder, &store.dims());
        assert_eq!(out.tps[0].count(), 1, "only Julia–Seinfeld joins NYC");
        assert_eq!(out.tps[1].count(), 1);
    }

    /// Early abort: an absolute-master TP emptied by pruning.
    #[test]
    fn empty_absolute_master_detected() {
        let g = graph();
        let store = BitMatStore::build(&g);
        // Larry acted only in CurbYourEnthu, which is in LosAngeles; the
        // peer join on ?s empties the second TP.
        let q = parse_query(
            "PREFIX : <> SELECT * WHERE { :Larry :actedIn ?s . ?s :location :NewYorkCity . }",
        )
        .unwrap();
        let a = analyze(&q.pattern).unwrap();
        let vt = VarTable::from_tps(a.gosn.tps()).unwrap();
        let est = estimate_all(a.gosn.tps(), &g.dict, &store);
        let jorder = get_jvar_order(&a.gosn, &a.goj, &vt, &est);
        let mut out = init(&a.gosn, &vt, &jorder, &est, &g.dict, &store).unwrap();
        // Active pruning already empties it at init; prune_triples must
        // report the abort either way.
        let outcome = prune_triples(&mut out.tps, &a.gosn, &a.goj, &vt, &jorder, &store.dims());
        assert_eq!(outcome, PruneOutcome::EmptyAbsoluteMaster);
    }
}
