//! Selectivity estimation from BitMat metadata (no matrix loads).
//!
//! Appendix D: each BitMat stores its triple count and a condensed
//! non-empty row/column summary, "which helps us in quickly determining the
//! number of triples in each BitMat and its selectivity … while processing
//! the queries". A triple pattern is *highly selective* when few triples
//! match it (footnote 2).

use lbr_bitmat::Catalog;
use lbr_rdf::{Dictionary, Dimension};
use lbr_sparql::algebra::{TermPattern, TriplePattern};

fn const_id(dict: &Dictionary, t: &TermPattern, dim: Dimension) -> Option<Option<u32>> {
    match t {
        TermPattern::Var(_) => Some(None),
        TermPattern::Const(c) => dict.id(c, dim).map(Some),
    }
}

/// Estimated number of triples matching one TP, from metadata alone.
///
/// Exact for every supported pattern shape except `(s ?p o)` (upper bound:
/// the smaller of the subject's and the object's totals). Unknown constants
/// give 0 — the basis of the early-abort "simple optimization" of §5.
pub fn estimated_count(tp: &TriplePattern, dict: &Dictionary, catalog: &impl Catalog) -> u64 {
    let (Some(s), Some(p), Some(o)) = (
        const_id(dict, &tp.s, Dimension::Subject),
        const_id(dict, &tp.p, Dimension::Predicate),
        const_id(dict, &tp.o, Dimension::Object),
    ) else {
        return 0;
    };
    match (s, p, o) {
        // (s p o): membership, 0 or 1 — report 1 (checked at init).
        (Some(_), Some(_), Some(_)) => 1,
        // (?v p o): one P-S row.
        (None, Some(p), Some(o)) => catalog.count_ps_row(o, p),
        // (s p ?v): one P-O row.
        (Some(s), Some(p), None) => catalog.count_po_row(s, p),
        // (?a p ?b): the whole S-O BitMat of p.
        (None, Some(p), None) => catalog.count_so(p),
        // (s ?p ?o): the P-O BitMat of s.
        (Some(s), None, None) => catalog.count_po(s),
        // (?s ?p o): the P-S BitMat of o.
        (None, None, Some(o)) => catalog.count_ps(o),
        // (s ?p o): bounded by both totals.
        (Some(s), None, Some(o)) => catalog.count_po(s).min(catalog.count_ps(o)),
        // (?s ?p ?o): the full dataset.
        (None, None, None) => catalog.dims().n_triples,
    }
}

/// Per-TP estimates for a whole query.
pub fn estimate_all(tps: &[TriplePattern], dict: &Dictionary, catalog: &impl Catalog) -> Vec<u64> {
    tps.iter()
        .map(|tp| estimated_count(tp, dict, catalog))
        .collect()
}

/// Ranks a join variable: the count of the most selective TP containing it
/// (§3.2 — "?j1 is more selective than ?j2 if the most selective TP having
/// ?j1 has fewer triples …"). Lower = more selective.
pub fn jvar_rank(holders: &[usize], tp_estimates: &[u64]) -> u64 {
    holders
        .iter()
        .map(|&i| tp_estimates[i])
        .min()
        .unwrap_or(u64::MAX)
}

/// Convenience: the most selective TP estimate within a supernode.
pub fn sn_rank(tp_ids: &[usize], tp_estimates: &[u64]) -> u64 {
    tp_ids
        .iter()
        .map(|&i| tp_estimates[i])
        .min()
        .unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_bitmat::BitMatStore;
    use lbr_rdf::{Graph, Term, Triple};
    use lbr_sparql::algebra::TermPattern;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn pat(s: &str, p: &str, o: &str) -> TriplePattern {
        let f = |x: &str| {
            if let Some(v) = x.strip_prefix('?') {
                TermPattern::Var(v.to_string())
            } else {
                TermPattern::Const(Term::iri(x))
            }
        };
        TriplePattern::new(f(s), f(p), f(o))
    }

    #[test]
    fn estimates_match_data() {
        let g = Graph::from_triples(vec![
            t("a", "p", "x"),
            t("a", "p", "y"),
            t("b", "p", "x"),
            t("a", "q", "x"),
        ])
        .encode();
        let store = BitMatStore::build(&g);
        let d = &g.dict;
        assert_eq!(estimated_count(&pat("?s", "p", "?o"), d, &store), 3);
        assert_eq!(estimated_count(&pat("a", "p", "?o"), d, &store), 2);
        assert_eq!(estimated_count(&pat("?s", "p", "x"), d, &store), 2);
        assert_eq!(estimated_count(&pat("a", "?p", "?o"), d, &store), 3);
        assert_eq!(estimated_count(&pat("?s", "?p", "x"), d, &store), 3);
        assert_eq!(estimated_count(&pat("a", "?p", "x"), d, &store), 3); // min(3, 3) upper bound
        assert_eq!(estimated_count(&pat("a", "p", "x"), d, &store), 1);
        assert_eq!(estimated_count(&pat("?s", "?p", "?o"), d, &store), 4);
        // Unknown constants estimate to zero.
        assert_eq!(estimated_count(&pat("nope", "p", "?o"), d, &store), 0);
        assert_eq!(estimated_count(&pat("?s", "nope", "?o"), d, &store), 0);
    }

    #[test]
    fn jvar_ranking() {
        let est = vec![100, 5, 50];
        assert_eq!(jvar_rank(&[0, 2], &est), 50);
        assert_eq!(jvar_rank(&[0, 1, 2], &est), 5);
        assert_eq!(jvar_rank(&[], &est), u64::MAX);
        assert_eq!(sn_rank(&[0, 2], &est), 50);
    }
}
