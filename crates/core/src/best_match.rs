//! The best-match (minimum-union) operator: removes subsumed results.
//!
//! A row `r1` is subsumed by `r2` (`r1 ⊏ r2`) when every non-NULL binding
//! of `r1` equals the corresponding binding of `r2` and `r2` has strictly
//! more non-NULL bindings (§3.1). After nullification, subsumed rows also
//! arrive as exact duplicates; best-match is set-based (Rao et al.'s
//! minimum union), so duplicates collapse too.
//!
//! Implementation: rows are grouped by the values of the columns that are
//! non-NULL in *every* row (in LBR these are the absolute-master bindings,
//! which nullification never touches), then filtered pairwise inside each
//! group — groups are small in practice because they share all master
//! bindings.

use crate::bindings::Binding;
use std::collections::HashMap;

/// Removes subsumed rows (and exact duplicates) in place.
pub fn best_match(rows: &mut Vec<Vec<Option<Binding>>>) {
    if rows.len() <= 1 {
        rows.dedup();
        return;
    }
    let width = rows[0].len();
    // Columns bound in every row form the grouping key.
    let always: Vec<usize> = (0..width)
        .filter(|&i| rows.iter().all(|r| r[i].is_some()))
        .collect();

    let mut groups: HashMap<Vec<Binding>, Vec<usize>> = HashMap::new();
    for (idx, row) in rows.iter().enumerate() {
        let key: Vec<Binding> = always.iter().map(|&i| row[i].unwrap()).collect();
        groups.entry(key).or_default().push(idx);
    }

    let mut keep = vec![false; rows.len()];
    for idxs in groups.values() {
        // Most-bound rows first; a row is dropped if some kept row covers it.
        let mut order: Vec<usize> = idxs.clone();
        order.sort_by_key(|&i| {
            (
                std::cmp::Reverse(rows[i].iter().filter(|c| c.is_some()).count()),
                i,
            )
        });
        let mut kept_in_group: Vec<usize> = Vec::new();
        'cand: for &i in &order {
            for &k in &kept_in_group {
                if covered_by(&rows[i], &rows[k]) {
                    continue 'cand;
                }
            }
            kept_in_group.push(i);
            keep[i] = true;
        }
    }
    let mut idx = 0;
    rows.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
}

/// True when every binding of `r` is NULL or equals `k`'s binding —
/// i.e. `r ⊑ k` (equality included, which collapses duplicates).
fn covered_by(r: &[Option<Binding>], k: &[Option<Binding>]) -> bool {
    r.iter().zip(k).all(|(a, b)| match (a, b) {
        (None, _) => true,
        (Some(x), Some(y)) => x == y,
        (Some(_), None) => false,
    })
}

/// Reference implementation: O(n²) literal transcription of the
/// subsumption definition, used by property tests.
pub fn best_match_reference(rows: &[Vec<Option<Binding>>]) -> Vec<Vec<Option<Binding>>> {
    let nonnull = |r: &Vec<Option<Binding>>| r.iter().filter(|c| c.is_some()).count();
    let mut out: Vec<Vec<Option<Binding>>> = Vec::new();
    for (i, r) in rows.iter().enumerate() {
        let subsumed = rows.iter().enumerate().any(|(j, k)| {
            j != i && covered_by(r, k) && (nonnull(k) > nonnull(r) || (r == k && j < i))
        });
        if !subsumed && !out.contains(r) {
            out.push(r.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bindings::BindingSpace;

    fn b(id: u32) -> Option<Binding> {
        Some(Binding {
            id,
            space: BindingSpace::Shared,
        })
    }

    /// Figure 3.2, Res2 → Res3: the three nullified (Julia, NULL) rows are
    /// subsumed by (Julia, Seinfeld); (Larry, NULL) survives.
    #[test]
    fn figure_3_2_res2_to_res3() {
        // Columns: ?friend, ?sitcom. Julia=0, Larry=1, Seinfeld=10.
        let mut rows = vec![
            vec![b(0), b(10)],
            vec![b(0), None],
            vec![b(0), None],
            vec![b(0), None],
            vec![b(1), None],
        ];
        best_match(&mut rows);
        rows.sort();
        assert_eq!(rows, vec![vec![b(0), b(10)], vec![b(1), None]]);
    }

    #[test]
    fn incomparable_null_patterns_survive() {
        // (a, NULL, c) vs (a, b, NULL): neither subsumes the other.
        let mut rows = vec![vec![b(1), None, b(3)], vec![b(1), b(2), None]];
        best_match(&mut rows);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn duplicates_collapse() {
        let mut rows = vec![vec![b(1), b(2)], vec![b(1), b(2)], vec![b(1), b(2)]];
        best_match(&mut rows);
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn different_master_groups_do_not_interact() {
        let mut rows = vec![vec![b(1), None], vec![b(2), b(9)]];
        best_match(&mut rows);
        assert_eq!(
            rows.len(),
            2,
            "(1, NULL) is not subsumed by a different master"
        );
    }

    #[test]
    fn chain_subsumption() {
        // (a,b,c) ⊐ (a,b,NULL) ⊐ (a,NULL,NULL).
        let mut rows = vec![
            vec![b(1), None, None],
            vec![b(1), b(2), None],
            vec![b(1), b(2), b(3)],
        ];
        best_match(&mut rows);
        assert_eq!(rows, vec![vec![b(1), b(2), b(3)]]);
    }

    #[test]
    fn empty_and_singleton() {
        let mut rows: Vec<Vec<Option<Binding>>> = Vec::new();
        best_match(&mut rows);
        assert!(rows.is_empty());
        let mut rows = vec![vec![b(1)]];
        best_match(&mut rows);
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn agrees_with_reference_on_tricky_cases() {
        let cases: Vec<Vec<Vec<Option<Binding>>>> = vec![
            vec![
                vec![b(1), None, b(3)],
                vec![b(1), b(2), b(3)],
                vec![b(1), b(2), None],
                vec![b(1), None, None],
                vec![b(1), None, b(4)],
            ],
            vec![vec![None, None], vec![None, b(1)], vec![b(1), None]],
        ];
        for rows in cases {
            let mut fast = rows.clone();
            best_match(&mut fast);
            let mut slow = best_match_reference(&rows);
            fast.sort();
            slow.sort();
            assert_eq!(fast, slow);
        }
    }
}
