//! # lbr-core
//!
//! The **Left Bit Right** query processor (Atre, "Left Bit Right: For
//! SPARQL Join Queries with OPTIONAL Patterns", 2015): evaluation of nested
//! BGP + OPTIONAL (left-outer-join) queries over compressed BitMat indexes.
//!
//! The pipeline, mirroring Algorithm 5.1 of the paper:
//!
//! 1. **analyze** — build the GoSN and GoJ, classify the query (Fig 3.1)
//!    and decide whether nullification / best-match are required;
//! 2. **jvar order** — `get_jvar_order` (Alg 3.1): bottom-up and top-down
//!    traversal orders over the GoJ tree, or a greedy selectivity order for
//!    cyclic queries;
//! 3. **init** — load one BitMat (or one BitMat row) per triple pattern per
//!    the §5 loading rules, *actively pruning* each against the variable
//!    bindings of already-loaded masters and peers;
//! 4. **prune** — `prune_triples` (Alg 3.2): semi-joins between
//!    master/slave TPs and clustered-semi-joins among peers, implemented
//!    with `fold`/`unfold` on the compressed BitMats (Algs 5.2, 5.3);
//! 5. **multi-way pipelined join** (Alg 5.4) producing final rows without
//!    pairwise intermediate results, followed by nullification and
//!    best-match only when the classification demands them.
//!
//! UNION and FILTER are handled by the §5.2 rewrite to UNION normal form
//! plus init-time filter masks and the FaN (filter-and-nullification) hook;
//! Cartesian products fall back to evaluating ×-free components with LBR
//! and combining them pairwise (§5.2).
//!
//! Query forms (`SELECT [DISTINCT|REDUCED]` / `ASK`) and solution
//! modifiers (`ORDER BY` / `LIMIT` / `OFFSET`) are applied by the single
//! shared seam in [`modifiers`] — every engine's [`api::Engine::execute`]
//! routes raw rows through [`modifiers::finalize`], and the LBR engine
//! additionally pushes the [`modifiers::row_quota`] bound into the
//! multi-way join so ASK / plain-LIMIT queries stop enumerating seeds as
//! soon as enough rows exist.

#![forbid(unsafe_code)]

pub mod api;
pub mod best_match;
pub mod bindings;
pub mod engine;
pub mod error;
pub mod explain;
pub mod filter_eval;
pub mod init;
pub mod jvar_order;
pub mod modifiers;
pub mod multiway;
pub mod prune;
pub mod selectivity;
pub mod solutions;

pub use api::Engine;
pub use bindings::{Binding, BindingSpace, QueryOutput, VarSpace, VarTable};
pub use engine::{LbrEngine, LbrPlan};
pub use error::LbrError;
pub use explain::explain;
pub use jvar_order::JvarOrder;
pub use multiway::ExecStats;
pub use solutions::{Row, RowSchema, Solutions};

/// Per-query statistics matching the columns of Tables 6.2–6.4.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Time of the `init` phase (BitMat loading + active pruning).
    pub t_init: std::time::Duration,
    /// Time of `prune_triples`.
    pub t_prune: std::time::Duration,
    /// Time of the multi-way join (plus best-match when used).
    pub t_join: std::time::Duration,
    /// End-to-end time.
    pub t_total: std::time::Duration,
    /// Σ triples matching each TP before init/pruning ("#initial triples").
    pub initial_triples: u64,
    /// Σ triples left in the TP BitMats after `prune_triples`.
    pub triples_after_pruning: u64,
    /// Number of result rows.
    pub n_results: usize,
    /// Result rows with at least one NULL binding.
    pub n_results_with_nulls: usize,
    /// Whether nullification/best-match were required (Alg 5.1 `NB-reqd`).
    pub nb_required: bool,
    /// How many rows the nullification operator actually rewrote.
    pub nullification_fired: u64,
    /// Root-TP seeds the multi-way join enumerated. With a pushed-down
    /// LIMIT/ASK row quota this stays at the minimum needed (exactly, at
    /// `threads = 1`; boundedly more with N workers) instead of the full
    /// candidate count.
    pub join_seeds: u64,
    /// Compressed-set intersections `prune_triples` performed through the
    /// kernel layer (semi-join mask ANDs + clustered-semi-join folds).
    pub prune_intersections: u64,
    /// Scratch-pool activity: the prune phase counts operations served
    /// entirely from existing buffer capacity (true no-alloc reuses,
    /// capacity-checked), the join phase counts rows assembled in the
    /// per-worker reusable row/failure buffers (the buffer is reused per
    /// emit; the handful of first-use growths per worker are included so
    /// the sum stays identical at every thread count). The bench counting
    /// allocator is the ground truth for total allocation.
    pub scratch_reuses: u64,
    /// True when the empty-absolute-master shortcut aborted the query
    /// (§5 "simple optimization").
    pub aborted_empty: bool,
}

/// Monotone aggregation of [`QueryStats`] across many executions — what a
/// long-lived query service (the `lbr-server` worker pool, `lbr-cli
/// --repeat`) accumulates and surfaces in its `/stats` endpoint.
///
/// All counters only ever grow; snapshotting at any moment is sound.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsAggregate {
    /// Successfully executed queries.
    pub queries: u64,
    /// Queries that failed (parse or execution error).
    pub errors: u64,
    /// Σ result rows over all successful queries.
    pub rows: u64,
    /// Σ result rows carrying at least one NULL binding.
    pub rows_with_nulls: u64,
    /// Σ end-to-end execution time of successful queries.
    pub t_total: std::time::Duration,
    /// Σ multi-way-join (+ best-match) time.
    pub t_join: std::time::Duration,
    /// Σ root seeds the multi-way join enumerated.
    pub join_seeds: u64,
    /// Σ compressed-set intersections the prune phase performed.
    pub prune_intersections: u64,
    /// Σ scratch-buffer reuses (prune pools + join row buffers).
    pub scratch_reuses: u64,
    /// Queries whose classification required nullification/best-match.
    pub nb_required_queries: u64,
}

impl StatsAggregate {
    /// Folds one successful execution's stats in.
    pub fn record(&mut self, stats: &QueryStats) {
        self.queries += 1;
        self.rows += stats.n_results as u64;
        self.rows_with_nulls += stats.n_results_with_nulls as u64;
        self.t_total += stats.t_total;
        self.t_join += stats.t_join;
        self.join_seeds += stats.join_seeds;
        self.prune_intersections += stats.prune_intersections;
        self.scratch_reuses += stats.scratch_reuses;
        self.nb_required_queries += u64::from(stats.nb_required);
    }

    /// Counts one failed query.
    pub fn record_error(&mut self) {
        self.errors += 1;
    }

    /// Mean end-to-end time of the successful queries (zero when none ran).
    pub fn avg_total(&self) -> std::time::Duration {
        match u32::try_from(self.queries) {
            Ok(n) if n > 0 => self.t_total / n,
            _ => std::time::Duration::ZERO,
        }
    }
}
