//! The unified engine interface.
//!
//! Every executor in the workspace — the LBR engine and the three §6
//! baselines plus the reference oracle — implements [`Engine`], so
//! callers (CLI, benches, equivalence tests, the `lbr::Database` facade)
//! dispatch through one seam instead of string-matching on engine names.
//!
//! The trait is object-safe: planning hands back an opaque
//! [`std::any::Any`] box that [`Engine::execute_planned`] downcasts, which
//! lets engines with a real planning phase (LBR's parse → UNF rewrite →
//! analyze/classify → jvar-order pipeline) cache it across executions
//! while trivially-planned engines fall back to `execute`.
//!
//! Query forms and solution modifiers are applied **here**, in the
//! provided [`Engine::execute`] / [`Engine::execute_planned`] methods,
//! through the one shared seam [`crate::modifiers::finalize`]. Engines
//! implement only the *raw* evaluation ([`Engine::execute_raw`]): rows
//! over [`Query::exec_vars`], form- and modifier-agnostic — except that
//! an engine may soundly exploit the [`crate::modifiers::row_quota`]
//! bound to stop early (the LBR multi-way join does).

use crate::bindings::QueryOutput;
use crate::error::LbrError;
use crate::modifiers::finalize;
use crate::solutions::Solutions;
use lbr_rdf::Dictionary;
use lbr_sparql::algebra::Query;
use std::any::Any;

/// The default worker-thread count for engines with intra-query
/// parallelism (currently the LBR multi-way join's root partitioning):
/// the machine's available parallelism, or `1` when it cannot be
/// determined. `1` always means the exact serial code path.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A query executor over a BitMat catalog.
///
/// `execute_raw` is the one required evaluation method; the provided
/// `execute` / `execute_planned` wrap it with the shared modifier seam,
/// `solutions` streams, and `plan_query` / `execute_planned` support
/// prepared queries.
///
/// Engines are `Send + Sync` by contract: a serving layer (`lbr-server`'s
/// worker pool, the shared plan cache) fires queries at one engine — or at
/// engines borrowing one catalog — from many threads at once. Engines are
/// read-only over `&self`, so the bound is structural for all in-tree
/// executors (thin `&Catalog + &Dictionary` structs); an engine that wants
/// interior caching must make it thread-safe (`Mutex`/atomics).
pub trait Engine: Send + Sync {
    /// Stable engine name (what `--engine` accepts, e.g. `"lbr"`).
    fn name(&self) -> &'static str;

    /// The dictionary results decode through.
    fn dict(&self) -> &Dictionary;

    /// Evaluates the WHERE pattern to raw rows over [`Query::exec_vars`]
    /// — the projection plus any non-projected `ORDER BY` key — without
    /// applying the query form or the solution modifiers (those belong to
    /// the shared seam in [`Engine::execute`]). An engine **may** stop
    /// after [`crate::modifiers::row_quota`] rows; it must otherwise
    /// produce the full sequence.
    fn execute_raw(&self, query: &Query) -> Result<QueryOutput, LbrError>;

    /// Evaluates a query to a materialized [`QueryOutput`]: raw rows plus
    /// the one shared form/modifier seam ([`crate::modifiers::finalize`]).
    fn execute(&self, query: &Query) -> Result<QueryOutput, LbrError> {
        Ok(finalize(self.execute_raw(query)?, query, self.dict()))
    }

    /// Evaluates a query to a streaming [`Solutions`] iterator.
    fn solutions(&self, query: &Query) -> Result<Solutions<'_>, LbrError> {
        Ok(self.execute(query)?.into_solutions(self.dict()))
    }

    /// Renders the engine's plan for a query as human-readable text.
    fn explain(&self, query: &Query) -> Result<String, LbrError> {
        Ok(format!(
            "engine: {}\nquery: {query}\n(this engine has no planning phase to explain)",
            self.name()
        ))
    }

    /// EXPLAIN ANALYZE: executes the query and renders the plan annotated
    /// with actual per-stage timings and estimated-vs-actual
    /// cardinalities. Only the LBR engine collects execution spans;
    /// other engines report the feature as unsupported.
    fn explain_analyze(&self, query: &Query) -> Result<String, LbrError> {
        let _ = query;
        Err(LbrError::Unsupported(format!(
            "EXPLAIN ANALYZE is only available on the lbr engine (this is `{}`)",
            self.name()
        )))
    }

    /// Runs the engine's planning pipeline once, returning an opaque plan
    /// that [`Engine::execute_planned`] reuses. Engines without a
    /// planning phase return a unit plan. Plans are `Send + Sync` so a
    /// shared plan cache can hand one plan to concurrent executions.
    fn plan_query(&self, query: &Query) -> Result<Box<dyn Any + Send + Sync>, LbrError> {
        let _ = query;
        Ok(Box::new(()))
    }

    /// Raw execution with a plan from [`Engine::plan_query`]. Engines
    /// must fall back to plain `execute_raw` when the plan is not theirs,
    /// so a prepared query can be re-bound to another engine.
    fn execute_planned_raw(&self, query: &Query, plan: &dyn Any) -> Result<QueryOutput, LbrError> {
        let _ = plan;
        self.execute_raw(query)
    }

    /// Executes with a plan from [`Engine::plan_query`], applying the
    /// shared form/modifier seam to the raw planned execution.
    fn execute_planned(&self, query: &Query, plan: &dyn Any) -> Result<QueryOutput, LbrError> {
        Ok(finalize(
            self.execute_planned_raw(query, plan)?,
            query,
            self.dict(),
        ))
    }
}
