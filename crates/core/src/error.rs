//! Error type of the LBR engine.

use std::fmt;

/// Errors produced by query execution.
#[derive(Debug)]
pub enum LbrError {
    /// Error from the SPARQL front end.
    Sparql(lbr_sparql::SparqlError),
    /// Error from the BitMat catalog.
    BitMat(lbr_bitmat::BitMatError),
    /// A construct the engine does not support.
    Unsupported(String),
    /// A configured resource limit was exceeded (used by the benchmark
    /// harness to bound runaway baseline plans, like the paper's
    /// ">30 min" table entries).
    ResourceLimit(String),
    /// The request's execution deadline passed before evaluation
    /// finished. The serving layer maps this to HTTP `504`; the engine
    /// guarantees the join stopped enumerating seeds promptly after the
    /// deadline (see `EngineOptions::deadline`).
    DeadlineExceeded,
}

impl fmt::Display for LbrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LbrError::Sparql(e) => write!(f, "query error: {e}"),
            LbrError::BitMat(e) => write!(f, "index error: {e}"),
            LbrError::Unsupported(m) => write!(f, "unsupported: {m}"),
            LbrError::ResourceLimit(m) => write!(f, "resource limit exceeded: {m}"),
            LbrError::DeadlineExceeded => f.write_str("deadline exceeded: query timed out"),
        }
    }
}

impl std::error::Error for LbrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LbrError::Sparql(e) => Some(e),
            LbrError::BitMat(e) => Some(e),
            LbrError::Unsupported(_) | LbrError::ResourceLimit(_) | LbrError::DeadlineExceeded => {
                None
            }
        }
    }
}

impl From<lbr_sparql::SparqlError> for LbrError {
    fn from(e: lbr_sparql::SparqlError) -> Self {
        LbrError::Sparql(e)
    }
}

impl From<lbr_bitmat::BitMatError> for LbrError {
    fn from(e: lbr_bitmat::BitMatError) -> Self {
        LbrError::BitMat(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = LbrError::from(lbr_sparql::SparqlError::UnknownPrefix("x".into()));
        assert!(e.to_string().contains("x:"));
        assert!(e.source().is_some());
        let e = LbrError::Unsupported("predicate joins".into());
        assert!(e.to_string().contains("predicate joins"));
        assert!(e.source().is_none());
    }
}
