//! FILTER expression evaluation against decoded bindings.
//!
//! Semantics (a pragmatic subset of SPARQL's three-valued logic, §5.2):
//! comparisons involving an unbound/NULL variable evaluate to `false`
//! (SPARQL "error" collapsed to `false` before negation); `BOUND` tests
//! bindingness; numeric comparison is used when both operands parse as
//! integers, otherwise terms compare by lexical form (equality compares
//! whole terms).

use lbr_rdf::Term;
use lbr_sparql::algebra::Expr;
use std::cmp::Ordering;

/// Resolves a variable name to its current term binding (`None` = NULL or
/// unbound).
pub trait VarLookup {
    /// The binding of `name`, if any.
    fn term(&self, name: &str) -> Option<&Term>;
}

impl<F> VarLookup for F
where
    F: Fn(&str) -> Option<&'static Term>,
{
    fn term(&self, name: &str) -> Option<&Term> {
        self(name)
    }
}

/// A lookup over a slice of `(name, term)` pairs (used by tests and the
/// Cartesian fallback).
pub struct PairLookup<'a>(pub &'a [(&'a str, &'a Term)]);

impl VarLookup for PairLookup<'_> {
    fn term(&self, name: &str) -> Option<&Term> {
        self.0.iter().find(|(n, _)| *n == name).map(|(_, t)| *t)
    }
}

/// Evaluates an expression to a boolean.
pub fn eval(e: &Expr, lookup: &dyn VarLookup) -> bool {
    match e {
        Expr::And(a, b) => eval(a, lookup) && eval(b, lookup),
        Expr::Or(a, b) => eval(a, lookup) || eval(b, lookup),
        Expr::Not(a) => !eval(a, lookup),
        Expr::Bound(v) => lookup.term(v).is_some(),
        Expr::Eq(a, b) => cmp(a, b, lookup).is_some_and(|o| o == Ordering::Equal),
        Expr::Ne(a, b) => cmp(a, b, lookup).is_some_and(|o| o != Ordering::Equal),
        Expr::Lt(a, b) => cmp(a, b, lookup).is_some_and(|o| o == Ordering::Less),
        Expr::Le(a, b) => cmp(a, b, lookup).is_some_and(|o| o != Ordering::Greater),
        Expr::Gt(a, b) => cmp(a, b, lookup).is_some_and(|o| o == Ordering::Greater),
        Expr::Ge(a, b) => cmp(a, b, lookup).is_some_and(|o| o != Ordering::Less),
        // A bare variable or constant used as a boolean: truthy when bound
        // and not the literal "false" / "0".
        Expr::Var(v) => lookup
            .term(v)
            .is_some_and(|t| !matches!(t.lexical_form(), "false" | "0")),
        Expr::Const(t) => !matches!(t.lexical_form(), "false" | "0"),
    }
}

fn value<'a>(e: &'a Expr, lookup: &'a dyn VarLookup) -> Option<&'a Term> {
    match e {
        Expr::Var(v) => lookup.term(v),
        Expr::Const(t) => Some(t),
        _ => None,
    }
}

/// Term comparison: numeric when both sides parse as integers, full-term
/// equality otherwise, lexical-form ordering as the fallback.
fn cmp(a: &Expr, b: &Expr, lookup: &dyn VarLookup) -> Option<Ordering> {
    let (ta, tb) = (value(a, lookup)?, value(b, lookup)?);
    if let (Some(x), Some(y)) = (ta.as_integer(), tb.as_integer()) {
        return Some(x.cmp(&y));
    }
    if ta == tb {
        return Some(Ordering::Equal);
    }
    match ta.lexical_form().cmp(tb.lexical_form()) {
        // Same lexical form but different terms (e.g. IRI vs literal):
        // unequal but order them deterministically by full term order.
        Ordering::Equal => Some(ta.cmp(tb)),
        o => Some(o),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e_var(v: &str) -> Expr {
        Expr::Var(v.into())
    }

    fn e_int(i: i64) -> Expr {
        Expr::Const(Term::integer(i))
    }

    #[test]
    fn comparisons() {
        let five = Term::integer(5);
        let lk = [("x", &five)];
        let lk = PairLookup(&lk);
        assert!(eval(
            &Expr::Gt(Box::new(e_var("x")), Box::new(e_int(3))),
            &lk
        ));
        assert!(!eval(
            &Expr::Gt(Box::new(e_var("x")), Box::new(e_int(5))),
            &lk
        ));
        assert!(eval(
            &Expr::Ge(Box::new(e_var("x")), Box::new(e_int(5))),
            &lk
        ));
        assert!(eval(
            &Expr::Le(Box::new(e_var("x")), Box::new(e_int(5))),
            &lk
        ));
        assert!(eval(
            &Expr::Ne(Box::new(e_var("x")), Box::new(e_int(4))),
            &lk
        ));
        assert!(eval(
            &Expr::Eq(Box::new(e_var("x")), Box::new(e_int(5))),
            &lk
        ));
    }

    #[test]
    fn unbound_comparisons_are_false() {
        let lk = PairLookup(&[]);
        assert!(!eval(
            &Expr::Eq(Box::new(e_var("x")), Box::new(e_int(1))),
            &lk
        ));
        assert!(!eval(
            &Expr::Ne(Box::new(e_var("x")), Box::new(e_int(1))),
            &lk
        ));
        assert!(!eval(&Expr::Bound("x".into()), &lk));
        // Not(error→false) = true — the documented 2VL collapse.
        assert!(eval(&Expr::Not(Box::new(Expr::Bound("x".into()))), &lk));
    }

    #[test]
    fn boolean_connectives() {
        let one = Term::integer(1);
        let lk = [("x", &one)];
        let lk = PairLookup(&lk);
        let t = Expr::Bound("x".into());
        let f = Expr::Bound("y".into());
        assert!(eval(
            &Expr::And(Box::new(t.clone()), Box::new(t.clone())),
            &lk
        ));
        assert!(!eval(
            &Expr::And(Box::new(t.clone()), Box::new(f.clone())),
            &lk
        ));
        assert!(eval(
            &Expr::Or(Box::new(f.clone()), Box::new(t.clone())),
            &lk
        ));
        assert!(!eval(
            &Expr::Or(Box::new(f.clone()), Box::new(f.clone())),
            &lk
        ));
    }

    #[test]
    fn string_and_term_comparison() {
        let apple = Term::literal("apple");
        let banana = Term::literal("banana");
        let lk = [("a", &apple), ("b", &banana)];
        let lk = PairLookup(&lk);
        assert!(eval(
            &Expr::Lt(Box::new(e_var("a")), Box::new(e_var("b"))),
            &lk
        ));
        // IRI vs literal with the same lexical form: not equal.
        let iri = Term::iri("apple");
        let lk2 = [("a", &apple), ("i", &iri)];
        let lk2 = PairLookup(&lk2);
        assert!(eval(
            &Expr::Ne(Box::new(e_var("a")), Box::new(e_var("i"))),
            &lk2
        ));
    }

    #[test]
    fn truthiness_of_bare_values() {
        let yes = Term::literal("yes");
        let no = Term::literal("false");
        let lk = [("y", &yes), ("n", &no)];
        let lk = PairLookup(&lk);
        assert!(eval(&e_var("y"), &lk));
        assert!(!eval(&e_var("n"), &lk));
        assert!(!eval(&e_var("missing"), &lk));
    }
}
