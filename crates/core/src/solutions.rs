//! The streaming result API: [`Solutions`] yields [`Row`] handles with
//! name-based, dictionary-bound accessors, so callers never index into
//! `Vec<Vec<Option<Binding>>>` or thread the dictionary around by hand.
//!
//! [`QueryOutput`] remains the materialized convenience;
//! [`QueryOutput::into_solutions`] and [`Solutions::collect_output`]
//! convert between the two without copying rows.

use crate::bindings::{Binding, QueryOutput};
use crate::QueryStats;
use lbr_rdf::{Dictionary, Term};
use std::collections::HashMap;
use std::sync::Arc;

/// Shared column layout of a result set: names plus a name → column map.
#[derive(Debug)]
pub struct RowSchema {
    vars: Vec<String>,
    index: HashMap<String, usize>,
}

impl RowSchema {
    /// Builds a schema from projected variable names.
    pub fn new(vars: Vec<String>) -> Arc<RowSchema> {
        let index = vars
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), i))
            .collect();
        Arc::new(RowSchema { vars, index })
    }

    /// Column names in projection order.
    pub fn vars(&self) -> &[String] {
        &self.vars
    }

    /// Column of a variable name (without the `?`).
    pub fn column(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }
}

/// A stream of solution rows bound to the database dictionary.
///
/// Iterating yields [`Row`]s; [`Solutions::collect_output`] materializes
/// the remainder back into a [`QueryOutput`].
pub struct Solutions<'d> {
    schema: Arc<RowSchema>,
    dict: &'d Dictionary,
    rows: std::vec::IntoIter<Vec<Option<Binding>>>,
    stats: QueryStats,
}

impl<'d> Solutions<'d> {
    /// Builds a stream from raw parts.
    pub fn new(
        vars: Vec<String>,
        rows: Vec<Vec<Option<Binding>>>,
        stats: QueryStats,
        dict: &'d Dictionary,
    ) -> Solutions<'d> {
        Solutions {
            schema: RowSchema::new(vars),
            dict,
            rows: rows.into_iter(),
            stats,
        }
    }

    /// Projected variable names, in projection order.
    pub fn vars(&self) -> &[String] {
        self.schema.vars()
    }

    /// Execution statistics of the query that produced this stream.
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }

    /// Rows not yet consumed.
    pub fn remaining(&self) -> usize {
        self.rows.len()
    }

    /// Materializes all remaining rows into a [`QueryOutput`].
    pub fn collect_output(self) -> QueryOutput {
        QueryOutput {
            vars: self.schema.vars().to_vec(),
            rows: self.rows.collect(),
            stats: self.stats,
        }
    }
}

impl<'d> Iterator for Solutions<'d> {
    type Item = Row<'d>;

    fn next(&mut self) -> Option<Row<'d>> {
        let cells = self.rows.next()?;
        Some(Row {
            schema: Arc::clone(&self.schema),
            dict: self.dict,
            cells,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.rows.size_hint()
    }
}

impl ExactSizeIterator for Solutions<'_> {}

/// One solution: named, dictionary-decoded access to its bindings.
#[derive(Debug, Clone)]
pub struct Row<'d> {
    schema: Arc<RowSchema>,
    dict: &'d Dictionary,
    cells: Vec<Option<Binding>>,
}

impl<'d> Row<'d> {
    /// Column names in projection order.
    pub fn vars(&self) -> &[String] {
        self.schema.vars()
    }

    /// The decoded term bound to `name` (`None` when the variable is
    /// unbound in this row *or* not part of the projection).
    pub fn term(&self, name: &str) -> Option<&'d Term> {
        let col = self.schema.column(name)?;
        self.cells[col].as_ref().map(|b| b.decode(self.dict))
    }

    /// The decoded term in column `col` (`None` for an OPTIONAL NULL).
    pub fn get(&self, col: usize) -> Option<&'d Term> {
        self.cells.get(col)?.as_ref().map(|b| b.decode(self.dict))
    }

    /// The raw encoded binding of `name`, for ID-level processing.
    pub fn binding(&self, name: &str) -> Option<Binding> {
        self.cells[self.schema.column(name)?]
    }

    /// Whether `name` is bound in this row.
    pub fn is_bound(&self, name: &str) -> bool {
        self.schema
            .column(name)
            .is_some_and(|c| self.cells[c].is_some())
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True for a zero-column row (e.g. an `ASK`-like projection).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// All cells decoded in projection order (`None` = NULL).
    pub fn decoded(&self) -> Vec<Option<&'d Term>> {
        self.cells
            .iter()
            .map(|b| b.as_ref().map(|x| x.decode(self.dict)))
            .collect()
    }

    /// The row as a tab-separated line (`NULL` for unbound cells), the
    /// same rendering [`QueryOutput::render`] uses.
    pub fn render(&self) -> String {
        self.decoded()
            .into_iter()
            .map(|t| t.map_or_else(|| "NULL".to_string(), |x| x.to_string()))
            .collect::<Vec<_>>()
            .join("\t")
    }

    /// Consumes the row, returning the raw encoded cells.
    pub fn into_cells(self) -> Vec<Option<Binding>> {
        self.cells
    }
}

impl QueryOutput {
    /// Converts the materialized output into a [`Solutions`] stream
    /// without copying rows.
    pub fn into_solutions(self, dict: &Dictionary) -> Solutions<'_> {
        Solutions::new(self.vars, self.rows, self.stats, dict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bindings::BindingSpace;
    use lbr_rdf::{Graph, Term, Triple};

    fn dict() -> Dictionary {
        Graph::from_triples(vec![Triple::new(
            Term::iri("a"),
            Term::iri("p"),
            Term::iri("b"),
        )])
        .encode()
        .dict
    }

    fn b(id: u32, space: BindingSpace) -> Option<Binding> {
        Some(Binding { id, space })
    }

    #[test]
    fn roundtrip_and_named_access() {
        let d = dict();
        let out = QueryOutput {
            vars: vec!["x".into(), "y".into()],
            rows: vec![
                vec![b(0, BindingSpace::Subject), b(0, BindingSpace::Object)],
                vec![b(0, BindingSpace::Subject), None],
            ],
            stats: QueryStats::default(),
        };
        let expect_render = out.render(&d);

        let mut solutions = out.clone().into_solutions(&d);
        assert_eq!(solutions.vars(), ["x".to_string(), "y".to_string()]);
        assert_eq!(solutions.len(), 2);

        let first = solutions.next().unwrap();
        assert_eq!(first.term("x"), Some(&Term::iri("a")));
        assert_eq!(first.term("y"), Some(&Term::iri("b")));
        assert_eq!(first.term("nope"), None);
        assert!(first.is_bound("x") && !first.is_bound("nope"));
        assert_eq!(first.render(), expect_render[0]);

        let second = solutions.next().unwrap();
        assert_eq!(second.term("y"), None);
        assert!(!second.is_bound("y"));
        assert_eq!(second.render(), expect_render[1]);
        assert!(solutions.next().is_none());

        // Row-for-row identical when re-materialized.
        let back = out.clone().into_solutions(&d).collect_output();
        assert_eq!(back.vars, out.vars);
        assert_eq!(back.rows, out.rows);
    }

    #[test]
    fn partially_consumed_stream_collects_the_rest() {
        let d = dict();
        let out = QueryOutput {
            vars: vec!["x".into()],
            rows: vec![
                vec![b(0, BindingSpace::Subject)],
                vec![None],
                vec![b(0, BindingSpace::Subject)],
            ],
            stats: QueryStats::default(),
        };
        let mut s = out.into_solutions(&d);
        let _ = s.next();
        assert_eq!(s.remaining(), 2);
        assert_eq!(s.collect_output().rows.len(), 2);
    }
}
