//! `get_jvar_order` (Algorithm 3.1): the order join variables are pruned in.
//!
//! For an **acyclic** GoJ:
//!
//! * the sub-tree induced by the jvars of *absolute master* supernodes is
//!   traversed bottom-up with the **least selective** jvar as the root (so
//!   the most selective master jvars prune first and the root last);
//! * the remaining (slave) supernodes are ordered masters-before-slaves
//!   (selective peers first); each contributes the bottom-up order of its
//!   induced jvar sub-tree, rooted at a jvar shared with a master;
//! * the top-down order mirrors the same construction.
//!
//! For a **cyclic** GoJ, both orders degrade to one greedy order: all jvars
//! by descending selectivity (most selective — fewest triples — first).
//!
//! Orders may repeat a jvar (a jvar shared between the master tree and a
//! slave's sub-tree is pruned again when the slave's restrictions arrive —
//! exactly the `orderbu = [(?friend), (?sitcom, ?friend)]` of Example-2).

use crate::bindings::{VarId, VarTable};
use crate::selectivity::{jvar_rank, sn_rank};
use lbr_sparql::goj::Goj;
use lbr_sparql::gosn::Gosn;
use std::collections::BTreeSet;

/// The traversal orders produced by Algorithm 3.1.
#[derive(Debug, Clone)]
pub struct JvarOrder {
    /// Bottom-up pass order (jvar ids; may contain repeats).
    pub bottom_up: Vec<VarId>,
    /// Top-down pass order.
    pub top_down: Vec<VarId>,
    /// True when the greedy (cyclic) order was used for both passes.
    pub greedy: bool,
    n_vars: usize,
}

impl JvarOrder {
    /// First position of a variable in the bottom-up order; `usize::MAX`
    /// when the variable is not a join variable. Drives the S-O vs O-S
    /// BitMat orientation choice of §5.
    pub fn first_pos(&self, var: VarId) -> usize {
        self.bottom_up
            .iter()
            .position(|&v| v == var)
            .unwrap_or(usize::MAX)
    }

    /// True when `var` participates in the order (is a join variable).
    pub fn is_jvar(&self, var: VarId) -> bool {
        self.first_pos(var) != usize::MAX
    }

    /// Number of interned variables in the query (jvars and others).
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }
}

/// Computes the jvar orders. `tp_estimates` are the per-TP selectivity
/// estimates of [`crate::selectivity::estimate_all`].
pub fn get_jvar_order(gosn: &Gosn, goj: &Goj, vt: &VarTable, tp_estimates: &[u64]) -> JvarOrder {
    // Holders: TPs containing each GoJ node.
    let n_nodes = goj.len();
    let mut holders: Vec<Vec<usize>> = vec![Vec::new(); n_nodes];
    for tp in 0..gosn.n_tps() {
        for &node in goj.jvars_of_tp(tp) {
            holders[node].push(tp);
        }
    }
    let rank: Vec<u64> = (0..n_nodes)
        .map(|node| jvar_rank(&holders[node], tp_estimates))
        .collect();
    let to_var = |node: usize| vt.id(&goj.jvars()[node]).expect("jvar interned");

    if goj.is_cyclic() {
        // ln 1–3: greedy order, most selective jvar first.
        let mut nodes: Vec<usize> = (0..n_nodes).collect();
        nodes.sort_by_key(|&n| (rank[n], n));
        let order: Vec<VarId> = nodes.into_iter().map(to_var).collect();
        return JvarOrder {
            bottom_up: order.clone(),
            top_down: order,
            greedy: true,
            n_vars: vt.len(),
        };
    }

    // ln 4–7: the induced sub-tree of absolute-master jvars.
    let mut jm: BTreeSet<usize> = BTreeSet::new();
    for tp in 0..gosn.n_tps() {
        if gosn.tp_in_absolute_master(tp) {
            jm.extend(goj.jvars_of_tp(tp).iter().copied());
        }
    }
    let jm: Vec<usize> = jm.into_iter().collect();
    let mut bottom_up: Vec<VarId> = Vec::new();
    let mut top_down: Vec<VarId> = Vec::new();
    if !jm.is_empty() {
        // Root: least selective (largest rank) — processed last bottom-up.
        let root = *jm.iter().max_by_key(|&&n| (rank[n], n)).unwrap();
        bottom_up.extend(goj.bottom_up_order(&jm, root).into_iter().map(to_var));
        top_down.extend(goj.top_down_order(&jm, root).into_iter().map(to_var));
    }

    // ln 8: slave supernodes, masters first; selective peers first.
    let mut snss: Vec<usize> = gosn.slave_sns();
    snss.sort_by_key(|&sn| {
        (
            gosn.masters_of(sn).len(),
            sn_rank(gosn.tps_of_sn(sn), tp_estimates),
            sn,
        )
    });

    // ln 9–13 / 15–19: per-slave induced sub-trees.
    for &sn in &snss {
        let mut js: BTreeSet<usize> = BTreeSet::new();
        for &tp in gosn.tps_of_sn(sn) {
            js.extend(goj.jvars_of_tp(tp).iter().copied());
        }
        let js: Vec<usize> = js.into_iter().collect();
        if js.is_empty() {
            continue;
        }
        // Root: a jvar of the slave that also occurs in one of its masters
        // (ln 11); tie-broken toward the least selective, mirroring the
        // master-tree rule. Falls back to the least selective jvar of the
        // slave when none is shared (defensive).
        let master_sns = gosn.masters_of(sn);
        let shared_with_master = |node: usize| {
            holders[node]
                .iter()
                .any(|&tp| master_sns.contains(&gosn.sn_of_tp(tp)))
        };
        let root = js
            .iter()
            .copied()
            .filter(|&n| shared_with_master(n))
            .max_by_key(|&n| (rank[n], n))
            .unwrap_or_else(|| js.iter().copied().max_by_key(|&n| (rank[n], n)).unwrap());
        bottom_up.extend(goj.bottom_up_order(&js, root).into_iter().map(to_var));
        top_down.extend(goj.top_down_order(&js, root).into_iter().map(to_var));
    }

    JvarOrder {
        bottom_up,
        top_down,
        greedy: false,
        n_vars: vt.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_sparql::classify::analyze;
    use lbr_sparql::parse_query;

    fn orders(query: &str, est: Vec<u64>) -> (JvarOrder, VarTable) {
        let q = parse_query(query).unwrap();
        let a = analyze(&q.pattern).unwrap();
        let vt = VarTable::from_tps(a.gosn.tps()).unwrap();
        let jo = get_jvar_order(&a.gosn, &a.goj, &vt, &est);
        (jo, vt)
    }

    /// Example-2 of §3.2: orderbu = [?friend, (?sitcom, ?friend)],
    /// ordertd = [?friend, (?friend, ?sitcom)].
    #[test]
    fn example_2_orders() {
        // tp0 = (:Jerry :hasFriend ?friend) is highly selective (est 2);
        // tp1 (est 5) and tp2 (est 1).
        let (jo, vt) = orders(
            "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?friend .
               OPTIONAL { ?friend :actedIn ?sitcom . ?sitcom :location :NewYorkCity . } }",
            vec![2, 5, 1],
        );
        assert!(!jo.greedy);
        let friend = vt.id("friend").unwrap();
        let sitcom = vt.id("sitcom").unwrap();
        assert_eq!(jo.bottom_up, vec![friend, sitcom, friend]);
        assert_eq!(jo.top_down, vec![friend, friend, sitcom]);
        assert_eq!(jo.first_pos(friend), 0);
        assert!(jo.is_jvar(sitcom));
    }

    #[test]
    fn cyclic_uses_greedy_both_ways() {
        let (jo, vt) = orders(
            "PREFIX : <> SELECT * WHERE { ?a :p1 ?b . ?b :p2 ?c . ?a :p3 ?c . }",
            vec![10, 5, 7],
        );
        assert!(jo.greedy);
        assert_eq!(jo.bottom_up, jo.top_down);
        // Most selective first: ?b and ?c touch tp1 (est 5) → rank 5;
        // ?a touches tp0 (10) and tp2 (7) → rank 7. Ties by node id
        // (lexicographic jvar order: a, b, c).
        let a = vt.id("a").unwrap();
        let b = vt.id("b").unwrap();
        let c = vt.id("c").unwrap();
        assert_eq!(jo.bottom_up, vec![b, c, a]);
    }

    #[test]
    fn master_tree_root_is_least_selective() {
        // Chain ?x–?y in the absolute master; ?x more selective.
        let (jo, vt) = orders(
            "PREFIX : <> SELECT * WHERE { ?x :p1 ?y . ?x :p2 ?w . ?y :p3 ?z .
               ?w :p4 ?q . ?z :p5 ?q2 . }",
            // TPs:       x-y   x-w   y-z   w-q   z-q2
            vec![1, 100, 100, 100, 100],
        );
        // jvars: w, x, y, z; ranks: w: min(100,100)=100, x: 1, y: 1, z: 100.
        // Root = least selective (max rank, tie → larger node id): z.
        let z = vt.id("z").unwrap();
        assert_eq!(*jo.bottom_up.last().unwrap(), z);
        assert_eq!(jo.top_down[0], z);
    }

    #[test]
    fn no_jvars_yields_empty_orders() {
        let (jo, _) = orders("PREFIX : <> SELECT * WHERE { :a :p ?x . }", vec![3]);
        assert!(jo.bottom_up.is_empty());
        assert!(jo.top_down.is_empty());
        assert_eq!(jo.first_pos(0), usize::MAX);
        assert!(!jo.is_jvar(0));
    }

    #[test]
    fn slave_segments_follow_master_hierarchy() {
        // Master {?a}, slave1 {?a ?b} (more selective), slave2 {?b ?c}
        // (slave of slave1).
        let (jo, vt) = orders(
            "PREFIX : <> SELECT * WHERE { ?a :p0 :k .
               OPTIONAL { ?a :p1 ?b . OPTIONAL { ?b :p2 ?c . } } }",
            vec![2, 50, 70],
        );
        let a = vt.id("a").unwrap();
        let b = vt.id("b").unwrap();
        // ?c occurs in one TP only — it is not a join variable.
        assert!(!jo.is_jvar(vt.id("c").unwrap()));
        // Master tree: [a]. Slave1 (depth 1): jvars {a, b}, root shared
        // with master = a → bu [b, a]. Slave2 (depth 2): jvars {b},
        // root shared with its masters = b → bu [b].
        assert_eq!(jo.bottom_up, vec![a, b, a, b]);
        assert_eq!(jo.top_down, vec![a, a, b, b]);
    }
}
