//! The `init` phase of Algorithm 5.1: load one BitMat (or one BitMat row)
//! per triple pattern, with **active pruning**.
//!
//! Loading rules (§5):
//!
//! * `(?v  f1 f2)` — one row of the P-S BitMat of `f2` (subject candidates);
//! * `(f1  f2 ?v)` — one row of the P-O BitMat of `f1` (object candidates);
//! * `(?a  f  ?b)` — the S-O or O-S BitMat of `f`; the variable that comes
//!   first in `orderbu` (or the only join variable) becomes the row
//!   dimension;
//! * `(f   ?p ?o)` — the P-O BitMat of `f`;
//! * `(?s  ?p f )` — the P-S BitMat of `f`;
//! * `(f1  ?p f2)` — the P-O BitMat of `f1` masked to column `f2`
//!   (predicate candidates);
//! * `(f1 f2 f3)` — a membership test;
//! * `(?s ?p ?o)` — unsupported, as in the paper ("currently under
//!   development").
//!
//! *Active pruning*: while loading `BM_tpj`, the variable bindings of every
//! already-loaded master or peer TP sharing a variable are applied as
//! unfold masks, so empty results surface before any join work (§5's
//! "simple optimization" aborts when an absolute-master TP empties out).

use crate::bindings::{VarId, VarTable};
use crate::error::LbrError;
use crate::jvar_order::JvarOrder;
use lbr_bitmat::{BitMat, BitVec, Catalog, CubeDims, RetainDim, SetScratch};
use lbr_rdf::{Dictionary, Dimension};
use lbr_sparql::algebra::{TermPattern, TriplePattern};
use lbr_sparql::gosn::{Gosn, TpId};

/// Loaded, pruneable state of one triple pattern.
#[derive(Debug, Clone)]
pub enum TpData {
    /// Fully fixed pattern — a membership test.
    Zero {
        /// Whether the triple exists.
        present: bool,
    },
    /// One variable position: a candidate set in that position's dimension.
    One {
        /// The variable.
        var: VarId,
        /// The position's dimension.
        dim: Dimension,
        /// Candidate IDs (dense mask over the dimension).
        cands: BitVec,
    },
    /// Two variable positions: a 2-D BitMat.
    Two {
        /// Row variable.
        row_var: VarId,
        /// Row dimension.
        row_dim: Dimension,
        /// Column variable.
        col_var: VarId,
        /// Column dimension.
        col_dim: Dimension,
        /// The matrix (rows = `row_var` bindings).
        mat: BitMat,
    },
    /// All three positions variable: `(?s ?p ?o)` — one S-O BitMat per
    /// predicate. The paper lists this shape as "currently under
    /// development"; here it is supported as a documented extension.
    Three {
        /// Subject variable.
        s_var: VarId,
        /// Predicate variable.
        p_var: VarId,
        /// Object variable.
        o_var: VarId,
        /// `(predicate id, S-O matrix)` per non-empty predicate.
        mats: Vec<(u32, BitMat)>,
    },
}

/// A loaded triple pattern plus (post-pruning) transposed matrices for the
/// join's reverse lookups.
///
/// The multi-way join iterates candidates **directly off the compressed
/// rows** (cursor-based, no materialized `row → cols` vectors): forward
/// lookups read the `Two`/`Three` matrices themselves, reverse lookups
/// read the transposed copies built by [`TpState::build_adjacency`].
#[derive(Debug, Clone)]
pub struct TpState {
    /// TP index in the query.
    pub id: TpId,
    /// Loaded data.
    pub data: TpData,
    /// Transposed copy of the `Two` matrix (`col → rows` cursor source;
    /// built by [`TpState::build_adjacency`]).
    pub transposed: Option<BitMat>,
    /// Transposed copy of each predicate slice (`Three` only), parallel to
    /// `mats`.
    pub per_pred_t: Vec<BitMat>,
}

impl TpState {
    /// Number of triples currently matching the TP.
    pub fn count(&self) -> u64 {
        match &self.data {
            TpData::Zero { present } => *present as u64,
            TpData::One { cands, .. } => cands.count_ones() as u64,
            TpData::Two { mat, .. } => mat.triple_count(),
            TpData::Three { mats, .. } => mats.iter().map(|(_, m)| m.triple_count()).sum(),
        }
    }

    /// True when no triples remain.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Variables with their position dimensions.
    pub fn vars(&self) -> Vec<(VarId, Dimension)> {
        match &self.data {
            TpData::Zero { .. } => Vec::new(),
            TpData::One { var, dim, .. } => vec![(*var, *dim)],
            TpData::Two {
                row_var,
                row_dim,
                col_var,
                col_dim,
                ..
            } => {
                vec![(*row_var, *row_dim), (*col_var, *col_dim)]
            }
            TpData::Three {
                s_var,
                p_var,
                o_var,
                ..
            } => vec![
                (*s_var, Dimension::Subject),
                (*p_var, Dimension::Predicate),
                (*o_var, Dimension::Object),
            ],
        }
    }

    /// The dimension `var` occupies in this TP (`None` if absent).
    pub fn dim_of(&self, var: VarId) -> Option<Dimension> {
        self.vars()
            .into_iter()
            .find(|&(v, _)| v == var)
            .map(|(_, d)| d)
    }

    /// The paper's `fold(BMtp, dim?j)`: projects the bindings of `var` as a
    /// mask resized into the variable's binding space.
    ///
    /// Allocating convenience wrapper over [`TpState::fold_var_into`].
    pub fn fold_var(&self, var: VarId, space_len: u32) -> Option<BitVec> {
        let mut acc = BitVec::zeros(0);
        self.fold_var_into(var, space_len, &mut acc).then_some(acc)
    }

    /// `fold` straight into a caller-owned accumulator: `acc` is reset to
    /// `space_len` bits and filled with the projection of `var`'s bindings,
    /// clipped into that space. Returns `false` when this TP does not bind
    /// `var` — `acc` is then **untouched** (it may still hold a previous
    /// fold), so only read it on `true`. Steady-state calls perform no
    /// heap allocation once `acc` has reached its high-water capacity.
    pub fn fold_var_into(&self, var: VarId, space_len: u32, acc: &mut BitVec) -> bool {
        match &self.data {
            TpData::Zero { .. } => false,
            TpData::One { var: v, cands, .. } => {
                if *v != var {
                    return false;
                }
                acc.reset(space_len);
                acc.or_clipped(cands);
                true
            }
            TpData::Two {
                row_var,
                col_var,
                mat,
                ..
            } => {
                let dim = if *row_var == var {
                    RetainDim::Row
                } else if *col_var == var {
                    RetainDim::Col
                } else {
                    return false;
                };
                acc.reset(space_len);
                mat.fold_or_clipped(dim, acc);
                true
            }
            TpData::Three {
                s_var,
                p_var,
                o_var,
                mats,
            } => {
                if *p_var == var {
                    acc.reset(space_len);
                    for (pid, m) in mats {
                        if !m.is_empty() && *pid < space_len {
                            acc.set(*pid);
                        }
                    }
                    true
                } else if *s_var == var || *o_var == var {
                    let dim = if *s_var == var {
                        RetainDim::Row
                    } else {
                        RetainDim::Col
                    };
                    acc.reset(space_len);
                    for (_, m) in mats {
                        m.fold_or_clipped(dim, acc);
                    }
                    true
                } else {
                    false
                }
            }
        }
    }

    /// The paper's `unfold(BMtp, β?j, dim?j)`: keeps only triples whose
    /// `var` binding is set in `mask` (mask may be in the variable's —
    /// possibly shorter, shared — space; missing high bits clear).
    ///
    /// Allocating convenience wrapper over [`TpState::unfold_var_with`].
    pub fn unfold_var(&mut self, var: VarId, mask: &BitVec) {
        let mut scratch = lbr_bitmat::SetScratch::default();
        self.unfold_var_with(var, mask, &mut scratch);
    }

    /// [`TpState::unfold_var`] through caller-owned kernel scratch: rows
    /// are rewritten in place ([`lbr_bitmat::BitRow::and_mask_in_place`])
    /// with clipped-mask semantics, so no mask copy and no row rebuild is
    /// allocated in the steady state.
    pub fn unfold_var_with(&mut self, var: VarId, mask: &BitVec, scratch: &mut SetScratch) {
        // Any transposed copies are invalidated by pruning; they are only
        // built (after the prune phase) by `build_adjacency`.
        self.transposed = None;
        self.per_pred_t.clear();
        match &mut self.data {
            TpData::Zero { .. } => {}
            TpData::One { var: v, cands, .. } => {
                if *v == var {
                    cands.and_clipped(mask);
                }
            }
            TpData::Two {
                row_var,
                col_var,
                mat,
                ..
            } => {
                if *row_var == var {
                    mat.unfold_with(mask, RetainDim::Row, scratch);
                } else if *col_var == var {
                    mat.unfold_with(mask, RetainDim::Col, scratch);
                }
            }
            TpData::Three {
                s_var,
                p_var,
                o_var,
                mats,
            } => {
                if *p_var == var {
                    mats.retain(|(pid, _)| mask.get(*pid));
                } else if *s_var == var || *o_var == var {
                    let dim = if *s_var == var {
                        RetainDim::Row
                    } else {
                        RetainDim::Col
                    };
                    for (_, m) in mats.iter_mut() {
                        m.unfold_with(mask, dim, scratch);
                    }
                    mats.retain(|(_, m)| !m.is_empty());
                }
            }
        }
    }

    /// Builds the transposed matrices the multi-way join needs for reverse
    /// (`col → rows`) lookups. Forward lookups cursor over the data
    /// matrices themselves — nothing else is materialized.
    pub fn build_adjacency(&mut self) {
        if let TpData::Two { mat, .. } = &self.data {
            self.transposed = Some(mat.transpose());
        }
        if let TpData::Three { mats, .. } = &self.data {
            self.per_pred_t = mats.iter().map(|(_, m)| m.transpose()).collect();
        }
    }

    /// The compressed row of columns adjacent to `row` (`Two` only; `None`
    /// when the row is empty).
    pub fn cols_row(&self, row: u32) -> Option<&lbr_bitmat::BitRow> {
        match &self.data {
            TpData::Two { mat, .. } => mat.row(row),
            _ => None,
        }
    }

    /// The compressed row of rows adjacent to `col` (`Two` only; requires
    /// [`TpState::build_adjacency`]).
    pub fn rows_col(&self, col: u32) -> Option<&lbr_bitmat::BitRow> {
        self.transposed.as_ref().and_then(|t| t.row(col))
    }

    /// Membership test in the `Two` matrix.
    pub fn has_pair(&self, row: u32, col: u32) -> bool {
        match &self.data {
            TpData::Two { mat, .. } => mat.get(row, col),
            _ => false,
        }
    }
}

/// Result of the init phase.
#[derive(Debug)]
pub struct InitOutcome {
    /// Loaded TPs, indexed by TpId.
    pub tps: Vec<TpState>,
}

/// The order TPs are loaded in: absolute masters first (ascending estimated
/// count), then slaves by master-hierarchy depth and estimated count — so
/// selective masters prune their slaves during the load.
pub fn load_order(gosn: &Gosn, estimates: &[u64]) -> Vec<TpId> {
    let mut order: Vec<TpId> = (0..gosn.n_tps()).collect();
    order.sort_by_key(|&tp| {
        let sn = gosn.sn_of_tp(tp);
        (gosn.masters_of(sn).len(), estimates[tp], tp)
    });
    order
}

/// Loads every TP with active pruning.
pub fn init(
    gosn: &Gosn,
    vt: &VarTable,
    jorder: &JvarOrder,
    estimates: &[u64],
    dict: &Dictionary,
    catalog: &impl Catalog,
) -> Result<InitOutcome, LbrError> {
    let dims = catalog.dims();
    let order = load_order(gosn, estimates);
    let mut tps: Vec<Option<TpState>> = vec![None; gosn.n_tps()];
    // One fold accumulator + kernel scratch reused across the whole load:
    // active pruning allocates only up to the high-water mask size.
    let mut mask = BitVec::zeros(0);
    let mut scratch = SetScratch::default();
    for &tp_id in &order {
        let mut state = load_tp(tp_id, gosn.tp(tp_id), vt, jorder, dict, catalog, &dims)?;
        // Active pruning against already-loaded masters and peers. The
        // mask domain is per-pair: the two positions' common dimension
        // (full S / full O, or the shared prefix for mixed joins).
        for (v, v_dim) in state.vars() {
            for (other_id, other) in tps.iter().enumerate() {
                let Some(other) = other else { continue };
                if other_id == tp_id {
                    continue;
                }
                let masterish =
                    gosn.tp_is_master_of(other_id, tp_id) || gosn.tp_are_peers(other_id, tp_id);
                if !masterish {
                    continue;
                }
                let Some(o_dim) = other.dim_of(v) else {
                    continue;
                };
                let space_len = crate::bindings::op_space_len(&dims, [v_dim, o_dim]);
                if other.fold_var_into(v, space_len, &mut mask) {
                    state.unfold_var_with(v, &mask, &mut scratch);
                }
            }
        }
        tps[tp_id] = Some(state);
    }
    Ok(InitOutcome {
        tps: tps
            .into_iter()
            .map(|t| t.expect("all TPs loaded"))
            .collect(),
    })
}

/// True when some TP inside an absolute-master supernode is empty — the
/// §5 "simple optimization" early-abort condition.
pub fn absolute_master_empty(gosn: &Gosn, tps: &[TpState]) -> bool {
    tps.iter()
        .any(|t| t.is_empty() && gosn.tp_in_absolute_master(t.id))
}

fn const_id(dict: &Dictionary, t: &TermPattern, dim: Dimension) -> Option<u32> {
    t.as_const().and_then(|c| dict.id(c, dim))
}

/// Loads one TP per the §5 rules (missing constants yield empty data).
#[allow(clippy::too_many_arguments)]
fn load_tp(
    tp_id: TpId,
    tp: &TriplePattern,
    vt: &VarTable,
    jorder: &JvarOrder,
    dict: &Dictionary,
    catalog: &impl Catalog,
    dims: &CubeDims,
) -> Result<TpState, LbrError> {
    let var_of = |t: &TermPattern| t.as_var().map(|v| vt.id(v).expect("var interned"));
    let (sv, pv, ov) = (var_of(&tp.s), var_of(&tp.p), var_of(&tp.o));
    let s_id = const_id(dict, &tp.s, Dimension::Subject);
    let p_id = const_id(dict, &tp.p, Dimension::Predicate);
    let o_id = const_id(dict, &tp.o, Dimension::Object);
    let s_known = tp.s.as_var().is_some() || s_id.is_some();
    let p_known = tp.p.as_var().is_some() || p_id.is_some();
    let o_known = tp.o.as_var().is_some() || o_id.is_some();
    let known = s_known && p_known && o_known;

    let data = match (sv, pv, ov) {
        // (f1 f2 f3): membership test.
        (None, None, None) => {
            let present = known
                && match catalog.load_po_row(s_id.unwrap(), p_id.unwrap())? {
                    Some(row) => row.contains(o_id.unwrap()),
                    None => false,
                };
            TpData::Zero { present }
        }
        // (?v f1 f2): subject candidates from one P-S row.
        (Some(v), None, None) => {
            let cands = if known {
                match catalog.load_ps_row(o_id.unwrap(), p_id.unwrap())? {
                    Some(row) => row.to_bitvec(),
                    None => BitVec::zeros(dims.n_subjects),
                }
            } else {
                BitVec::zeros(dims.n_subjects)
            };
            TpData::One {
                var: v,
                dim: Dimension::Subject,
                cands,
            }
        }
        // (f1 f2 ?v): object candidates from one P-O row.
        (None, None, Some(v)) => {
            let cands = if known {
                match catalog.load_po_row(s_id.unwrap(), p_id.unwrap())? {
                    Some(row) => row.to_bitvec(),
                    None => BitVec::zeros(dims.n_objects),
                }
            } else {
                BitVec::zeros(dims.n_objects)
            };
            TpData::One {
                var: v,
                dim: Dimension::Object,
                cands,
            }
        }
        // (?a f ?b).
        (Some(a), None, Some(b)) if a != b => {
            // Row dimension: the variable that comes first in orderbu; a
            // sole join variable wins; default to the subject.
            let (a_pos, b_pos) = (jorder.first_pos(a), jorder.first_pos(b));
            let subject_rows = a_pos <= b_pos;
            let loaded = if known {
                if subject_rows {
                    catalog.load_so(p_id.unwrap())?
                } else {
                    catalog.load_os(p_id.unwrap())?
                }
            } else {
                None
            };
            let (n_rows, n_cols) = if subject_rows {
                (dims.n_subjects, dims.n_objects)
            } else {
                (dims.n_objects, dims.n_subjects)
            };
            let mat = loaded.unwrap_or_else(|| BitMat::empty(n_rows, n_cols));
            if subject_rows {
                TpData::Two {
                    row_var: a,
                    row_dim: Dimension::Subject,
                    col_var: b,
                    col_dim: Dimension::Object,
                    mat,
                }
            } else {
                TpData::Two {
                    row_var: b,
                    row_dim: Dimension::Object,
                    col_var: a,
                    col_dim: Dimension::Subject,
                    mat,
                }
            }
        }
        // (?x f ?x): the diagonal of the S-O BitMat (shared IDs only).
        (Some(a), None, Some(_)) => {
            let mut cands = BitVec::zeros(dims.n_subjects);
            if known {
                if let Some(mat) = catalog.load_so(p_id.unwrap())? {
                    for &(r, ref row) in mat.rows() {
                        if r < dims.n_shared && row.contains(r) {
                            cands.set(r);
                        }
                    }
                }
            }
            TpData::One {
                var: a,
                dim: Dimension::Subject,
                cands,
            }
        }
        // (f ?p ?o): the P-O BitMat of the subject.
        (None, Some(p), Some(o)) if p != o => {
            let mat = if known {
                catalog.load_po(s_id.unwrap())?
            } else {
                None
            }
            .unwrap_or_else(|| BitMat::empty(dims.n_predicates, dims.n_objects));
            TpData::Two {
                row_var: p,
                row_dim: Dimension::Predicate,
                col_var: o,
                col_dim: Dimension::Object,
                mat,
            }
        }
        // (?s ?p f): the P-S BitMat of the object.
        (Some(s), Some(p), None) if p != s => {
            let mat = if known {
                catalog.load_ps(o_id.unwrap())?
            } else {
                None
            }
            .unwrap_or_else(|| BitMat::empty(dims.n_predicates, dims.n_subjects));
            TpData::Two {
                row_var: p,
                row_dim: Dimension::Predicate,
                col_var: s,
                col_dim: Dimension::Subject,
                mat,
            }
        }
        // (f1 ?p f2): predicate candidates — the P-O BitMat of f1 masked to
        // column f2.
        (None, Some(p), None) => {
            let mut cands = BitVec::zeros(dims.n_predicates);
            if known {
                if let Some(mat) = catalog.load_po(s_id.unwrap())? {
                    let o = o_id.unwrap();
                    for &(r, ref row) in mat.rows() {
                        if row.contains(o) {
                            cands.set(r);
                        }
                    }
                }
            }
            TpData::One {
                var: p,
                dim: Dimension::Predicate,
                cands,
            }
        }
        // (?s ?p ?o): one S-O BitMat per predicate (extension; the paper
        // lists this shape as under development).
        (Some(s), Some(pv), Some(o)) if s != pv && pv != o && s != o => {
            let mut mats = Vec::new();
            for pid in 0..dims.n_predicates {
                if let Some(m) = catalog.load_so(pid)? {
                    if !m.is_empty() {
                        mats.push((pid, m));
                    }
                }
            }
            TpData::Three {
                s_var: s,
                p_var: pv,
                o_var: o,
                mats,
            }
        }
        (Some(_), Some(_), Some(_)) => {
            return Err(LbrError::Unsupported(format!(
                "triple pattern with repeated variables across all positions: {tp}"
            )));
        }
        (None, Some(_), Some(_)) | (Some(_), Some(_), None) => {
            return Err(LbrError::Unsupported(format!(
                "triple pattern with a repeated predicate variable: {tp}"
            )));
        }
    };
    let _ = tp_id;
    Ok(TpState {
        id: tp_id,
        data,
        transposed: None,
        per_pred_t: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarSpace;
    use lbr_bitmat::BitMatStore;
    use lbr_rdf::{Graph, Term, Triple};
    use lbr_sparql::classify::analyze;
    use lbr_sparql::parse_query;

    fn graph() -> lbr_rdf::EncodedGraph {
        let t = |s: &str, p: &str, o: &str| Triple::new(Term::iri(s), Term::iri(p), Term::iri(o));
        Graph::from_triples(vec![
            t("Julia", "actedIn", "Seinfeld"),
            t("Julia", "actedIn", "Veep"),
            t("Julia", "actedIn", "NewAdvOldChristine"),
            t("Julia", "actedIn", "CurbYourEnthu"),
            t("CurbYourEnthu", "location", "LosAngeles"),
            t("Larry", "actedIn", "CurbYourEnthu"),
            t("Jerry", "hasFriend", "Julia"),
            t("Jerry", "hasFriend", "Larry"),
            t("Seinfeld", "location", "NewYorkCity"),
            t("Veep", "location", "D.C."),
            t("NewAdvOldChristine", "location", "Jersey"),
        ])
        .encode()
    }

    const Q2: &str = r#"
        PREFIX : <>
        SELECT * WHERE {
          :Jerry :hasFriend ?friend .
          OPTIONAL { ?friend :actedIn ?sitcom . ?sitcom :location :NewYorkCity . } }
    "#;

    fn setup(
        query: &str,
    ) -> (
        lbr_rdf::EncodedGraph,
        BitMatStore,
        InitOutcome,
        Gosn,
        VarTable,
    ) {
        let g = graph();
        let store = BitMatStore::build(&g);
        let q = parse_query(query).unwrap();
        let analyzed = analyze(&q.pattern).unwrap();
        let vt = VarTable::from_tps(analyzed.gosn.tps()).unwrap();
        let est = crate::selectivity::estimate_all(analyzed.gosn.tps(), &g.dict, &store);
        let jorder = crate::jvar_order::get_jvar_order(&analyzed.gosn, &analyzed.goj, &vt, &est);
        let out = init(&analyzed.gosn, &vt, &jorder, &est, &g.dict, &store).unwrap();
        (g, store, out, analyzed.gosn, vt)
    }

    #[test]
    fn loads_q2_with_active_pruning() {
        let (_, _, out, gosn, _) = setup(Q2);
        // tp0 = (:Jerry :hasFriend ?friend): 2 candidates.
        assert_eq!(out.tps[0].count(), 2);
        // tp2 = (?sitcom :location :NewYorkCity): 1 candidate.
        assert_eq!(out.tps[2].count(), 1);
        // tp1 = (?friend :actedIn ?sitcom): actively pruned by its master
        // (2 friend values) and by its peer tp2 (1 sitcom value): Julia's
        // Seinfeld role is all that is left.
        assert_eq!(out.tps[1].count(), 1);
        assert!(!absolute_master_empty(&gosn, &out.tps));
    }

    #[test]
    fn unknown_constant_gives_empty_and_abort_signal() {
        let (_, _, out, gosn, _) = setup(
            "PREFIX : <> SELECT * WHERE { :Nobody :hasFriend ?friend . OPTIONAL { ?friend :actedIn ?s . } }",
        );
        assert!(out.tps[0].is_empty());
        assert!(absolute_master_empty(&gosn, &out.tps));
    }

    #[test]
    fn fold_unfold_roundtrip_on_state() {
        let (_, _, mut out, _, vt) = setup(Q2);
        let friend = vt.id("friend").unwrap();
        let space = vt.space(friend);
        assert_eq!(space, VarSpace::Shared);
        let tp1 = &mut out.tps[1];
        let before = tp1.count();
        let mask = tp1.fold_var(friend, 100).unwrap().resized(100);
        tp1.unfold_var(friend, &mask);
        assert_eq!(tp1.count(), before, "self-mask is a no-op");
    }

    #[test]
    fn adjacency_lookups() {
        let (_, _, mut out, _, _) = setup(Q2);
        let tp1 = &mut out.tps[1];
        tp1.build_adjacency();
        let TpData::Two { mat, .. } = &tp1.data else {
            panic!("expected Two")
        };
        let (r, c) = mat.iter().next().unwrap();
        assert_eq!(
            tp1.cols_row(r).unwrap().iter_ones().collect::<Vec<_>>(),
            vec![c]
        );
        assert_eq!(
            tp1.rows_col(c).unwrap().iter_ones().collect::<Vec<_>>(),
            vec![r]
        );
        assert!(tp1.has_pair(r, c) && !tp1.has_pair(9999, c));
        assert!(tp1.cols_row(9999).is_none());
    }

    #[test]
    fn membership_and_predicate_var_patterns() {
        let g = graph();
        let store = BitMatStore::build(&g);
        // Membership: true case and false case.
        let q = parse_query(
            "PREFIX : <> SELECT * WHERE { { :Jerry :hasFriend :Julia . } { ?x :actedIn ?y . } }",
        )
        .unwrap();
        let analyzed = analyze(&q.pattern).unwrap();
        let vt = VarTable::from_tps(analyzed.gosn.tps()).unwrap();
        let est = crate::selectivity::estimate_all(analyzed.gosn.tps(), &g.dict, &store);
        let jorder = crate::jvar_order::get_jvar_order(&analyzed.gosn, &analyzed.goj, &vt, &est);
        let out = init(&analyzed.gosn, &vt, &jorder, &est, &g.dict, &store).unwrap();
        assert!(matches!(out.tps[0].data, TpData::Zero { present: true }));

        // (s ?p ?o) and (?s ?p o) and (s ?p o).
        let q = parse_query(
            "PREFIX : <> SELECT * WHERE { { :Julia ?p ?o . } { ?s ?q :CurbYourEnthu . } { :Seinfeld ?r :NewYorkCity . } }",
        )
        .unwrap();
        let analyzed = analyze(&q.pattern).unwrap();
        let vt = VarTable::from_tps(analyzed.gosn.tps()).unwrap();
        let est = crate::selectivity::estimate_all(analyzed.gosn.tps(), &g.dict, &store);
        let jorder = crate::jvar_order::get_jvar_order(&analyzed.gosn, &analyzed.goj, &vt, &est);
        let out = init(&analyzed.gosn, &vt, &jorder, &est, &g.dict, &store).unwrap();
        assert_eq!(out.tps[0].count(), 4, "Julia has four triples");
        assert_eq!(
            out.tps[1].count(),
            2,
            "CurbYourEnthu as object: actedIn + location... "
        );
        assert_eq!(out.tps[2].count(), 1, "Seinfeld –location→ NYC");
    }

    #[test]
    fn all_var_tp_loads_every_predicate_slice() {
        let g = graph();
        let store = BitMatStore::build(&g);
        let q = parse_query("SELECT * WHERE { ?s ?p ?o . }").unwrap();
        let analyzed = analyze(&q.pattern).unwrap();
        let vt = VarTable::from_tps(analyzed.gosn.tps()).unwrap();
        let est = crate::selectivity::estimate_all(analyzed.gosn.tps(), &g.dict, &store);
        let jorder = crate::jvar_order::get_jvar_order(&analyzed.gosn, &analyzed.goj, &vt, &est);
        let out = init(&analyzed.gosn, &vt, &jorder, &est, &g.dict, &store).unwrap();
        // (?s ?p ?o) matches the whole dataset: 11 triples over 3 predicates.
        assert_eq!(out.tps[0].count(), 11);
        assert!(matches!(&out.tps[0].data, TpData::Three { mats, .. } if mats.len() == 3));
    }
}
