//! The `init` phase of Algorithm 5.1: load one BitMat (or one BitMat row)
//! per triple pattern, with **active pruning**.
//!
//! Loading rules (§5):
//!
//! * `(?v  f1 f2)` — one row of the P-S BitMat of `f2` (subject candidates);
//! * `(f1  f2 ?v)` — one row of the P-O BitMat of `f1` (object candidates);
//! * `(?a  f  ?b)` — the S-O or O-S BitMat of `f`; the variable that comes
//!   first in `orderbu` (or the only join variable) becomes the row
//!   dimension;
//! * `(f   ?p ?o)` — the P-O BitMat of `f`;
//! * `(?s  ?p f )` — the P-S BitMat of `f`;
//! * `(f1  ?p f2)` — the P-O BitMat of `f1` masked to column `f2`
//!   (predicate candidates);
//! * `(f1 f2 f3)` — a membership test;
//! * `(?s ?p ?o)` — unsupported, as in the paper ("currently under
//!   development").
//!
//! *Active pruning*: while loading `BM_tpj`, the variable bindings of every
//! already-loaded master or peer TP sharing a variable are applied as
//! unfold masks, so empty results surface before any join work (§5's
//! "simple optimization" aborts when an absolute-master TP empties out).

use crate::bindings::{VarId, VarTable};
use crate::error::LbrError;
use crate::jvar_order::JvarOrder;
use lbr_bitmat::{BitMat, BitVec, Catalog, CubeDims, RetainDim};
use lbr_rdf::{Dictionary, Dimension};
use lbr_sparql::algebra::{TermPattern, TriplePattern};
use lbr_sparql::gosn::{Gosn, TpId};

/// Loaded, pruneable state of one triple pattern.
#[derive(Debug, Clone)]
pub enum TpData {
    /// Fully fixed pattern — a membership test.
    Zero {
        /// Whether the triple exists.
        present: bool,
    },
    /// One variable position: a candidate set in that position's dimension.
    One {
        /// The variable.
        var: VarId,
        /// The position's dimension.
        dim: Dimension,
        /// Candidate IDs (dense mask over the dimension).
        cands: BitVec,
    },
    /// Two variable positions: a 2-D BitMat.
    Two {
        /// Row variable.
        row_var: VarId,
        /// Row dimension.
        row_dim: Dimension,
        /// Column variable.
        col_var: VarId,
        /// Column dimension.
        col_dim: Dimension,
        /// The matrix (rows = `row_var` bindings).
        mat: BitMat,
    },
    /// All three positions variable: `(?s ?p ?o)` — one S-O BitMat per
    /// predicate. The paper lists this shape as "currently under
    /// development"; here it is supported as a documented extension.
    Three {
        /// Subject variable.
        s_var: VarId,
        /// Predicate variable.
        p_var: VarId,
        /// Object variable.
        o_var: VarId,
        /// `(predicate id, S-O matrix)` per non-empty predicate.
        mats: Vec<(u32, BitMat)>,
    },
}

/// Sorted adjacency list: `key → sorted neighbour ids`.
pub type Adjacency = Vec<(u32, Vec<u32>)>;

/// A loaded triple pattern plus (post-pruning) adjacency for the join.
#[derive(Debug, Clone)]
pub struct TpState {
    /// TP index in the query.
    pub id: TpId,
    /// Loaded data.
    pub data: TpData,
    /// `row → cols` adjacency (Two only; built by
    /// [`TpState::build_adjacency`]).
    pub row_adj: Adjacency,
    /// `col → rows` adjacency (Two only).
    pub col_adj: Adjacency,
    /// Per-predicate adjacency (Three only): `(pid, row→cols, col→rows)`.
    pub per_pred_adj: Vec<(u32, Adjacency, Adjacency)>,
}

impl TpState {
    /// Number of triples currently matching the TP.
    pub fn count(&self) -> u64 {
        match &self.data {
            TpData::Zero { present } => *present as u64,
            TpData::One { cands, .. } => cands.count_ones() as u64,
            TpData::Two { mat, .. } => mat.triple_count(),
            TpData::Three { mats, .. } => mats.iter().map(|(_, m)| m.triple_count()).sum(),
        }
    }

    /// True when no triples remain.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Variables with their position dimensions.
    pub fn vars(&self) -> Vec<(VarId, Dimension)> {
        match &self.data {
            TpData::Zero { .. } => Vec::new(),
            TpData::One { var, dim, .. } => vec![(*var, *dim)],
            TpData::Two {
                row_var,
                row_dim,
                col_var,
                col_dim,
                ..
            } => {
                vec![(*row_var, *row_dim), (*col_var, *col_dim)]
            }
            TpData::Three {
                s_var,
                p_var,
                o_var,
                ..
            } => vec![
                (*s_var, Dimension::Subject),
                (*p_var, Dimension::Predicate),
                (*o_var, Dimension::Object),
            ],
        }
    }

    /// The dimension `var` occupies in this TP (`None` if absent).
    pub fn dim_of(&self, var: VarId) -> Option<Dimension> {
        self.vars()
            .into_iter()
            .find(|&(v, _)| v == var)
            .map(|(_, d)| d)
    }

    /// The paper's `fold(BMtp, dim?j)`: projects the bindings of `var` as a
    /// mask resized into the variable's binding space.
    pub fn fold_var(&self, var: VarId, space_len: u32) -> Option<BitVec> {
        match &self.data {
            TpData::Zero { .. } => None,
            TpData::One { var: v, cands, .. } if *v == var => Some(cands.resized(space_len)),
            TpData::One { .. } => None,
            TpData::Two {
                row_var,
                col_var,
                mat,
                ..
            } => {
                if *row_var == var {
                    Some(mat.fold(RetainDim::Row).resized(space_len))
                } else if *col_var == var {
                    Some(mat.fold(RetainDim::Col).resized(space_len))
                } else {
                    None
                }
            }
            TpData::Three {
                s_var,
                p_var,
                o_var,
                mats,
            } => {
                let mut acc = BitVec::zeros(space_len);
                if *p_var == var {
                    for (pid, m) in mats {
                        if !m.is_empty() && *pid < space_len {
                            acc.set(*pid);
                        }
                    }
                    Some(acc)
                } else if *s_var == var || *o_var == var {
                    let dim = if *s_var == var {
                        RetainDim::Row
                    } else {
                        RetainDim::Col
                    };
                    for (_, m) in mats {
                        acc.or_assign(&m.fold(dim).resized(space_len));
                    }
                    Some(acc)
                } else {
                    None
                }
            }
        }
    }

    /// The paper's `unfold(BMtp, β?j, dim?j)`: keeps only triples whose
    /// `var` binding is set in `mask` (mask may be in the variable's —
    /// possibly shorter, shared — space; missing high bits clear).
    pub fn unfold_var(&mut self, var: VarId, mask: &BitVec) {
        match &mut self.data {
            TpData::Zero { .. } => {}
            TpData::One { var: v, cands, .. } => {
                if *v == var {
                    cands.and_assign(&mask.resized(cands.len()));
                }
            }
            TpData::Two {
                row_var,
                col_var,
                mat,
                ..
            } => {
                if *row_var == var {
                    mat.unfold(&mask.resized(mat.n_rows()), RetainDim::Row);
                } else if *col_var == var {
                    mat.unfold(&mask.resized(mat.n_cols()), RetainDim::Col);
                }
            }
            TpData::Three {
                s_var,
                p_var,
                o_var,
                mats,
            } => {
                if *p_var == var {
                    mats.retain(|(pid, _)| mask.get(*pid));
                } else if *s_var == var || *o_var == var {
                    let dim = if *s_var == var {
                        RetainDim::Row
                    } else {
                        RetainDim::Col
                    };
                    for (_, m) in mats.iter_mut() {
                        let sized = if dim == RetainDim::Row {
                            mask.resized(m.n_rows())
                        } else {
                            mask.resized(m.n_cols())
                        };
                        m.unfold(&sized, dim);
                    }
                    mats.retain(|(_, m)| !m.is_empty());
                }
            }
        }
    }

    /// Materializes row→cols / col→rows adjacency for the multi-way join.
    /// (Pruning works on compressed rows; the join needs point lookups in
    /// both directions.)
    pub fn build_adjacency(&mut self) {
        if let TpData::Two { mat, .. } = &self.data {
            self.row_adj = mat
                .rows()
                .iter()
                .map(|(r, row)| (*r, row.iter_ones().collect()))
                .collect();
            let t = mat.transpose();
            self.col_adj = t
                .rows()
                .iter()
                .map(|(c, row)| (*c, row.iter_ones().collect()))
                .collect();
        }
        if let TpData::Three { mats, .. } = &self.data {
            self.per_pred_adj = mats
                .iter()
                .map(|(pid, mat)| {
                    let rows: Adjacency = mat
                        .rows()
                        .iter()
                        .map(|(r, row)| (*r, row.iter_ones().collect()))
                        .collect();
                    let t = mat.transpose();
                    let cols: Adjacency = t
                        .rows()
                        .iter()
                        .map(|(c, row)| (*c, row.iter_ones().collect()))
                        .collect();
                    (*pid, rows, cols)
                })
                .collect();
        }
    }

    /// Columns adjacent to `row` (Two only; empty slice when absent).
    pub fn cols_of(&self, row: u32) -> &[u32] {
        match self.row_adj.binary_search_by_key(&row, |&(r, _)| r) {
            Ok(i) => &self.row_adj[i].1,
            Err(_) => &[],
        }
    }

    /// Rows adjacent to `col` (Two only).
    pub fn rows_of(&self, col: u32) -> &[u32] {
        match self.col_adj.binary_search_by_key(&col, |&(c, _)| c) {
            Ok(i) => &self.col_adj[i].1,
            Err(_) => &[],
        }
    }
}

/// Result of the init phase.
#[derive(Debug)]
pub struct InitOutcome {
    /// Loaded TPs, indexed by TpId.
    pub tps: Vec<TpState>,
}

/// The order TPs are loaded in: absolute masters first (ascending estimated
/// count), then slaves by master-hierarchy depth and estimated count — so
/// selective masters prune their slaves during the load.
pub fn load_order(gosn: &Gosn, estimates: &[u64]) -> Vec<TpId> {
    let mut order: Vec<TpId> = (0..gosn.n_tps()).collect();
    order.sort_by_key(|&tp| {
        let sn = gosn.sn_of_tp(tp);
        (gosn.masters_of(sn).len(), estimates[tp], tp)
    });
    order
}

/// Loads every TP with active pruning.
pub fn init(
    gosn: &Gosn,
    vt: &VarTable,
    jorder: &JvarOrder,
    estimates: &[u64],
    dict: &Dictionary,
    catalog: &impl Catalog,
) -> Result<InitOutcome, LbrError> {
    let dims = catalog.dims();
    let order = load_order(gosn, estimates);
    let mut tps: Vec<Option<TpState>> = vec![None; gosn.n_tps()];
    for &tp_id in &order {
        let mut state = load_tp(tp_id, gosn.tp(tp_id), vt, jorder, dict, catalog, &dims)?;
        // Active pruning against already-loaded masters and peers. The
        // mask domain is per-pair: the two positions' common dimension
        // (full S / full O, or the shared prefix for mixed joins).
        for (v, v_dim) in state.vars() {
            for (other_id, other) in tps.iter().enumerate() {
                let Some(other) = other else { continue };
                if other_id == tp_id {
                    continue;
                }
                let masterish =
                    gosn.tp_is_master_of(other_id, tp_id) || gosn.tp_are_peers(other_id, tp_id);
                if !masterish {
                    continue;
                }
                let Some(o_dim) = other.dim_of(v) else {
                    continue;
                };
                let space_len = crate::bindings::op_space_len(&dims, [v_dim, o_dim]);
                if let Some(mask) = other.fold_var(v, space_len) {
                    state.unfold_var(v, &mask);
                }
            }
        }
        tps[tp_id] = Some(state);
    }
    Ok(InitOutcome {
        tps: tps
            .into_iter()
            .map(|t| t.expect("all TPs loaded"))
            .collect(),
    })
}

/// True when some TP inside an absolute-master supernode is empty — the
/// §5 "simple optimization" early-abort condition.
pub fn absolute_master_empty(gosn: &Gosn, tps: &[TpState]) -> bool {
    tps.iter()
        .any(|t| t.is_empty() && gosn.tp_in_absolute_master(t.id))
}

fn const_id(dict: &Dictionary, t: &TermPattern, dim: Dimension) -> Option<u32> {
    t.as_const().and_then(|c| dict.id(c, dim))
}

/// Loads one TP per the §5 rules (missing constants yield empty data).
#[allow(clippy::too_many_arguments)]
fn load_tp(
    tp_id: TpId,
    tp: &TriplePattern,
    vt: &VarTable,
    jorder: &JvarOrder,
    dict: &Dictionary,
    catalog: &impl Catalog,
    dims: &CubeDims,
) -> Result<TpState, LbrError> {
    let var_of = |t: &TermPattern| t.as_var().map(|v| vt.id(v).expect("var interned"));
    let (sv, pv, ov) = (var_of(&tp.s), var_of(&tp.p), var_of(&tp.o));
    let s_id = const_id(dict, &tp.s, Dimension::Subject);
    let p_id = const_id(dict, &tp.p, Dimension::Predicate);
    let o_id = const_id(dict, &tp.o, Dimension::Object);
    let s_known = tp.s.as_var().is_some() || s_id.is_some();
    let p_known = tp.p.as_var().is_some() || p_id.is_some();
    let o_known = tp.o.as_var().is_some() || o_id.is_some();
    let known = s_known && p_known && o_known;

    let data = match (sv, pv, ov) {
        // (f1 f2 f3): membership test.
        (None, None, None) => {
            let present = known
                && match catalog.load_po_row(s_id.unwrap(), p_id.unwrap())? {
                    Some(row) => row.contains(o_id.unwrap()),
                    None => false,
                };
            TpData::Zero { present }
        }
        // (?v f1 f2): subject candidates from one P-S row.
        (Some(v), None, None) => {
            let cands = if known {
                match catalog.load_ps_row(o_id.unwrap(), p_id.unwrap())? {
                    Some(row) => row.to_bitvec(),
                    None => BitVec::zeros(dims.n_subjects),
                }
            } else {
                BitVec::zeros(dims.n_subjects)
            };
            TpData::One {
                var: v,
                dim: Dimension::Subject,
                cands,
            }
        }
        // (f1 f2 ?v): object candidates from one P-O row.
        (None, None, Some(v)) => {
            let cands = if known {
                match catalog.load_po_row(s_id.unwrap(), p_id.unwrap())? {
                    Some(row) => row.to_bitvec(),
                    None => BitVec::zeros(dims.n_objects),
                }
            } else {
                BitVec::zeros(dims.n_objects)
            };
            TpData::One {
                var: v,
                dim: Dimension::Object,
                cands,
            }
        }
        // (?a f ?b).
        (Some(a), None, Some(b)) if a != b => {
            // Row dimension: the variable that comes first in orderbu; a
            // sole join variable wins; default to the subject.
            let (a_pos, b_pos) = (jorder.first_pos(a), jorder.first_pos(b));
            let subject_rows = a_pos <= b_pos;
            let loaded = if known {
                if subject_rows {
                    catalog.load_so(p_id.unwrap())?
                } else {
                    catalog.load_os(p_id.unwrap())?
                }
            } else {
                None
            };
            let (n_rows, n_cols) = if subject_rows {
                (dims.n_subjects, dims.n_objects)
            } else {
                (dims.n_objects, dims.n_subjects)
            };
            let mat = loaded.unwrap_or_else(|| BitMat::empty(n_rows, n_cols));
            if subject_rows {
                TpData::Two {
                    row_var: a,
                    row_dim: Dimension::Subject,
                    col_var: b,
                    col_dim: Dimension::Object,
                    mat,
                }
            } else {
                TpData::Two {
                    row_var: b,
                    row_dim: Dimension::Object,
                    col_var: a,
                    col_dim: Dimension::Subject,
                    mat,
                }
            }
        }
        // (?x f ?x): the diagonal of the S-O BitMat (shared IDs only).
        (Some(a), None, Some(_)) => {
            let mut cands = BitVec::zeros(dims.n_subjects);
            if known {
                if let Some(mat) = catalog.load_so(p_id.unwrap())? {
                    for &(r, ref row) in mat.rows() {
                        if r < dims.n_shared && row.contains(r) {
                            cands.set(r);
                        }
                    }
                }
            }
            TpData::One {
                var: a,
                dim: Dimension::Subject,
                cands,
            }
        }
        // (f ?p ?o): the P-O BitMat of the subject.
        (None, Some(p), Some(o)) if p != o => {
            let mat = if known {
                catalog.load_po(s_id.unwrap())?
            } else {
                None
            }
            .unwrap_or_else(|| BitMat::empty(dims.n_predicates, dims.n_objects));
            TpData::Two {
                row_var: p,
                row_dim: Dimension::Predicate,
                col_var: o,
                col_dim: Dimension::Object,
                mat,
            }
        }
        // (?s ?p f): the P-S BitMat of the object.
        (Some(s), Some(p), None) if p != s => {
            let mat = if known {
                catalog.load_ps(o_id.unwrap())?
            } else {
                None
            }
            .unwrap_or_else(|| BitMat::empty(dims.n_predicates, dims.n_subjects));
            TpData::Two {
                row_var: p,
                row_dim: Dimension::Predicate,
                col_var: s,
                col_dim: Dimension::Subject,
                mat,
            }
        }
        // (f1 ?p f2): predicate candidates — the P-O BitMat of f1 masked to
        // column f2.
        (None, Some(p), None) => {
            let mut cands = BitVec::zeros(dims.n_predicates);
            if known {
                if let Some(mat) = catalog.load_po(s_id.unwrap())? {
                    let o = o_id.unwrap();
                    for &(r, ref row) in mat.rows() {
                        if row.contains(o) {
                            cands.set(r);
                        }
                    }
                }
            }
            TpData::One {
                var: p,
                dim: Dimension::Predicate,
                cands,
            }
        }
        // (?s ?p ?o): one S-O BitMat per predicate (extension; the paper
        // lists this shape as under development).
        (Some(s), Some(pv), Some(o)) if s != pv && pv != o && s != o => {
            let mut mats = Vec::new();
            for pid in 0..dims.n_predicates {
                if let Some(m) = catalog.load_so(pid)? {
                    if !m.is_empty() {
                        mats.push((pid, m));
                    }
                }
            }
            TpData::Three {
                s_var: s,
                p_var: pv,
                o_var: o,
                mats,
            }
        }
        (Some(_), Some(_), Some(_)) => {
            return Err(LbrError::Unsupported(format!(
                "triple pattern with repeated variables across all positions: {tp}"
            )));
        }
        (None, Some(_), Some(_)) | (Some(_), Some(_), None) => {
            return Err(LbrError::Unsupported(format!(
                "triple pattern with a repeated predicate variable: {tp}"
            )));
        }
    };
    let _ = tp_id;
    Ok(TpState {
        id: tp_id,
        data,
        row_adj: Vec::new(),
        col_adj: Vec::new(),
        per_pred_adj: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarSpace;
    use lbr_bitmat::BitMatStore;
    use lbr_rdf::{Graph, Term, Triple};
    use lbr_sparql::classify::analyze;
    use lbr_sparql::parse_query;

    fn graph() -> lbr_rdf::EncodedGraph {
        let t = |s: &str, p: &str, o: &str| Triple::new(Term::iri(s), Term::iri(p), Term::iri(o));
        Graph::from_triples(vec![
            t("Julia", "actedIn", "Seinfeld"),
            t("Julia", "actedIn", "Veep"),
            t("Julia", "actedIn", "NewAdvOldChristine"),
            t("Julia", "actedIn", "CurbYourEnthu"),
            t("CurbYourEnthu", "location", "LosAngeles"),
            t("Larry", "actedIn", "CurbYourEnthu"),
            t("Jerry", "hasFriend", "Julia"),
            t("Jerry", "hasFriend", "Larry"),
            t("Seinfeld", "location", "NewYorkCity"),
            t("Veep", "location", "D.C."),
            t("NewAdvOldChristine", "location", "Jersey"),
        ])
        .encode()
    }

    const Q2: &str = r#"
        PREFIX : <>
        SELECT * WHERE {
          :Jerry :hasFriend ?friend .
          OPTIONAL { ?friend :actedIn ?sitcom . ?sitcom :location :NewYorkCity . } }
    "#;

    fn setup(
        query: &str,
    ) -> (
        lbr_rdf::EncodedGraph,
        BitMatStore,
        InitOutcome,
        Gosn,
        VarTable,
    ) {
        let g = graph();
        let store = BitMatStore::build(&g);
        let q = parse_query(query).unwrap();
        let analyzed = analyze(&q.pattern).unwrap();
        let vt = VarTable::from_tps(analyzed.gosn.tps()).unwrap();
        let est = crate::selectivity::estimate_all(analyzed.gosn.tps(), &g.dict, &store);
        let jorder = crate::jvar_order::get_jvar_order(&analyzed.gosn, &analyzed.goj, &vt, &est);
        let out = init(&analyzed.gosn, &vt, &jorder, &est, &g.dict, &store).unwrap();
        (g, store, out, analyzed.gosn, vt)
    }

    #[test]
    fn loads_q2_with_active_pruning() {
        let (_, _, out, gosn, _) = setup(Q2);
        // tp0 = (:Jerry :hasFriend ?friend): 2 candidates.
        assert_eq!(out.tps[0].count(), 2);
        // tp2 = (?sitcom :location :NewYorkCity): 1 candidate.
        assert_eq!(out.tps[2].count(), 1);
        // tp1 = (?friend :actedIn ?sitcom): actively pruned by its master
        // (2 friend values) and by its peer tp2 (1 sitcom value): Julia's
        // Seinfeld role is all that is left.
        assert_eq!(out.tps[1].count(), 1);
        assert!(!absolute_master_empty(&gosn, &out.tps));
    }

    #[test]
    fn unknown_constant_gives_empty_and_abort_signal() {
        let (_, _, out, gosn, _) = setup(
            "PREFIX : <> SELECT * WHERE { :Nobody :hasFriend ?friend . OPTIONAL { ?friend :actedIn ?s . } }",
        );
        assert!(out.tps[0].is_empty());
        assert!(absolute_master_empty(&gosn, &out.tps));
    }

    #[test]
    fn fold_unfold_roundtrip_on_state() {
        let (_, _, mut out, _, vt) = setup(Q2);
        let friend = vt.id("friend").unwrap();
        let space = vt.space(friend);
        assert_eq!(space, VarSpace::Shared);
        let tp1 = &mut out.tps[1];
        let before = tp1.count();
        let mask = tp1.fold_var(friend, 100).unwrap().resized(100);
        tp1.unfold_var(friend, &mask);
        assert_eq!(tp1.count(), before, "self-mask is a no-op");
    }

    #[test]
    fn adjacency_lookups() {
        let (_, _, mut out, _, _) = setup(Q2);
        let tp1 = &mut out.tps[1];
        tp1.build_adjacency();
        let TpData::Two { mat, .. } = &tp1.data else {
            panic!("expected Two")
        };
        let (r, c) = mat.iter().next().unwrap();
        assert_eq!(tp1.cols_of(r), &[c]);
        assert_eq!(tp1.rows_of(c), &[r]);
        assert!(tp1.cols_of(9999).is_empty());
    }

    #[test]
    fn membership_and_predicate_var_patterns() {
        let g = graph();
        let store = BitMatStore::build(&g);
        // Membership: true case and false case.
        let q = parse_query(
            "PREFIX : <> SELECT * WHERE { { :Jerry :hasFriend :Julia . } { ?x :actedIn ?y . } }",
        )
        .unwrap();
        let analyzed = analyze(&q.pattern).unwrap();
        let vt = VarTable::from_tps(analyzed.gosn.tps()).unwrap();
        let est = crate::selectivity::estimate_all(analyzed.gosn.tps(), &g.dict, &store);
        let jorder = crate::jvar_order::get_jvar_order(&analyzed.gosn, &analyzed.goj, &vt, &est);
        let out = init(&analyzed.gosn, &vt, &jorder, &est, &g.dict, &store).unwrap();
        assert!(matches!(out.tps[0].data, TpData::Zero { present: true }));

        // (s ?p ?o) and (?s ?p o) and (s ?p o).
        let q = parse_query(
            "PREFIX : <> SELECT * WHERE { { :Julia ?p ?o . } { ?s ?q :CurbYourEnthu . } { :Seinfeld ?r :NewYorkCity . } }",
        )
        .unwrap();
        let analyzed = analyze(&q.pattern).unwrap();
        let vt = VarTable::from_tps(analyzed.gosn.tps()).unwrap();
        let est = crate::selectivity::estimate_all(analyzed.gosn.tps(), &g.dict, &store);
        let jorder = crate::jvar_order::get_jvar_order(&analyzed.gosn, &analyzed.goj, &vt, &est);
        let out = init(&analyzed.gosn, &vt, &jorder, &est, &g.dict, &store).unwrap();
        assert_eq!(out.tps[0].count(), 4, "Julia has four triples");
        assert_eq!(
            out.tps[1].count(),
            2,
            "CurbYourEnthu as object: actedIn + location... "
        );
        assert_eq!(out.tps[2].count(), 1, "Seinfeld –location→ NYC");
    }

    #[test]
    fn all_var_tp_loads_every_predicate_slice() {
        let g = graph();
        let store = BitMatStore::build(&g);
        let q = parse_query("SELECT * WHERE { ?s ?p ?o . }").unwrap();
        let analyzed = analyze(&q.pattern).unwrap();
        let vt = VarTable::from_tps(analyzed.gosn.tps()).unwrap();
        let est = crate::selectivity::estimate_all(analyzed.gosn.tps(), &g.dict, &store);
        let jorder = crate::jvar_order::get_jvar_order(&analyzed.gosn, &analyzed.goj, &vt, &est);
        let out = init(&analyzed.gosn, &vt, &jorder, &est, &g.dict, &store).unwrap();
        // (?s ?p ?o) matches the whole dataset: 11 triples over 3 predicates.
        assert_eq!(out.tps[0].count(), 11);
        assert!(matches!(&out.tps[0].data, TpData::Three { mats, .. } if mats.len() == 3));
    }
}
