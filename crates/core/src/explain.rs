//! Query-plan introspection: a human-readable rendition of every decision
//! Algorithm 5.1 makes before touching data — the GoSN, the
//! classification, the jvar orders, the per-TP selectivity estimates, and
//! the load order. (The paper inspects Virtuoso's plans with its `explain`
//! tool; this is the LBR equivalent.)

use crate::bindings::VarTable;
use crate::error::LbrError;
use crate::init::load_order;
use crate::jvar_order::get_jvar_order;
use crate::selectivity::estimate_all;
use lbr_bitmat::Catalog;
use lbr_rdf::Dictionary;
use lbr_sparql::algebra::Query;
use lbr_sparql::classify::analyze;
use lbr_sparql::rewrite::rewrite_to_unf;
use std::fmt::Write as _;

/// Renders the plan of a query as text (one section per UNF branch).
pub fn explain(
    query: &Query,
    dict: &Dictionary,
    catalog: &impl Catalog,
) -> Result<String, LbrError> {
    let mut out = String::new();
    let branches = rewrite_to_unf(&query.pattern);
    let any_rule3 = branches.iter().any(|b| b.used_rule3);
    let _ = writeln!(
        out,
        "query: {query}\nUNION normal form: {} branch(es){}",
        branches.len(),
        if any_rule3 {
            " [rule 3 used → cross-branch best-match]"
        } else {
            ""
        }
    );
    // One analysis per branch, reused by the pushdown summary below and
    // the per-branch detail sections.
    let analyzed_branches = branches
        .iter()
        .map(|b| analyze(&b.pattern))
        .collect::<Result<Vec<_>, _>>()?;
    // Query form + solution modifiers and whether they push into the join
    // — mirroring execution exactly: rule 3 disables the quota globally,
    // and a branch only exploits it when its pattern is
    // variable-connected (the quota reaches `PlanNode::Connected`, never
    // the Cartesian combiner nodes) and best-match is ruled out
    // (`!nb_required` — best-match may drop rows, so a truncated run
    // could under-deliver).
    let form = if query.is_ask() {
        "ASK".to_string()
    } else {
        format!("SELECT ({:?} dedup)", query.dedup())
    };
    let quota = if any_rule3 {
        None
    } else {
        crate::modifiers::row_quota(&query.form, &query.modifiers)
    };
    let branch_pushes: Vec<bool> = analyzed_branches
        .iter()
        .map(|a| a.class.connected && !a.class.nb_required)
        .collect();
    let pushdown = match quota {
        Some(_) if !branch_pushes.iter().any(|&p| p) => {
            "none (no branch is eligible: best-match may drop rows, or the quota cannot \
             reach a Cartesian-product plan)"
                .to_string()
        }
        Some(q) if !branch_pushes.iter().all(|&p| p) => {
            format!("{q} rows, on eligible branches only (NB-required / Cartesian branches run unbounded)")
        }
        Some(q) => format!("{q} rows (the multi-way join stops enumerating seeds there)"),
        None => "none (full enumeration; ORDER BY / DISTINCT / rule-3 need every row)".to_string(),
    };
    let _ = writeln!(
        out,
        "form: {form}; modifiers: order_by={:?} limit={:?} offset={}\n\
         row-quota pushdown: {pushdown}",
        query
            .modifiers
            .order_by
            .iter()
            .map(|k| format!("{}{}", if k.descending { "-" } else { "+" }, k.var))
            .collect::<Vec<_>>(),
        query.modifiers.limit,
        query.modifiers.offset,
    );
    for (i, analyzed) in analyzed_branches.iter().enumerate() {
        let _ = writeln!(out, "\n── branch {i} ──");
        let gosn = &analyzed.gosn;
        let _ = writeln!(out, "GoSN: {}", gosn.serialized());
        for sn in 0..gosn.n_supernodes() {
            let kind = if gosn.is_absolute_master(sn) {
                "absolute master".to_string()
            } else {
                format!(
                    "slave of {:?}",
                    gosn.masters_of(sn).iter().collect::<Vec<_>>()
                )
            };
            let tps: Vec<String> = gosn
                .tps_of_sn(sn)
                .iter()
                .map(|&t| gosn.tp(t).to_string())
                .collect();
            let _ = writeln!(out, "  SN{sn} ({kind}): {}", tps.join(" . "));
        }
        let c = &analyzed.class;
        let _ = writeln!(
            out,
            "class: {}, GoJ {}, {}; max slave-SN jvars = {}; NB-reqd = {}",
            if c.well_designed {
                "well-designed"
            } else {
                "non-well-designed (App. B transformed)"
            },
            if c.cyclic { "cyclic" } else { "acyclic" },
            if c.connected {
                "connected"
            } else {
                "Cartesian product present"
            },
            c.max_slave_sn_jvars,
            c.nb_required,
        );

        let vt = VarTable::from_tps(gosn.tps())?;
        let estimates = estimate_all(gosn.tps(), dict, catalog);
        let _ = writeln!(out, "TP selectivity estimates:");
        for (tp_id, est) in estimates.iter().enumerate() {
            let _ = writeln!(out, "  tp{tp_id} {}  ≈{est}", gosn.tp(tp_id));
        }
        let jorder = get_jvar_order(gosn, &analyzed.goj, &vt, &estimates);
        let names = |vars: &[usize]| -> String {
            vars.iter()
                .map(|&v| format!("?{}", vt.name(v)))
                .collect::<Vec<_>>()
                .join(" ")
        };
        if jorder.greedy {
            let _ = writeln!(
                out,
                "jvar order (greedy, cyclic): {}",
                names(&jorder.bottom_up)
            );
        } else {
            let _ = writeln!(out, "jvar order bottom-up: {}", names(&jorder.bottom_up));
            let _ = writeln!(out, "jvar order top-down:  {}", names(&jorder.top_down));
        }
        let order = load_order(gosn, &estimates);
        let order_s: Vec<String> = order.iter().map(|t| format!("tp{t}")).collect();
        let _ = writeln!(out, "init load order: {}", order_s.join(" → "));

        // Planned kernel work of the prune phase, statically derivable
        // from the GoSN/GoJ via the sweep shared with `prune_triples`
        // (the runtime `prune_intersections` / `scratch_reuses` counters
        // in `--stats` and `/stats` report what actually ran —
        // data-empty folds can skip planned operations).
        let ops = crate::prune::planned_prune_ops(gosn, &analyzed.goj, &vt, &jorder);
        let _ = writeln!(
            out,
            "prune plan: {} semi-join(s) + {} clustered-semi-join(s) \
             over both jvar passes (run-aware compressed-set kernels)",
            ops.semi_joins, ops.clustered_groups,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_bitmat::BitMatStore;
    use lbr_rdf::{Graph, Term, Triple};
    use lbr_sparql::parse_query;

    #[test]
    fn explains_the_running_example() {
        let g = Graph::from_triples(vec![
            Triple::new(
                Term::iri("Jerry"),
                Term::iri("hasFriend"),
                Term::iri("Julia"),
            ),
            Triple::new(
                Term::iri("Julia"),
                Term::iri("actedIn"),
                Term::iri("Seinfeld"),
            ),
            Triple::new(
                Term::iri("Seinfeld"),
                Term::iri("location"),
                Term::iri("NYC"),
            ),
        ])
        .encode();
        let store = BitMatStore::build(&g);
        let q = parse_query(
            "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?friend .
               OPTIONAL { ?friend :actedIn ?sitcom . ?sitcom :location :NYC . } }",
        )
        .unwrap();
        let text = explain(&q, &g.dict, &store).unwrap();
        assert!(text.contains("GoSN: (SN0 ⟕ SN1)"), "{text}");
        assert!(text.contains("absolute master"));
        assert!(text.contains("slave of [0]"));
        assert!(text.contains("acyclic"));
        assert!(text.contains("NB-reqd = false"));
        assert!(text.contains("?friend"));
        assert!(text.contains("init load order"));
        assert!(text.contains("row-quota pushdown: none"), "{text}");
        // Per pass: ?friend crosses the master/slave edge (semi-joins) and
        // ?sitcom joins tp1 ⋈ tp2 inside the slave supernode's peer group
        // (one clustered-semi-join).
        assert!(
            text.contains("prune plan: 4 semi-join(s) + 2 clustered-semi-join(s)"),
            "{text}"
        );
    }

    #[test]
    fn explains_forms_and_modifier_pushdown() {
        let g = Graph::from_triples(vec![Triple::new(
            Term::iri("a"),
            Term::iri("p"),
            Term::iri("b"),
        )])
        .encode();
        let store = BitMatStore::build(&g);
        let q = parse_query("SELECT * WHERE { ?a <p> ?b . } LIMIT 3 OFFSET 2").unwrap();
        let text = explain(&q, &g.dict, &store).unwrap();
        assert!(text.contains("row-quota pushdown: 5 rows"), "{text}");
        let q = parse_query("ASK { ?a <p> ?b . }").unwrap();
        let text = explain(&q, &g.dict, &store).unwrap();
        assert!(text.contains("form: ASK"), "{text}");
        assert!(text.contains("row-quota pushdown: 1 rows"), "{text}");
        let q = parse_query("SELECT DISTINCT ?a WHERE { ?a <p> ?b . } LIMIT 3").unwrap();
        let text = explain(&q, &g.dict, &store).unwrap();
        assert!(text.contains("row-quota pushdown: none"), "{text}");
        let q = parse_query("SELECT * WHERE { ?a <p> ?b . } ORDER BY DESC(?b) LIMIT 3").unwrap();
        let text = explain(&q, &g.dict, &store).unwrap();
        assert!(text.contains("order_by=[\"-b\"]"), "{text}");
        assert!(text.contains("row-quota pushdown: none"), "{text}");
        // NB-required branches disable the quota — explain must say so
        // instead of advertising an early exit execution will not take.
        let q = parse_query(
            "SELECT * WHERE { ?a <p> ?b . OPTIONAL { ?b <q> ?c . ?c <r> ?a . } } LIMIT 1",
        )
        .unwrap();
        let text = explain(&q, &g.dict, &store).unwrap();
        assert!(text.contains("NB-reqd = true"), "{text}");
        assert!(
            text.contains("row-quota pushdown: none (no branch is eligible"),
            "{text}"
        );
        // A variable-disconnected (Cartesian) pattern plans as a Product
        // node, which never receives the quota — explain must not
        // advertise an early exit there either.
        let q = parse_query("SELECT * WHERE { ?a <p> ?b . ?c <q> ?d . } LIMIT 1").unwrap();
        let text = explain(&q, &g.dict, &store).unwrap();
        assert!(
            text.contains("row-quota pushdown: none (no branch is eligible"),
            "{text}"
        );
    }

    #[test]
    fn explains_union_and_cyclic() {
        let g = Graph::from_triples(vec![Triple::new(
            Term::iri("a"),
            Term::iri("p"),
            Term::iri("b"),
        )])
        .encode();
        let store = BitMatStore::build(&g);
        let q = parse_query(
            "PREFIX : <> SELECT * WHERE {
               { ?a :p ?b . ?b :p ?c . ?a :q ?c . } UNION { ?a :p ?b . } }",
        )
        .unwrap();
        let text = explain(&q, &g.dict, &store).unwrap();
        assert!(text.contains("2 branch(es)"));
        assert!(text.contains("greedy, cyclic"));
    }
}
