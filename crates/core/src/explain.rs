//! Query-plan introspection: a human-readable rendition of every decision
//! Algorithm 5.1 makes before touching data — the GoSN, the
//! classification, the jvar orders, the per-TP selectivity estimates, and
//! the load order. (The paper inspects Virtuoso's plans with its `explain`
//! tool; this is the LBR equivalent.)

use crate::bindings::VarTable;
use crate::error::LbrError;
use crate::init::load_order;
use crate::jvar_order::get_jvar_order;
use crate::selectivity::estimate_all;
use lbr_bitmat::Catalog;
use lbr_rdf::Dictionary;
use lbr_sparql::algebra::Query;
use lbr_sparql::classify::analyze;
use lbr_sparql::rewrite::rewrite_to_unf;
use std::fmt::Write as _;

/// Renders the plan of a query as text (one section per UNF branch).
pub fn explain(
    query: &Query,
    dict: &Dictionary,
    catalog: &impl Catalog,
) -> Result<String, LbrError> {
    let mut out = String::new();
    let branches = rewrite_to_unf(&query.pattern);
    let any_rule3 = branches.iter().any(|b| b.used_rule3);
    let _ = writeln!(
        out,
        "query: {query}\nUNION normal form: {} branch(es){}",
        branches.len(),
        if any_rule3 {
            " [rule 3 used → cross-branch best-match]"
        } else {
            ""
        }
    );
    // One analysis per branch, reused by the pushdown summary below and
    // the per-branch detail sections.
    let analyzed_branches = branches
        .iter()
        .map(|b| analyze(&b.pattern))
        .collect::<Result<Vec<_>, _>>()?;
    // Query form + solution modifiers and whether they push into the join
    // — mirroring execution exactly: rule 3 disables the quota globally,
    // and a branch only exploits it when its pattern is
    // variable-connected (the quota reaches `PlanNode::Connected`, never
    // the Cartesian combiner nodes) and best-match is ruled out
    // (`!nb_required` — best-match may drop rows, so a truncated run
    // could under-deliver).
    let form = if query.is_ask() {
        "ASK".to_string()
    } else {
        format!("SELECT ({:?} dedup)", query.dedup())
    };
    let quota = if any_rule3 {
        None
    } else {
        crate::modifiers::row_quota(&query.form, &query.modifiers)
    };
    let branch_pushes: Vec<bool> = analyzed_branches
        .iter()
        .map(|a| a.class.connected && !a.class.nb_required)
        .collect();
    let pushdown = match quota {
        Some(_) if !branch_pushes.iter().any(|&p| p) => {
            "none (no branch is eligible: best-match may drop rows, or the quota cannot \
             reach a Cartesian-product plan)"
                .to_string()
        }
        Some(q) if !branch_pushes.iter().all(|&p| p) => {
            format!("{q} rows, on eligible branches only (NB-required / Cartesian branches run unbounded)")
        }
        Some(q) => format!("{q} rows (the multi-way join stops enumerating seeds there)"),
        None => "none (full enumeration; ORDER BY / DISTINCT / rule-3 need every row)".to_string(),
    };
    let _ = writeln!(
        out,
        "form: {form}; modifiers: order_by={:?} limit={:?} offset={}\n\
         row-quota pushdown: {pushdown}",
        query
            .modifiers
            .order_by
            .iter()
            .map(|k| format!("{}{}", if k.descending { "-" } else { "+" }, k.var))
            .collect::<Vec<_>>(),
        query.modifiers.limit,
        query.modifiers.offset,
    );
    for (i, analyzed) in analyzed_branches.iter().enumerate() {
        let _ = writeln!(out, "\n── branch {i} ──");
        let gosn = &analyzed.gosn;
        let _ = writeln!(out, "GoSN: {}", gosn.serialized());
        for sn in 0..gosn.n_supernodes() {
            let kind = if gosn.is_absolute_master(sn) {
                "absolute master".to_string()
            } else {
                format!(
                    "slave of {:?}",
                    gosn.masters_of(sn).iter().collect::<Vec<_>>()
                )
            };
            let tps: Vec<String> = gosn
                .tps_of_sn(sn)
                .iter()
                .map(|&t| gosn.tp(t).to_string())
                .collect();
            let _ = writeln!(out, "  SN{sn} ({kind}): {}", tps.join(" . "));
        }
        let c = &analyzed.class;
        let _ = writeln!(
            out,
            "class: {}, GoJ {}, {}; max slave-SN jvars = {}; NB-reqd = {}",
            if c.well_designed {
                "well-designed"
            } else {
                "non-well-designed (App. B transformed)"
            },
            if c.cyclic { "cyclic" } else { "acyclic" },
            if c.connected {
                "connected"
            } else {
                "Cartesian product present"
            },
            c.max_slave_sn_jvars,
            c.nb_required,
        );

        let vt = VarTable::from_tps(gosn.tps())?;
        let estimates = estimate_all(gosn.tps(), dict, catalog);
        let _ = writeln!(out, "TP selectivity estimates:");
        for (tp_id, est) in estimates.iter().enumerate() {
            let _ = writeln!(out, "  tp{tp_id} {}  ≈{est}", gosn.tp(tp_id));
        }
        let jorder = get_jvar_order(gosn, &analyzed.goj, &vt, &estimates);
        let names = |vars: &[usize]| -> String {
            vars.iter()
                .map(|&v| format!("?{}", vt.name(v)))
                .collect::<Vec<_>>()
                .join(" ")
        };
        if jorder.greedy {
            let _ = writeln!(
                out,
                "jvar order (greedy, cyclic): {}",
                names(&jorder.bottom_up)
            );
        } else {
            let _ = writeln!(out, "jvar order bottom-up: {}", names(&jorder.bottom_up));
            let _ = writeln!(out, "jvar order top-down:  {}", names(&jorder.top_down));
        }
        let order = load_order(gosn, &estimates);
        let order_s: Vec<String> = order.iter().map(|t| format!("tp{t}")).collect();
        let _ = writeln!(out, "init load order: {}", order_s.join(" → "));

        // Planned kernel work of the prune phase, statically derivable
        // from the GoSN/GoJ via the sweep shared with `prune_triples`
        // (the runtime `prune_intersections` / `scratch_reuses` counters
        // in `--stats` and `/stats` report what actually ran —
        // data-empty folds can skip planned operations).
        let ops = crate::prune::planned_prune_ops(gosn, &analyzed.goj, &vt, &jorder);
        let _ = writeln!(
            out,
            "prune plan: {} semi-join(s) + {} clustered-semi-join(s) \
             over both jvar passes (run-aware compressed-set kernels)",
            ops.semi_joins, ops.clustered_groups,
        );
    }
    Ok(out)
}

/// Renders the planned tree annotated with what execution actually did:
/// per-stage wall time, per-TP and per-jvar estimated-vs-actual
/// cardinalities (the selectivity-error feed for adaptive ordering), and
/// join seeds/rows — assembled from the spans a forced trace collected
/// around [`crate::engine::LbrEngine::execute_plan`].
pub fn render_analyze(
    query: &Query,
    dict: &Dictionary,
    catalog: &impl Catalog,
    spans: &[lbr_obs::Span],
    total: std::time::Duration,
    output: &crate::bindings::QueryOutput,
) -> Result<String, LbrError> {
    let mut out = explain(query, dict, catalog)?;
    let _ = writeln!(out, "\n══ ANALYZE (executed) ══");
    let _ = writeln!(
        out,
        "total {}µs; rows {} ({} with NULLs)",
        total.as_micros(),
        output.rows.len(),
        output.rows_with_nulls(),
    );
    let finalize_us: u64 = spans
        .iter()
        .filter(|s| s.name == "finalize")
        .map(|s| s.dur_us)
        .sum();
    let _ = writeln!(out, "finalize (modifier seam): {finalize_us}µs");

    // Branch sections are delimited by the zero-duration `branch` markers
    // the executor stamps; spans between marker i and i+1 belong to
    // branch i.
    let marks: Vec<usize> = spans
        .iter()
        .enumerate()
        .filter(|(_, s)| s.name == "branch")
        .map(|(i, _)| i)
        .collect();
    let branches = rewrite_to_unf(&query.pattern);
    for (b, &start) in marks.iter().enumerate() {
        let end = marks.get(b + 1).copied().unwrap_or(spans.len());
        let section = &spans[start + 1..end];
        let _ = writeln!(out, "── branch {b} actuals ──");
        for s in section.iter().filter(|s| s.name == "init") {
            let _ = writeln!(out, "  init: {}µs", s.dur_us);
        }
        for s in section.iter().filter(|s| s.name == "prune") {
            let _ = writeln!(
                out,
                "  prune: {}µs, {} → {} triples ({} intersections)",
                s.dur_us,
                s.attr("initial_triples").unwrap_or(0),
                s.attr("triples_after_pruning").unwrap_or(0),
                s.attr("intersections").unwrap_or(0),
            );
        }
        for s in section.iter().filter(|s| s.name == "prune_pass") {
            let pass = s.attr("pass").unwrap_or(0);
            let _ = writeln!(
                out,
                "    pass {} ({}): {}µs over {} jvar(s)",
                pass + 1,
                if pass == 0 { "bottom-up" } else { "top-down" },
                s.dur_us,
                s.attr("jvars").unwrap_or(0),
            );
        }
        // The plan-side estimates this branch ran with, for the
        // estimate-vs-actual comparison.
        let branch_info = branches.get(b).and_then(|br| {
            let analyzed = analyze(&br.pattern).ok()?;
            let vt = VarTable::from_tps(analyzed.gosn.tps()).ok()?;
            let estimates = estimate_all(analyzed.gosn.tps(), dict, catalog);
            Some((analyzed, vt, estimates))
        });
        let tp_spans: Vec<_> = section.iter().filter(|s| s.name == "tp").collect();
        if !tp_spans.is_empty() {
            let _ = writeln!(out, "  TP cardinality, estimated vs actual:");
            for s in &tp_spans {
                let (est, actual) = (s.attr("est").unwrap_or(0), s.attr("actual").unwrap_or(0));
                let _ = writeln!(
                    out,
                    "    tp{}  est≈{est}  actual={actual}  {}",
                    s.attr("tp").unwrap_or(0),
                    selectivity_error(est, actual),
                );
            }
        }
        let jvar_spans: Vec<_> = section.iter().filter(|s| s.name == "jvar").collect();
        if let Some((analyzed, vt, estimates)) = &branch_info {
            if !jvar_spans.is_empty() {
                let _ = writeln!(out, "  jvar cardinality, estimated vs actual candidates:");
                // One line per jvar, in first-recorded order; the actual
                // is the final pass's surviving candidate count.
                let mut seen: Vec<u64> = Vec::new();
                for s in &jvar_spans {
                    let var = s.attr("var").unwrap_or(0);
                    if seen.contains(&var) {
                        continue;
                    }
                    seen.push(var);
                    let name = vt.name(var as usize);
                    // Planner-side bound: the smallest estimate among the
                    // TPs that bind this variable.
                    let est = analyzed
                        .gosn
                        .tps()
                        .iter()
                        .enumerate()
                        .filter(|(_, tp)| tp.has_var(name))
                        .map(|(i, _)| estimates.get(i).copied().unwrap_or(0))
                        .min()
                        .unwrap_or(0);
                    let per_pass: Vec<String> = jvar_spans
                        .iter()
                        .filter(|s| s.attr("var") == Some(var))
                        .map(|s| {
                            format!(
                                "pass{}={}",
                                s.attr("pass").unwrap_or(0) + 1,
                                s.attr("cand").unwrap_or(0)
                            )
                        })
                        .collect();
                    let actual = jvar_spans
                        .iter()
                        .rev()
                        .find(|s| s.attr("var") == Some(var))
                        .and_then(|s| s.attr("cand"))
                        .unwrap_or(0);
                    let _ = writeln!(
                        out,
                        "    ?{name}  est≈{est}  actual={actual} ({})  {}",
                        per_pass.join(", "),
                        selectivity_error(est, actual),
                    );
                }
            }
        }
        for s in section.iter().filter(|s| s.name == "join") {
            let _ = writeln!(
                out,
                "  join: {}µs, seeds={} rows={} workers={}",
                s.dur_us,
                s.attr("seeds").unwrap_or(0),
                s.attr("rows").unwrap_or(0),
                s.attr("workers").unwrap_or(0),
            );
        }
        for s in section.iter().filter(|s| s.name == "best_match") {
            let _ = writeln!(
                out,
                "  best_match: {}µs → {} row(s)",
                s.dur_us,
                s.attr("rows").unwrap_or(0),
            );
        }
    }
    if marks.is_empty() {
        let _ = writeln!(out, "(no branch executed — empty-result early abort)");
    }
    Ok(out)
}

/// Formats the estimate-vs-actual selectivity error as a direction and a
/// ratio: `over ×3.0` means the planner expected 3× more than survived.
fn selectivity_error(est: u64, actual: u64) -> String {
    if est == actual {
        return "err=exact".to_string();
    }
    let (hi, lo, dir) = if est > actual {
        (est, actual, "over")
    } else {
        (actual, est, "under")
    };
    format!("err={dir} ×{:.1}", hi as f64 / lo.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_bitmat::BitMatStore;
    use lbr_rdf::{Graph, Term, Triple};
    use lbr_sparql::parse_query;

    #[test]
    fn explains_the_running_example() {
        let g = Graph::from_triples(vec![
            Triple::new(
                Term::iri("Jerry"),
                Term::iri("hasFriend"),
                Term::iri("Julia"),
            ),
            Triple::new(
                Term::iri("Julia"),
                Term::iri("actedIn"),
                Term::iri("Seinfeld"),
            ),
            Triple::new(
                Term::iri("Seinfeld"),
                Term::iri("location"),
                Term::iri("NYC"),
            ),
        ])
        .encode();
        let store = BitMatStore::build(&g);
        let q = parse_query(
            "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?friend .
               OPTIONAL { ?friend :actedIn ?sitcom . ?sitcom :location :NYC . } }",
        )
        .unwrap();
        let text = explain(&q, &g.dict, &store).unwrap();
        assert!(text.contains("GoSN: (SN0 ⟕ SN1)"), "{text}");
        assert!(text.contains("absolute master"));
        assert!(text.contains("slave of [0]"));
        assert!(text.contains("acyclic"));
        assert!(text.contains("NB-reqd = false"));
        assert!(text.contains("?friend"));
        assert!(text.contains("init load order"));
        assert!(text.contains("row-quota pushdown: none"), "{text}");
        // Per pass: ?friend crosses the master/slave edge (semi-joins) and
        // ?sitcom joins tp1 ⋈ tp2 inside the slave supernode's peer group
        // (one clustered-semi-join).
        assert!(
            text.contains("prune plan: 4 semi-join(s) + 2 clustered-semi-join(s)"),
            "{text}"
        );
    }

    #[test]
    fn explains_forms_and_modifier_pushdown() {
        let g = Graph::from_triples(vec![Triple::new(
            Term::iri("a"),
            Term::iri("p"),
            Term::iri("b"),
        )])
        .encode();
        let store = BitMatStore::build(&g);
        let q = parse_query("SELECT * WHERE { ?a <p> ?b . } LIMIT 3 OFFSET 2").unwrap();
        let text = explain(&q, &g.dict, &store).unwrap();
        assert!(text.contains("row-quota pushdown: 5 rows"), "{text}");
        let q = parse_query("ASK { ?a <p> ?b . }").unwrap();
        let text = explain(&q, &g.dict, &store).unwrap();
        assert!(text.contains("form: ASK"), "{text}");
        assert!(text.contains("row-quota pushdown: 1 rows"), "{text}");
        let q = parse_query("SELECT DISTINCT ?a WHERE { ?a <p> ?b . } LIMIT 3").unwrap();
        let text = explain(&q, &g.dict, &store).unwrap();
        assert!(text.contains("row-quota pushdown: none"), "{text}");
        let q = parse_query("SELECT * WHERE { ?a <p> ?b . } ORDER BY DESC(?b) LIMIT 3").unwrap();
        let text = explain(&q, &g.dict, &store).unwrap();
        assert!(text.contains("order_by=[\"-b\"]"), "{text}");
        assert!(text.contains("row-quota pushdown: none"), "{text}");
        // NB-required branches disable the quota — explain must say so
        // instead of advertising an early exit execution will not take.
        let q = parse_query(
            "SELECT * WHERE { ?a <p> ?b . OPTIONAL { ?b <q> ?c . ?c <r> ?a . } } LIMIT 1",
        )
        .unwrap();
        let text = explain(&q, &g.dict, &store).unwrap();
        assert!(text.contains("NB-reqd = true"), "{text}");
        assert!(
            text.contains("row-quota pushdown: none (no branch is eligible"),
            "{text}"
        );
        // A variable-disconnected (Cartesian) pattern plans as a Product
        // node, which never receives the quota — explain must not
        // advertise an early exit there either.
        let q = parse_query("SELECT * WHERE { ?a <p> ?b . ?c <q> ?d . } LIMIT 1").unwrap();
        let text = explain(&q, &g.dict, &store).unwrap();
        assert!(
            text.contains("row-quota pushdown: none (no branch is eligible"),
            "{text}"
        );
    }

    #[test]
    fn explain_analyze_reports_actuals_per_tp_and_jvar() {
        let g = Graph::from_triples(vec![
            Triple::new(
                Term::iri("Jerry"),
                Term::iri("hasFriend"),
                Term::iri("Julia"),
            ),
            Triple::new(
                Term::iri("Jerry"),
                Term::iri("hasFriend"),
                Term::iri("George"),
            ),
            Triple::new(
                Term::iri("Julia"),
                Term::iri("actedIn"),
                Term::iri("Seinfeld"),
            ),
            Triple::new(
                Term::iri("Seinfeld"),
                Term::iri("location"),
                Term::iri("NYC"),
            ),
        ])
        .encode();
        let store = BitMatStore::build(&g);
        let q = parse_query(
            "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?friend .
               OPTIONAL { ?friend :actedIn ?sitcom . ?sitcom :location :NYC . } }",
        )
        .unwrap();
        let engine = crate::engine::LbrEngine::new(&store, &g.dict).with_threads(2);
        let text = engine.explain_analyze(&q).unwrap();
        // Planned tree still present…
        assert!(text.contains("GoSN: (SN0 ⟕ SN1)"), "{text}");
        // …annotated with executed actuals.
        assert!(text.contains("══ ANALYZE (executed) ══"), "{text}");
        assert!(text.contains("rows 2"), "{text}");
        assert!(text.contains("── branch 0 actuals ──"), "{text}");
        assert!(text.contains("init: "), "{text}");
        assert!(text.contains("prune: "), "{text}");
        assert!(text.contains("pass 1 (bottom-up)"), "{text}");
        assert!(text.contains("pass 2 (top-down)"), "{text}");
        assert!(
            text.contains("TP cardinality, estimated vs actual:"),
            "{text}"
        );
        assert!(text.contains("tp0  est≈"), "{text}");
        assert!(
            text.contains("jvar cardinality, estimated vs actual candidates:"),
            "{text}"
        );
        assert!(text.contains("?friend  est≈"), "{text}");
        assert!(text.contains("?sitcom  est≈"), "{text}");
        assert!(text.contains("join: "), "{text}");
        assert!(text.contains("seeds="), "{text}");
        // The forced trace is drained: nothing left active on the thread.
        assert!(!lbr_obs::trace_active());
    }

    #[test]
    fn selectivity_error_formats_direction_and_ratio() {
        assert_eq!(selectivity_error(6, 2), "err=over ×3.0");
        assert_eq!(selectivity_error(2, 6), "err=under ×3.0");
        assert_eq!(selectivity_error(4, 4), "err=exact");
        assert_eq!(selectivity_error(3, 0), "err=over ×3.0");
    }

    #[test]
    fn explains_union_and_cyclic() {
        let g = Graph::from_triples(vec![Triple::new(
            Term::iri("a"),
            Term::iri("p"),
            Term::iri("b"),
        )])
        .encode();
        let store = BitMatStore::build(&g);
        let q = parse_query(
            "PREFIX : <> SELECT * WHERE {
               { ?a :p ?b . ?b :p ?c . ?a :q ?c . } UNION { ?a :p ?b . } }",
        )
        .unwrap();
        let text = explain(&q, &g.dict, &store).unwrap();
        assert!(text.contains("2 branch(es)"));
        assert!(text.contains("greedy, cyclic"));
    }
}
