//! The multi-way pipelined join (Algorithm 5.4), with nullification and
//! the FaN (filter-and-nullification) hook of §5.2.
//!
//! TPs are visited depth-first in `stps` order (selective absolute masters
//! first, then down the master-slave hierarchy). Each recursion level
//! handles exactly one TP — the first unvisited one with at least one bound
//! variable — enumerating its triples consistent with the current variable
//! map. A slave TP with no consistent triple binds its remaining variables
//! to NULL; an absolute-master TP with no consistent triple rolls the
//! branch back. No pairwise intermediate results or hash tables are
//! materialized: the only extra memory is one slot per query variable
//! (the paper's `vmap`).
//!
//! Because masters precede slaves in `stps` and a level only binds
//! still-free variables, master bindings win over slave bindings for
//! shared variables — the paper's output rule.
//!
//! ## Cursor-based enumeration, zero-allocation steady state
//!
//! The recursion enumerates candidates **directly off the compressed
//! BitMat rows**: forward lookups iterate a TP's own matrix rows
//! ([`lbr_bitmat::BitRow::iter_ones`] cursors), reverse lookups iterate
//! the transposed copies built by `TpState::build_adjacency`, and
//! membership tests binary-search the compressed representation. No
//! candidate ID vectors or adjacency lists are materialized or cloned per
//! recursion level; the only per-row allocation left in the steady state
//! is the pushed result row itself (assembled in a per-worker reusable
//! buffer first — [`ExecStats::scratch_reuses`] counts those reuses).
//!
//! ## Parallel execution
//!
//! The pipeline is embarrassingly parallel at the root: every triple
//! enumerated by the first TP starts an independent subtree, and the
//! recursion never reads state written by a sibling subtree. The
//! [`multi_way_join_with`] entry point exploits this by **root
//! partitioning**: the root TP's candidate enumeration is split into
//! coarse contiguous *units* (a candidate ID, a compressed matrix row, or
//! a predicate-slice row — O(rows) plan memory, not O(triples)), unit
//! ranges are claimed by `std::thread::scope` workers off a shared atomic
//! counter, and each worker expands its units lazily in exactly the order
//! the serial recursion would. Each worker owns a private [`Ctx`]
//! (slots / binder / visited / rows / stats) over the shared read-only
//! [`JoinInputs`], so no synchronization happens inside the join itself.
//!
//! **Determinism guarantee:** chunk results are merged back in chunk
//! (i.e. root-enumeration) order and each chunk enumerates its units in
//! order, so the produced rows — and the summed [`ExecStats`] counters —
//! are *byte-identical* to the serial engine (`threads = 1` runs the
//! serial recursion itself, not a one-worker simulation of it).

use crate::bindings::{Binding, VarId, VarTable};
use crate::filter_eval::{self, VarLookup};
use crate::init::{TpData, TpState};
use lbr_bitmat::CubeDims;
use lbr_rdf::{Dictionary, Dimension, Term};
use lbr_sparql::algebra::Expr;
use lbr_sparql::gosn::{Gosn, SnId, TpId};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How many [`Ctx::full`] polls elapse between wall-clock reads when a
/// deadline is set. `Instant::now()` is a vDSO call (~20ns) but the poll
/// sits on the seed-enumeration hot path, so it is amortized.
const DEADLINE_POLL_MASK: u32 = 0x3FF; // every 1024 polls

/// A variable slot in the paper's `vmap`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// Not yet bound.
    Free,
    /// Bound to NULL by an unmatched slave.
    Null,
    /// Bound to a value.
    Val(Binding),
}

/// Inputs of the join phase.
pub struct JoinInputs<'a> {
    /// Loaded and pruned TPs (adjacency built).
    pub tps: &'a [TpState],
    /// The query's GoSN.
    pub gosn: &'a Gosn,
    /// Variable table.
    pub vt: &'a VarTable,
    /// Bitcube dimensions.
    pub dims: CubeDims,
    /// Dictionary (needed only to decode bindings for FaN filters).
    pub dict: &'a Dictionary,
    /// Filters evaluated at output time: `(Some(sn), e)` for supernode
    /// filters (failure nullifies slave supernodes / drops master rows),
    /// `(None, e)` for global filters (failure drops the row).
    ///
    /// Supernode filters are evaluated *scoped*: only variables occurring
    /// in a TP of that supernode are visible; any other variable reads as
    /// unbound, collapsing to `false` under the documented error→false
    /// semantics (this matches the compositional evaluation of the
    /// reference oracle).
    pub fan_filters: Vec<(Option<SnId>, &'a Expr)>,
    /// Early-exit row quota (LIMIT/ASK pushdown): stop enumerating once
    /// this many rows have been emitted. At `threads = 1` the join stops
    /// *exactly* at the quota; with N workers each claimed chunk is
    /// bounded by the quota and workers stop claiming chunks once the
    /// already-produced rows cover it, so the overshoot is bounded by the
    /// chunks in flight. The produced rows are always a prefix of the
    /// serial unbounded enumeration. `None` = run to completion.
    pub quota: Option<usize>,
    /// Execution deadline: once it passes, enumeration stops claiming new
    /// subtrees (polled every [`DEADLINE_POLL_MASK`]+1 quota checks and at
    /// every parallel chunk claim) and [`ExecStats::deadline_expired`] is
    /// set. The rows produced so far are discarded by the engine, which
    /// surfaces `LbrError::DeadlineExceeded` instead. `None` = no limit.
    pub deadline: Option<Instant>,
}

/// Statistics of the join phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    /// Rows whose bindings the nullification operator rewrote (0 for
    /// well-designed acyclic queries — Lemma 3.3 in action).
    pub nullification_fired: u64,
    /// Rows dropped by FaN / global filters.
    pub rows_filtered: u64,
    /// Root-TP seeds (independent subtrees) the enumeration started.
    /// Without a quota this equals the root TP's full candidate
    /// enumeration; with one it stops at the seed producing the last
    /// needed row — the verifiable early-exit evidence.
    pub seeds_enumerated: u64,
    /// Rows assembled in the per-worker reusable row/failure scratch
    /// buffers instead of a fresh allocation — one per emit that survives
    /// the FaN stage, so (like the other counters) the sum is identical at
    /// every thread count on unbounded runs.
    pub scratch_reuses: u64,
    /// Whether [`JoinInputs::deadline`] passed during the join — the rows
    /// returned alongside are then an arbitrary truncation, not an
    /// answer, and the caller must discard them.
    pub deadline_expired: bool,
}

impl ExecStats {
    /// Accumulates another worker's counters (order-independent sums, so
    /// the merged stats equal the serial run's).
    fn absorb(&mut self, other: &ExecStats) {
        self.nullification_fired += other.nullification_fired;
        self.rows_filtered += other.rows_filtered;
        self.seeds_enumerated += other.seeds_enumerated;
        self.scratch_reuses += other.scratch_reuses;
        self.deadline_expired |= other.deadline_expired;
    }
}

/// The paper's `sorted-tps`: absolute masters ascending by remaining triple
/// count, then down the master-slave hierarchy, selective TPs first.
pub fn sort_tps(tps: &[TpState], gosn: &Gosn) -> Vec<TpId> {
    let mut order: Vec<TpId> = (0..tps.len()).collect();
    order.sort_by_key(|&tp| {
        let sn = gosn.sn_of_tp(tp);
        (gosn.masters_of(sn).len(), tps[tp].count(), tp)
    });
    order
}

/// Runs the multi-way join serially, returning full-width rows (one column
/// per variable in [`VarTable`] order).
pub fn multi_way_join(inp: &JoinInputs<'_>) -> (Vec<Vec<Option<Binding>>>, ExecStats) {
    multi_way_join_with(inp, 1)
}

/// Runs the multi-way join on up to `threads` worker threads by
/// partitioning the root TP's candidate enumeration (see the module docs
/// for the scheme and the determinism guarantee). `threads <= 1` runs the
/// exact serial recursion.
pub fn multi_way_join_with(
    inp: &JoinInputs<'_>,
    threads: usize,
) -> (Vec<Vec<Option<Binding>>>, ExecStats) {
    let sh = Shared::new(inp);
    if sh.stps.is_empty() {
        let mut ctx = Ctx::new(&sh);
        ctx.emit();
        ctx.stats.deadline_expired = sh.expired.load(Ordering::Relaxed);
        return (ctx.rows, ctx.stats);
    }
    if threads <= 1 {
        let mut ctx = Ctx::new(&sh);
        recurse(&mut ctx);
        ctx.stats.deadline_expired = sh.expired.load(Ordering::Relaxed);
        return (ctx.rows, ctx.stats);
    }

    let root = Ctx::new(&sh).select_next();
    if inp.tps[root].count() == 0 {
        // The root TP matches nothing: the whole join is a single
        // rolled-back branch (absolute master) or one nulled-slave branch
        // — there is nothing to partition, so run the serial recursion.
        let mut ctx = Ctx::new(&sh);
        recurse(&mut ctx);
        ctx.stats.deadline_expired = sh.expired.load(Ordering::Relaxed);
        return (ctx.rows, ctx.stats);
    }
    let units = RootUnits::plan(inp, root);
    let n_units = units.len();

    // Oversplit into more chunks than workers so a skewed subtree does not
    // serialize the tail; chunks stay contiguous so the in-order merge
    // reproduces the serial row order exactly.
    let n_chunks = n_units.min(threads.saturating_mul(8)).max(1);
    let chunk_size = n_units.div_ceil(n_chunks);
    // Both ends clamped: with ceil-division the last chunks can start past
    // `n_units` (e.g. 100 units / 16 chunks → size 7 → chunk 15 starts at
    // 105); such empty tails are dropped.
    let bounds: Vec<(usize, usize)> = (0..n_chunks)
        .map(|i| {
            (
                (i * chunk_size).min(n_units),
                ((i + 1) * chunk_size).min(n_units),
            )
        })
        .filter(|(start, end)| start < end)
        .collect();
    let next = AtomicUsize::new(0);
    // The shared row quota: workers stop claiming chunks once the chunks
    // already run have produced enough rows. Claimed chunks always form a
    // prefix of the chunk sequence, and each chunk's rows are a prefix of
    // its serial enumeration, so the first `quota` merged rows equal the
    // serial engine's first `quota` rows exactly.
    let rows_done = AtomicUsize::new(0);
    type ChunkResult = (Vec<Vec<Option<Binding>>>, ExecStats);
    let results: Vec<Mutex<Option<ChunkResult>>> =
        bounds.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads.min(bounds.len()) {
            scope.spawn(|| {
                let mut ctx = Ctx::new(&sh);
                loop {
                    if inp
                        .quota
                        .is_some_and(|q| rows_done.load(Ordering::Relaxed) >= q)
                        || sh.expired.load(Ordering::Relaxed)
                    {
                        break;
                    }
                    // Chunk claims are rare enough (≤ 8 × threads per
                    // join) to afford an exact clock read each time.
                    if inp.deadline.is_some_and(|d| Instant::now() >= d) {
                        sh.expired.store(true, Ordering::Relaxed);
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(start, end)) = bounds.get(i) else {
                        break;
                    };
                    units.run(&mut ctx, root, start, end);
                    let rows = std::mem::take(&mut ctx.rows);
                    let stats = std::mem::take(&mut ctx.stats);
                    rows_done.fetch_add(rows.len(), Ordering::Relaxed);
                    *results[i].lock().expect("chunk slot lock") = Some((rows, stats));
                }
            });
        }
    });

    let mut rows = Vec::new();
    let mut stats = ExecStats::default();
    let expired = sh.expired.load(Ordering::Relaxed);
    for cell in results {
        // With a quota (or an expired deadline), trailing chunks may
        // legitimately be unclaimed.
        let Some((mut r, s)) = cell.into_inner().expect("chunk slot lock") else {
            debug_assert!(
                inp.quota.is_some() || expired,
                "only a quota or deadline leaves chunks unclaimed"
            );
            continue;
        };
        rows.append(&mut r);
        stats.absorb(&s);
    }
    stats.deadline_expired |= expired;
    (rows, stats)
}

/// The root TP's candidate enumeration, partitioned into coarse
/// contiguous *units* (a candidate ID, a compressed matrix row, or a
/// predicate-slice row) instead of one seed per triple, so the partition
/// plan stays O(rows) even when the root matches millions of triples.
/// Units expand lazily inside [`RootUnits::run`], in exactly the order
/// the serial recursion enumerates them.
enum RootUnits {
    /// A present membership test: exactly one unit with no bindings.
    Zero,
    /// Unit = one candidate ID of the single variable.
    One { ids: Vec<u32> },
    /// Unit = one non-empty compressed matrix row (its columns expand
    /// lazily off the row cursor).
    Two { n_rows: usize },
    /// Unit = one row of one predicate slice, as
    /// `(predicate-slice index, row index)`.
    Three { pred_rows: Vec<(u32, u32)> },
}

impl RootUnits {
    /// Builds the partition plan. The caller has checked
    /// `inp.tps[root].count() > 0`, so at least one unit exists and every
    /// matrix row is non-empty.
    fn plan(inp: &JoinInputs<'_>, root: TpId) -> RootUnits {
        let state = &inp.tps[root];
        match &state.data {
            TpData::Zero { .. } => RootUnits::Zero,
            TpData::One { cands, .. } => RootUnits::One {
                ids: cands.iter_ones().collect(),
            },
            TpData::Two { mat, .. } => RootUnits::Two {
                n_rows: mat.rows().len(),
            },
            TpData::Three { mats, .. } => {
                let mut pred_rows = Vec::new();
                for (pi, (_, mat)) in mats.iter().enumerate() {
                    for ri in 0..mat.rows().len() {
                        pred_rows.push((pi as u32, ri as u32));
                    }
                }
                RootUnits::Three { pred_rows }
            }
        }
    }

    fn len(&self) -> usize {
        match self {
            RootUnits::Zero => 1,
            RootUnits::One { ids } => ids.len(),
            RootUnits::Two { n_rows } => *n_rows,
            RootUnits::Three { pred_rows } => pred_rows.len(),
        }
    }

    // lbr-lint: no_alloc — the parallel root driver: chunks replay the same
    // scratch-backed descent as the serial recursion.
    /// Runs the units in `[start, end)` on a fresh-at-root context,
    /// binding exactly as the serial enumeration arms do; `descend`
    /// restores the context completely after every subtree, so one
    /// context serves the whole range.
    ///
    /// Each arm MUST mirror the corresponding all-`Free` arm of
    /// [`recurse`] (same enumeration order, same bind/descend/unbind
    /// sequence) — that mirror IS the byte-identity guarantee. The
    /// `parallel_is_byte_identical_to_serial` and
    /// `many_units_with_ragged_tail_chunks` tests pin every shape
    /// (One/Two/Three) at the root; extend them when touching either
    /// side.
    fn run(&self, ctx: &mut Ctx<'_, '_, '_>, root: TpId, start: usize, end: usize) {
        let sh = ctx.sh;
        let state = &sh.inp.tps[root];
        let n_shared = sh.inp.dims.n_shared;
        match (self, &state.data) {
            (RootUnits::Zero, TpData::Zero { .. }) => {
                descend(ctx, root, &[]);
            }
            (RootUnits::One { ids }, TpData::One { var, dim, .. }) => {
                for &id in &ids[start..end] {
                    ctx.bind(*var, Slot::Val(Binding::new(id, *dim, n_shared)), root);
                    descend(ctx, root, &[*var]);
                    if ctx.full() {
                        break;
                    }
                }
            }
            (
                RootUnits::Two { .. },
                TpData::Two {
                    row_var,
                    row_dim,
                    col_var,
                    col_dim,
                    mat,
                },
            ) => {
                let (rv, cv, rd, cd) = (*row_var, *col_var, *row_dim, *col_dim);
                for (r, cols) in &mat.rows()[start..end] {
                    if ctx.full() {
                        break;
                    }
                    ctx.bind(rv, Slot::Val(Binding::new(*r, rd, n_shared)), root);
                    for c in cols.iter_ones() {
                        ctx.bind(cv, Slot::Val(Binding::new(c, cd, n_shared)), root);
                        descend(ctx, root, &[cv]);
                        if ctx.full() {
                            break;
                        }
                    }
                    ctx.unbind(rv);
                }
            }
            (
                RootUnits::Three { pred_rows },
                TpData::Three {
                    s_var,
                    p_var,
                    o_var,
                    mats,
                },
            ) => {
                let (sv, pv, ov) = (*s_var, *p_var, *o_var);
                for &(pi, ri) in &pred_rows[start..end] {
                    if ctx.full() {
                        break;
                    }
                    let (pid, mat) = &mats[pi as usize];
                    let (r, cols) = &mat.rows()[ri as usize];
                    ctx.bind(
                        pv,
                        Slot::Val(Binding::new(*pid, Dimension::Predicate, n_shared)),
                        root,
                    );
                    ctx.bind(
                        sv,
                        Slot::Val(Binding::new(*r, Dimension::Subject, n_shared)),
                        root,
                    );
                    for c in cols.iter_ones() {
                        ctx.bind(
                            ov,
                            Slot::Val(Binding::new(c, Dimension::Object, n_shared)),
                            root,
                        );
                        descend(ctx, root, &[ov]);
                        if ctx.full() {
                            break;
                        }
                    }
                    ctx.unbind(sv);
                    ctx.unbind(pv);
                }
            }
            _ => unreachable!("RootUnits::plan matches the root TP's data shape"),
        }
    }
    // lbr-lint: end
}

/// The read-only part of the join state, shared by all workers.
struct Shared<'a, 'b> {
    inp: &'b JoinInputs<'a>,
    stps: Vec<TpId>,
    /// Unvisited-TP count per supernode at the start of the join
    /// (cloned into each worker's private countdown).
    sn_remaining0: Vec<usize>,
    /// `sn_vars[sn][var]`: does `var` occur in a TP of `sn`? The FILTER
    /// visibility scope for supernode filters.
    sn_vars: Vec<Vec<bool>>,
    /// Per-TP `(var, dim)` lists, precomputed once so the recursion's
    /// eligibility checks and NULL-binding sweeps never call the
    /// allocating `TpState::vars()`.
    tp_vars: Vec<Vec<(VarId, Dimension)>>,
    /// Set once [`JoinInputs::deadline`] is observed to have passed, so
    /// every worker (and the chunk-claim loop) stops promptly without
    /// each having to re-read the clock.
    expired: AtomicBool,
}

impl<'a, 'b> Shared<'a, 'b> {
    fn new(inp: &'b JoinInputs<'a>) -> Shared<'a, 'b> {
        let stps = sort_tps(inp.tps, inp.gosn);
        let n_sn = inp.gosn.n_supernodes();
        let mut sn_remaining0 = vec![0usize; n_sn];
        let mut sn_vars = vec![vec![false; inp.vt.len()]; n_sn];
        let mut tp_vars = Vec::with_capacity(inp.tps.len());
        for (tp, state) in inp.tps.iter().enumerate() {
            let sn = inp.gosn.sn_of_tp(tp);
            sn_remaining0[sn] += 1;
            let vars = state.vars();
            for &(v, _) in &vars {
                sn_vars[sn][v] = true;
            }
            tp_vars.push(vars);
        }
        Shared {
            inp,
            stps,
            sn_remaining0,
            sn_vars,
            tp_vars,
            expired: AtomicBool::new(false),
        }
    }
}

/// Per-worker join state: the variable map and the recursion bookkeeping.
/// Creating one from a [`Shared`] is cheap (a few vecs), so every worker
/// owns its own and no state is shared mutably across threads.
struct Ctx<'s, 'a, 'b> {
    sh: &'s Shared<'a, 'b>,
    slots: Vec<Slot>,
    binder: Vec<TpId>,
    visited: Vec<bool>,
    n_visited: usize,
    nulled: Vec<bool>,
    /// Unvisited TP count per supernode; a TP only becomes eligible once
    /// every TP of every *master* supernode is visited, so a failing slave
    /// can never poison a master's variable with NULL.
    sn_remaining: Vec<usize>,
    rows: Vec<Vec<Option<Binding>>>,
    /// Reusable failed-supernode buffer of [`Ctx::emit`].
    failed: Vec<bool>,
    /// Reusable row-assembly buffer of [`Ctx::emit`]; only rows that
    /// survive every filter are cloned out of it into `rows`.
    row_buf: Vec<Option<Binding>>,
    /// Deadline-poll counter: [`Ctx::full`] reads the wall clock only
    /// every `DEADLINE_POLL_MASK + 1` calls.
    poll: Cell<u32>,
    stats: ExecStats,
}

impl<'s, 'a, 'b> Ctx<'s, 'a, 'b> {
    fn new(sh: &'s Shared<'a, 'b>) -> Ctx<'s, 'a, 'b> {
        Ctx {
            sh,
            slots: vec![Slot::Free; sh.inp.vt.len()],
            binder: vec![usize::MAX; sh.inp.vt.len()],
            visited: vec![false; sh.inp.tps.len()],
            n_visited: 0,
            nulled: vec![false; sh.inp.tps.len()],
            sn_remaining: sh.sn_remaining0.clone(),
            rows: Vec::new(),
            failed: Vec::new(),
            row_buf: Vec::new(),
            poll: Cell::new(0),
            stats: ExecStats::default(),
        }
    }

    // lbr-lint: no_alloc — TP selection and binding bookkeeping on the hot path.
    /// The first unvisited TP in `stps` order that (a) has a bound variable
    /// or no variables at all, and (b) whose master supernodes are fully
    /// visited — the strengthened form of the paper's "masters generate
    /// variable bindings before slaves" invariant. Falls back to the first
    /// master-complete unvisited TP (the very first call, and defensively
    /// for Cartesian shapes the engine normally splits beforehand).
    fn select_next(&self) -> TpId {
        let gosn = self.sh.inp.gosn;
        let masters_done = |tp: TpId| {
            gosn.masters_of(gosn.sn_of_tp(tp))
                .iter()
                .all(|&m| self.sn_remaining[m] == 0)
        };
        for &tp in &self.sh.stps {
            if self.visited[tp] || !masters_done(tp) {
                continue;
            }
            let vars = &self.sh.tp_vars[tp];
            if vars.is_empty() || vars.iter().any(|&(v, _)| self.slots[v] != Slot::Free) {
                return tp;
            }
        }
        // Nothing bound anywhere yet: the first master-complete unvisited
        // TP (also the very first call).
        *self
            .sh
            .stps
            .iter()
            .find(|&&tp| !self.visited[tp] && masters_done(tp))
            .expect("a master-complete unvisited TP exists")
    }

    /// True once the row quota (if any) is met for this context's rows —
    /// enumeration must stop claiming new subtrees. Per-worker rows are
    /// per-chunk, so a parallel chunk is also individually bounded by the
    /// quota (sound: only the first `quota` merged rows are ever used).
    /// Doubles as the deadline poll: a passed deadline also stops the
    /// enumeration (the caller then discards the partial rows).
    fn full(&self) -> bool {
        if self.sh.inp.quota.is_some_and(|q| self.rows.len() >= q) {
            return true;
        }
        self.deadline_hit()
    }

    /// Polls the execution deadline, rate-limited to one wall-clock read
    /// per `DEADLINE_POLL_MASK + 1` calls; a hit is published through the
    /// shared flag so sibling workers stop claiming subtrees too.
    fn deadline_hit(&self) -> bool {
        let Some(deadline) = self.sh.inp.deadline else {
            return false;
        };
        if self.sh.expired.load(Ordering::Relaxed) {
            return true;
        }
        let n = self.poll.get().wrapping_add(1);
        self.poll.set(n);
        if n & DEADLINE_POLL_MASK != 0 {
            return false;
        }
        if Instant::now() >= deadline {
            self.sh.expired.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }

    fn bind(&mut self, var: VarId, slot: Slot, tp: TpId) {
        debug_assert_eq!(self.slots[var], Slot::Free);
        self.slots[var] = slot;
        self.binder[var] = tp;
    }

    fn unbind(&mut self, var: VarId) {
        self.slots[var] = Slot::Free;
        self.binder[var] = usize::MAX;
    }
    // lbr-lint: end

    /// Emits one result row: failure closure → FaN filters → nullification
    /// → global filters → push. The failure map and the row are assembled
    /// in reusable per-worker buffers; only a surviving row is cloned into
    /// the output, so filtered rows cost no allocation at all.
    fn emit(&mut self) {
        if self.full() {
            return; // quota met (and handles the degenerate quota of 0)
        }
        let sh = self.sh;
        let gosn = sh.inp.gosn;
        let n_sn = gosn.n_supernodes();
        // 1. Failed supernodes: any nulled TP fails its supernode; failure
        //    spreads across peer groups (an inner-join group produces rows
        //    only as a unit).
        self.failed.clear();
        self.failed.resize(n_sn, false);
        for (tp, &nulled) in self.nulled.iter().enumerate() {
            if nulled {
                self.failed[gosn.sn_of_tp(tp)] = true;
            }
        }
        close_over_peers(&mut self.failed, gosn);

        // 2. FaN: supernode filters, evaluated over the supernode's own
        //    variable scope (a variable bound only outside the supernode
        //    reads as unbound, like in the reference oracle).
        for (sn_opt, expr) in &sh.inp.fan_filters {
            let Some(sn) = sn_opt else { continue };
            if self.failed[*sn] {
                continue; // already NULL, nothing to test
            }
            let ok = {
                let lk = SnScopedLookup {
                    ctx: self,
                    sn: *sn,
                    dict: sh.inp.dict,
                };
                filter_eval::eval(expr, &lk)
            };
            if !ok {
                if gosn.is_absolute_master(*sn) {
                    self.stats.rows_filtered += 1;
                    return; // masters cannot be nullified: drop the row
                }
                self.failed[*sn] = true;
                close_over_peers(&mut self.failed, gosn);
            }
        }

        // 3. Nullification: bindings produced by failed supernodes become
        //    NULL (Rao et al.'s operator; a no-op when nothing failed),
        //    assembled in the reusable buffer.
        self.stats.scratch_reuses += 1;
        self.row_buf.clear();
        let mut rewrote = false;
        for (var, slot) in self.slots.iter().enumerate() {
            match slot {
                Slot::Val(b) => {
                    let binder_sn = gosn.sn_of_tp(self.binder[var]);
                    if self.failed[binder_sn] {
                        self.row_buf.push(None);
                        rewrote = true;
                    } else {
                        self.row_buf.push(Some(*b));
                    }
                }
                _ => self.row_buf.push(None),
            }
        }
        if rewrote {
            self.stats.nullification_fired += 1;
        }

        // 4. Global filters over the (possibly nullified) row.
        for (sn_opt, expr) in &sh.inp.fan_filters {
            if sn_opt.is_some() {
                continue;
            }
            let ok = {
                let lk = RowLookup {
                    row: &self.row_buf,
                    vt: sh.inp.vt,
                    dict: sh.inp.dict,
                };
                filter_eval::eval(expr, &lk)
            };
            if !ok {
                self.stats.rows_filtered += 1;
                return;
            }
        }

        self.rows.push(self.row_buf.clone());
    }
}

// lbr-lint: no_alloc — failure closure over peer groups: bool slice only.
/// Spreads supernode failure across peer groups until stable.
fn close_over_peers(failed: &mut [bool], gosn: &Gosn) {
    for sn in 0..failed.len() {
        if failed[sn] {
            for peer in gosn.peers_of(sn) {
                failed[peer] = true;
            }
        }
    }
}

/// Variable lookup for a supernode filter: only variables occurring in a
/// TP of `sn` are visible (§5.2 FILTER scope).
struct SnScopedLookup<'c, 's, 'a, 'b> {
    ctx: &'c Ctx<'s, 'a, 'b>,
    sn: SnId,
    dict: &'c Dictionary,
}

// lbr-lint: end
impl VarLookup for SnScopedLookup<'_, '_, '_, '_> {
    fn term(&self, name: &str) -> Option<&Term> {
        let id = self.ctx.sh.inp.vt.id(name)?;
        if !self.ctx.sh.sn_vars[self.sn][id] {
            return None;
        }
        match self.ctx.slots[id] {
            Slot::Val(b) => Some(b.decode(self.dict)),
            _ => None,
        }
    }
}

struct RowLookup<'r> {
    row: &'r [Option<Binding>],
    vt: &'r VarTable,
    dict: &'r Dictionary,
}

impl VarLookup for RowLookup<'_> {
    fn term(&self, name: &str) -> Option<&Term> {
        let id = self.vt.id(name)?;
        self.row[id].as_ref().map(|b| b.decode(self.dict))
    }
}

// lbr-lint: no_alloc — the serial recursion and its TP descent: all masks,
// cursors and row buffers come from per-worker scratch.
/// One recursion level of Algorithm 5.4.
///
/// Candidate enumeration cursors directly over the compressed matrix rows
/// (forward: the TP's own matrix; reverse: its transposed copy) — no
/// candidate vector or adjacency list is materialized or cloned, so the
/// steady-state loop body performs no heap allocation.
///
/// The all-`Free` enumeration arms (the root-level cases) are mirrored by
/// [`RootUnits::run`] for the parallel path — keep the two in sync (see
/// the note there).
fn recurse(ctx: &mut Ctx<'_, '_, '_>) {
    let sh = ctx.sh;
    if ctx.n_visited == sh.stps.len() {
        ctx.emit();
        return;
    }
    if ctx.full() {
        return; // quota met: unwind without starting new subtrees
    }
    let tp = ctx.select_next();
    let n_shared = sh.inp.dims.n_shared;
    let matched = match &sh.inp.tps[tp].data {
        TpData::Zero { present } => {
            if *present {
                descend(ctx, tp, &[]);
                true
            } else {
                false
            }
        }
        TpData::One { var, dim, cands } => match ctx.slots[*var] {
            Slot::Val(b) => {
                if b.probes(*dim) && cands.get(b.id) {
                    descend(ctx, tp, &[]);
                    true
                } else {
                    false
                }
            }
            Slot::Null => false,
            Slot::Free => {
                let mut any = false;
                for id in cands.iter_ones() {
                    any = true;
                    ctx.bind(*var, Slot::Val(Binding::new(id, *dim, n_shared)), tp);
                    descend(ctx, tp, &[*var]);
                    if ctx.full() {
                        break;
                    }
                }
                any
            }
        },
        TpData::Three {
            s_var,
            p_var,
            o_var,
            mats,
        } => {
            let (sv, pv, ov) = (*s_var, *p_var, *o_var);
            let state = &sh.inp.tps[tp];
            let mut any = false;
            // Enumerate per predicate; each predicate slice behaves like a
            // Two-variable matrix with the predicate binding layered on.
            for (idx, (pid, mat)) in mats.iter().enumerate() {
                if ctx.full() {
                    break;
                }
                // Predicate slot must admit this pid.
                let p_bound_here = match ctx.slots[pv] {
                    Slot::Val(b) => {
                        if !(b.probes(Dimension::Predicate) && b.id == *pid) {
                            continue;
                        }
                        false
                    }
                    Slot::Null => continue,
                    Slot::Free => {
                        ctx.bind(
                            pv,
                            Slot::Val(Binding::new(*pid, Dimension::Predicate, n_shared)),
                            tp,
                        );
                        true
                    }
                };
                match (ctx.slots[sv], ctx.slots[ov]) {
                    (Slot::Null, _) | (_, Slot::Null) => {}
                    (Slot::Val(r), Slot::Val(c)) => {
                        if r.probes(Dimension::Subject)
                            && c.probes(Dimension::Object)
                            && mat.get(r.id, c.id)
                        {
                            any = true;
                            descend(ctx, tp, &[]);
                        }
                    }
                    (Slot::Val(r), Slot::Free) => {
                        if r.probes(Dimension::Subject) {
                            if let Some(row) = mat.row(r.id) {
                                for c in row.iter_ones() {
                                    any = true;
                                    ctx.bind(
                                        ov,
                                        Slot::Val(Binding::new(c, Dimension::Object, n_shared)),
                                        tp,
                                    );
                                    descend(ctx, tp, &[ov]);
                                    if ctx.full() {
                                        break;
                                    }
                                }
                            }
                        }
                    }
                    (Slot::Free, Slot::Val(c)) => {
                        if c.probes(Dimension::Object) {
                            if let Some(col) = state.per_pred_t[idx].row(c.id) {
                                for r in col.iter_ones() {
                                    any = true;
                                    ctx.bind(
                                        sv,
                                        Slot::Val(Binding::new(r, Dimension::Subject, n_shared)),
                                        tp,
                                    );
                                    descend(ctx, tp, &[sv]);
                                    if ctx.full() {
                                        break;
                                    }
                                }
                            }
                        }
                    }
                    (Slot::Free, Slot::Free) => {
                        for (r, cols) in mat.rows() {
                            if ctx.full() {
                                break;
                            }
                            ctx.bind(
                                sv,
                                Slot::Val(Binding::new(*r, Dimension::Subject, n_shared)),
                                tp,
                            );
                            for c in cols.iter_ones() {
                                any = true;
                                ctx.bind(
                                    ov,
                                    Slot::Val(Binding::new(c, Dimension::Object, n_shared)),
                                    tp,
                                );
                                descend(ctx, tp, &[ov]);
                                if ctx.full() {
                                    break;
                                }
                            }
                            ctx.unbind(sv);
                        }
                    }
                }
                if p_bound_here {
                    ctx.unbind(pv);
                }
            }
            any
        }
        TpData::Two {
            row_var,
            row_dim,
            col_var,
            col_dim,
            mat,
        } => {
            let state = &sh.inp.tps[tp];
            let (rv, cv, rd, cd) = (*row_var, *col_var, *row_dim, *col_dim);
            match (ctx.slots[rv], ctx.slots[cv]) {
                (Slot::Null, _) | (_, Slot::Null) => false,
                (Slot::Val(r), Slot::Val(c)) => {
                    let hit = r.probes(rd) && c.probes(cd) && mat.get(r.id, c.id);
                    if hit {
                        descend(ctx, tp, &[]);
                    }
                    hit
                }
                (Slot::Val(r), Slot::Free) => {
                    match r.probes(rd).then(|| mat.row(r.id)).flatten() {
                        None => false,
                        Some(row) => {
                            for c in row.iter_ones() {
                                ctx.bind(cv, Slot::Val(Binding::new(c, cd, n_shared)), tp);
                                descend(ctx, tp, &[cv]);
                                if ctx.full() {
                                    break;
                                }
                            }
                            true // a stored row is never empty
                        }
                    }
                }
                (Slot::Free, Slot::Val(c)) => {
                    match c.probes(cd).then(|| state.rows_col(c.id)).flatten() {
                        None => false,
                        Some(col) => {
                            for r in col.iter_ones() {
                                ctx.bind(rv, Slot::Val(Binding::new(r, rd, n_shared)), tp);
                                descend(ctx, tp, &[rv]);
                                if ctx.full() {
                                    break;
                                }
                            }
                            true
                        }
                    }
                }
                (Slot::Free, Slot::Free) => {
                    // Only the pipeline's first TP (or a defensive
                    // Cartesian fallback) enumerates both dimensions.
                    let mut any = false;
                    for (r, cols) in mat.rows() {
                        if ctx.full() {
                            break;
                        }
                        ctx.bind(rv, Slot::Val(Binding::new(*r, rd, n_shared)), tp);
                        for c in cols.iter_ones() {
                            any = true;
                            ctx.bind(cv, Slot::Val(Binding::new(c, cd, n_shared)), tp);
                            descend(ctx, tp, &[cv]);
                            if ctx.full() {
                                break;
                            }
                        }
                        ctx.unbind(rv);
                    }
                    any
                }
            }
        }
    };

    if !matched {
        if sh.inp.gosn.tp_in_absolute_master(tp) {
            // ln 27–28: an absolute master cannot have NULL bindings —
            // roll back this branch.
            return;
        }
        // ln 29–32: a slave with no consistent triple: NULL its free vars
        // (at most three — a stack array, not a collect).
        let mut free = [0 as VarId; 3];
        let mut n_free = 0usize;
        for &(v, _) in &sh.tp_vars[tp] {
            if ctx.slots[v] == Slot::Free {
                free[n_free] = v;
                n_free += 1;
            }
        }
        for &v in &free[..n_free] {
            ctx.bind(v, Slot::Null, tp);
        }
        ctx.nulled[tp] = true;
        descend(ctx, tp, &free[..n_free]);
        ctx.nulled[tp] = false;
    }
}

/// Marks `tp` visited, recurses, then restores `tp` and the vars this
/// frame bound.
fn descend(ctx: &mut Ctx<'_, '_, '_>, tp: TpId, bound_here: &[VarId]) {
    if ctx.n_visited == 0 {
        // This frame is the root TP: each descend from here starts one
        // independent subtree — a *seed* of the enumeration.
        ctx.stats.seeds_enumerated += 1;
    }
    let sn = ctx.sh.inp.gosn.sn_of_tp(tp);
    ctx.visited[tp] = true;
    ctx.n_visited += 1;
    ctx.sn_remaining[sn] -= 1;
    recurse(ctx);
    ctx.sn_remaining[sn] += 1;
    ctx.n_visited -= 1;
    ctx.visited[tp] = false;
    for &v in bound_here {
        ctx.unbind(v);
    }
}
// lbr-lint: end

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bindings::VarTable;
    use crate::init::init;
    use crate::jvar_order::get_jvar_order;
    use crate::prune::{prune_triples, PruneScratch};
    use crate::selectivity::estimate_all;
    use lbr_bitmat::{BitMatStore, Catalog as _};
    use lbr_rdf::{Graph, Triple};
    use lbr_sparql::classify::analyze;
    use lbr_sparql::parse_query;

    fn graph() -> lbr_rdf::EncodedGraph {
        let t = |s: &str, p: &str, o: &str| Triple::new(Term::iri(s), Term::iri(p), Term::iri(o));
        Graph::from_triples(vec![
            t("Julia", "actedIn", "Seinfeld"),
            t("Julia", "actedIn", "Veep"),
            t("Julia", "actedIn", "NewAdvOldChristine"),
            t("Julia", "actedIn", "CurbYourEnthu"),
            t("CurbYourEnthu", "location", "LosAngeles"),
            t("Larry", "actedIn", "CurbYourEnthu"),
            t("Jerry", "hasFriend", "Julia"),
            t("Jerry", "hasFriend", "Larry"),
            t("Seinfeld", "location", "NewYorkCity"),
            t("Veep", "location", "D.C."),
            t("NewAdvOldChristine", "location", "Jersey"),
        ])
        .encode()
    }

    fn run_threads(
        query: &str,
        threads: usize,
    ) -> (Vec<String>, Vec<Vec<Option<String>>>, ExecStats) {
        let g = graph();
        let store = BitMatStore::build(&g);
        let q = parse_query(query).unwrap();
        let a = analyze(&q.pattern).unwrap();
        let vt = VarTable::from_tps(a.gosn.tps()).unwrap();
        let est = estimate_all(a.gosn.tps(), &g.dict, &store);
        let jorder = get_jvar_order(&a.gosn, &a.goj, &vt, &est);
        let mut out = init(&a.gosn, &vt, &jorder, &est, &g.dict, &store).unwrap();
        prune_triples(
            &mut out.tps,
            &a.gosn,
            &a.goj,
            &vt,
            &jorder,
            &store.dims(),
            &mut PruneScratch::new(),
        );
        for tp in &mut out.tps {
            tp.build_adjacency();
        }
        let inputs = JoinInputs {
            tps: &out.tps,
            gosn: &a.gosn,
            vt: &vt,
            dims: store.dims(),
            dict: &g.dict,
            fan_filters: Vec::new(),
            quota: None,
            deadline: None,
        };
        let (rows, stats) = multi_way_join_with(&inputs, threads);
        let decoded: Vec<Vec<Option<String>>> = rows
            .iter()
            .map(|r| {
                r.iter()
                    .map(|b| b.map(|x| x.decode(&g.dict).lexical_form().to_string()))
                    .collect()
            })
            .collect();
        (vt.names().to_vec(), decoded, stats)
    }

    fn run(query: &str) -> (Vec<String>, Vec<Vec<Option<String>>>, ExecStats) {
        run_threads(query, 1)
    }

    /// The paper's running example: exactly {(Larry, NULL), (Julia,
    /// Seinfeld)}, with no nullification (Lemma 3.3).
    #[test]
    fn q2_final_results() {
        let (vars, mut rows, stats) =
            run("PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?friend .
               OPTIONAL { ?friend :actedIn ?sitcom . ?sitcom :location :NewYorkCity . } }");
        assert_eq!(vars, vec!["friend", "sitcom"]);
        rows.sort();
        assert_eq!(
            rows,
            vec![
                vec![Some("Julia".to_string()), Some("Seinfeld".to_string())],
                vec![Some("Larry".to_string()), None],
            ]
        );
        assert_eq!(stats.nullification_fired, 0);
    }

    #[test]
    fn inner_join_only() {
        let (_, mut rows, _) =
            run("PREFIX : <> SELECT * WHERE { ?f :actedIn ?s . ?s :location ?where . }");
        rows.sort();
        assert_eq!(rows.len(), 5, "every actedIn sitcom has a location");
        assert!(rows.iter().all(|r| r.iter().all(|c| c.is_some())));
    }

    #[test]
    fn nested_optional_nulls_cascade() {
        // Jerry's friends, their sitcoms (optional), and inside that the
        // sitcom's location (optional) — Larry gets NULL for both inner
        // vars... actually Larry acted in CurbYourEnthu, so only location
        // differs. Check cascading binding correctness.
        let (vars, mut rows, _) = run("PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?friend .
               OPTIONAL { ?friend :actedIn ?sitcom . OPTIONAL { ?sitcom :location ?loc . } } }");
        assert_eq!(vars, vec!["friend", "sitcom", "loc"]);
        rows.sort();
        // Julia: 4 sitcoms each with a location; Larry: 1 sitcom with one.
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r[1].is_some() && r[2].is_some()));
    }

    #[test]
    fn empty_slave_produces_all_nulls() {
        let (_, rows, _) = run("PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?friend .
               OPTIONAL { ?friend :location ?loc . } }");
        assert_eq!(rows.len(), 2);
        assert!(
            rows.iter().all(|r| r[1].is_none()),
            "no friend has a location"
        );
    }

    #[test]
    fn zero_var_membership_gates_results() {
        let (_, rows, _) =
            run("PREFIX : <> SELECT * WHERE { :Jerry :hasFriend :Julia . :Jerry :hasFriend ?f . }");
        assert_eq!(rows.len(), 2, "membership true: acts as a no-op gate");
    }

    /// Regression: when the unit count exceeds `threads * 8` with a
    /// non-aligned remainder, ceil-division makes the last chunks start
    /// past the unit count (100 units / 16 chunks → size 7 → chunk 15
    /// would start at 105); the bounds must be clamped, not panic.
    #[test]
    fn many_units_with_ragged_tail_chunks() {
        let t = |s: &str, p: &str, o: &str| Triple::new(Term::iri(s), Term::iri(p), Term::iri(o));
        let g = Graph::from_triples(
            (0..100)
                .map(|i| t(&format!("s{i}"), "p", &format!("o{i}")))
                .collect::<Vec<_>>(),
        )
        .encode();
        let store = BitMatStore::build(&g);
        let q = parse_query("SELECT * WHERE { ?s <p> ?o . }").unwrap();
        let a = analyze(&q.pattern).unwrap();
        let vt = VarTable::from_tps(a.gosn.tps()).unwrap();
        let est = estimate_all(a.gosn.tps(), &g.dict, &store);
        let jorder = get_jvar_order(&a.gosn, &a.goj, &vt, &est);
        let mut out = init(&a.gosn, &vt, &jorder, &est, &g.dict, &store).unwrap();
        prune_triples(
            &mut out.tps,
            &a.gosn,
            &a.goj,
            &vt,
            &jorder,
            &store.dims(),
            &mut PruneScratch::new(),
        );
        for tp in &mut out.tps {
            tp.build_adjacency();
        }
        let inputs = JoinInputs {
            tps: &out.tps,
            gosn: &a.gosn,
            vt: &vt,
            dims: store.dims(),
            dict: &g.dict,
            fan_filters: Vec::new(),
            quota: None,
            deadline: None,
        };
        let (serial, _) = multi_way_join_with(&inputs, 1);
        assert_eq!(serial.len(), 100);
        for threads in [2, 3, 7, 16] {
            let (parallel, _) = multi_way_join_with(&inputs, threads);
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    /// Builds the join inputs for a 100-triple star graph and runs the
    /// join with the given quota and thread count, returning `(rows,
    /// stats)`.
    fn run_quota(quota: Option<usize>, threads: usize) -> (Vec<Vec<Option<Binding>>>, ExecStats) {
        let t = |s: &str, p: &str, o: &str| Triple::new(Term::iri(s), Term::iri(p), Term::iri(o));
        let g = Graph::from_triples(
            (0..100)
                .map(|i| t(&format!("s{i}"), "p", &format!("o{i}")))
                .collect::<Vec<_>>(),
        )
        .encode();
        let store = BitMatStore::build(&g);
        let q = parse_query("SELECT * WHERE { ?s <p> ?o . }").unwrap();
        let a = analyze(&q.pattern).unwrap();
        let vt = VarTable::from_tps(a.gosn.tps()).unwrap();
        let est = estimate_all(a.gosn.tps(), &g.dict, &store);
        let jorder = get_jvar_order(&a.gosn, &a.goj, &vt, &est);
        let mut out = init(&a.gosn, &vt, &jorder, &est, &g.dict, &store).unwrap();
        prune_triples(
            &mut out.tps,
            &a.gosn,
            &a.goj,
            &vt,
            &jorder,
            &store.dims(),
            &mut PruneScratch::new(),
        );
        for tp in &mut out.tps {
            tp.build_adjacency();
        }
        let inputs = JoinInputs {
            tps: &out.tps,
            gosn: &a.gosn,
            vt: &vt,
            dims: store.dims(),
            dict: &g.dict,
            fan_filters: Vec::new(),
            quota,
            deadline: None,
        };
        multi_way_join_with(&inputs, threads)
    }

    /// The LIMIT/ASK pushdown contract at `threads = 1`: the join stops
    /// *exactly* at the quota — rows and enumerated seeds both equal it.
    #[test]
    fn quota_stops_serial_enumeration_exactly() {
        let (all_rows, full) = run_quota(None, 1);
        assert_eq!(all_rows.len(), 100);
        assert_eq!(full.seeds_enumerated, 100);
        for quota in [0, 1, 10, 99, 100, 1000] {
            let (rows, stats) = run_quota(Some(quota), 1);
            let expect = quota.min(100);
            assert_eq!(rows.len(), expect, "quota={quota}");
            assert_eq!(
                stats.seeds_enumerated, expect as u64,
                "one row per seed here, so seeds must stop exactly at the quota"
            );
            assert_eq!(rows, all_rows[..expect], "prefix of the serial order");
        }
    }

    /// With N workers the produced rows may overshoot the quota
    /// (bounded by the chunks in flight), but the first `quota` rows are
    /// always exactly the serial prefix — what the modifier seam keeps.
    #[test]
    fn quota_parallel_prefix_matches_serial() {
        let (all_rows, _) = run_quota(None, 1);
        for threads in [2, 3, 8] {
            for quota in [1, 7, 25, 100] {
                let (rows, stats) = run_quota(Some(quota), threads);
                assert!(rows.len() >= quota.min(100), "threads={threads}");
                assert_eq!(
                    rows[..quota.min(rows.len())],
                    all_rows[..quota.min(all_rows.len())],
                    "threads={threads} quota={quota}: not a serial prefix"
                );
                assert!(
                    stats.seeds_enumerated <= 100,
                    "never enumerates more than the full candidate set"
                );
            }
        }
    }

    /// The tentpole's determinism guarantee: any thread count produces
    /// rows byte-identical (same order, same values) to the serial run.
    #[test]
    fn parallel_is_byte_identical_to_serial() {
        let queries = [
            "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?friend .
               OPTIONAL { ?friend :actedIn ?sitcom . ?sitcom :location :NewYorkCity . } }",
            "PREFIX : <> SELECT * WHERE { ?f :actedIn ?s . ?s :location ?where . }",
            "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?friend .
               OPTIONAL { ?friend :actedIn ?sitcom . OPTIONAL { ?sitcom :location ?loc . } } }",
            "PREFIX : <> SELECT * WHERE { ?s ?p ?o . }",
            "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?friend .
               OPTIONAL { ?friend :location ?loc . } }",
        ];
        for query in queries {
            let (_, serial, s_stats) = run_threads(query, 1);
            for threads in [2, 3, 8] {
                let (_, parallel, p_stats) = run_threads(query, threads);
                assert_eq!(parallel, serial, "threads={threads} on: {query}");
                assert_eq!(
                    p_stats.nullification_fired, s_stats.nullification_fired,
                    "stats diverge at threads={threads}"
                );
                assert_eq!(p_stats.rows_filtered, s_stats.rows_filtered);
                assert_eq!(p_stats.seeds_enumerated, s_stats.seeds_enumerated);
            }
        }
    }
}
