//! The **one** modifier-application seam shared by every engine.
//!
//! Engines evaluate a query's WHERE pattern to raw rows over
//! [`Query::exec_vars`] (the projection plus any non-projected `ORDER BY`
//! key) and hand them to [`finalize`], which applies SPARQL's §18.2.5
//! modifier order:
//!
//! 1. **ORDER BY** — a stable sort under the documented [`order_cmp`]
//!    total order over dictionary-decoded terms;
//! 2. **projection** — the extra `ORDER BY` columns are dropped;
//! 3. **DISTINCT / REDUCED** — duplicates eliminated *on the encoded
//!    dictionary IDs*, before any term is decoded (REDUCED is treated as
//!    DISTINCT — a permitted cardinality); a column that mixes the
//!    predicate dimension with S/O bindings (possible across UNION
//!    branches) falls back to decoded-term comparison, since those two
//!    dictionaries assign unrelated IDs to the same term;
//! 4. **OFFSET**, then **LIMIT**;
//! 5. the **query form**: `ASK` collapses the sequence to a zero-column
//!    relation with one row (true) or none (false).
//!
//! [`row_quota`] is the planning-side counterpart: the number of raw rows
//! that provably suffices, which the LBR engine pushes into the multi-way
//! join's seed enumeration so `ASK` and plain-`LIMIT` queries terminate
//! early instead of materializing everything.

use crate::bindings::{Binding, QueryOutput};
use lbr_rdf::{Dictionary, Term};
use lbr_sparql::algebra::{Dedup, Modifiers, QueryForm};
use lbr_sparql::Query;
use std::cmp::Ordering;
use std::collections::HashSet;

/// The documented total order `ORDER BY` sorts by (ascending form):
///
/// 1. unbound (`None`) sorts before every bound term;
/// 2. blank nodes < IRIs < literals (the SPARQL §15.1 category order);
/// 3. blank nodes compare by label, IRIs by codepoint;
/// 4. literals compare numerically when **both** lexical forms parse as
///    `i64` (matching the FILTER `<` semantics), otherwise by lexical
///    form, then by datatype IRI, then by language tag.
///
/// `DESC(?v)` reverses this order per key.
pub fn order_cmp(a: Option<&Term>, b: Option<&Term>) -> Ordering {
    fn rank(t: &Term) -> u8 {
        match t {
            Term::BlankNode(_) => 0,
            Term::Iri(_) => 1,
            Term::Literal { .. } => 2,
        }
    }
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => rank(x).cmp(&rank(y)).then_with(|| match (x, y) {
            (Term::BlankNode(p), Term::BlankNode(q)) => p.cmp(q),
            (Term::Iri(p), Term::Iri(q)) => p.cmp(q),
            (
                Term::Literal {
                    lexical: lp,
                    datatype: dp,
                    lang: gp,
                },
                Term::Literal {
                    lexical: lq,
                    datatype: dq,
                    lang: gq,
                },
            ) => match (x.as_integer(), y.as_integer()) {
                (Some(m), Some(n)) => m.cmp(&n),
                _ => lp.cmp(lq).then_with(|| dp.cmp(dq)).then_with(|| gp.cmp(gq)),
            },
            _ => unreachable!("ranks are equal"),
        }),
    }
}

/// How many *raw* rows suffice to answer the query exactly — the bound an
/// engine may push into execution as an early-exit quota. `None` means
/// every row is needed:
///
/// * `ORDER BY` needs the full sequence before it can pick a prefix;
/// * `DISTINCT`/`REDUCED` may collapse arbitrarily many raw rows into
///   one, so a raw-row bound proves nothing.
///
/// For plain `SELECT … LIMIT k [OFFSET n]` the bound is `n + k`. For
/// `ASK` it is `OFFSET + 1` (order never changes emptiness, and the
/// grammar gives ASK no DISTINCT), or `0` under `LIMIT 0` (the answer is
/// `false` without looking at any row).
pub fn row_quota(form: &QueryForm, m: &Modifiers) -> Option<usize> {
    match form {
        QueryForm::Ask => Some(match m.limit {
            Some(0) => 0,
            _ => m.offset.saturating_add(1),
        }),
        QueryForm::Select { dedup, .. } => {
            if *dedup != Dedup::None || !m.order_by.is_empty() {
                None
            } else {
                m.limit.map(|k| m.offset.saturating_add(k))
            }
        }
    }
}

/// Applies the query form and solution modifiers to raw execution output
/// (rows over [`Query::exec_vars`]), producing the final
/// [`QueryOutput`] over [`Query::projected_vars`]. See the module docs
/// for the exact operation order.
pub fn finalize(raw: QueryOutput, query: &Query, dict: &Dictionary) -> QueryOutput {
    finalize_parts(
        raw,
        &query.form,
        &query.modifiers,
        &query.projected_vars(),
        dict,
    )
}

/// [`finalize`] over pre-extracted parts, for callers that cache the
/// query spec in a plan (e.g. `LbrPlan`) instead of holding a [`Query`].
pub fn finalize_parts(
    raw: QueryOutput,
    form: &QueryForm,
    modifiers: &Modifiers,
    projection: &[String],
    dict: &Dictionary,
) -> QueryOutput {
    let QueryOutput {
        vars,
        mut rows,
        mut stats,
    } = raw;

    // 1. ORDER BY: one decoded key tuple per row, stable sort.
    if !modifiers.order_by.is_empty() && !matches!(form, QueryForm::Ask) {
        let key_cols: Vec<Option<usize>> = modifiers
            .order_by
            .iter()
            .map(|k| vars.iter().position(|v| v == &k.var))
            .collect();
        let descending: Vec<bool> = modifiers.order_by.iter().map(|k| k.descending).collect();
        type KeyedRow<'d> = (Vec<Option<&'d Term>>, Vec<Option<Binding>>);
        let mut keyed: Vec<KeyedRow<'_>> = rows
            .into_iter()
            .map(|row| {
                let keys = key_cols
                    .iter()
                    .map(|c| c.and_then(|i| row[i]).map(|b| b.decode(dict)))
                    .collect();
                (keys, row)
            })
            .collect();
        keyed.sort_by(|(ka, _), (kb, _)| {
            for (i, (a, b)) in ka.iter().zip(kb.iter()).enumerate() {
                let ord = order_cmp(*a, *b);
                let ord = if descending[i] { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        rows = keyed.into_iter().map(|(_, row)| row).collect();
    }

    // 2. Projection: drop the extra ORDER BY columns (raw rows are over
    //    exec_vars = projection ++ extra keys, but map by name so the
    //    seam also tolerates engines that materialize a superset).
    if vars != projection {
        let cols: Vec<Option<usize>> = projection
            .iter()
            .map(|v| vars.iter().position(|x| x == v))
            .collect();
        rows = rows
            .iter()
            .map(|row| cols.iter().map(|c| c.and_then(|i| row[i])).collect())
            .collect();
    }

    // 3. DISTINCT / REDUCED: dedup on the encoded IDs — no decoding.
    //    Binding normalizes shared-prefix IDs, so within the S/P/O
    //    dimension a column was produced from, encoded equality is term
    //    equality. The one alias: a term living in BOTH the predicate
    //    dictionary and the subject/object dictionary gets unrelated IDs,
    //    and a column can mix the two spaces across UNION branches (one
    //    branch binds ?x in predicate position, another in S/O). Only
    //    such mixed columns fall back to decoded-term comparison.
    let dedup = match form {
        QueryForm::Select { dedup, .. } => *dedup,
        QueryForm::Ask => Dedup::None,
    };
    if dedup != Dedup::None {
        let n_cols = projection.len();
        let col_mixes_pred_and_so = |c: usize| {
            let (mut pred, mut so) = (false, false);
            for row in &rows {
                match row[c].map(|b| b.space) {
                    Some(crate::bindings::BindingSpace::Predicate) => pred = true,
                    Some(_) => so = true,
                    None => {}
                }
                if pred && so {
                    return true;
                }
            }
            false
        };
        if (0..n_cols).any(col_mixes_pred_and_so) {
            let mut seen: HashSet<Vec<Option<&Term>>> = HashSet::with_capacity(rows.len());
            let mut keep: Vec<bool> = Vec::with_capacity(rows.len());
            for row in &rows {
                let key: Vec<Option<&Term>> = row
                    .iter()
                    .map(|b| b.as_ref().map(|x| x.decode(dict)))
                    .collect();
                keep.push(seen.insert(key));
            }
            let mut it = keep.into_iter();
            rows.retain(|_| it.next().unwrap());
        } else {
            let mut seen: HashSet<Vec<Option<Binding>>> = HashSet::with_capacity(rows.len());
            rows.retain(|row| seen.insert(row.clone()));
        }
    }

    // 4. OFFSET, then LIMIT.
    if modifiers.offset > 0 {
        rows.drain(..modifiers.offset.min(rows.len()));
    }
    if let Some(k) = modifiers.limit {
        rows.truncate(k);
    }

    // 5. ASK: collapse to one zero-column row (true) or none (false).
    let (vars, rows) = match form {
        QueryForm::Ask => {
            let answer = !rows.is_empty();
            (
                Vec::new(),
                if answer { vec![Vec::new()] } else { Vec::new() },
            )
        }
        QueryForm::Select { .. } => (projection.to_vec(), rows),
    };

    stats.n_results = rows.len();
    stats.n_results_with_nulls = rows
        .iter()
        .filter(|r| r.iter().any(|c| c.is_none()))
        .count();
    QueryOutput { vars, rows, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bindings::BindingSpace;
    use crate::QueryStats;
    use lbr_rdf::{Graph, Triple};
    use lbr_sparql::algebra::Selection;
    use lbr_sparql::parse_query;

    #[test]
    fn order_cmp_is_the_documented_total_order() {
        let unb: Option<&Term> = None;
        let blank = Term::blank("b");
        let iri = Term::iri("urn:a");
        let lit = Term::literal("x");
        let n3 = Term::integer(3);
        let n10 = Term::integer(10);
        assert_eq!(order_cmp(unb, Some(&blank)), Ordering::Less);
        assert_eq!(order_cmp(Some(&blank), Some(&iri)), Ordering::Less);
        assert_eq!(order_cmp(Some(&iri), Some(&lit)), Ordering::Less);
        // Numeric, not lexicographic: 3 < 10.
        assert_eq!(order_cmp(Some(&n3), Some(&n10)), Ordering::Less);
        // Mixed numeric/non-numeric literals fall back to lexical form.
        assert_eq!(order_cmp(Some(&n10), Some(&lit)), Ordering::Less);
        assert_eq!(order_cmp(Some(&iri), Some(&iri)), Ordering::Equal);
    }

    #[test]
    fn row_quota_covers_the_pushdown_cases() {
        let q = |text: &str| parse_query(text).unwrap();
        let quota = |text: &str| {
            let q = q(text);
            row_quota(&q.form, &q.modifiers)
        };
        assert_eq!(quota("SELECT * WHERE { ?s <p> ?o . }"), None);
        assert_eq!(quota("SELECT * WHERE { ?s <p> ?o . } LIMIT 5"), Some(5));
        assert_eq!(
            quota("SELECT * WHERE { ?s <p> ?o . } LIMIT 5 OFFSET 2"),
            Some(7)
        );
        // ORDER BY and DISTINCT need the full raw sequence.
        assert_eq!(
            quota("SELECT * WHERE { ?s <p> ?o . } ORDER BY ?s LIMIT 5"),
            None
        );
        assert_eq!(
            quota("SELECT DISTINCT ?s WHERE { ?s <p> ?o . } LIMIT 5"),
            None
        );
        // ASK: one surviving row decides; OFFSET shifts, LIMIT 0 kills.
        assert_eq!(quota("ASK { ?s <p> ?o . }"), Some(1));
        assert_eq!(quota("ASK { ?s <p> ?o . } OFFSET 3"), Some(4));
        assert_eq!(quota("ASK { ?s <p> ?o . } LIMIT 0"), Some(0));
    }

    fn dict() -> Dictionary {
        Graph::from_triples(vec![Triple::new(
            Term::iri("a"),
            Term::iri("p"),
            Term::iri("b"),
        )])
        .encode()
        .dict
    }

    fn b(id: u32, space: BindingSpace) -> Option<Binding> {
        Some(Binding { id, space })
    }

    #[test]
    fn finalize_sorts_projects_dedups_and_slices() {
        let d = dict();
        // exec_vars = [x, y]; projection = [x]; ORDER BY DESC(?y).
        let raw = QueryOutput {
            vars: vec!["x".into(), "y".into()],
            rows: vec![
                vec![b(0, BindingSpace::Subject), None],
                vec![b(0, BindingSpace::Subject), b(0, BindingSpace::Object)],
                vec![b(0, BindingSpace::Subject), None],
            ],
            stats: QueryStats::default(),
        };
        let query =
            parse_query("SELECT DISTINCT ?x WHERE { ?x <p> ?y . } ORDER BY DESC(?y)").unwrap();
        let out = finalize(raw.clone(), &query, &d);
        // Sort puts the bound ?y first, projection keeps ?x, DISTINCT
        // collapses the three identical ?x rows into one.
        assert_eq!(out.vars, vec!["x"]);
        assert_eq!(out.rows, vec![vec![b(0, BindingSpace::Subject)]]);
        assert_eq!(out.stats.n_results, 1);

        // OFFSET past the end is empty, not a panic.
        let query = parse_query("SELECT ?x WHERE { ?x <p> ?y . } OFFSET 9").unwrap();
        let out = finalize(raw.clone(), &query, &d);
        assert!(out.rows.is_empty());

        // LIMIT/OFFSET slice the (unsorted) sequence in order.
        let query = parse_query("SELECT ?x ?y WHERE { ?x <p> ?y . } LIMIT 1 OFFSET 1").unwrap();
        let out = finalize(raw, &query, &d);
        assert_eq!(
            out.rows,
            vec![vec![
                b(0, BindingSpace::Subject),
                b(0, BindingSpace::Object)
            ]]
        );
    }

    #[test]
    fn finalize_ask_collapses_to_boolean() {
        let d = dict();
        let raw = |n: usize| QueryOutput {
            vars: Vec::new(),
            rows: vec![Vec::new(); n],
            stats: QueryStats::default(),
        };
        let ask = parse_query("ASK { ?x <p> ?y . }").unwrap();
        let out = finalize(raw(3), &ask, &d);
        assert_eq!(out.boolean(), Some(true));
        assert_eq!(out.rows, vec![Vec::new()]);
        let out = finalize(raw(0), &ask, &d);
        assert_eq!(out.boolean(), Some(false));
        assert!(out.rows.is_empty());
        // Modifiers apply before the emptiness test.
        let ask_off = parse_query("ASK { ?x <p> ?y . } OFFSET 3").unwrap();
        assert_eq!(finalize(raw(3), &ask_off, &d).boolean(), Some(false));
        assert_eq!(finalize(raw(4), &ask_off, &d).boolean(), Some(true));
        let ask_l0 = parse_query("ASK { ?x <p> ?y . } LIMIT 0").unwrap();
        assert_eq!(finalize(raw(5), &ask_l0, &d).boolean(), Some(false));
        // A SELECT output is not a boolean.
        let sel = Query {
            form: QueryForm::Select {
                selection: Selection::Vars(vec!["x".into()]),
                dedup: Dedup::None,
            },
            pattern: ask.pattern.clone(),
            modifiers: Modifiers::default(),
        };
        let raw_sel = QueryOutput {
            vars: vec!["x".into()],
            rows: vec![vec![b(0, BindingSpace::Subject)]],
            stats: QueryStats::default(),
        };
        assert_eq!(finalize(raw_sel, &sel, &d).boolean(), None);
    }

    #[test]
    fn finalize_orders_unbound_first_and_desc_reverses() {
        let d = dict();
        let raw = QueryOutput {
            vars: vec!["y".into()],
            rows: vec![
                vec![b(0, BindingSpace::Object)],
                vec![None],
                vec![b(0, BindingSpace::Shared)],
            ],
            stats: QueryStats::default(),
        };
        let asc = parse_query("SELECT ?y WHERE { ?x <p> ?y . } ORDER BY ?y").unwrap();
        let out = finalize(raw.clone(), &asc, &d);
        assert_eq!(out.rows[0], vec![None], "unbound sorts first ascending");
        let desc = parse_query("SELECT ?y WHERE { ?x <p> ?y . } ORDER BY DESC(?y)").unwrap();
        let out = finalize(raw, &desc, &d);
        assert_eq!(out.rows[2], vec![None], "unbound sorts last descending");
    }

    #[test]
    fn sort_is_stable_across_equal_keys() {
        let d = dict();
        // Two rows with equal keys in ?y but distinct ?x orders: the input
        // order must survive the sort (stability).
        let raw = QueryOutput {
            vars: vec!["x".into(), "y".into()],
            rows: vec![
                vec![b(1, BindingSpace::Predicate), b(0, BindingSpace::Object)],
                vec![b(0, BindingSpace::Predicate), b(0, BindingSpace::Object)],
            ],
            stats: QueryStats::default(),
        };
        let q = parse_query("SELECT ?x ?y WHERE { ?x <p> ?y . } ORDER BY ?y").unwrap();
        let out = finalize(raw, &q, &d);
        assert_eq!(out.rows[0][0], b(1, BindingSpace::Predicate));
        assert_eq!(out.rows[1][0], b(0, BindingSpace::Predicate));
    }
}
