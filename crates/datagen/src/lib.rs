//! # lbr-datagen
//!
//! Seeded synthetic RDF workload generators shaped after the three datasets
//! of the LBR evaluation (§6.1):
//!
//! * [`lubm`] — a LUBM-like university graph (the paper used the LUBM
//!   generator at 10 000 universities / 1.33 G triples);
//! * [`uniprot`] — a UniProt-like protein network (845 M triples in the
//!   paper);
//! * [`dbpedia`] — a DBPedia-like heterogeneous graph with a long-tail
//!   predicate distribution (the paper's DBPedia had 57 453 predicates,
//!   which broke MonetDB's per-predicate tables).
//!
//! The generators are deterministic for a given seed and scale linearly in
//! their size knobs, so the reproduction harness can run the same workload
//! shapes at laptop scale. Each module also carries its benchmark queries —
//! the Appendix E query sets ported to the generated vocabularies with the
//! same OPTIONAL structure, selectivity character and (a)cyclicity.

#![forbid(unsafe_code)]

pub mod dbpedia;
pub mod lubm;
pub mod uniprot;

use lbr_rdf::{Graph, Triple};

/// A named benchmark query.
#[derive(Debug, Clone)]
pub struct BenchQuery {
    /// Query id as used in the paper's tables ("Q1" … "Q7").
    pub id: &'static str,
    /// SPARQL text (parseable by `lbr-sparql`).
    pub text: String,
    /// One-line description of what the paper says about this query.
    pub note: &'static str,
}

/// A generated dataset with its benchmark queries.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name ("LUBM", "UniProt", "DBPedia").
    pub name: &'static str,
    /// The generated triples (deduplicated).
    pub graph: Graph,
    /// The Appendix E-derived query set.
    pub queries: Vec<BenchQuery>,
}

impl Dataset {
    fn new(name: &'static str, triples: Vec<Triple>, queries: Vec<BenchQuery>) -> Dataset {
        Dataset {
            name,
            graph: Graph::from_triples(triples),
            queries,
        }
    }
}

/// Returns all three datasets at the given scale factor (1.0 ≈ a few
/// hundred thousand triples total — a laptop-second workload).
pub fn all_datasets(scale: f64, seed: u64) -> Vec<Dataset> {
    vec![
        lubm::dataset(&lubm::LubmConfig::scaled(scale, seed)),
        uniprot::dataset(&uniprot::UniProtConfig::scaled(scale, seed ^ 0x51ab)),
        dbpedia::dataset(&dbpedia::DbpediaConfig::scaled(scale, seed ^ 0xdb9e)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_nonempty_and_deterministic() {
        let a = all_datasets(0.05, 7);
        let b = all_datasets(0.05, 7);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert!(!x.graph.is_empty(), "{} generated no triples", x.name);
            assert_eq!(
                x.graph.triples(),
                y.graph.triples(),
                "{} not deterministic",
                x.name
            );
            assert!(!x.queries.is_empty());
        }
        // Different seeds differ.
        let c = all_datasets(0.05, 8);
        assert_ne!(a[0].graph.triples(), c[0].graph.triples());
    }

    #[test]
    fn all_queries_parse() {
        for ds in all_datasets(0.02, 3) {
            for q in &ds.queries {
                lbr_sparql::parse_query(&q.text).unwrap_or_else(|e| {
                    panic!("{} {} does not parse: {e}\n{}", ds.name, q.id, q.text)
                });
            }
        }
    }
}
