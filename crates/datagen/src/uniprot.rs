//! UniProt-like protein network data and the Appendix E.2 queries.
//!
//! Proteins carry a recommended name, an encoding gene, a sequence, an
//! organism, and a varying number of annotations (disease, transmembrane,
//! natural-variant) — all with realistic incompleteness so the OPTIONAL
//! queries exercise both matched and NULL rows. Two queries are tuned to
//! the behaviours the paper highlights: Q2 has an empty join detected by
//! active pruning, and Q4's OPTIONAL side is emptied entirely by a single
//! master-to-slave semi-join.

use crate::{BenchQuery, Dataset};
use lbr_rdf::{Term, Triple};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Core vocabulary namespace (`uni:`).
pub const UNI: &str = "urn:uni:";
/// RDF-schema-ish namespace (`schema:`).
pub const SCHEMA: &str = "urn:schema:";
/// `rdf:` namespace.
pub const RDF: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";

/// Generation knobs.
#[derive(Debug, Clone)]
pub struct UniProtConfig {
    /// Number of proteins.
    pub proteins: usize,
    /// Number of taxa (organisms).
    pub taxa: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UniProtConfig {
    fn default() -> Self {
        UniProtConfig {
            proteins: 6000,
            taxa: 40,
            seed: 43,
        }
    }
}

impl UniProtConfig {
    /// Scales the default configuration.
    pub fn scaled(scale: f64, seed: u64) -> UniProtConfig {
        let d = UniProtConfig::default();
        UniProtConfig {
            proteins: ((d.proteins as f64 * scale).round() as usize).max(10),
            taxa: d.taxa,
            seed,
        }
    }
}

fn uni(local: impl AsRef<str>) -> Term {
    Term::iri(format!("{UNI}{}", local.as_ref()))
}

fn schema(local: &str) -> Term {
    Term::iri(format!("{SCHEMA}{local}"))
}

fn rdf(local: &str) -> Term {
    Term::iri(format!("{RDF}{local}"))
}

/// Generates the triples.
pub fn generate(cfg: &UniProtConfig) -> Vec<Triple> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out: Vec<Triple> = Vec::new();
    let mut t = |s: &Term, p: Term, o: Term| out.push(Triple::new(s.clone(), p, o));

    let taxa: Vec<Term> = (0..cfg.taxa)
        .map(|i| uni(format!("taxonomy/{i}")))
        .collect();
    let type_p = rdf("type");

    for i in 0..cfg.proteins {
        let prot = uni(format!("protein/P{i:05}"));
        t(&prot, type_p.clone(), uni("Protein"));
        t(
            &prot,
            uni("organism"),
            taxa[rng.random_range(0..taxa.len())].clone(),
        );

        // Recommended name (85%).
        if rng.random_bool(0.85) {
            let rn = uni(format!("name/RN{i:05}"));
            t(&prot, uni("recommendedName"), rn.clone());
            t(&rn, type_p.clone(), uni("Structured_Name"));
            if rng.random_bool(0.9) {
                t(
                    &rn,
                    uni("fullName"),
                    Term::literal(format!("Protein full name {i}")),
                );
            }
        }

        // Encoding gene (90%).
        if rng.random_bool(0.9) {
            let gene = uni(format!("gene/G{i:05}"));
            t(&prot, uni("encodedBy"), gene.clone());
            t(&gene, type_p.clone(), uni("Gene"));
            if rng.random_bool(0.8) {
                t(&gene, uni("name"), Term::literal(format!("GENE{i}")));
            }
            // NOTE for Q4: genes never get uni:context — the OPTIONAL side
            // of Q4 is non-empty on its own (sequences have contexts) but a
            // single semi-join against ?seq empties it, the behaviour the
            // paper calls out for UniProt Q4.
        }

        // Sequence.
        let seq = uni(format!("sequence/S{i:05}"));
        t(&prot, uni("sequence"), seq.clone());
        t(&seq, type_p.clone(), uni("Simple_Sequence"));
        t(&seq, rdf("value"), Term::literal(format!("MSEQ{i:05}AAQQ")));
        if rng.random_bool(0.7) {
            t(&seq, uni("version"), Term::integer(rng.random_range(1..9)));
        }
        if rng.random_bool(0.3) {
            t(
                &seq,
                uni("memberOf"),
                uni(format!("cluster/C{}", rng.random_range(0..50))),
            );
        }
        if rng.random_bool(0.25) {
            // Contexts live on sequences (not genes) — see the Q4 note.
            let m = uni(format!("context/X{i:05}"));
            t(&seq, uni("context"), m.clone());
            t(&m, schema("label"), Term::literal(format!("ctx {i}")));
        }

        // Annotations (0–3).
        for a in 0..rng.random_range(0..4usize) {
            let ann = uni(format!("annotation/A{i:05}x{a}"));
            t(&prot, uni("annotation"), ann.clone());
            let kind = rng.random_range(0..3);
            match kind {
                0 => {
                    t(&ann, type_p.clone(), uni("Disease_Annotation"));
                    t(
                        &ann,
                        schema("comment"),
                        Term::literal(format!("disease note {i}/{a}")),
                    );
                }
                1 => {
                    t(&ann, type_p.clone(), uni("Transmembrane_Annotation"));
                    if rng.random_bool(0.8) {
                        let range = uni(format!("range/R{i:05}x{a}"));
                        t(&ann, uni("range"), range.clone());
                        t(
                            &range,
                            uni("begin"),
                            Term::integer(rng.random_range(1..300)),
                        );
                        t(
                            &range,
                            uni("end"),
                            Term::integer(rng.random_range(300..700)),
                        );
                    }
                }
                _ => {
                    t(&ann, type_p.clone(), uni("Natural_Variant_Annotation"));
                    t(
                        &ann,
                        schema("comment"),
                        Term::literal(format!("variant note {i}/{a}")),
                    );
                }
            }
        }

        // Replaces chains (12%).
        if i > 0 && rng.random_bool(0.12) {
            let prev = uni(format!("protein/P{:05}", rng.random_range(0..i)));
            t(&prot, uni("replaces"), prev);
        }
        if rng.random_bool(0.35) {
            t(
                &prot,
                schema("seeAlso"),
                uni(format!("xref/DB{}", rng.random_range(0..200))),
            );
        }
        if rng.random_bool(0.4) {
            let day = rng.random_range(1..28);
            t(
                &prot,
                uni("modified"),
                Term::literal(format!("2008-01-{day:02}")),
            );
        }

        // Citation statements: subjects are statement nodes; they never
        // have uni:encodedBy, so Q2's first block is empty — the paper's
        // "active pruning detects empty results early" case.
        if rng.random_bool(0.2) {
            let st = uni(format!("citation/St{i:05}"));
            t(&st, rdf("subject"), prot.clone());
            t(&st, type_p.clone(), uni("Citation_Statement"));
        }
    }
    out
}

/// The Appendix E.2 UniProt queries, ported to the generated vocabulary.
pub fn queries() -> Vec<BenchQuery> {
    let prefix = format!("PREFIX uni: <{UNI}>\nPREFIX schema: <{SCHEMA}>\nPREFIX rdf: <{RDF}>\n");
    let q = |id, body: &str, note| BenchQuery {
        id,
        text: format!("{prefix}{body}"),
        note,
    };
    vec![
        q(
            "Q1",
            "SELECT * WHERE {
               { ?protein rdf:type uni:Protein . ?protein uni:recommendedName ?rn .
                 OPTIONAL { ?rn uni:fullName ?name . ?rn rdf:type ?rntype . } }
               { ?protein uni:encodedBy ?gene .
                 OPTIONAL { ?gene uni:name ?gn . ?gene rdf:type ?gtype . } }
               { ?protein uni:sequence ?seq . ?seq a ?stype . } }",
            "low selectivity, three blocks, two OPTIONALs",
        ),
        q(
            "Q2",
            "SELECT * WHERE {
               { ?a rdf:subject ?b . ?a uni:encodedBy ?vo .
                 OPTIONAL { ?a schema:seeAlso ?x . } }
               { ?b a uni:Protein . ?b uni:sequence ?z .
                 OPTIONAL { ?b uni:replaces ?c . } }
               { ?z a uni:Simple_Sequence . OPTIONAL { ?z uni:version ?v . } } }",
            "empty result detected by active pruning (statements lack encodedBy)",
        ),
        q(
            "Q3",
            "SELECT * WHERE {
               { ?protein rdf:type uni:Protein . ?protein uni:organism uni:taxonomy/9 .
                 OPTIONAL { ?protein uni:encodedBy ?gene . ?gene uni:name ?gname . } }
               { ?protein uni:annotation ?an .
                 OPTIONAL { ?an rdf:type uni:Disease_Annotation . ?an schema:comment ?text . } } }",
            "per-organism slice with annotation OPTIONAL",
        ),
        q(
            "Q4",
            "SELECT * WHERE { ?s uni:encodedBy ?seq .
               OPTIONAL { ?seq uni:context ?m . ?m schema:label ?b . } }",
            "semi-join empties the whole OPTIONAL: every row has NULLs",
        ),
        q(
            "Q5",
            "SELECT * WHERE {
               { ?a uni:replaces ?b .
                 OPTIONAL { ?a uni:encodedBy ?gene . ?gene uni:name ?name . ?gene rdf:type uni:Gene . } }
               { ?b rdf:type uni:Protein . ?b uni:modified \"2008-01-15\" .
                 OPTIONAL { ?b uni:sequence ?seq . ?seq uni:memberOf ?m . } } }",
            "highly selective literal lookup",
        ),
        q(
            "Q6",
            "SELECT * WHERE {
               { ?protein a uni:Protein . ?protein uni:organism uni:taxonomy/7 .
                 OPTIONAL { ?protein uni:annotation ?an . ?an a uni:Natural_Variant_Annotation .
                            ?an schema:comment ?text . } }
               { ?protein uni:sequence ?seq . ?seq rdf:value ?val . } }",
            "organism slice with variant annotations",
        ),
        q(
            "Q7",
            "SELECT * WHERE { ?protein a uni:Protein . ?protein uni:annotation ?an .
               ?an a uni:Transmembrane_Annotation .
               OPTIONAL { ?an uni:range ?range . ?range uni:begin ?begin . ?range uni:end ?end . } }",
            "transmembrane annotations with optional ranges",
        ),
    ]
}

/// The full UniProt dataset bundle.
pub fn dataset(cfg: &UniProtConfig) -> Dataset {
    Dataset::new("UniProt", generate(cfg), queries())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let cfg = UniProtConfig {
            proteins: 200,
            taxa: 8,
            seed: 5,
        };
        let a = generate(&cfg);
        assert_eq!(a, generate(&cfg));
        assert!(a.len() > 1500, "got {}", a.len());
        // Citation statements exist and never carry encodedBy (Q2 premise).
        let statements: Vec<&Term> = a
            .iter()
            .filter(|t| t.p == rdf("subject"))
            .map(|t| &t.s)
            .collect();
        assert!(!statements.is_empty());
        for st in statements {
            assert!(
                !a.iter().any(|t| &t.s == st && t.p == uni("encodedBy")),
                "statement with encodedBy breaks the Q2 premise"
            );
        }
        // Genes never have contexts (Q4 premise); sequences sometimes do.
        assert!(a.iter().any(|t| t.p == uni("context")));
        let genes: Vec<&Term> = a
            .iter()
            .filter(|t| t.p == uni("encodedBy"))
            .map(|t| &t.o)
            .collect();
        for g in genes {
            assert!(!a.iter().any(|t| &t.s == g && t.p == uni("context")));
        }
    }

    #[test]
    fn queries_parse() {
        for q in queries() {
            lbr_sparql::parse_query(&q.text).unwrap_or_else(|e| panic!("{}: {e}", q.id));
        }
    }
}
