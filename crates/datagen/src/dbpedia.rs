//! DBPedia-like heterogeneous data and the Appendix E.3 queries.
//!
//! DBPedia's defining features for the paper's evaluation: a very large,
//! long-tailed predicate vocabulary (57 453 predicates — the reason
//! MonetDB could not build per-predicate tables), heterogeneous entity
//! types (places, people, soccer players, airports, companies) and heavy
//! use of OPTIONAL-friendly incomplete attributes. Queries Q2 and Q3 are
//! tuned to produce empty results that active pruning detects early, as in
//! Table 6.4.

use crate::{BenchQuery, Dataset};
use lbr_rdf::{Term, Triple};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// `dbpowl:` namespace.
pub const OWL: &str = "urn:dbpowl:";
/// `dbpprop:` namespace.
pub const PROP: &str = "urn:dbpprop:";
/// `foaf:` namespace.
pub const FOAF: &str = "urn:foaf:";
/// `rdfs:` namespace.
pub const RDFS: &str = "urn:rdfs:";
/// `geo:` namespace.
pub const GEO: &str = "urn:geo:";
/// `skos:` namespace.
pub const SKOS: &str = "urn:skos:";
/// `georss:` namespace.
pub const GEORSS: &str = "urn:georss:";
/// Resource namespace.
pub const RES: &str = "urn:dbp:";
/// `rdf:type`.
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// Generation knobs.
#[derive(Debug, Clone)]
pub struct DbpediaConfig {
    /// Populated places (each may also be a Settlement).
    pub places: usize,
    /// Persons (some are soccer players).
    pub persons: usize,
    /// Companies.
    pub companies: usize,
    /// Long-tail predicates (mimics the 57 453-predicate vocabulary).
    pub tail_predicates: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DbpediaConfig {
    fn default() -> Self {
        DbpediaConfig {
            places: 2500,
            persons: 3500,
            companies: 900,
            tail_predicates: 400,
            seed: 44,
        }
    }
}

impl DbpediaConfig {
    /// Scales the default configuration.
    pub fn scaled(scale: f64, seed: u64) -> DbpediaConfig {
        let d = DbpediaConfig::default();
        let s = |x: usize| ((x as f64 * scale).round() as usize).max(5);
        DbpediaConfig {
            places: s(d.places),
            persons: s(d.persons),
            companies: s(d.companies),
            tail_predicates: s(d.tail_predicates),
            seed,
        }
    }
}

fn res(local: impl AsRef<str>) -> Term {
    Term::iri(format!("{RES}{}", local.as_ref()))
}

fn p(ns: &str, local: &str) -> Term {
    Term::iri(format!("{ns}{local}"))
}

/// Generates the triples.
pub fn generate(cfg: &DbpediaConfig) -> Vec<Triple> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out: Vec<Triple> = Vec::new();
    let mut t = |s: &Term, pred: Term, o: Term| out.push(Triple::new(s.clone(), pred, o));
    let ty = p("", RDF_TYPE);

    let categories: Vec<Term> = (0..60).map(|i| res(format!("Category/C{i}"))).collect();
    let countries: Vec<Term> = (0..25).map(|i| res(format!("Country{i}"))).collect();

    // Populated places / settlements.
    let mut places: Vec<Term> = Vec::with_capacity(cfg.places);
    for i in 0..cfg.places {
        let place = res(format!("Place{i}"));
        t(&place, ty.clone(), p(OWL, "PopulatedPlace"));
        t(
            &place,
            p(OWL, "abstract"),
            Term::literal(format!("Abstract of place {i}")),
        );
        t(
            &place,
            p(RDFS, "label"),
            Term::literal(format!("Place {i}")),
        );
        t(
            &place,
            p(GEO, "lat"),
            Term::literal(format!("{}.{}", i % 90, i % 100)),
        );
        t(
            &place,
            p(GEO, "long"),
            Term::literal(format!("{}.{}", i % 180, i % 100)),
        );
        if rng.random_bool(0.45) {
            t(
                &place,
                p(FOAF, "depiction"),
                res(format!("img/Place{i}.jpg")),
            );
        }
        if rng.random_bool(0.3) {
            t(
                &place,
                p(FOAF, "homepage"),
                res(format!("http/place{i}.example")),
            );
        }
        if rng.random_bool(0.6) {
            t(
                &place,
                p(OWL, "populationTotal"),
                Term::integer(rng.random_range(500..9_000_000)),
            );
        }
        if rng.random_bool(0.4) {
            t(
                &place,
                p(OWL, "thumbnail"),
                res(format!("thumb/Place{i}.png")),
            );
        }
        if rng.random_bool(0.5) {
            t(
                &place,
                p(GEORSS, "point"),
                Term::literal(format!("{} {}", i % 90, i % 180)),
            );
        }
        if rng.random_bool(0.55) {
            let settlement = rng.random_bool(0.5);
            if settlement {
                t(&place, ty.clone(), p(OWL, "Settlement"));
            }
        }
        places.push(place);
    }

    // Airports: city links into settlements; iata codes; some homepages.
    let n_airports = (cfg.places / 6).max(3);
    for i in 0..n_airports {
        let ap = res(format!("Airport{i}"));
        t(&ap, ty.clone(), p(OWL, "Airport"));
        let city = &places[rng.random_range(0..places.len())];
        t(&ap, p(OWL, "city"), city.clone());
        t(&ap, p(PROP, "iata"), Term::literal(format!("A{i:03}")));
        if rng.random_bool(0.4) {
            t(
                &ap,
                p(FOAF, "homepage"),
                res(format!("http/airport{i}.example")),
            );
        }
        if rng.random_bool(0.5) {
            t(
                &ap,
                p(PROP, "nativename"),
                Term::literal(format!("Aeropuerto {i}")),
            );
        }
    }

    // Clubs for soccer players.
    let clubs: Vec<Term> = (0..(cfg.persons / 40).max(3))
        .map(|i| {
            let club = res(format!("Club{i}"));
            out.push(Triple::new(
                club.clone(),
                p(OWL, "capacity"),
                Term::integer(10_000 + 500 * i as i64),
            ));
            club
        })
        .collect();
    let mut t = |s: &Term, pred: Term, o: Term| out.push(Triple::new(s.clone(), pred, o));

    // Persons; a fraction are soccer players.
    for i in 0..cfg.persons {
        let person = res(format!("Person{i}"));
        let soccer = i % 5 == 0;
        t(&person, ty.clone(), p(OWL, "Person"));
        t(
            &person,
            p(RDFS, "label"),
            Term::literal(format!("Person {i}")),
        );
        t(
            &person,
            p(FOAF, "name"),
            Term::literal(format!("P. Erson {i}")),
        );
        // NOTE for Q2: soccer players never get foaf:page, so Q2's join of
        // page ∧ SoccerPlayer is empty (Table 6.4's early-abort row).
        if !soccer && rng.random_bool(0.75) {
            t(&person, p(FOAF, "page"), res(format!("wiki/Person{i}")));
        }
        if rng.random_bool(0.25) {
            t(
                &person,
                p(FOAF, "homepage"),
                res(format!("http/person{i}.example")),
            );
        }
        // NOTE for Q3: persons never get dbpowl:thumbnail — the
        // (thumbnail ∧ type Person) intersection is empty, giving the
        // early-abort empty result of Table 6.4.
        if rng.random_bool(0.5) {
            t(
                &person,
                p(SKOS, "subject"),
                categories[rng.random_range(0..categories.len())].clone(),
            );
        }
        if rng.random_bool(0.35) {
            t(
                &person,
                p(RDFS, "comment"),
                Term::literal(format!("Comment on person {i}")),
            );
        }
        if soccer {
            t(&person, ty.clone(), p(OWL, "SoccerPlayer"));
            t(
                &person,
                p(PROP, "position"),
                Term::literal(["GK", "DF", "MF", "FW"][i % 4]),
            );
            t(
                &person,
                p(PROP, "clubs"),
                clubs[rng.random_range(0..clubs.len())].clone(),
            );
            t(
                &person,
                p(OWL, "birthPlace"),
                places[rng.random_range(0..places.len())].clone(),
            );
            if rng.random_bool(0.5) {
                t(
                    &person,
                    p(OWL, "number"),
                    Term::integer(rng.random_range(1..35)),
                );
            }
        }
    }

    // Companies with industry/location/products chains (query Q6 food).
    for i in 0..cfg.companies {
        let c = res(format!("Company{i}"));
        t(
            &c,
            p(RDFS, "comment"),
            Term::literal(format!("Company {i} comment")),
        );
        if rng.random_bool(0.8) {
            t(&c, p(FOAF, "page"), res(format!("wiki/Company{i}")));
        }
        if rng.random_bool(0.5) {
            t(
                &c,
                p(SKOS, "subject"),
                categories[rng.random_range(0..categories.len())].clone(),
            );
        }
        if rng.random_bool(0.5) {
            t(
                &c,
                p(PROP, "industry"),
                Term::literal(format!("Industry{}", i % 12)),
            );
        }
        if rng.random_bool(0.5) {
            t(
                &c,
                p(PROP, "location"),
                places[rng.random_range(0..places.len())].clone(),
            );
        }
        if rng.random_bool(0.4) {
            t(
                &c,
                p(PROP, "locationCountry"),
                countries[rng.random_range(0..countries.len())].clone(),
            );
        }
        if rng.random_bool(0.3) {
            t(
                &c,
                p(PROP, "locationCity"),
                places[rng.random_range(0..places.len())].clone(),
            );
            let product = res(format!("Product{i}"));
            t(&product, p(PROP, "manufacturer"), c.clone());
        }
        if rng.random_bool(0.3) {
            t(
                &c,
                p(PROP, "products"),
                Term::literal(format!("Product line {i}")),
            );
            let model = res(format!("Model{i}"));
            t(&model, p(PROP, "model"), c.clone());
        }
        if rng.random_bool(0.3) {
            t(
                &c,
                p(GEORSS, "point"),
                Term::literal(format!("{} {}", i % 90, i % 180)),
            );
        }
        if rng.random_bool(0.6) {
            t(&c, ty.clone(), p(OWL, "Company"));
        }
    }

    // Long-tail predicates: hundreds of rarely-used properties.
    for i in 0..cfg.tail_predicates {
        let pred = p(PROP, &format!("tail{i}"));
        let uses = 1 + (rng.random_range(0..100) / (1 + i % 17)); // Zipf-ish
        for u in 0..uses {
            let s = res(format!("Place{}", (i * 7 + u * 13) % cfg.places.max(1)));
            t(
                &s,
                pred.clone(),
                Term::literal(format!("tail value {i}/{u}")),
            );
        }
    }

    out
}

/// The Appendix E.3 DBPedia queries, ported to the generated vocabulary
/// (UNION/FILTER-free, as in the paper's methodology).
pub fn queries() -> Vec<BenchQuery> {
    let prefix = format!(
        "PREFIX dbpowl: <{OWL}>\nPREFIX dbpprop: <{PROP}>\nPREFIX foaf: <{FOAF}>\nPREFIX rdfs: <{RDFS}>\nPREFIX geo: <{GEO}>\nPREFIX skos: <{SKOS}>\nPREFIX georss: <{GEORSS}>\n"
    );
    let q = |id, body: &str, note| BenchQuery {
        id,
        text: format!("{prefix}{body}"),
        note,
    };
    vec![
        q(
            "Q1",
            "SELECT * WHERE {
               { ?v6 a dbpowl:PopulatedPlace . ?v6 dbpowl:abstract ?v1 . ?v6 rdfs:label ?v2 .
                 ?v6 geo:lat ?v3 . ?v6 geo:long ?v4 .
                 OPTIONAL { ?v6 foaf:depiction ?v8 . } }
               OPTIONAL { ?v6 foaf:homepage ?v10 . }
               OPTIONAL { ?v6 dbpowl:populationTotal ?v12 . }
               OPTIONAL { ?v6 dbpowl:thumbnail ?v14 . } }",
            "low selectivity, four OPTIONALs over places",
        ),
        q(
            "Q2",
            "SELECT * WHERE { ?v3 foaf:page ?v0 . ?v3 a dbpowl:SoccerPlayer .
               ?v3 dbpprop:position ?v6 . ?v3 dbpprop:clubs ?v8 .
               ?v8 dbpowl:capacity ?v1 . ?v3 dbpowl:birthPlace ?v5 .
               OPTIONAL { ?v3 dbpowl:number ?v9 . } }",
            "empty result: soccer players have no foaf:page",
        ),
        q(
            "Q3",
            "SELECT * WHERE { ?v5 dbpowl:thumbnail ?v4 . ?v5 a dbpowl:Person .
               ?v5 rdfs:label ?v . ?v5 foaf:page ?v8 .
               OPTIONAL { ?v5 foaf:homepage ?v10 . } }",
            "empty result: persons have no thumbnails",
        ),
        q(
            "Q4",
            "SELECT * WHERE {
               { ?v2 a dbpowl:Settlement . ?v2 rdfs:label ?v .
                 ?v6 a dbpowl:Airport . ?v6 dbpowl:city ?v2 . ?v6 dbpprop:iata ?v5 .
                 OPTIONAL { ?v6 foaf:homepage ?v7 . } }
               OPTIONAL { ?v6 dbpprop:nativename ?v8 . } }",
            "selective settlement/airport join",
        ),
        q(
            "Q5",
            "SELECT * WHERE { ?v4 skos:subject ?v . ?v4 foaf:name ?v6 .
               OPTIONAL { ?v4 rdfs:comment ?v8 . } }",
            "medium selectivity star",
        ),
        q(
            "Q6",
            "SELECT * WHERE { ?v0 rdfs:comment ?v1 . ?v0 foaf:page ?v .
               OPTIONAL { ?v0 skos:subject ?v6 . }
               OPTIONAL { ?v0 dbpprop:industry ?v5 . }
               OPTIONAL { ?v0 dbpprop:location ?v2 . }
               OPTIONAL { ?v0 dbpprop:locationCountry ?v3 . }
               OPTIONAL { ?v0 dbpprop:locationCity ?v9 . ?a dbpprop:manufacturer ?v0 . }
               OPTIONAL { ?v0 dbpprop:products ?v11 . ?b dbpprop:model ?v0 . }
               OPTIONAL { ?v0 georss:point ?v10 . }
               OPTIONAL { ?v0 a ?v7 . } }",
            "eight OPTIONALs (the DBPedia-log maximum the paper cites)",
        ),
    ]
}

/// The full DBPedia dataset bundle.
pub fn dataset(cfg: &DbpediaConfig) -> Dataset {
    Dataset::new("DBPedia", generate(cfg), queries())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_premises() {
        let cfg = DbpediaConfig {
            places: 80,
            persons: 120,
            companies: 30,
            tail_predicates: 50,
            seed: 6,
        };
        let triples = generate(&cfg);
        assert_eq!(triples, generate(&cfg));
        assert!(triples.len() > 1000, "got {}", triples.len());
        // Many distinct predicates (long tail).
        let mut preds: Vec<&Term> = triples.iter().map(|t| &t.p).collect();
        preds.sort();
        preds.dedup();
        assert!(preds.len() > 50, "got {} predicates", preds.len());
        // Q3 premise: no person has a thumbnail.
        let persons: Vec<&Term> = triples
            .iter()
            .filter(|t| t.p == Term::iri(RDF_TYPE) && t.o == p(OWL, "Person"))
            .map(|t| &t.s)
            .collect();
        assert!(!persons.is_empty());
        let thumb = p(OWL, "thumbnail");
        for person in persons {
            assert!(!triples.iter().any(|t| &t.s == person && t.p == thumb));
        }
        // Q2 premise: no soccer player has a foaf:page.
        let soccer: Vec<&Term> = triples
            .iter()
            .filter(|t| t.p == Term::iri(RDF_TYPE) && t.o == p(OWL, "SoccerPlayer"))
            .map(|t| &t.s)
            .collect();
        assert!(!soccer.is_empty());
        let page = p(FOAF, "page");
        for s in soccer {
            assert!(!triples.iter().any(|t| &t.s == s && t.p == page));
        }
    }

    #[test]
    fn queries_parse() {
        for q in queries() {
            lbr_sparql::parse_query(&q.text).unwrap_or_else(|e| panic!("{}: {e}", q.id));
        }
    }
}
