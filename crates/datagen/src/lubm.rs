//! LUBM-like university benchmark data and the Appendix E.1 queries.
//!
//! The shape follows the Lehigh University Benchmark ontology: universities
//! contain departments; departments employ full/associate/assistant
//! professors and host undergraduate/graduate students, courses and
//! publications. Contact details (email / telephone) and research interests
//! are *optionally* present — that incompleteness is what makes the
//! OPTIONAL queries meaningful (paper §1).

use crate::{BenchQuery, Dataset};
use lbr_rdf::{Term, Triple};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Namespace of the generated vocabulary.
pub const UB: &str = "urn:ub:";
/// `rdf:type`, as expanded by the parser's `a` keyword.
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// Generation knobs.
#[derive(Debug, Clone)]
pub struct LubmConfig {
    /// Number of universities.
    pub universities: usize,
    /// Departments per university.
    pub departments: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LubmConfig {
    fn default() -> Self {
        LubmConfig {
            universities: 10,
            departments: 10,
            seed: 42,
        }
    }
}

impl LubmConfig {
    /// Scales the default configuration.
    pub fn scaled(scale: f64, seed: u64) -> LubmConfig {
        let d = LubmConfig::default();
        LubmConfig {
            universities: ((d.universities as f64 * scale).round() as usize).max(1),
            departments: d.departments,
            seed,
        }
    }
}

fn iri(local: impl AsRef<str>) -> Term {
    Term::iri(format!("{UB}{}", local.as_ref()))
}

struct Emit<'a> {
    out: &'a mut Vec<Triple>,
}

impl Emit<'_> {
    fn t(&mut self, s: &Term, p: &str, o: Term) {
        self.out.push(Triple::new(s.clone(), iri(p), o));
    }

    fn ty(&mut self, s: &Term, class: &str) {
        self.out
            .push(Triple::new(s.clone(), Term::iri(RDF_TYPE), iri(class)));
    }
}

/// Generates the triples.
pub fn generate(cfg: &LubmConfig) -> Vec<Triple> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out: Vec<Triple> = Vec::new();
    let mut e = Emit { out: &mut out };
    let interests: Vec<Term> = (0..20)
        .map(|i| Term::literal(format!("Research{i}")))
        .collect();

    let universities: Vec<Term> = (0..cfg.universities)
        .map(|u| iri(format!("University{u}")))
        .collect();
    for (u, univ) in universities.iter().enumerate() {
        e.ty(univ, "University");
        e.t(univ, "name", Term::literal(format!("University {u}")));

        for d in 0..cfg.departments {
            let dept = iri(format!("Department{d}.University{u}"));
            e.ty(&dept, "Department");
            e.t(&dept, "subOrganizationOf", univ.clone());

            // Professors.
            let mut profs: Vec<Term> = Vec::new();
            for (class, count) in [
                ("FullProfessor", 5usize),
                ("AssociateProfessor", 6),
                ("AssistantProfessor", 7),
            ] {
                for i in 0..count {
                    let p = iri(format!("{class}{i}.Department{d}.University{u}"));
                    e.ty(&p, class);
                    e.t(&p, "worksFor", dept.clone());
                    e.t(&p, "name", Term::literal(format!("{class} {i} d{d} u{u}")));
                    e.t(
                        &p,
                        "doctoralDegreeFrom",
                        universities[rng.random_range(0..universities.len())].clone(),
                    );
                    e.t(
                        &p,
                        "undergraduateDegreeFrom",
                        universities[rng.random_range(0..universities.len())].clone(),
                    );
                    if rng.random_bool(0.65) {
                        e.t(
                            &p,
                            "emailAddress",
                            Term::literal(format!("{class}{i}.{d}.{u}@uni")),
                        );
                    }
                    if rng.random_bool(0.55) {
                        e.t(
                            &p,
                            "telephone",
                            Term::literal(format!("+1-555-{u:03}-{d:02}{i:02}")),
                        );
                    }
                    if rng.random_bool(0.7) {
                        e.t(
                            &p,
                            "researchInterest",
                            interests[rng.random_range(0..interests.len())].clone(),
                        );
                    }
                    profs.push(p);
                }
            }
            e.t(&profs[0], "headOf", dept.clone());

            // Courses, taught by professors.
            let mut courses: Vec<Term> = Vec::new();
            for c in 0..14 {
                let course = iri(format!("Course{c}.Department{d}.University{u}"));
                e.ty(&course, if c < 10 { "Course" } else { "GraduateCourse" });
                let teacher = &profs[rng.random_range(0..profs.len())];
                e.t(teacher, "teacherOf", course.clone());
                courses.push(course);
            }

            // Students.
            let mut grads: Vec<Term> = Vec::new();
            for s in 0..18 {
                let st = iri(format!("GraduateStudent{s}.Department{d}.University{u}"));
                e.ty(&st, "GraduateStudent");
                e.t(&st, "memberOf", dept.clone());
                e.t(
                    &st,
                    "undergraduateDegreeFrom",
                    universities[rng.random_range(0..universities.len())].clone(),
                );
                let advisor = &profs[rng.random_range(0..profs.len())];
                e.t(&st, "advisor", advisor.clone());
                for _ in 0..rng.random_range(1..4) {
                    let c = &courses[rng.random_range(0..courses.len())];
                    e.t(&st, "takesCourse", c.clone());
                }
                if rng.random_bool(0.5) {
                    let c = &courses[rng.random_range(0..courses.len())];
                    e.t(&st, "teachingAssistantOf", c.clone());
                }
                if rng.random_bool(0.6) {
                    e.t(
                        &st,
                        "emailAddress",
                        Term::literal(format!("gs{s}.{d}.{u}@uni")),
                    );
                }
                if rng.random_bool(0.4) {
                    e.t(
                        &st,
                        "telephone",
                        Term::literal(format!("+1-555-9{u:02}-{d:02}{s:02}")),
                    );
                }
                grads.push(st);
            }
            for s in 0..40 {
                let st = iri(format!(
                    "UndergraduateStudent{s}.Department{d}.University{u}"
                ));
                e.ty(&st, "UndergraduateStudent");
                e.t(&st, "memberOf", dept.clone());
                for _ in 0..rng.random_range(1..4) {
                    let c = &courses[rng.random_range(0..courses.len())];
                    e.t(&st, "takesCourse", c.clone());
                }
                if rng.random_bool(0.3) {
                    let advisor = &profs[rng.random_range(0..profs.len())];
                    e.t(&st, "advisor", advisor.clone());
                }
            }

            // Publications: authored by professors and graduate students.
            for pnum in 0..25 {
                let publ = iri(format!("Publication{pnum}.Department{d}.University{u}"));
                e.ty(&publ, "Publication");
                let author = &profs[rng.random_range(0..profs.len())];
                e.t(&publ, "publicationAuthor", author.clone());
                if rng.random_bool(0.6) {
                    let co = &grads[rng.random_range(0..grads.len())];
                    e.t(&publ, "publicationAuthor", co.clone());
                }
            }
        }
    }
    out
}

/// The Appendix E.1 LUBM queries, ported to the generated vocabulary.
pub fn queries() -> Vec<BenchQuery> {
    let prefix =
        format!("PREFIX ub: <{UB}>\nPREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n");
    let q = |id, body: &str, note| BenchQuery {
        id,
        text: format!("{prefix}{body}"),
        note,
    };
    vec![
        q(
            "Q1",
            "SELECT * WHERE {
               { ?st ub:teachingAssistantOf ?course .
                 OPTIONAL { ?st ub:takesCourse ?course2 . ?pub1 ub:publicationAuthor ?st . } }
               { ?prof ub:teacherOf ?course . ?st ub:advisor ?prof .
                 OPTIONAL { ?prof ub:researchInterest ?resint . ?pub2 ub:publicationAuthor ?prof . } } }",
            "low selectivity, two OPT blocks, cyclic GoJ with 1-jvar slaves",
        ),
        q(
            "Q2",
            "SELECT * WHERE {
               { ?pub a ub:Publication . ?pub ub:publicationAuthor ?st .
                 ?pub ub:publicationAuthor ?prof .
                 OPTIONAL { ?st ub:emailAddress ?ste . ?st ub:telephone ?sttel . } }
               { ?st ub:undergraduateDegreeFrom ?univ . ?dept ub:subOrganizationOf ?univ .
                 OPTIONAL { ?head ub:headOf ?dept . ?others ub:worksFor ?dept . } }
               { ?st ub:memberOf ?dept . ?prof ub:worksFor ?dept .
                 OPTIONAL { ?prof ub:doctoralDegreeFrom ?univ1 . ?prof ub:researchInterest ?resint1 . } } }",
            "large multi-block query over >50% of the data",
        ),
        q(
            "Q3",
            "SELECT * WHERE {
               { ?pub ub:publicationAuthor ?st . ?pub ub:publicationAuthor ?prof .
                 ?st a ub:GraduateStudent .
                 OPTIONAL { ?st ub:undergraduateDegreeFrom ?univ1 . ?st ub:telephone ?sttel . } }
               { ?st ub:advisor ?prof .
                 OPTIONAL { ?prof ub:doctoralDegreeFrom ?univ . ?prof ub:researchInterest ?resint . } }
               { ?st ub:memberOf ?dept . ?prof ub:worksFor ?dept . ?prof a ub:FullProfessor .
                 OPTIONAL { ?head ub:headOf ?dept . ?others ub:worksFor ?dept . } } }",
            "low selectivity, advisor/co-author join",
        ),
        q(
            "Q4",
            "SELECT * WHERE { ?x ub:worksFor ub:Department0.University0 . ?x a ub:FullProfessor .
               OPTIONAL { ?y ub:advisor ?x . ?x ub:teacherOf ?z . ?y ub:takesCourse ?z . } }",
            "highly selective master; cyclic slave with 3 jvars → best-match required",
        ),
        q(
            "Q5",
            "SELECT * WHERE { ?x ub:worksFor ub:Department1.University0 . ?x a ub:FullProfessor .
               OPTIONAL { ?y ub:advisor ?x . ?x ub:teacherOf ?z . ?y ub:takesCourse ?z . } }",
            "same shape as Q4 on another department",
        ),
        q(
            "Q6",
            "SELECT * WHERE { ?x ub:worksFor ub:Department1.University0 . ?x a ub:FullProfessor .
               OPTIONAL { ?x ub:emailAddress ?y1 . ?x ub:telephone ?y2 . ?x ub:name ?y3 . } }",
            "highly selective, acyclic, single-entity OPTIONAL",
        ),
    ]
}

/// The full LUBM dataset bundle.
pub fn dataset(cfg: &LubmConfig) -> Dataset {
    Dataset::new("LUBM", generate(cfg), queries())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_expected_shape() {
        let cfg = LubmConfig {
            universities: 2,
            departments: 3,
            seed: 1,
        };
        let triples = generate(&cfg);
        assert!(triples.len() > 1500, "got {}", triples.len());
        // Department0.University0 must exist for Q4–Q6.
        let dept = iri("Department0.University0");
        assert!(triples.iter().any(|t| t.o == dept));
        // Optional attributes are present but not universal.
        let emails = triples
            .iter()
            .filter(|t| t.p == iri("emailAddress"))
            .count();
        let profs = triples
            .iter()
            .filter(|t| t.p == Term::iri(RDF_TYPE) && t.o == iri("FullProfessor"))
            .count();
        assert!(emails > 0);
        assert!(profs > 0);
    }

    #[test]
    fn deterministic() {
        let cfg = LubmConfig {
            universities: 1,
            departments: 2,
            seed: 9,
        };
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn queries_parse() {
        for q in queries() {
            lbr_sparql::parse_query(&q.text).unwrap_or_else(|e| panic!("{}: {e}", q.id));
        }
    }
}
