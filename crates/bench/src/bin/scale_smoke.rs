//! CI scale smoke: generate a ~1M-triple LUBM tier, bulk-load it through
//! both the serial and the parallel path (asserting the deterministic
//! dictionary merge), persist the store as a v2 segment, and byte-compare
//! every Appendix E query over the mmap'd segments against the heap
//! store at several thread counts.
//!
//! ```sh
//! cargo run --release -p lbr-bench --bin scale_smoke
//! LBR_SMOKE_UNIS=20 cargo run --release -p lbr-bench --bin scale_smoke
//! ```
//!
//! Exits non-zero (panics) on any divergence; prints one `scale-smoke:`
//! line per milestone so CI logs show what was covered.

use lbr_bench::{bench_threads, fmt_secs, run_load_with_segment};
use lbr_bitmat::{BitMatStore, DiskCatalog};
use lbr_core::LbrEngine;
use lbr_datagen::lubm;
use lbr_sparql::parse_query;
use std::time::Instant;

fn main() {
    // ~5.2K triples per university ⇒ 200 universities ≈ 1.04M triples.
    let universities: usize = std::env::var("LBR_SMOKE_UNIS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let seed: u64 = std::env::var("LBR_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let threads = bench_threads();

    let t = Instant::now();
    let cfg = lubm::LubmConfig {
        universities,
        departments: 10,
        seed,
    };
    let graph = lbr_rdf::Graph::from_triples(lubm::generate(&cfg));
    println!(
        "scale-smoke: generated LUBM x{universities} = {} triples in {:.2?}",
        graph.len(),
        t.elapsed()
    );

    let seg_path = std::env::temp_dir().join(format!("lbr-scale-smoke-{}.seg", std::process::id()));
    let (load, encoded) = run_load_with_segment(&graph, threads, &seg_path);
    println!(
        "scale-smoke: load serial {} ({:.0} triples/s), parallel x{threads} {} \
         ({:.0} triples/s, {:.2}x); segment {} MiB, peak RSS {} MiB",
        fmt_secs(load.serial_secs),
        load.serial_tps(),
        fmt_secs(load.parallel_secs),
        load.parallel_tps(),
        load.speedup(),
        load.segment_bytes.div_ceil(1024 * 1024),
        load.peak_rss_bytes / (1024 * 1024),
    );

    let heap = BitMatStore::build_with_threads(&encoded, threads);
    let mapped = DiskCatalog::open(&seg_path).expect("segment reopens");
    let mut compared = 0usize;
    for q in lubm::queries() {
        let query = parse_query(&q.text).expect("Appendix E query parses");
        for n in [1usize, threads] {
            let mem = LbrEngine::new(&heap, &encoded.dict)
                .with_threads(n)
                .execute(&query)
                .unwrap_or_else(|e| panic!("heap {} (threads={n}): {e}", q.id));
            let dsk = LbrEngine::new(&mapped, &encoded.dict)
                .with_threads(n)
                .execute(&query)
                .unwrap_or_else(|e| panic!("mmap {} (threads={n}): {e}", q.id));
            let mut a = mem.rows;
            let mut b = dsk.rows;
            a.sort();
            b.sort();
            assert_eq!(
                a, b,
                "{} diverges between heap and mmap at {n} threads",
                q.id
            );
            compared += 1;
        }
        println!("scale-smoke: {} byte-equal over mmap", q.id);
    }
    let _ = std::fs::remove_file(&seg_path);
    println!("scale-smoke: OK ({compared} query runs byte-equal, heap vs mmap)");
}
