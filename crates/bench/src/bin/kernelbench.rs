//! Kernel microbenchmark smoke: times each compressed-set kernel on a
//! fixed small input and verifies the in-place entry points are
//! allocation-free in the steady state.
//!
//! ```sh
//! cargo run --release -p lbr-bench --bin kernelbench
//! ```
//!
//! Output is one `<name>  <ops/s> ops/s` line per kernel (CI parses the
//! numbers and asserts they are nonzero) plus a final
//! `steady-state allocations: N` line; the process exits nonzero when any
//! in-place kernel allocated after warm-up, so the zero-allocation claim
//! is machine-checked on every CI run.

use lbr_bench::allocation_count;
use lbr_bitmat::kernel::intersect_into;
use lbr_bitmat::{BitRow, BitVec, SetScratch};
use std::time::Instant;

#[global_allocator]
static ALLOC: lbr_bench::CountingAlloc = lbr_bench::CountingAlloc;

const UNIVERSE: u32 = 100_000;
const ITERS: u32 = 2_000;

/// A run-heavy row: 200 runs of 48 bits.
fn runs_row(phase: u32) -> BitRow {
    let positions: Vec<u32> = (0..200u32)
        .flat_map(|i| {
            let s = (i * 499 + phase) % (UNIVERSE - 64);
            s..s + 48
        })
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    BitRow::from_sorted_positions(UNIVERSE, &positions)
}

/// A scatter-heavy row: ~1500 isolated bits.
fn sparse_row(phase: u32) -> BitRow {
    let positions: Vec<u32> = (0..1500u32)
        .map(|i| (i * 66_600 + phase * 7) % UNIVERSE)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    BitRow::from_sorted_positions(UNIVERSE, &positions)
}

/// Times `f` over [`ITERS`] iterations and prints `name  <ops/s> ops/s`.
fn bench(name: &str, mut f: impl FnMut()) {
    // Warm-up pass lets scratch buffers reach their high-water mark.
    f();
    let t = Instant::now();
    for _ in 0..ITERS {
        f();
    }
    let ops = ITERS as f64 / t.elapsed().as_secs_f64().max(1e-12);
    println!("{name:<28} {ops:>14.0} ops/s");
}

fn main() {
    let run_a = runs_row(0);
    let run_b = runs_row(17);
    let sp_a = sparse_row(0);
    let sp_b = sparse_row(3);
    let mask = sp_a.to_bitvec();

    let mut scratch = SetScratch::default();
    let mut dst = BitRow::empty(UNIVERSE);
    let mut pos_buf: Vec<u32> = Vec::new();
    let mut acc = BitVec::zeros(UNIVERSE);

    bench("and_row_runs_runs", || {
        run_a.and_row_into(&run_b, &mut dst, &mut scratch);
        std::hint::black_box(dst.count_ones());
    });
    bench("and_row_runs_sparse", || {
        run_a.and_row_into(&sp_a, &mut dst, &mut scratch);
        std::hint::black_box(dst.count_ones());
    });
    bench("and_row_sparse_sparse", || {
        sp_a.and_row_into(&sp_b, &mut dst, &mut scratch);
        std::hint::black_box(dst.count_ones());
    });
    bench("and_mask_in_place_runs", || {
        let mut r = run_a.clone();
        r.and_mask_in_place(&mask, &mut scratch);
        std::hint::black_box(r.count_ones());
    });
    bench("kway_intersect_4", || {
        intersect_into(&[&run_a, &run_b, &sp_a, &sp_b], &mut pos_buf);
        std::hint::black_box(pos_buf.len());
    });
    bench("or_into_clipped_runs", || {
        acc.reset(UNIVERSE / 2);
        run_a.or_into_clipped(&mut acc);
        std::hint::black_box(acc.count_ones());
    });

    // Zero-allocation verification for the in-place kernels (the
    // `and_mask_in_place_runs` bench above clones per call, and
    // `kway_intersect_4` allocates its k cursor slots, so they are timed
    // but excluded here). One full round warms every buffer — including
    // the representation-flip spares — before the counter snapshot.
    let mut r = run_a.clone();
    let mut round = |dst: &mut BitRow, scratch: &mut SetScratch, acc: &mut BitVec| {
        run_a.and_row_into(&run_b, dst, scratch);
        run_a.and_row_into(&sp_a, dst, scratch);
        sp_a.and_row_into(&sp_b, dst, scratch);
        r.and_mask_in_place(&mask, scratch);
        acc.reset(UNIVERSE);
        run_b.or_into_clipped(acc);
    };
    for _ in 0..3 {
        round(&mut dst, &mut scratch, &mut acc);
    }
    let a0 = allocation_count();
    for _ in 0..1_000 {
        round(&mut dst, &mut scratch, &mut acc);
    }
    let steady = allocation_count() - a0;
    println!("steady-state allocations: {steady}");
    if steady != 0 {
        eprintln!("FAIL: in-place kernels allocated {steady} times after warm-up");
        std::process::exit(1);
    }
}
