//! Allocation-regression gate: measures steady-state heap
//! allocations-per-query on the LUBM sample workload (every Appendix E
//! query, cached-plan execution, minimum over repeated runs) and fails if
//! any query exceeds the committed ceiling.
//!
//! ```sh
//! cargo run --release -p lbr-bench --bin alloc_check
//! ```
//!
//! The ceiling is deliberately a hard-committed constant: it encodes the
//! post-kernel-layer steady state (prune scratch pools + cursor-based
//! join), so any change that reintroduces per-semi-join or per-recursion
//! allocation trips CI instead of silently regressing. Loads during
//! `init` (the engine prunes owned BitMat copies destructively) dominate
//! the remaining number — that is inherent to the §5 design, not churn.

use lbr_bench::{allocation_count, prepare};
use lbr_core::LbrEngine;
use lbr_datagen::lubm;
use lbr_sparql::parse_query;

#[global_allocator]
static ALLOC: lbr_bench::CountingAlloc = lbr_bench::CountingAlloc;

/// Fixed part of the per-query allocation ceiling on the LUBM sample
/// (universities 1, departments 2, seed 3): covers the init-phase BitMat
/// loads (the engine prunes owned copies destructively) and the
/// first-pass growth of the scratch pools.
const BASE_CEILING: u64 = 1_000;

/// Per-result-row allowance: a produced row is cloned out of the reusable
/// assembly buffer and re-projected onto the execution schema — a few
/// unavoidable output allocations per row. Anything above this multiple
/// means per-row churn crept back into the join.
const PER_ROW: u64 = 4;

fn main() {
    let ds = lubm::dataset(&lubm::LubmConfig {
        universities: 1,
        departments: 2,
        seed: 3,
    });
    let p = prepare(ds);
    let engine = LbrEngine::new(&p.store, &p.graph.dict).with_threads(1);
    let mut failed = false;
    println!(
        "allocation check: LUBM sample, cached-plan steady state, \
         ceiling {BASE_CEILING} + {PER_ROW}/result-row"
    );
    for q in &p.dataset.queries {
        let query = parse_query(&q.text).expect("workload query parses");
        let plan = engine.plan(&query).expect("plan");
        // Two warm-up executions let every lazy buffer reach its
        // high-water mark before measuring.
        engine.execute_plan(&plan).expect("warm-up");
        let rows = engine.execute_plan(&plan).expect("warm-up").len() as u64;
        let mut best = u64::MAX;
        for _ in 0..5 {
            let a0 = allocation_count();
            engine.execute_plan(&plan).expect("measured run");
            best = best.min(allocation_count() - a0);
        }
        let ceiling = BASE_CEILING + PER_ROW * rows;
        let verdict = if best <= ceiling { "ok" } else { "FAIL" };
        println!(
            "{:<4} {:>8} allocs/query  (ceiling {ceiling:>6}, {rows} rows)  [{verdict}]",
            q.id, best
        );
        failed |= best > ceiling;
    }
    if failed {
        eprintln!(
            "FAIL: steady-state allocs-per-query exceeded the committed ceiling \
             ({BASE_CEILING} + {PER_ROW}/row)"
        );
        std::process::exit(1);
    }
}
