//! Regenerates every table of the LBR paper's evaluation section.
//!
//! ```sh
//! cargo run --release -p lbr-bench --bin reproduce            # everything
//! cargo run --release -p lbr-bench --bin reproduce -- table6.2
//! LBR_SCALE=2.0 cargo run --release -p lbr-bench --bin reproduce
//! ```
//!
//! Subcommands: `table6.1`, `table6.2`, `table6.3`, `table6.4`,
//! `index-sizes`, `ablation-prune`, `ablation-reorder`, `all` (default).
//! `--json` additionally dumps the reports as JSON to stdout.
//!
//! Environment: `LBR_SCALE` (default 1.0) scales the generators,
//! `LBR_SEED` (default 42) seeds them.

use lbr_baseline::EngineKind;
use lbr_bench::{
    fmt_secs, parse_prev_allocs, prepare, render_table_with_prev, run_dataset, run_engine, run_lbr,
    Prepared,
};
use lbr_bitmat::Catalog;
use lbr_datagen::{all_datasets, Dataset};
use lbr_sparql::parse_query;
use std::time::Instant;

/// Count heap allocations so the `allocs` column (and its before/after
/// delta against the committed `BENCH_<dataset>.json`) is real data.
#[global_allocator]
static ALLOC: lbr_bench::CountingAlloc = lbr_bench::CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".into());
    let scale: f64 = std::env::var("LBR_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let seed: u64 = std::env::var("LBR_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    eprintln!(
        "# LBR reproduction — scale {scale}, seed {seed}, {} timed runs per query",
        lbr_bench::RUNS
    );
    let t = Instant::now();
    let datasets = all_datasets(scale, seed);
    eprintln!("# generated all datasets in {:.2?}", t.elapsed());

    match what.as_str() {
        "table6.1" => table61(&datasets),
        "table6.2" => table_queries(&datasets, 0, "6.2 (LUBM)", json),
        "table6.3" => table_queries(&datasets, 1, "6.3 (UniProt)", json),
        "table6.4" => table_queries(&datasets, 2, "6.4 (DBPedia)", json),
        "index-sizes" => index_sizes(&datasets),
        "ablation-prune" => ablation_prune(&datasets),
        "ablation-reorder" => ablation_reorder(&datasets),
        "all" => {
            table61(&datasets);
            for (i, label) in [
                (0, "6.2 (LUBM)"),
                (1, "6.3 (UniProt)"),
                (2, "6.4 (DBPedia)"),
            ] {
                table_queries(&datasets, i, label, json);
            }
            index_sizes(&datasets);
            ablation_prune(&datasets);
            ablation_reorder(&datasets);
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            std::process::exit(2);
        }
    }
}

/// Table 6.1: dataset characteristics.
fn table61(datasets: &[Dataset]) {
    println!("\n== Table 6.1: dataset characteristics ==");
    println!(
        "{:<10} {:>12} {:>12} {:>8} {:>12}",
        "Dataset", "#triples", "#S", "#P", "#O"
    );
    for ds in datasets {
        let p = prepare(ds.clone());
        let d = p.store.dims();
        println!(
            "{:<10} {:>12} {:>12} {:>8} {:>12}",
            ds.name, d.n_triples, d.n_subjects, d.n_predicates, d.n_objects
        );
    }
}

/// Tables 6.2–6.4: per-query processing times. Each report (including the
/// serial/multi-threaded LBR columns, the speedup and the steady-state
/// allocs-per-query) is also persisted as `BENCH_<dataset>.json` for
/// EXPERIMENTS.md regeneration; when a previous baseline file exists, the
/// `allocs` column prints the before→after delta against it.
fn table_queries(datasets: &[Dataset], idx: usize, label: &str, json: bool) {
    let p = prepare(datasets[idx].clone());
    println!("\n== Table {label}: query processing times ==");
    let mut report = run_dataset(&p);
    if report.name == "LUBM" {
        // The ≥100× scale tier rides on the LUBM report. `LBR_SCALE_TIER`
        // overrides the university count; 0 skips the tier.
        let universities: usize = std::env::var("LBR_SCALE_TIER")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1024);
        if universities > 0 {
            let seed: u64 = std::env::var("LBR_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(42);
            eprintln!("# scale tier: LUBM at {universities} universities …");
            let t = Instant::now();
            report.scale = Some(lbr_bench::run_scale(universities, seed));
            eprintln!("# scale tier measured in {:.2?}", t.elapsed());
        }
    }
    let path = format!("BENCH_{}.json", report.name);
    let prev = std::fs::read_to_string(&path)
        .map(|old| parse_prev_allocs(&old))
        .unwrap_or_default();
    print!("{}", render_table_with_prev(&report, &prev));
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => eprintln!("# wrote {path}"),
        Err(e) => eprintln!("# could not write {path}: {e}"),
    }
    if json {
        println!("{}", report.to_json());
    }
}

/// §6.2 "Index Sizes" + the §4 hybrid-compression claim.
fn index_sizes(datasets: &[Dataset]) {
    println!("\n== Index sizes (hybrid vs pure-RLE row encoding, §4) ==");
    println!(
        "{:<10} {:>10} {:>14} {:>14} {:>9}",
        "Dataset", "#matrices", "hybrid", "pure RLE", "saving"
    );
    for ds in datasets {
        let p = prepare(ds.clone());
        let r = p.store.size_report();
        println!(
            "{:<10} {:>10} {:>13}K {:>13}K {:>8.1}%",
            ds.name,
            r.n_matrices,
            r.hybrid_bytes / 1024,
            r.rle_only_bytes / 1024,
            100.0 * r.saving()
        );
    }
}

/// Ablation: LBR with `prune_triples` vs plain multi-way join on unpruned
/// BitMats (approximated by the jvar orders being empty via a pairwise
/// run on the same store — here we time init+join with pruning disabled
/// through the public engine by comparing Tprune's share).
fn ablation_prune(datasets: &[Dataset]) {
    println!("\n== Ablation: share of time spent pruning (Tprune / Ttotal, §3.3) ==");
    println!(
        "{:<10} {:<4} {:>9} {:>9} {:>8} {:>12}",
        "Dataset", "Q", "Tprune", "Ttotal", "share", "pruned-away"
    );
    for ds in datasets {
        let p = prepare(ds.clone());
        for q in &p.dataset.queries {
            let (out, t) = run_lbr(&p, &q.text);
            let (t_prune, t_total) = (t.t_prune, t.t_total);
            let removed = out
                .stats
                .initial_triples
                .saturating_sub(out.stats.triples_after_pruning);
            println!(
                "{:<10} {:<4} {:>9} {:>9} {:>7.1}% {:>11.1}%",
                ds.name,
                q.id,
                fmt_secs(t_prune),
                fmt_secs(t_total),
                100.0 * t_prune / t_total.max(1e-9),
                100.0 * removed as f64 / (out.stats.initial_triples.max(1)) as f64,
            );
        }
    }
}

/// Ablation: the §3.1 reordering baseline (nullification + best-match) vs
/// LBR on the low-selectivity query of each dataset.
fn ablation_reorder(datasets: &[Dataset]) {
    println!("\n== Ablation: reorder+nullification+best-match vs LBR (§3.1) ==");
    println!(
        "{:<10} {:<4} {:>10} {:>12} {:>9}",
        "Dataset", "Q", "LBR", "Reordered", "rows"
    );
    for ds in datasets {
        let p: Prepared = prepare(ds.clone());
        let q = &p.dataset.queries[0]; // Q1: the low-selectivity query
        let (out, t) = run_lbr(&p, &q.text);
        let t_lbr = t.t_total;
        let query = parse_query(&q.text).unwrap();
        let engine = EngineKind::Reordered.build(&p.store, &p.graph.dict);
        let warm = engine.execute(&query).expect("reordered warm-up");
        assert_eq!(warm.len(), out.len(), "engines disagree on {}", q.id);
        let t_reordered =
            run_engine(&p, &q.text, EngineKind::Reordered).expect("reordered timed runs");
        println!(
            "{:<10} {:<4} {:>10} {:>12} {:>9}",
            ds.name,
            q.id,
            fmt_secs(t_lbr),
            fmt_secs(t_reordered),
            out.len()
        );
    }
}
