//! A counting global allocator: the measurement device behind the
//! `allocs`-per-query bench column and the CI allocation-regression gate.
//!
//! Install it in a binary with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: lbr_bench::CountingAlloc = lbr_bench::CountingAlloc;
//! ```
//!
//! and read [`allocation_count`] before/after the region of interest. The
//! counter tallies every `alloc`/`alloc_zeroed`/`realloc` call (frees are
//! not counted — the question is "does the steady state allocate?", not
//! "does it leak?"). When the allocator is *not* installed (e.g. in unit
//! tests of a host binary with the default allocator) the counter simply
//! stays at zero and deltas read 0 — callers treat that as "not measured".

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// The counting allocator (a unit struct; all state is global).
pub struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers every operation to `System`, which upholds the contract;
// the counter is a side effect only.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: the caller upholds `GlobalAlloc::alloc`'s contract (non-zero
    // layout); we pass `layout` through untouched.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout, same contract — `System` is the real allocator.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: the caller guarantees `ptr` came from this allocator with
    // this `layout`; every pointer we hand out comes from `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` are forwarded exactly as received.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: as for `alloc`; zeroed variant shares the same contract.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout, same contract — `System` is the real allocator.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: the caller guarantees `ptr`/`layout` describe a live block
    // from this allocator and `new_size` is non-zero.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: arguments are forwarded exactly as received.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Monotone count of heap allocations since process start (0 when the
/// counting allocator is not installed as `#[global_allocator]`).
pub fn allocation_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// True when the counting allocator is demonstrably active (any Rust
/// program that reached `main` has allocated by then).
pub fn is_counting() -> bool {
    allocation_count() > 0
}
