//! # lbr-bench
//!
//! The reproduction harness for the LBR paper's evaluation (§6): generates
//! the three workloads, runs every Appendix E query on the LBR engine and
//! the two baseline configurations, and prints Tables 6.1–6.4 plus the
//! index-size report and the two ablations. See `src/bin/reproduce.rs` for
//! the command-line entry point and `benches/` for the Criterion
//! micro-benchmarks.
//!
//! Methodology mirrors §6.1: each query runs `1 + RUNS` times; the first
//! (cold) run is discarded and the remaining times averaged. Results are
//! also emitted as JSON for EXPERIMENTS.md regeneration.

use lbr_baseline::{JoinOrder, PairwiseEngine};
use lbr_bitmat::{BitMatStore, Catalog};
use lbr_core::{LbrEngine, LbrError, QueryOutput};
use lbr_datagen::Dataset;
use lbr_rdf::EncodedGraph;
use lbr_sparql::parse_query;
use serde::Serialize;
use std::time::{Duration, Instant};

/// Timed runs per query after the warm-up run (the paper uses 5).
pub const RUNS: u32 = 5;

/// Intermediate-row budget for the baselines (stand-in for ">30 min").
pub const ROW_LIMIT: usize = 40_000_000;

/// One row of a Table 6.2/6.3/6.4-style report.
#[derive(Debug, Clone, Serialize)]
pub struct QueryRow {
    /// Query id ("Q1"…).
    pub id: String,
    /// LBR init time (BitMat loads + active pruning), averaged.
    pub t_init: f64,
    /// LBR `prune_triples` time, averaged.
    pub t_prune: f64,
    /// LBR end-to-end time, averaged.
    pub t_total: f64,
    /// Pairwise engine, selectivity-ordered (Virtuoso-analog); `None` when
    /// the row budget was exceeded.
    pub t_pairwise: Option<f64>,
    /// Pairwise engine, query-ordered (MonetDB-analog).
    pub t_query_order: Option<f64>,
    /// Σ triples matching each TP before pruning.
    pub initial_triples: u64,
    /// Σ triples left after `prune_triples`.
    pub triples_after_pruning: u64,
    /// Result rows.
    pub n_results: usize,
    /// Result rows with ≥1 NULL.
    pub n_null_results: usize,
    /// Whether nullification/best-match were required.
    pub best_match_required: bool,
}

/// A full dataset report.
#[derive(Debug, Clone, Serialize)]
pub struct DatasetReport {
    /// Dataset name.
    pub name: String,
    /// Triple count and per-dimension cardinalities (Table 6.1 row).
    pub n_triples: u64,
    /// Distinct subjects.
    pub n_subjects: u32,
    /// Distinct predicates.
    pub n_predicates: u32,
    /// Distinct objects.
    pub n_objects: u32,
    /// Per-query rows.
    pub rows: Vec<QueryRow>,
    /// Geometric means (seconds) per engine, over queries all engines
    /// completed.
    pub geomean_lbr: f64,
    /// Geomean for the selectivity-ordered pairwise engine.
    pub geomean_pairwise: f64,
    /// Geomean for the query-ordered pairwise engine.
    pub geomean_query_order: f64,
}

/// A prepared (indexed) dataset.
pub struct Prepared {
    /// The dataset (graph + queries).
    pub dataset: Dataset,
    /// Encoded graph.
    pub graph: EncodedGraph,
    /// The BitMat store.
    pub store: BitMatStore,
}

/// Encodes and indexes a dataset.
pub fn prepare(dataset: Dataset) -> Prepared {
    let graph = dataset.graph.clone().encode();
    let store = BitMatStore::build(&graph);
    Prepared {
        dataset,
        graph,
        store,
    }
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// Runs one query on the LBR engine with warm-up, returning averaged stats
/// and the last output.
pub fn run_lbr(p: &Prepared, text: &str) -> (QueryOutput, f64, f64, f64) {
    let query = parse_query(text).expect("benchmark query parses");
    let engine = LbrEngine::new(&p.store, &p.graph.dict);
    let mut out = engine.execute(&query).expect("warm-up run");
    let (mut t_init, mut t_prune, mut t_total) = (0.0, 0.0, 0.0);
    for _ in 0..RUNS {
        out = engine.execute(&query).expect("timed run");
        t_init += secs(out.stats.t_init);
        t_prune += secs(out.stats.t_prune);
        t_total += secs(out.stats.t_total);
    }
    let n = RUNS as f64;
    (out, t_init / n, t_prune / n, t_total / n)
}

/// Runs one query on a pairwise baseline; `None` when the row budget blew.
pub fn run_pairwise(p: &Prepared, text: &str, order: JoinOrder) -> Option<f64> {
    let query = parse_query(text).expect("benchmark query parses");
    let engine = PairwiseEngine::new(&p.store, &p.graph.dict, order).with_row_limit(ROW_LIMIT);
    match engine.execute(&query) {
        Err(LbrError::ResourceLimit(_)) => return None,
        Err(e) => panic!("baseline failed: {e}"),
        Ok(_) => {}
    }
    let mut total = 0.0;
    for _ in 0..RUNS {
        let t = Instant::now();
        engine.execute(&query).expect("timed run");
        total += secs(t.elapsed());
    }
    Some(total / RUNS as f64)
}

fn geomean(xs: impl Iterator<Item = f64> + Clone) -> f64 {
    let n = xs.clone().count();
    if n == 0 {
        return f64::NAN;
    }
    (xs.map(|x| x.max(1e-9).ln()).sum::<f64>() / n as f64).exp()
}

/// Benchmarks every query of a prepared dataset.
pub fn run_dataset(p: &Prepared) -> DatasetReport {
    let dims = p.store.dims();
    let mut rows = Vec::new();
    for q in &p.dataset.queries {
        let (out, t_init, t_prune, t_total) = run_lbr(p, &q.text);
        let t_pairwise = run_pairwise(p, &q.text, JoinOrder::Selectivity);
        let t_query_order = run_pairwise(p, &q.text, JoinOrder::QueryOrder);
        rows.push(QueryRow {
            id: q.id.to_string(),
            t_init,
            t_prune,
            t_total,
            t_pairwise,
            t_query_order,
            initial_triples: out.stats.initial_triples,
            triples_after_pruning: out.stats.triples_after_pruning,
            n_results: out.len(),
            n_null_results: out.rows_with_nulls(),
            best_match_required: out.stats.nb_required,
        });
    }
    DatasetReport {
        name: p.dataset.name.to_string(),
        n_triples: dims.n_triples,
        n_subjects: dims.n_subjects,
        n_predicates: dims.n_predicates,
        n_objects: dims.n_objects,
        geomean_lbr: geomean(rows.iter().map(|r| r.t_total)),
        geomean_pairwise: geomean(rows.iter().filter_map(|r| r.t_pairwise)),
        geomean_query_order: geomean(rows.iter().filter_map(|r| r.t_query_order)),
        rows,
    }
}

/// Formats seconds the way the paper's tables do.
pub fn fmt_secs(s: f64) -> String {
    if s < 0.0005 {
        format!("{:.0}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Renders a dataset report as the Table 6.2-style fixed-width table.
pub fn render_table(r: &DatasetReport) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<4} {:>9} {:>9} {:>9} {:>10} {:>10} {:>12} {:>12} {:>10} {:>10} {:>6}",
        "",
        "Tinit",
        "Tprune",
        "Ttotal",
        "Tpairwise",
        "TqryOrder",
        "#initial",
        "#aftPrune",
        "#results",
        "#nulls",
        "BM?"
    );
    for row in &r.rows {
        let _ = writeln!(
            s,
            "{:<4} {:>9} {:>9} {:>9} {:>10} {:>10} {:>12} {:>12} {:>10} {:>10} {:>6}",
            row.id,
            fmt_secs(row.t_init),
            fmt_secs(row.t_prune),
            fmt_secs(row.t_total),
            row.t_pairwise.map_or(">budget".into(), fmt_secs),
            row.t_query_order.map_or(">budget".into(), fmt_secs),
            row.initial_triples,
            row.triples_after_pruning,
            row.n_results,
            row.n_null_results,
            if row.best_match_required { "Yes" } else { "No" },
        );
    }
    let _ = writeln!(
        s,
        "geometric means: LBR {}, pairwise/selectivity {}, pairwise/query-order {}",
        fmt_secs(r.geomean_lbr),
        fmt_secs(r.geomean_pairwise),
        fmt_secs(r.geomean_query_order),
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_datagen::lubm;

    #[test]
    fn harness_runs_a_tiny_workload() {
        let ds = lubm::dataset(&lubm::LubmConfig {
            universities: 1,
            departments: 2,
            seed: 3,
        });
        let p = prepare(ds);
        let report = run_dataset(&p);
        assert_eq!(report.rows.len(), 6);
        assert!(report.n_triples > 0);
        assert!(report.geomean_lbr > 0.0);
        let table = render_table(&report);
        assert!(table.contains("Q1") && table.contains("Q6"));
        // Q4/Q5 are the best-match rows.
        assert!(report.rows[3].best_match_required);
        assert!(!report.rows[5].best_match_required);
        // JSON round-trip for EXPERIMENTS.md.
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"geomean_lbr\""));
    }

    #[test]
    fn fmt_secs_ranges() {
        assert!(fmt_secs(0.0000005).ends_with("µs"));
        assert!(fmt_secs(0.0123).ends_with("ms"));
        assert_eq!(fmt_secs(2.5), "2.50s");
    }
}
