//! # lbr-bench
//!
//! The reproduction harness for the LBR paper's evaluation (§6): generates
//! the three workloads, runs every Appendix E query on the LBR engine and
//! the baseline engines, and prints Tables 6.1–6.4 plus the index-size
//! report and the two ablations. See `src/bin/reproduce.rs` for the
//! command-line entry point and `benches/` for the Criterion
//! micro-benchmarks.
//!
//! All engines run through the shared [`lbr_core::api::Engine`] trait via
//! [`EngineKind`], so adding an engine to the evaluation means extending
//! [`BASELINE_KINDS`] — nothing else.
//!
//! Methodology mirrors §6.1: each query runs `1 + RUNS` times; the first
//! (cold) run is discarded and the remaining times averaged. Results are
//! also emitted as JSON for EXPERIMENTS.md regeneration.

use lbr_baseline::{EngineKind, EngineOptions};
use lbr_bitmat::{BitMatStore, Catalog};
use lbr_core::{LbrEngine, LbrError, QueryOutput};
use lbr_datagen::Dataset;
use lbr_rdf::EncodedGraph;
use lbr_sparql::parse_query;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub mod count_alloc;
pub use count_alloc::{allocation_count, CountingAlloc};

/// Timed runs per query after the warm-up run (the paper uses 5).
pub const RUNS: u32 = 5;

/// Worker threads for the multi-threaded LBR column: the machine's
/// available parallelism, but at least 4 so the speedup column always
/// reflects a real fan-out.
pub fn bench_threads() -> usize {
    lbr_core::api::default_threads().max(4)
}

/// Intermediate-row budget for the baselines (stand-in for ">30 min").
pub const ROW_LIMIT: usize = 40_000_000;

/// The engines timed against LBR in the query tables. The reference
/// oracle is excluded: it is the correctness gate of the test suite, not
/// a performance contender.
pub const BASELINE_KINDS: [EngineKind; 3] = [
    EngineKind::PairwiseSelectivity,
    EngineKind::PairwiseQueryOrder,
    EngineKind::Reordered,
];

/// Average seconds of one engine on one query; `None` when the row
/// budget blew (the paper's ">30 min" entries).
#[derive(Debug, Clone)]
pub struct EngineTime {
    /// Engine name ([`EngineKind::name`]).
    pub engine: &'static str,
    /// Averaged seconds, or `None` on resource-limit abort.
    pub secs: Option<f64>,
}

/// One row of a Table 6.2/6.3/6.4-style report.
#[derive(Debug, Clone)]
pub struct QueryRow {
    /// Query id ("Q1"…).
    pub id: String,
    /// LBR init time (BitMat loads + active pruning), averaged.
    pub t_init: f64,
    /// LBR `prune_triples` time, averaged.
    pub t_prune: f64,
    /// LBR multi-way-join (+ best-match) time, averaged.
    pub t_join: f64,
    /// LBR end-to-end time, averaged (serial: 1 thread).
    pub t_total: f64,
    /// Steady-state heap allocations of one cached-plan execution
    /// (minimum over the timed runs, counted by [`CountingAlloc`]; 0 when
    /// the host binary did not install the counting allocator).
    pub allocs_per_query: u64,
    /// LBR end-to-end time with [`bench_threads`] workers, averaged.
    pub t_total_mt: f64,
    /// The worker-thread count `t_total_mt` was measured with.
    pub mt_threads: usize,
    /// LBR end-to-end time of the same query under `LIMIT 10` (serial),
    /// averaged — tracks the row-quota early-exit win for top-k serving.
    pub t_limit10: f64,
    /// Root seeds the `LIMIT 10` run enumerated (vs. the full run's count
    /// implied by `initial_triples`): the verifiable early-exit evidence.
    pub limit10_seeds: u64,
    /// One entry per [`BASELINE_KINDS`] engine.
    pub baselines: Vec<EngineTime>,
    /// Σ triples matching each TP before pruning.
    pub initial_triples: u64,
    /// Σ triples left after `prune_triples`.
    pub triples_after_pruning: u64,
    /// Result rows.
    pub n_results: usize,
    /// Result rows with ≥1 NULL.
    pub n_null_results: usize,
    /// Whether nullification/best-match were required.
    pub best_match_required: bool,
}

impl QueryRow {
    /// Serial-over-parallel speedup of the LBR end-to-end time.
    pub fn speedup(&self) -> f64 {
        self.t_total / self.t_total_mt.max(1e-9)
    }
}

/// A full dataset report.
#[derive(Debug, Clone)]
pub struct DatasetReport {
    /// Dataset name.
    pub name: String,
    /// Triple count and per-dimension cardinalities (Table 6.1 row).
    pub n_triples: u64,
    /// Distinct subjects.
    pub n_subjects: u32,
    /// Distinct predicates.
    pub n_predicates: u32,
    /// Distinct objects.
    pub n_objects: u32,
    /// Per-query rows.
    pub rows: Vec<QueryRow>,
    /// Geometric mean (seconds) of LBR over all queries.
    pub geomean_lbr: f64,
    /// Geometric means per baseline engine, over the queries that engine
    /// completed.
    pub geomean_baselines: Vec<EngineTime>,
    /// `lbr-server` serving throughput over this dataset (all queries
    /// round-robin through the shared plan cache).
    pub serve: ServeReport,
    /// Serving-throughput cost of tracing every request vs tracing off.
    pub obs: ObsOverheadReport,
    /// Updatable-store overhead: query latency with 0%/1%/10% of the
    /// triples resident in the delta memtable, and after compaction.
    pub delta: DeltaReport,
    /// Bulk-load measurement over this dataset's triples (serial vs
    /// parallel throughput, peak RSS, on-disk segment size).
    pub load: LoadReport,
    /// The ≥100× scale tier (LUBM only; attached by the reproduce
    /// binary, absent on the small tiers).
    pub scale: Option<ScaleReport>,
}

/// A prepared (indexed) dataset.
pub struct Prepared {
    /// The dataset (graph + queries).
    pub dataset: Dataset,
    /// Encoded graph.
    pub graph: EncodedGraph,
    /// The BitMat store.
    pub store: BitMatStore,
}

/// Encodes and indexes a dataset.
pub fn prepare(dataset: Dataset) -> Prepared {
    let graph = dataset.graph.clone().encode();
    let store = BitMatStore::build(&graph);
    Prepared {
        dataset,
        graph,
        store,
    }
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// Averaged phase timings plus the steady-state allocation count of one
/// LBR query ([`run_lbr`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct LbrTimes {
    /// Averaged init seconds.
    pub t_init: f64,
    /// Averaged prune seconds.
    pub t_prune: f64,
    /// Averaged join seconds.
    pub t_join: f64,
    /// Averaged end-to-end seconds.
    pub t_total: f64,
    /// Minimum heap allocations of one cached-plan execution (0 when the
    /// counting allocator is not installed).
    pub allocs_per_query: u64,
}

/// Runs one query on the serial (1-thread) LBR engine with warm-up,
/// returning averaged stats and the last output.
///
/// Each timed run is a full `execute` (planning included), matching how
/// [`run_engine`] times the baselines — the columns stay comparable. The
/// allocation count is measured separately over cached-plan executions
/// (the plan-cache serving path): minimum across runs, so one-off lazy
/// initialization does not pollute the steady-state number.
pub fn run_lbr(p: &Prepared, text: &str) -> (QueryOutput, LbrTimes) {
    let query = parse_query(text).expect("benchmark query parses");
    let engine = LbrEngine::new(&p.store, &p.graph.dict).with_threads(1);
    let mut out = engine.execute(&query).expect("warm-up run");
    let mut t = LbrTimes::default();
    for _ in 0..RUNS {
        out = engine.execute(&query).expect("timed run");
        t.t_init += secs(out.stats.t_init);
        t.t_prune += secs(out.stats.t_prune);
        t.t_join += secs(out.stats.t_join);
        t.t_total += secs(out.stats.t_total);
    }
    let n = RUNS as f64;
    t.t_init /= n;
    t.t_prune /= n;
    t.t_join /= n;
    t.t_total /= n;
    let plan = engine.plan(&query).expect("plan");
    let mut allocs = u64::MAX;
    for _ in 0..RUNS {
        let a0 = allocation_count();
        engine.execute_plan(&plan).expect("alloc-count run");
        allocs = allocs.min(allocation_count() - a0);
    }
    t.allocs_per_query = allocs;
    (out, t)
}

/// Runs one query on the LBR engine with `threads` workers (warm-up
/// included), returning the averaged end-to-end seconds. The result rows
/// are asserted byte-identical to `expect` — the bench doubles as an
/// equivalence check for the parallel join.
pub fn run_lbr_threads(p: &Prepared, text: &str, threads: usize, expect: &QueryOutput) -> f64 {
    let query = parse_query(text).expect("benchmark query parses");
    let engine = LbrEngine::new(&p.store, &p.graph.dict).with_threads(threads);
    let mut out = engine.execute(&query).expect("warm-up run");
    let mut t_total = 0.0;
    for _ in 0..RUNS {
        out = engine.execute(&query).expect("timed run");
        t_total += secs(out.stats.t_total);
    }
    assert_eq!(
        out.rows, expect.rows,
        "parallel LBR deviates from serial at {threads} threads"
    );
    t_total / RUNS as f64
}

/// Runs one query with `LIMIT 10` forced onto it (serial LBR, warm-up
/// included), returning the averaged end-to-end seconds and the number of
/// root seeds the quota-limited multi-way join enumerated. Queries that
/// already carry a LIMIT keep the tighter of the two.
pub fn run_lbr_limit10(p: &Prepared, text: &str) -> (f64, u64) {
    let mut query = parse_query(text).expect("benchmark query parses");
    query.modifiers.limit = Some(query.modifiers.limit.map_or(10, |k| k.min(10)));
    let engine = LbrEngine::new(&p.store, &p.graph.dict).with_threads(1);
    let mut out = engine.execute(&query).expect("warm-up run");
    let mut t_total = 0.0;
    for _ in 0..RUNS {
        out = engine.execute(&query).expect("timed run");
        t_total += secs(out.stats.t_total);
    }
    (t_total / RUNS as f64, out.stats.join_seeds)
}

/// Runs one query on any engine through the [`EngineKind`] seam with
/// warm-up; `None` when the row budget blew.
pub fn run_engine(p: &Prepared, text: &str, kind: EngineKind) -> Option<f64> {
    let query = parse_query(text).expect("benchmark query parses");
    let options = EngineOptions {
        row_limit: Some(ROW_LIMIT),
        ..EngineOptions::default()
    };
    let engine = kind.build_with(&p.store, &p.graph.dict, &options);
    match engine.execute(&query) {
        Err(LbrError::ResourceLimit(_)) => return None,
        Err(e) => panic!("{kind} failed: {e}"),
        Ok(_) => {}
    }
    let mut total = 0.0;
    for _ in 0..RUNS {
        let t = Instant::now();
        engine.execute(&query).expect("timed run");
        total += secs(t.elapsed());
    }
    Some(total / RUNS as f64)
}

/// Serving throughput of `lbr-server` over one dataset: real HTTP
/// requests on the loopback interface, all Appendix E queries round-robin
/// across concurrent **keep-alive** connections (one per client, reused
/// for every request), answered from the shared plan + result caches.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// End-to-end queries per second (request written → full response
    /// read), summed over all clients.
    pub qps: f64,
    /// Server worker threads.
    pub workers: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// Total requests issued (all answered 200).
    pub requests: u32,
    /// Plan-cache hits at the end of the run.
    pub cache_hits: u64,
    /// Plan-cache misses (one per distinct query: planning ran once).
    pub cache_misses: u64,
    /// Result-cache hits (a hit skips execution + serialization).
    pub result_hits: u64,
    /// Result-cache misses (one per distinct query at a fixed epoch).
    pub result_misses: u64,
    /// Client-observed request latency percentiles, microseconds
    /// (exact, from every timed request's wall time).
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
}

/// Percent-encodes a query for a `?query=` parameter.
fn urlencode(s: &str) -> String {
    let mut out = String::with_capacity(s.len() * 3);
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b => {
                out.push('%');
                out.push(
                    char::from_digit((b >> 4) as u32, 16)
                        .unwrap()
                        .to_ascii_uppercase(),
                );
                out.push(
                    char::from_digit((b & 0xf) as u32, 16)
                        .unwrap()
                        .to_ascii_uppercase(),
                );
            }
        }
    }
    out
}

/// A keep-alive HTTP client: one TCP connection reused across requests,
/// responses framed by `Content-Length` (surplus bytes carried to the
/// next read). Panics unless the server answers 200 — the bench doubles
/// as a smoke test of the serving path.
struct HttpClient {
    stream: std::net::TcpStream,
    carry: Vec<u8>,
}

impl HttpClient {
    fn connect(addr: std::net::SocketAddr) -> HttpClient {
        let stream = std::net::TcpStream::connect(addr).expect("connect to lbr-server");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("set read timeout");
        // Benchmarking small request/response pairs: Nagle's algorithm
        // would serialize against the peer's delayed ACKs (~40ms per
        // request) and measure the kernel, not the server.
        stream.set_nodelay(true).expect("set nodelay");
        HttpClient {
            stream,
            carry: Vec::new(),
        }
    }

    /// One GET on the persistent connection; returns the body.
    fn get(&mut self, target: &str) -> Vec<u8> {
        use std::io::{Read as _, Write as _};
        // One write_all per request: `write!` would split the request
        // across several small writes, which interacts badly with
        // delayed ACKs even without Nagle.
        let request = format!("GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n");
        self.stream
            .write_all(request.as_bytes())
            .expect("send request");
        let mut chunk = [0u8; 16 * 1024];
        let head_end = loop {
            if let Some(pos) = self.carry.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos + 4;
            }
            let n = self.stream.read(&mut chunk).expect("read response");
            assert!(n > 0, "server closed the keep-alive connection");
            self.carry.extend_from_slice(&chunk[..n]);
        };
        let head = std::str::from_utf8(&self.carry[..head_end]).expect("UTF-8 head");
        assert!(
            head.starts_with("HTTP/1.1 200 "),
            "serve bench got a non-200: {}",
            head.lines().next().unwrap_or("")
        );
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("framed response")
            .parse()
            .expect("numeric length");
        while self.carry.len() < head_end + len {
            let n = self.stream.read(&mut chunk).expect("read body");
            assert!(n > 0, "server closed mid-body");
            self.carry.extend_from_slice(&chunk[..n]);
        }
        let body = self.carry[head_end..head_end + len].to_vec();
        self.carry.drain(..head_end + len);
        body
    }
}

/// Exact percentile of a sorted latency sample (nearest-rank).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Boots `lbr-server` on an ephemeral loopback port over the prepared
/// dataset and measures serving throughput: `clients` concurrent
/// keep-alive connections (each reused for every request, like real
/// SPARQL Protocol clients) issue `rounds` rounds of every dataset
/// query. The first pass is a warm-up that populates the plan and
/// result caches and is not timed; every timed request's wall time
/// feeds the latency percentiles.
pub fn run_serve(p: &Prepared, clients: usize, rounds: u32) -> ServeReport {
    run_serve_with(p, clients, rounds, bench_server_config())
}

/// The [`run_serve`] server configuration: bench worker count, a plan
/// cache big enough for every Appendix E query, everything else (tracing
/// off, 250ms slow threshold) at the defaults a production deployment
/// would start from.
pub fn bench_server_config() -> lbr_server::ServerConfig {
    lbr_server::ServerConfig {
        workers: bench_threads(),
        cache_capacity: 64,
        ..lbr_server::ServerConfig::default()
    }
}

/// [`run_serve`] under an explicit [`lbr_server::ServerConfig`] — the
/// observability overhead bench runs the same workload twice with only
/// the tracing knobs changed.
pub fn run_serve_with(
    p: &Prepared,
    clients: usize,
    rounds: u32,
    config: lbr_server::ServerConfig,
) -> ServeReport {
    let db = std::sync::Arc::new(lbr::Database::from_encoded(p.graph.clone()));
    let workers = config.workers;
    let server = lbr_server::Server::bind("127.0.0.1:0", db, config)
        .expect("bind lbr-server")
        .spawn()
        .expect("spawn lbr-server");
    let addr = server.addr();
    let targets: Vec<String> = p
        .dataset
        .queries
        .iter()
        .map(|q| format!("/sparql?query={}", urlencode(&q.text)))
        .collect();

    // Warm-up: every query planned, executed and serialized once; both
    // caches populated.
    let mut warm = HttpClient::connect(addr);
    for target in &targets {
        warm.get(target);
    }
    drop(warm);

    let requests = (clients as u32) * rounds * (targets.len() as u32);
    let t = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let targets = &targets;
                scope.spawn(move || {
                    let mut conn = HttpClient::connect(addr);
                    let mut lat = Vec::with_capacity((rounds as usize) * targets.len());
                    for round in 0..rounds {
                        // Stagger start points so clients do not hit the
                        // same query in lockstep.
                        for i in 0..targets.len() {
                            let target = &targets[(client + round as usize + i) % targets.len()];
                            let t = Instant::now();
                            conn.get(target);
                            lat.push(t.elapsed().as_micros() as u64);
                        }
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = t.elapsed().as_secs_f64();
    latencies.sort_unstable();

    let cache = server.cache_stats();
    let results = server.result_cache_stats();
    ServeReport {
        qps: requests as f64 / elapsed.max(1e-9),
        workers,
        clients,
        requests,
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        result_hits: results.hits,
        result_misses: results.misses,
        p50_us: percentile(&latencies, 0.50),
        p95_us: percentile(&latencies, 0.95),
        p99_us: percentile(&latencies, 0.99),
        max_us: latencies.last().copied().unwrap_or(0),
    }
}

/// Serving-throughput cost of the observability layer ([`run_obs_overhead`]):
/// the keep-alive workload of [`run_serve`] measured twice, once with
/// tracing fully off (the default config) and once with **every** request
/// traced (`trace_sample_per_1024 = 1024`), on the same dataset.
#[derive(Debug, Clone)]
pub struct ObsOverheadReport {
    /// q/s with tracing off — span recording short-circuits after two
    /// atomic loads, and the hot path stays allocation-free.
    pub qps_off: f64,
    /// q/s with every request traced and published to the ring.
    pub qps_traced: f64,
    /// Throughput lost to always-on tracing, percent
    /// (`(qps_off - qps_traced) / qps_off × 100`; negative = noise).
    pub overhead_pct: f64,
}

/// Measures [`ObsOverheadReport`]: the serve workload back-to-back with
/// tracing off and with a 100% sample rate, so both runs see the same
/// machine state.
pub fn run_obs_overhead(p: &Prepared, clients: usize, rounds: u32) -> ObsOverheadReport {
    let off = run_serve_with(p, clients, rounds, bench_server_config());
    let traced = run_serve_with(
        p,
        clients,
        rounds,
        lbr_server::ServerConfig {
            // Publish a trace for every request; keep the slow-query
            // path out of the picture so the cost measured is sampling.
            trace_sample_per_1024: 1024,
            slow_query: Duration::ZERO,
            ..bench_server_config()
        },
    );
    ObsOverheadReport {
        qps_off: off.qps,
        qps_traced: traced.qps,
        overhead_pct: (off.qps - traced.qps) / off.qps.max(1e-9) * 100.0,
    }
}

/// The delta fractions measured by [`run_delta`]: no delta, then 1% and
/// 10% of the dataset's triples resident in the updatable store's
/// memtable.
pub const DELTA_FRACTIONS: [f64; 3] = [0.0, 0.01, 0.10];

/// Query latency with part of the dataset living in the delta memtable
/// of an updatable [`lbr::Database`] (one point of [`DeltaReport`]).
#[derive(Debug, Clone)]
pub struct DeltaPoint {
    /// Requested fraction of the dataset's triples held out of the base
    /// segments and re-inserted through `Database::insert_triples`.
    pub fraction: f64,
    /// Triples actually resident in the delta while the queries ran.
    pub delta_triples: u64,
    /// Geometric mean (seconds) of all dataset queries, serial LBR.
    pub geomean_secs: f64,
}

/// Updatable-store overhead report: query latency as the delta memtable
/// grows, and after compaction folds it back into fresh segments.
#[derive(Debug, Clone)]
pub struct DeltaReport {
    /// One measurement per [`DELTA_FRACTIONS`] entry.
    pub points: Vec<DeltaPoint>,
    /// Geometric mean (seconds) after `compact()` on the largest-delta
    /// database — the floor the overlay overhead returns to.
    pub compacted_geomean_secs: f64,
    /// Wall-clock seconds of that compaction.
    pub compact_secs: f64,
}

/// SplitMix64 — a tiny deterministic mixer used to spread the held-out
/// triples across the dataset instead of clustering them at one end.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Picks up to `target` triples that can be held out of the base load
/// and re-inserted without forcing a dictionary rebuild: every term of a
/// picked triple still appears in the same role in some remaining
/// triple, so the re-insert is encodable under the base dictionary and
/// stays delta-resident — the state this benchmark exists to measure.
fn pick_holdout(triples: &[lbr_rdf::Triple], target: usize) -> Vec<usize> {
    use std::collections::HashMap;
    let mut subjects: HashMap<&lbr_rdf::Term, usize> = HashMap::new();
    let mut predicates: HashMap<&lbr_rdf::Term, usize> = HashMap::new();
    let mut objects: HashMap<&lbr_rdf::Term, usize> = HashMap::new();
    for t in triples {
        *subjects.entry(&t.s).or_insert(0) += 1;
        *predicates.entry(&t.p).or_insert(0) += 1;
        *objects.entry(&t.o).or_insert(0) += 1;
    }
    let mut order: Vec<usize> = (0..triples.len()).collect();
    order.sort_by_key(|&i| splitmix64(i as u64));
    let mut picked = Vec::with_capacity(target);
    for i in order {
        if picked.len() >= target {
            break;
        }
        let t = &triples[i];
        if subjects[&t.s] > 1 && predicates[&t.p] > 1 && objects[&t.o] > 1 {
            *subjects.get_mut(&t.s).unwrap() -= 1;
            *predicates.get_mut(&t.p).unwrap() -= 1;
            *objects.get_mut(&t.o).unwrap() -= 1;
            picked.push(i);
        }
    }
    picked.sort_unstable();
    picked
}

/// Geometric mean of end-to-end seconds over the dataset's queries
/// against a facade database: warm-up plus [`RUNS`] timed executions per
/// query, planning included — comparable to [`run_engine`].
fn geomean_facade(db: &lbr::Database, queries: &[lbr_datagen::BenchQuery]) -> f64 {
    let mut times = Vec::with_capacity(queries.len());
    for q in queries {
        db.execute(&q.text).expect("warm-up run");
        let mut total = 0.0;
        for _ in 0..RUNS {
            let t = Instant::now();
            db.execute(&q.text).expect("timed run");
            total += secs(t.elapsed());
        }
        times.push(total / RUNS as f64);
    }
    geomean(times.iter().copied())
}

/// Measures the updatable-store overhead: loads the dataset with a
/// fraction of its triples held back, re-inserts them through the update
/// path so they live in the delta memtable, and times every benchmark
/// query at each fraction; then compacts the largest delta and times
/// again. The holdout is role-compatible by construction (see
/// [`pick_holdout`]) so the inserts ride the fast delta path instead of
/// a dictionary rebuild, and auto-compaction is disabled for the run so
/// the delta stays where the benchmark put it.
pub fn run_delta(p: &Prepared) -> DeltaReport {
    let triples = p.dataset.graph.triples();
    let mut points = Vec::new();
    let mut compacted_geomean_secs = f64::NAN;
    let mut compact_secs = f64::NAN;
    for (step, &fraction) in DELTA_FRACTIONS.iter().enumerate() {
        let target = (triples.len() as f64 * fraction).round() as usize;
        let held = pick_holdout(triples, target);
        let mut in_delta = vec![false; triples.len()];
        for &i in &held {
            in_delta[i] = true;
        }
        let base: Vec<lbr_rdf::Triple> = triples
            .iter()
            .enumerate()
            .filter(|&(i, _)| !in_delta[i])
            .map(|(_, t)| t.clone())
            .collect();
        let db = lbr::Database::builder()
            .triples(base)
            .updatable()
            .threads(1)
            .build()
            .expect("updatable bench database");
        let store = db.mutable_store().expect("updatable database has a store");
        store.set_compact_threshold(usize::MAX);
        if !held.is_empty() {
            db.insert_triples(held.iter().map(|&i| triples[i].clone()).collect())
                .expect("delta insert");
        }
        let delta_triples = store.current_ref().delta().len() as u64;
        assert_eq!(
            db.len(),
            triples.len(),
            "holdout re-insert changed the triple count"
        );
        assert_eq!(
            delta_triples as usize,
            held.len(),
            "a holdout insert forced a rebuild; the delta would be empty \
             and the measurement vacuous"
        );
        let geomean_secs = geomean_facade(&db, &p.dataset.queries);
        points.push(DeltaPoint {
            fraction,
            delta_triples,
            geomean_secs,
        });
        if step == DELTA_FRACTIONS.len() - 1 {
            let t = Instant::now();
            db.compact().expect("compaction");
            compact_secs = secs(t.elapsed());
            compacted_geomean_secs = geomean_facade(&db, &p.dataset.queries);
        }
    }
    DeltaReport {
        points,
        compacted_geomean_secs,
        compact_secs,
    }
}

fn geomean(xs: impl Iterator<Item = f64> + Clone) -> f64 {
    let n = xs.clone().count();
    if n == 0 {
        return f64::NAN;
    }
    (xs.map(|x| x.max(1e-9).ln()).sum::<f64>() / n as f64).exp()
}

/// Benchmarks every query of a prepared dataset.
/// Bulk-load measurement over one N-Triples document: the serial path
/// (`parse_ntriples` → `Graph::encode` → `BitMatStore::build`, all on
/// one thread) against the parallel path (`load_ntriples_parallel` →
/// `build_with_threads`), plus the footprint of the result. Both paths
/// produce bit-identical stores (the parallel dictionary merge is
/// deterministic), which [`run_load`] asserts.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Triples in the loaded document.
    pub n_triples: u64,
    /// Worker threads of the parallel path.
    pub threads: usize,
    /// End-to-end seconds of the serial load (parse + encode + build).
    pub serial_secs: f64,
    /// End-to-end seconds of the parallel load at `threads` workers.
    pub parallel_secs: f64,
    /// `VmHWM` of the process after both loads, in bytes (0 where
    /// `/proc` is unavailable) — the resident-set cost of the tier.
    pub peak_rss_bytes: u64,
    /// Size of the v2 on-disk segment file holding the built store.
    pub segment_bytes: u64,
}

impl LoadReport {
    /// Serial load throughput, triples per second.
    pub fn serial_tps(&self) -> f64 {
        self.n_triples as f64 / self.serial_secs.max(1e-9)
    }

    /// Parallel load throughput, triples per second.
    pub fn parallel_tps(&self) -> f64 {
        self.n_triples as f64 / self.parallel_secs.max(1e-9)
    }

    /// Serial-over-parallel load speedup.
    pub fn speedup(&self) -> f64 {
        self.serial_secs / self.parallel_secs.max(1e-9)
    }
}

/// The scale tier: a LUBM generation ≥100× the Table 6.1 sample, loaded
/// through both bulk paths, persisted as a v2 segment and queried over
/// `mmap` — cold (first run after open, BitMat loads included) vs warm
/// (averaged steady state) per Appendix E query.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// LUBM universities generated for the tier.
    pub universities: usize,
    /// The bulk-load measurement over the tier.
    pub load: LoadReport,
    /// Geomean seconds of the first post-open run of each query against
    /// the mmap'd segments.
    pub cold_geomean_secs: f64,
    /// Geomean seconds of the averaged warm runs against the same
    /// catalog.
    pub warm_geomean_secs: f64,
}

/// `VmHWM` (peak resident set) of this process in bytes; 0 where
/// `/proc/self/status` does not exist or does not carry the field.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| {
            rest.trim()
                .trim_end_matches("kB")
                .trim()
                .parse::<u64>()
                .ok()
        })
        .map_or(0, |kb| kb * 1024)
}

/// Times the serial and parallel bulk-load paths over `graph`'s triples,
/// leaving the built store persisted as a v2 segment at `seg_path`.
/// Returns the report and the (parallel-built) encoded graph so callers
/// can query the segment with the right dictionary.
pub fn run_load_with_segment(
    graph: &lbr_rdf::Graph,
    threads: usize,
    seg_path: &std::path::Path,
) -> (LoadReport, EncodedGraph) {
    let nt = lbr_rdf::write_ntriples(graph.triples());

    let t0 = Instant::now();
    let serial_graph =
        lbr_rdf::Graph::from_triples(lbr_rdf::parse_ntriples(&nt).expect("serial parse")).encode();
    let serial_store = BitMatStore::build(&serial_graph);
    let serial_secs = secs(t0.elapsed());

    let t0 = Instant::now();
    let par_graph = lbr_rdf::load_ntriples_parallel(&nt, threads).expect("parallel parse");
    let par_store = BitMatStore::build_with_threads(&par_graph, threads);
    let parallel_secs = secs(t0.elapsed());

    // The parallel dictionary merge is deterministic: both paths must
    // land on the identical ID space and matrices.
    assert_eq!(
        par_graph.dict.to_bytes(),
        serial_graph.dict.to_bytes(),
        "parallel dict diverged"
    );
    assert_eq!(par_store.dims(), serial_store.dims());

    let segment_bytes = lbr_bitmat::disk::save_store(&par_store, seg_path).expect("segment write");
    let report = LoadReport {
        n_triples: par_store.dims().n_triples,
        threads,
        serial_secs,
        parallel_secs,
        peak_rss_bytes: peak_rss_bytes(),
        segment_bytes,
    };
    (report, par_graph)
}

/// [`run_load_with_segment`] against a throwaway segment file.
pub fn run_load(graph: &lbr_rdf::Graph, threads: usize) -> LoadReport {
    let path = std::env::temp_dir().join(format!("lbr-bench-load-{}.seg", std::process::id()));
    let (report, _) = run_load_with_segment(graph, threads, &path);
    let _ = std::fs::remove_file(&path);
    report
}

/// Generates the LUBM scale tier at `universities`, measures both bulk
/// loads, and runs the Appendix E queries over the mmap'd segment: one
/// cold pass (fresh [`lbr_bitmat::DiskCatalog`], first touch of every
/// mapped page) and [`RUNS`] warm passes.
pub fn run_scale(universities: usize, seed: u64) -> ScaleReport {
    let cfg = lbr_datagen::lubm::LubmConfig {
        universities,
        departments: 10,
        seed,
    };
    let graph = lbr_rdf::Graph::from_triples(lbr_datagen::lubm::generate(&cfg));
    let threads = bench_threads();
    let seg_path = std::env::temp_dir().join(format!("lbr-bench-scale-{}.seg", std::process::id()));
    let (load, encoded) = run_load_with_segment(&graph, threads, &seg_path);

    let catalog = lbr_bitmat::DiskCatalog::open(&seg_path).expect("segment reopens");
    let engine = LbrEngine::new(&catalog, &encoded.dict).with_threads(1);
    let mut cold = Vec::new();
    let mut warm = Vec::new();
    for q in lbr_datagen::lubm::queries() {
        let query = parse_query(&q.text).expect("scale query parses");
        let t0 = Instant::now();
        let expect = engine.execute(&query).expect("cold run");
        cold.push(secs(t0.elapsed()));
        let mut total = 0.0;
        for _ in 0..RUNS {
            let t0 = Instant::now();
            let out = engine.execute(&query).expect("warm run");
            total += secs(t0.elapsed());
            assert_eq!(out.len(), expect.len(), "{} unstable over mmap", q.id);
        }
        warm.push(total / f64::from(RUNS));
    }
    drop(catalog);
    let _ = std::fs::remove_file(&seg_path);
    ScaleReport {
        universities,
        load,
        cold_geomean_secs: geomean(cold.into_iter()),
        warm_geomean_secs: geomean(warm.into_iter()),
    }
}

pub fn run_dataset(p: &Prepared) -> DatasetReport {
    let dims = p.store.dims();
    let mut rows = Vec::new();
    let mt_threads = bench_threads();
    for q in &p.dataset.queries {
        let (out, t) = run_lbr(p, &q.text);
        let t_total_mt = run_lbr_threads(p, &q.text, mt_threads, &out);
        let (t_limit10, limit10_seeds) = run_lbr_limit10(p, &q.text);
        let baselines = BASELINE_KINDS
            .iter()
            .map(|&kind| EngineTime {
                engine: kind.name(),
                secs: run_engine(p, &q.text, kind),
            })
            .collect();
        rows.push(QueryRow {
            id: q.id.to_string(),
            t_init: t.t_init,
            t_prune: t.t_prune,
            t_join: t.t_join,
            t_total: t.t_total,
            allocs_per_query: t.allocs_per_query,
            t_total_mt,
            mt_threads,
            t_limit10,
            limit10_seeds,
            baselines,
            initial_triples: out.stats.initial_triples,
            triples_after_pruning: out.stats.triples_after_pruning,
            n_results: out.len(),
            n_null_results: out.rows_with_nulls(),
            best_match_required: out.stats.nb_required,
        });
    }
    let geomean_baselines = BASELINE_KINDS
        .iter()
        .enumerate()
        .map(|(i, &kind)| {
            let completed = rows.iter().filter_map(|r| r.baselines[i].secs);
            EngineTime {
                engine: kind.name(),
                // `None` (rendered "n/a") when the engine completed no
                // query at all, rather than a NaN geomean.
                secs: (completed.clone().count() > 0).then(|| geomean(completed)),
            }
        })
        .collect();
    DatasetReport {
        name: p.dataset.name.to_string(),
        n_triples: dims.n_triples,
        n_subjects: dims.n_subjects,
        n_predicates: dims.n_predicates,
        n_objects: dims.n_objects,
        geomean_lbr: geomean(rows.iter().map(|r| r.t_total)),
        geomean_baselines,
        rows,
        serve: run_serve(p, SERVE_CLIENTS, SERVE_ROUNDS),
        obs: run_obs_overhead(p, SERVE_CLIENTS, SERVE_ROUNDS),
        delta: run_delta(p),
        load: run_load(&p.dataset.graph, mt_threads),
        scale: None,
    }
}

/// Concurrent clients of the serve-mode throughput measurement.
pub const SERVE_CLIENTS: usize = 4;
/// Timed rounds (of all dataset queries, per client) of the serve bench.
/// Enough requests that connection setup and first-touch costs are
/// noise and the percentiles describe steady-state keep-alive serving.
pub const SERVE_ROUNDS: u32 = 50;

/// Formats seconds the way the paper's tables do.
pub fn fmt_secs(s: f64) -> String {
    if s < 0.0005 {
        format!("{:.0}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Renders a dataset report as the Table 6.2-style fixed-width table
/// (one column per baseline engine).
pub fn render_table(r: &DatasetReport) -> String {
    render_table_with_prev(r, &[])
}

/// [`render_table`] with a previous baseline's `(query id, allocs)` pairs
/// (e.g. parsed from a committed `BENCH_<dataset>.json` via
/// [`parse_prev_allocs`]): the `allocs` column then shows the
/// before→after delta per query.
pub fn render_table_with_prev(r: &DatasetReport, prev_allocs: &[(String, u64)]) -> String {
    let mut s = String::new();
    let mt_threads = r.rows.first().map_or(0, |row| row.mt_threads);
    let _ = write!(
        s,
        "{:<4} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7} {:>9} {:>16}",
        "",
        "Tinit",
        "Tprune",
        "Tjoin",
        "Ttotal",
        format!("Tmt({mt_threads})"),
        "spdup",
        "Tlim10",
        "allocs"
    );
    for kind in BASELINE_KINDS {
        let _ = write!(s, " {:>12}", format!("T{}", kind.name()));
    }
    let _ = writeln!(
        s,
        " {:>12} {:>12} {:>10} {:>10} {:>6}",
        "#initial", "#aftPrune", "#results", "#nulls", "BM?"
    );
    for row in &r.rows {
        let allocs = match prev_allocs.iter().find(|(id, _)| *id == row.id) {
            Some(&(_, prev)) => format!("{}→{}", prev, row.allocs_per_query),
            None => row.allocs_per_query.to_string(),
        };
        let _ = write!(
            s,
            "{:<4} {:>9} {:>9} {:>9} {:>9} {:>9} {:>6.2}x {:>9} {:>16}",
            row.id,
            fmt_secs(row.t_init),
            fmt_secs(row.t_prune),
            fmt_secs(row.t_join),
            fmt_secs(row.t_total),
            fmt_secs(row.t_total_mt),
            row.speedup(),
            fmt_secs(row.t_limit10),
            allocs,
        );
        for b in &row.baselines {
            let _ = write!(s, " {:>12}", b.secs.map_or(">budget".into(), fmt_secs));
        }
        let _ = writeln!(
            s,
            " {:>12} {:>12} {:>10} {:>10} {:>6}",
            row.initial_triples,
            row.triples_after_pruning,
            row.n_results,
            row.n_null_results,
            if row.best_match_required { "Yes" } else { "No" },
        );
    }
    let gm: Vec<String> = r
        .geomean_baselines
        .iter()
        .map(|g| format!("{} {}", g.engine, g.secs.map_or("n/a".into(), fmt_secs)))
        .collect();
    let _ = writeln!(
        s,
        "geometric means: LBR {}, {}",
        fmt_secs(r.geomean_lbr),
        gm.join(", "),
    );
    let serve = &r.serve;
    let _ = writeln!(
        s,
        "serving: {:.0} q/s end-to-end over keep-alive HTTP ({} workers, {} clients, \
         {} requests, plan cache {} hits / {} misses, result cache {} hits / {} misses; \
         latency p50 {}µs p95 {}µs p99 {}µs max {}µs)",
        serve.qps,
        serve.workers,
        serve.clients,
        serve.requests,
        serve.cache_hits,
        serve.cache_misses,
        serve.result_hits,
        serve.result_misses,
        serve.p50_us,
        serve.p95_us,
        serve.p99_us,
        serve.max_us,
    );
    let _ = writeln!(
        s,
        "observability: tracing off {:.0} q/s, every request traced {:.0} q/s \
         ({:+.1}% overhead)",
        r.obs.qps_off, r.obs.qps_traced, r.obs.overhead_pct,
    );
    let pts: Vec<String> = r
        .delta
        .points
        .iter()
        .map(|pt| {
            format!(
                "{:.0}%={} ({} triples)",
                pt.fraction * 100.0,
                fmt_secs(pt.geomean_secs),
                pt.delta_triples
            )
        })
        .collect();
    let _ = writeln!(
        s,
        "updatable: delta-resident geomeans {}; after compaction {} \
         (compact took {})",
        pts.join(", "),
        fmt_secs(r.delta.compacted_geomean_secs),
        fmt_secs(r.delta.compact_secs),
    );
    let _ = writeln!(s, "load: {}", render_load(&r.load));
    if let Some(scale) = &r.scale {
        let _ = writeln!(
            s,
            "scale tier ({} universities, {} triples): load {}; mmap'd \
             query geomeans cold {} / warm {}",
            scale.universities,
            scale.load.n_triples,
            render_load(&scale.load),
            fmt_secs(scale.cold_geomean_secs),
            fmt_secs(scale.warm_geomean_secs),
        );
    }
    s
}

/// One human-readable line of a [`LoadReport`], shared by the dataset
/// and scale-tier rows of the table.
fn render_load(l: &LoadReport) -> String {
    format!(
        "serial {:.0} triples/s ({}), parallel×{} {:.0} triples/s ({}, {:.2}x); \
         peak RSS {} MiB, segment {} MiB",
        l.serial_tps(),
        fmt_secs(l.serial_secs),
        l.threads,
        l.parallel_tps(),
        fmt_secs(l.parallel_secs),
        l.speedup(),
        l.peak_rss_bytes / (1024 * 1024),
        l.segment_bytes.div_ceil(1024 * 1024),
    )
}

/// Extracts `(query id, allocs_per_query)` pairs from a previously
/// committed `BENCH_<dataset>.json` — a targeted scan over the hand-rolled
/// JSON this crate emits (the environment has no serde), used to print the
/// before/after allocation delta in the bench table.
pub fn parse_prev_allocs(json: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(i) = rest.find("{\"id\":\"") {
        let after_id = &rest[i + 7..];
        let Some(id_end) = after_id.find('"') else {
            break;
        };
        let id = &after_id[..id_end];
        let tail = &after_id[id_end..];
        // The allocs field belongs to this row object: stop at the next row.
        let row_end = tail.find("{\"id\":\"").unwrap_or(tail.len());
        if let Some(j) = tail[..row_end].find("\"allocs_per_query\":") {
            let digits: String = tail[j + 19..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            if let Ok(v) = digits.parse() {
                out.push((id.to_string(), v));
            }
        }
        rest = &after_id[id_end..];
    }
    out
}

// ---------------------------------------------------------------------
// Minimal JSON emission (the environment has no serde; reports are flat
// enough to serialize by hand).

fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

fn json_opt_f64(out: &mut String, x: Option<f64>) {
    match x {
        Some(v) => json_f64(out, v),
        None => out.push_str("null"),
    }
}

impl EngineTime {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"engine\":");
        json_str(out, self.engine);
        out.push_str(",\"secs\":");
        json_opt_f64(out, self.secs);
        out.push('}');
    }
}

impl QueryRow {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"id\":");
        json_str(out, &self.id);
        let _ = write!(
            out,
            ",\"t_init\":{},\"t_prune\":{},\"t_join\":{},\"allocs_per_query\":{}",
            self.t_init, self.t_prune, self.t_join, self.allocs_per_query
        );
        let _ = write!(out, ",\"t_total\":{}", self.t_total);
        let _ = write!(
            out,
            ",\"t_total_mt\":{},\"mt_threads\":{}",
            self.t_total_mt, self.mt_threads
        );
        let _ = write!(
            out,
            ",\"t_limit10\":{},\"limit10_seeds\":{}",
            self.t_limit10, self.limit10_seeds
        );
        out.push_str(",\"speedup\":");
        json_f64(out, self.speedup());
        out.push_str(",\"baselines\":[");
        for (i, b) in self.baselines.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            b.write_json(out);
        }
        let _ = write!(
            out,
            "],\"initial_triples\":{},\"triples_after_pruning\":{},\
             \"n_results\":{},\"n_null_results\":{},\"best_match_required\":{}}}",
            self.initial_triples,
            self.triples_after_pruning,
            self.n_results,
            self.n_null_results,
            self.best_match_required
        );
    }
}

impl DatasetReport {
    /// Serializes the report as one JSON object (no external crates).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"name\":");
        json_str(&mut out, &self.name);
        let _ = write!(
            out,
            ",\"n_triples\":{},\"n_subjects\":{},\"n_predicates\":{},\"n_objects\":{}",
            self.n_triples, self.n_subjects, self.n_predicates, self.n_objects
        );
        out.push_str(",\"rows\":[");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            r.write_json(&mut out);
        }
        out.push_str("],\"geomean_lbr\":");
        json_f64(&mut out, self.geomean_lbr);
        out.push_str(",\"geomean_baselines\":[");
        for (i, g) in self.geomean_baselines.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            g.write_json(&mut out);
        }
        out.push_str("],\"serve\":{\"qps\":");
        json_f64(&mut out, self.serve.qps);
        let _ = write!(
            out,
            ",\"workers\":{},\"clients\":{},\"requests\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\
             \"result_hits\":{},\"result_misses\":{},\
             \"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"max_us\":{}}}",
            self.serve.workers,
            self.serve.clients,
            self.serve.requests,
            self.serve.cache_hits,
            self.serve.cache_misses,
            self.serve.result_hits,
            self.serve.result_misses,
            self.serve.p50_us,
            self.serve.p95_us,
            self.serve.p99_us,
            self.serve.max_us
        );
        out.push_str(",\"obs\":{\"qps_off\":");
        json_f64(&mut out, self.obs.qps_off);
        out.push_str(",\"qps_traced\":");
        json_f64(&mut out, self.obs.qps_traced);
        out.push_str(",\"overhead_pct\":");
        json_f64(&mut out, self.obs.overhead_pct);
        out.push('}');
        out.push_str(",\"delta\":{\"points\":[");
        for (i, pt) in self.delta.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"fraction\":{},\"delta_triples\":{},\"geomean_secs\":",
                pt.fraction, pt.delta_triples
            );
            json_f64(&mut out, pt.geomean_secs);
            out.push('}');
        }
        out.push_str("],\"compacted_geomean_secs\":");
        json_f64(&mut out, self.delta.compacted_geomean_secs);
        out.push_str(",\"compact_secs\":");
        json_f64(&mut out, self.delta.compact_secs);
        out.push('}');
        out.push_str(",\"load\":");
        self.load.write_json(&mut out);
        if let Some(scale) = &self.scale {
            let _ = write!(out, ",\"scale\":{{\"universities\":{}", scale.universities);
            out.push_str(",\"load\":");
            scale.load.write_json(&mut out);
            out.push_str(",\"cold_geomean_secs\":");
            json_f64(&mut out, scale.cold_geomean_secs);
            out.push_str(",\"warm_geomean_secs\":");
            json_f64(&mut out, scale.warm_geomean_secs);
            out.push('}');
        }
        out.push('}');
        out
    }
}

impl LoadReport {
    fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"n_triples\":{},\"threads\":{},\"serial_secs\":",
            self.n_triples, self.threads
        );
        json_f64(out, self.serial_secs);
        out.push_str(",\"parallel_secs\":");
        json_f64(out, self.parallel_secs);
        out.push_str(",\"serial_tps\":");
        json_f64(out, self.serial_tps());
        out.push_str(",\"parallel_tps\":");
        json_f64(out, self.parallel_tps());
        let _ = write!(
            out,
            ",\"peak_rss_bytes\":{},\"segment_bytes\":{}}}",
            self.peak_rss_bytes, self.segment_bytes
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_datagen::lubm;

    #[test]
    fn harness_runs_a_tiny_workload() {
        let ds = lubm::dataset(&lubm::LubmConfig {
            universities: 1,
            departments: 2,
            seed: 3,
        });
        let p = prepare(ds);
        let report = run_dataset(&p);
        assert_eq!(report.rows.len(), 6);
        assert!(report.n_triples > 0);
        assert!(report.geomean_lbr > 0.0);
        // Every row carries one time per baseline engine, in kind order,
        // plus the multi-threaded LBR measurement.
        for row in &report.rows {
            assert_eq!(row.baselines.len(), BASELINE_KINDS.len());
            for (b, kind) in row.baselines.iter().zip(BASELINE_KINDS) {
                assert_eq!(b.engine, kind.name());
            }
            assert!(row.mt_threads >= 4);
            assert!(row.t_total_mt > 0.0);
            assert!(row.speedup().is_finite());
            assert!(row.t_limit10 > 0.0);
        }
        let table = render_table(&report);
        assert!(table.contains("Q1") && table.contains("Q6"));
        assert!(table.contains("Tpairwise") && table.contains("Treordered"));
        // Q4/Q5 are the best-match rows.
        assert!(report.rows[3].best_match_required);
        assert!(!report.rows[5].best_match_required);
        // JSON for EXPERIMENTS.md regeneration.
        let json = report.to_json();
        assert!(json.contains("\"geomean_lbr\""));
        assert!(json.contains("\"engine\":\"pairwise\""));
        assert!(json.contains("\"t_total_mt\"") && json.contains("\"speedup\""));
        assert!(json.contains("\"t_limit10\"") && json.contains("\"limit10_seeds\""));
        assert!(json.contains("\"t_join\"") && json.contains("\"allocs_per_query\""));
        assert!(table.contains("Tlim10"));
        assert!(table.contains("Tjoin") && table.contains("allocs"));
        // The before/after delta renders when a previous baseline is known.
        let prev = parse_prev_allocs(&json);
        assert_eq!(prev.len(), report.rows.len());
        assert_eq!(prev[0].0, "Q1");
        let delta_table = render_table_with_prev(&report, &prev);
        assert!(
            delta_table.contains(&format!(
                "{}→{}",
                report.rows[0].allocs_per_query, report.rows[0].allocs_per_query
            )),
            "{delta_table}"
        );
        // The serve-mode throughput column: real HTTP requests were
        // answered, every repeated query from the plan cache.
        // The updatable-store measurement: the larger fractions really
        // lived in the delta, and compaction yielded a follow-up number.
        let delta = &report.delta;
        assert_eq!(delta.points.len(), DELTA_FRACTIONS.len());
        assert_eq!(delta.points[0].delta_triples, 0);
        assert!(delta.points[2].delta_triples > delta.points[1].delta_triples);
        assert!(delta.points.iter().all(|pt| pt.geomean_secs > 0.0));
        assert!(delta.compacted_geomean_secs > 0.0);
        assert!(delta.compact_secs >= 0.0);
        assert!(json.contains("\"delta\":{\"points\":["));
        assert!(json.contains("\"compacted_geomean_secs\""));
        assert!(table.contains("after compaction"));
        let serve = &report.serve;
        assert!(serve.qps > 0.0);
        assert_eq!(
            serve.requests,
            (SERVE_CLIENTS as u32) * SERVE_ROUNDS * report.rows.len() as u32
        );
        // The warm-up pass planned and executed each query once; every
        // timed request was then answered from the result cache without
        // touching the plan cache or the engine.
        assert_eq!(
            serve.cache_misses,
            report.rows.len() as u64,
            "one plan per query"
        );
        assert_eq!(
            serve.result_misses,
            report.rows.len() as u64,
            "one execution per query"
        );
        assert_eq!(
            serve.result_hits, serve.requests as u64,
            "every timed request answered from the result cache"
        );
        assert!(serve.p50_us > 0, "latency sample recorded");
        assert!(serve.p50_us <= serve.p95_us && serve.p95_us <= serve.p99_us);
        assert!(serve.p99_us <= serve.max_us);
        assert!(json.contains("\"serve\":{\"qps\":"), "{json}");
        assert!(json.contains("\"cache_hits\""), "{json}");
        assert!(json.contains("\"p99_us\""), "{json}");
        assert!(table.contains("serving:"), "{table}");
        // The bulk-load block: both paths loaded the same tier, the
        // segment round-tripped, and the JSON/table carry the numbers.
        let load = &report.load;
        assert_eq!(load.n_triples, report.n_triples);
        assert!(load.serial_secs > 0.0 && load.parallel_secs > 0.0);
        assert!(load.serial_tps() > 0.0 && load.parallel_tps() > 0.0);
        assert!(load.threads >= 4);
        assert!(load.segment_bytes > 0, "segment was written and measured");
        assert!(json.contains("\"load\":{\"n_triples\""), "{json}");
        assert!(json.contains("\"parallel_tps\""), "{json}");
        assert!(json.contains("\"segment_bytes\""), "{json}");
        assert!(table.contains("load: serial"), "{table}");
        assert!(report.scale.is_none(), "scale tier only via run_scale");
    }

    /// The scale path end to end at a miniature size: generation, both
    /// bulk loads, segment persistence, and cold/warm query passes over
    /// the mmap'd catalog — plus its JSON/table rendering.
    #[test]
    fn scale_tier_runs_and_renders() {
        let scale = run_scale(1, 7);
        assert!(scale.load.n_triples > 0);
        assert!(scale.cold_geomean_secs > 0.0);
        assert!(scale.warm_geomean_secs > 0.0);

        let ds = lubm::dataset(&lubm::LubmConfig {
            universities: 1,
            departments: 2,
            seed: 3,
        });
        let p = prepare(ds);
        let mut report = run_dataset(&p);
        report.scale = Some(scale);
        let json = report.to_json();
        assert!(json.contains("\"scale\":{\"universities\":1"), "{json}");
        assert!(json.contains("\"cold_geomean_secs\""), "{json}");
        let table = render_table(&report);
        assert!(table.contains("scale tier (1 universities"), "{table}");
        assert!(table.contains("cold"), "{table}");
    }

    #[test]
    fn fmt_secs_ranges() {
        assert!(fmt_secs(0.0000005).ends_with("µs"));
        assert!(fmt_secs(0.0123).ends_with("ms"));
        assert_eq!(fmt_secs(2.5), "2.50s");
    }

    #[test]
    fn json_escaping() {
        let mut out = String::new();
        json_str(&mut out, "a\"b\\c\nd");
        assert_eq!(out, r#""a\"b\\c\nd""#);
        let mut out = String::new();
        json_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }
}
