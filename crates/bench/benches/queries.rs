//! End-to-end query benchmarks: LBR vs the pairwise baseline on one
//! representative low-selectivity query and one highly selective query per
//! dataset — the two regimes whose contrast is the paper's headline result.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lbr_baseline::{JoinOrder, PairwiseEngine};
use lbr_bitmat::BitMatStore;
use lbr_core::LbrEngine;
use lbr_datagen::{dbpedia, lubm, uniprot, Dataset};
use lbr_rdf::EncodedGraph;
use lbr_sparql::parse_query;

struct Fixture {
    name: &'static str,
    graph: EncodedGraph,
    store: BitMatStore,
    queries: Vec<(String, lbr_sparql::Query)>,
}

fn fixture(ds: Dataset, pick: &[&str]) -> Fixture {
    let graph = ds.graph.clone().encode();
    let store = BitMatStore::build(&graph);
    let queries = ds
        .queries
        .iter()
        .filter(|q| pick.contains(&q.id))
        .map(|q| (q.id.to_string(), parse_query(&q.text).unwrap()))
        .collect();
    Fixture {
        name: ds.name,
        graph,
        store,
        queries,
    }
}

fn bench_engines(c: &mut Criterion) {
    // Small-but-meaningful scale so the whole suite stays in minutes.
    let fixtures = vec![
        fixture(
            lubm::dataset(&lubm::LubmConfig {
                universities: 3,
                departments: 8,
                seed: 42,
            }),
            &["Q1", "Q6"],
        ),
        fixture(
            uniprot::dataset(&uniprot::UniProtConfig {
                proteins: 2500,
                taxa: 30,
                seed: 42,
            }),
            &["Q1", "Q5"],
        ),
        fixture(
            dbpedia::dataset(&dbpedia::DbpediaConfig {
                places: 900,
                persons: 1200,
                companies: 350,
                tail_predicates: 150,
                seed: 42,
            }),
            &["Q1", "Q5"],
        ),
    ];

    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for f in &fixtures {
        for (id, query) in &f.queries {
            group.bench_with_input(
                BenchmarkId::new(format!("{}_{id}", f.name), "lbr"),
                query,
                |b, q| {
                    let engine = LbrEngine::new(&f.store, &f.graph.dict);
                    b.iter(|| std::hint::black_box(engine.execute(q).unwrap().len()))
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{}_{id}", f.name), "pairwise"),
                query,
                |b, q| {
                    let engine =
                        PairwiseEngine::new(&f.store, &f.graph.dict, JoinOrder::Selectivity);
                    b.iter(|| std::hint::black_box(engine.execute(q).unwrap().rows.len()))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
