//! Benchmarks of the hybrid row codec (§4): construction, iteration,
//! masking and the on-disk encode/decode path, at run-friendly and
//! scatter-friendly densities.

use criterion::{criterion_group, criterion_main, Criterion};
use lbr_bitmat::{BitRow, BitVec};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeSet;

const UNIVERSE: u32 = 1_000_000;

fn runs_row(n_runs: usize, run_len: u32, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = BTreeSet::new();
    for _ in 0..n_runs {
        let s = rng.random_range(0..UNIVERSE - run_len);
        for p in s..s + run_len {
            set.insert(p);
        }
    }
    set.into_iter().collect()
}

fn sparse_row(n_bits: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let set: BTreeSet<u32> = (0..n_bits).map(|_| rng.random_range(0..UNIVERSE)).collect();
    set.into_iter().collect()
}

fn bench_construction(c: &mut Criterion) {
    let runs = runs_row(500, 64, 1);
    let sparse = sparse_row(2_000, 2);
    c.bench_function("row_build_runs_32k_bits", |b| {
        b.iter(|| std::hint::black_box(BitRow::from_sorted_positions(UNIVERSE, &runs)))
    });
    c.bench_function("row_build_sparse_2k_bits", |b| {
        b.iter(|| std::hint::black_box(BitRow::from_sorted_positions(UNIVERSE, &sparse)))
    });
}

fn bench_ops(c: &mut Criterion) {
    let runs = BitRow::from_sorted_positions(UNIVERSE, &runs_row(500, 64, 3));
    let sparse = BitRow::from_sorted_positions(UNIVERSE, &sparse_row(2_000, 4));
    let mask = BitVec::from_positions(UNIVERSE, sparse_row(100_000, 5));
    c.bench_function("row_and_mask_runs", |b| {
        b.iter(|| std::hint::black_box(runs.and_mask(&mask).count_ones()))
    });
    c.bench_function("row_and_mask_sparse", |b| {
        b.iter(|| std::hint::black_box(sparse.and_mask(&mask).count_ones()))
    });
    c.bench_function("row_or_into_runs", |b| {
        b.iter(|| {
            let mut acc = BitVec::zeros(UNIVERSE);
            runs.or_into(&mut acc);
            std::hint::black_box(acc.count_ones())
        })
    });
    c.bench_function("row_iter_ones_runs", |b| {
        b.iter(|| std::hint::black_box(runs.iter_ones().count()))
    });
}

fn bench_codec(c: &mut Criterion) {
    let runs = BitRow::from_sorted_positions(UNIVERSE, &runs_row(500, 64, 6));
    let sparse = BitRow::from_sorted_positions(UNIVERSE, &sparse_row(2_000, 7));
    c.bench_function("row_codec_roundtrip_runs", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            runs.write_to(&mut buf);
            std::hint::black_box(BitRow::read_from(&buf, UNIVERSE).unwrap().0.count_ones())
        })
    });
    c.bench_function("row_codec_roundtrip_sparse", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            sparse.write_to(&mut buf);
            std::hint::black_box(BitRow::read_from(&buf, UNIVERSE).unwrap().0.count_ones())
        })
    });
    // Size comparison printed once (the §4 hybrid claim, not a timing).
    eprintln!(
        "hybrid sizes: runs-row {}B (rle {}B), sparse-row {}B (rle {}B)",
        runs.encoded_bytes(),
        runs.rle_only_bytes(),
        sparse.encoded_bytes(),
        sparse.rle_only_bytes()
    );
}

criterion_group!(benches, bench_construction, bench_ops, bench_codec);
criterion_main!(benches);
