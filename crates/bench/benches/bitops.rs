//! Micro-benchmarks of the compressed-bitvector primitives everything is
//! built on: `fold`, `unfold`, semi-join and clustered-semi-join (§4, §5).

use criterion::{criterion_group, criterion_main, Criterion};
use lbr_bitmat::kernel::intersect_into;
use lbr_bitmat::{BitMat, BitRow, BitVec, RetainDim, SetScratch};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeSet;

const N_ROWS: u32 = 50_000;
const N_COLS: u32 = 50_000;

/// A pseudo-random matrix with both dense runs and scattered bits.
fn sample_matrix(density_per_row: usize, n_rows: usize, seed: u64) -> BitMat {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for _ in 0..n_rows {
        let r = rng.random_range(0..N_ROWS);
        let base = rng.random_range(0..N_COLS - 64);
        for k in 0..density_per_row {
            let c = if k % 3 == 0 {
                base + k as u32 // a run
            } else {
                rng.random_range(0..N_COLS) // scattered
            };
            pairs.push((r, c));
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    BitMat::from_sorted_pairs(N_ROWS, N_COLS, &pairs)
}

fn sample_mask(bits: usize, seed: u64) -> BitVec {
    let mut rng = StdRng::seed_from_u64(seed);
    BitVec::from_positions(N_COLS, (0..bits).map(|_| rng.random_range(0..N_COLS)))
}

fn bench_fold_unfold(c: &mut Criterion) {
    let mat = sample_matrix(24, 8_000, 7);
    let mask = sample_mask(20_000, 8);
    c.bench_function("fold_cols_190k_bits", |b| {
        b.iter(|| std::hint::black_box(mat.fold(RetainDim::Col)))
    });
    c.bench_function("fold_rows_190k_bits", |b| {
        b.iter(|| std::hint::black_box(mat.fold(RetainDim::Row)))
    });
    c.bench_function("unfold_cols_190k_bits", |b| {
        b.iter(|| {
            let mut m = mat.clone();
            m.unfold(&mask, RetainDim::Col);
            std::hint::black_box(m.triple_count())
        })
    });
    c.bench_function("unfold_rows_190k_bits", |b| {
        let row_mask = sample_mask(20_000, 9).resized(N_ROWS);
        b.iter(|| {
            let mut m = mat.clone();
            m.unfold(&row_mask, RetainDim::Row);
            std::hint::black_box(m.triple_count())
        })
    });
}

fn bench_semijoin_shape(c: &mut Criterion) {
    // A semi-join is fold + fold + AND + unfold; measure the composite.
    let master = sample_matrix(8, 6_000, 21);
    let slave = sample_matrix(30, 9_000, 22);
    c.bench_function("semi_join_fold_and_unfold", |b| {
        b.iter(|| {
            let mut beta = master.fold(RetainDim::Col);
            beta.and_assign(&slave.fold(RetainDim::Col));
            let mut s = slave.clone();
            s.unfold(&beta, RetainDim::Col);
            std::hint::black_box(s.triple_count())
        })
    });
    c.bench_function("clustered_semi_join_3_members", |b| {
        let m3 = sample_matrix(16, 7_000, 23);
        b.iter(|| {
            let mut beta = master.fold(RetainDim::Col);
            beta.and_assign(&slave.fold(RetainDim::Col));
            beta.and_assign(&m3.fold(RetainDim::Col));
            let mut out = 0;
            for m in [&master, &slave, &m3] {
                let mut x = m.clone();
                x.unfold(&beta, RetainDim::Col);
                out += x.triple_count();
            }
            std::hint::black_box(out)
        })
    });
}

fn bench_transpose(c: &mut Criterion) {
    let mat = sample_matrix(24, 8_000, 31);
    c.bench_function("transpose_190k_bits", |b| {
        b.iter(|| std::hint::black_box(mat.transpose().triple_count()))
    });
}

/// The run-aware compressed-set kernels: row×row intersection per
/// representation pair, the in-place mask kernel, and k-way leapfrog.
fn bench_kernels(c: &mut Criterion) {
    let blocky = |n_runs: usize, run_len: u32, seed: u64| -> BitRow {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = BTreeSet::new();
        for _ in 0..n_runs {
            let s = rng.random_range(0..N_COLS - run_len);
            for p in s..s + run_len {
                set.insert(p);
            }
        }
        BitRow::from_sorted_positions(N_COLS, &set.into_iter().collect::<Vec<_>>())
    };
    let scatter = |n_bits: usize, seed: u64| -> BitRow {
        let mut rng = StdRng::seed_from_u64(seed);
        let set: BTreeSet<u32> = (0..n_bits).map(|_| rng.random_range(0..N_COLS)).collect();
        BitRow::from_sorted_positions(N_COLS, &set.into_iter().collect::<Vec<_>>())
    };
    let run_a = blocky(400, 48, 41);
    let run_b = blocky(400, 48, 42);
    let sp_a = scatter(2_000, 43);
    let sp_b = scatter(2_000, 44);
    let mask = sp_a.to_bitvec();
    let mut scratch = SetScratch::default();
    let mut dst = BitRow::empty(N_COLS);
    c.bench_function("kernel_and_row_runs_runs", |b| {
        b.iter(|| {
            run_a.and_row_into(&run_b, &mut dst, &mut scratch);
            std::hint::black_box(dst.count_ones())
        })
    });
    c.bench_function("kernel_and_row_runs_sparse", |b| {
        b.iter(|| {
            run_a.and_row_into(&sp_a, &mut dst, &mut scratch);
            std::hint::black_box(dst.count_ones())
        })
    });
    c.bench_function("kernel_and_row_sparse_sparse", |b| {
        b.iter(|| {
            sp_a.and_row_into(&sp_b, &mut dst, &mut scratch);
            std::hint::black_box(dst.count_ones())
        })
    });
    c.bench_function("kernel_and_mask_in_place", |b| {
        // Re-clone per iteration: masking in place would otherwise collapse
        // the runs row on the first call and time idempotent re-masks of
        // the tiny result instead of the runs×mask kernel.
        b.iter(|| {
            let mut row = run_a.clone();
            row.and_mask_in_place(&mask, &mut scratch);
            std::hint::black_box(row.count_ones())
        })
    });
    c.bench_function("kernel_kway_leapfrog_4", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            intersect_into(&[&run_a, &run_b, &sp_a, &sp_b], &mut out);
            std::hint::black_box(out.len())
        })
    });
}

criterion_group!(
    benches,
    bench_fold_unfold,
    bench_semijoin_shape,
    bench_transpose,
    bench_kernels
);
criterion_main!(benches);
