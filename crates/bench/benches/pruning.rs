//! Benchmarks of the LBR pipeline phases in isolation on the LUBM Q1
//! workload: init (loads + active pruning), `prune_triples`, and the
//! multi-way join — the decomposition behind Tables 6.2–6.4's
//! Tinit / Tprune columns.

use criterion::{criterion_group, criterion_main, Criterion};
use lbr_bitmat::{BitMatStore, Catalog};
use lbr_core::bindings::VarTable;
use lbr_core::init::init;
use lbr_core::jvar_order::get_jvar_order;
use lbr_core::multiway::{multi_way_join, JoinInputs};
use lbr_core::prune::{prune_triples, PruneScratch};
use lbr_core::selectivity::estimate_all;
use lbr_datagen::lubm;
use lbr_sparql::classify::analyze;
use lbr_sparql::parse_query;

fn bench_phases(c: &mut Criterion) {
    let ds = lubm::dataset(&lubm::LubmConfig {
        universities: 3,
        departments: 8,
        seed: 42,
    });
    let graph = ds.graph.clone().encode();
    let store = BitMatStore::build(&graph);
    let q = parse_query(&ds.queries[0].text).unwrap();
    let analyzed = analyze(&q.pattern).unwrap();
    let gosn = &analyzed.gosn;
    let goj = &analyzed.goj;
    let vt = VarTable::from_tps(gosn.tps()).unwrap();
    let est = estimate_all(gosn.tps(), &graph.dict, &store);
    let jorder = get_jvar_order(gosn, goj, &vt, &est);

    c.bench_function("lubm_q1_init_active_pruning", |b| {
        b.iter(|| {
            let out = init(gosn, &vt, &jorder, &est, &graph.dict, &store).unwrap();
            std::hint::black_box(out.tps.len())
        })
    });

    let loaded = init(gosn, &vt, &jorder, &est, &graph.dict, &store).unwrap();
    let mut scratch = PruneScratch::new();
    c.bench_function("lubm_q1_prune_triples", |b| {
        b.iter(|| {
            let mut tps = loaded.tps.clone();
            std::hint::black_box(prune_triples(
                &mut tps,
                gosn,
                goj,
                &vt,
                &jorder,
                &store.dims(),
                &mut scratch,
            ))
        })
    });

    let mut pruned = loaded.tps.clone();
    prune_triples(
        &mut pruned,
        gosn,
        goj,
        &vt,
        &jorder,
        &store.dims(),
        &mut scratch,
    );
    for tp in &mut pruned {
        tp.build_adjacency();
    }
    c.bench_function("lubm_q1_multiway_join", |b| {
        b.iter(|| {
            let inputs = JoinInputs {
                tps: &pruned,
                gosn,
                vt: &vt,
                dims: store.dims(),
                dict: &graph.dict,
                fan_filters: Vec::new(),
                quota: None,
                deadline: None,
            };
            let (rows, _) = multi_way_join(&inputs);
            std::hint::black_box(rows.len())
        })
    });

    c.bench_function("lubm_index_build", |b| {
        b.iter(|| std::hint::black_box(BitMatStore::build(&graph).dims().n_triples))
    });
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
