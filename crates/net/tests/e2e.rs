//! End-to-end socket tests for the event loop: keep-alive reuse,
//! pipelining, overload shedding, slow-loris, deadlines, and malformed
//! input — all against a live server on a loopback port.

use lbr_net::{Handler, NetServer, Request, Response, ServerConfig, Shutdown};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Echoes the path and body; sleeps when the path asks for it.
struct EchoHandler {
    calls: AtomicU64,
}

impl Handler for EchoHandler {
    fn handle(&self, request: Request, _deadline: Option<Instant>) -> Response {
        self.calls.fetch_add(1, Ordering::SeqCst);
        if let Some(ms) = request
            .path
            .strip_prefix("/sleep/")
            .and_then(|s| s.parse::<u64>().ok())
        {
            std::thread::sleep(Duration::from_millis(ms));
        }
        let mut body = format!("path={}", request.path).into_bytes();
        if !request.body.is_empty() {
            body.extend_from_slice(b" body=");
            body.extend_from_slice(&request.body);
        }
        Response::new(200, "text/plain", body)
    }
}

struct TestServer {
    addr: std::net::SocketAddr,
    shutdown: Shutdown,
    calls: Arc<EchoHandler>,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl TestServer {
    fn start(config: ServerConfig) -> TestServer {
        let handler = Arc::new(EchoHandler {
            calls: AtomicU64::new(0),
        });
        let server = NetServer::bind("127.0.0.1:0", Arc::clone(&handler), config).unwrap();
        let addr = server.local_addr().unwrap();
        let shutdown = server.shutdown_handle();
        let thread = std::thread::spawn(move || server.run());
        TestServer {
            addr,
            shutdown,
            calls: handler,
            thread: Some(thread),
        }
    }

    fn connect(&self) -> Client {
        Client::connect(self.addr)
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.shutdown.signal();
        if let Some(t) = self.thread.take() {
            t.join().unwrap().unwrap();
        }
    }
}

/// A test client: a socket plus a carry buffer, so pipelined responses
/// that arrive in one TCP segment are split on `Content-Length`
/// boundaries instead of over-read.
struct Client {
    stream: TcpStream,
    carry: Vec<u8>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        Client {
            stream,
            carry: Vec::new(),
        }
    }

    fn send(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).unwrap();
    }

    /// Reads exactly one `Content-Length`-framed response.
    fn read_response(&mut self) -> (u16, Vec<(String, String)>, Vec<u8>) {
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = self.carry.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos + 4;
            }
            let n = self.stream.read(&mut chunk).unwrap();
            assert!(n > 0, "connection closed before response head completed");
            self.carry.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8(self.carry[..head_end].to_vec()).unwrap();
        let mut lines = head.split("\r\n");
        let status: u16 = lines
            .next()
            .unwrap()
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        let headers: Vec<(String, String)> = lines
            .filter(|l| !l.is_empty())
            .filter_map(|l| l.split_once(": "))
            .map(|(k, v)| (k.to_ascii_lowercase(), v.to_string()))
            .collect();
        let len: usize = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .map(|(_, v)| v.parse().unwrap())
            .unwrap();
        while self.carry.len() < head_end + len {
            let n = self.stream.read(&mut chunk).unwrap();
            assert!(n > 0, "connection closed mid-body");
            self.carry.extend_from_slice(&chunk[..n]);
        }
        let body = self.carry[head_end..head_end + len].to_vec();
        self.carry.drain(..head_end + len);
        (status, headers, body)
    }

    /// Asserts the server closes the connection without further bytes.
    fn expect_eof(&mut self) {
        assert!(self.carry.is_empty(), "unread response bytes at EOF check");
        let mut rest = Vec::new();
        self.stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "unexpected bytes before EOF: {rest:?}");
    }
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let server = TestServer::start(ServerConfig::default());
    let mut client = server.connect();
    for i in 0..10 {
        client.send(format!("GET /r{i} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes());
        let (status, headers, body) = client.read_response();
        assert_eq!(status, 200);
        assert_eq!(header(&headers, "connection"), Some("keep-alive"));
        assert_eq!(body, format!("path=/r{i}").into_bytes());
    }
    assert_eq!(server.calls.calls.load(Ordering::SeqCst), 10);
}

#[test]
fn pipelined_requests_answered_in_order() {
    let server = TestServer::start(ServerConfig::default());
    let mut client = server.connect();
    // All three requests hit the wire before any response is read; the
    // middle one sleeps, which would reorder responses if the server
    // allowed concurrent in-flight requests per connection.
    client.send(
        b"GET /a HTTP/1.1\r\n\r\n\
          GET /sleep/50 HTTP/1.1\r\n\r\n\
          POST /c HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyz",
    );
    let (s1, _, b1) = client.read_response();
    let (s2, _, b2) = client.read_response();
    let (s3, _, b3) = client.read_response();
    assert_eq!((s1, s2, s3), (200, 200, 200));
    assert_eq!(b1, b"path=/a");
    assert_eq!(b2, b"path=/sleep/50");
    assert_eq!(b3, b"path=/c body=xyz");
}

#[test]
fn connection_close_honored() {
    let server = TestServer::start(ServerConfig::default());
    let mut client = server.connect();
    client.send(b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n");
    let (status, headers, _) = client.read_response();
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "connection"), Some("close"));
    client.expect_eof();
}

#[test]
fn overload_sheds_with_503_and_retry_after() {
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    };
    let server = TestServer::start(config);

    // Occupy the single worker, then fill the single queue slot.
    let mut busy = server.connect();
    busy.send(b"GET /sleep/400 HTTP/1.1\r\n\r\n");
    std::thread::sleep(Duration::from_millis(100));
    let mut queued = server.connect();
    queued.send(b"GET /q HTTP/1.1\r\n\r\n");
    std::thread::sleep(Duration::from_millis(100));

    // Overflow: answered inline with 503 + Retry-After, and the
    // connection survives for a later retry.
    let mut shed = server.connect();
    shed.send(b"GET /shed HTTP/1.1\r\n\r\n");
    let (status, headers, _) = shed.read_response();
    assert_eq!(status, 503);
    assert!(header(&headers, "retry-after").is_some());
    assert_eq!(header(&headers, "connection"), Some("keep-alive"));

    // The occupied worker and the queued request still complete.
    assert_eq!(busy.read_response().0, 200);
    assert_eq!(queued.read_response().0, 200);

    // After drain, the shed client's retry succeeds on the same socket.
    shed.send(b"GET /retry HTTP/1.1\r\n\r\n");
    assert_eq!(shed.read_response().0, 200);
}

#[test]
fn queued_past_deadline_answered_504_without_executing() {
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 4,
        request_deadline: Some(Duration::from_millis(120)),
        ..ServerConfig::default()
    };
    let server = TestServer::start(config);

    let calls_before = server.calls.calls.load(Ordering::SeqCst);
    let mut busy = server.connect();
    busy.send(b"GET /sleep/400 HTTP/1.1\r\n\r\n");
    std::thread::sleep(Duration::from_millis(50));
    // This one waits ~350ms behind the sleeper — past its 120ms budget.
    let mut late = server.connect();
    late.send(b"GET /late HTTP/1.1\r\n\r\n");

    let (status, _, _) = late.read_response();
    assert_eq!(status, 504);
    assert_eq!(busy.read_response().0, 200);
    // The 504 was synthesized by the worker without calling the handler.
    assert_eq!(server.calls.calls.load(Ordering::SeqCst), calls_before + 1);
}

#[test]
fn slow_loris_answered_408() {
    let config = ServerConfig {
        header_timeout: Duration::from_millis(150),
        ..ServerConfig::default()
    };
    let server = TestServer::start(config);
    let mut client = server.connect();
    // Half a request line, then silence.
    client.send(b"GET /drib");
    let (status, _, _) = client.read_response();
    assert_eq!(status, 408);
    client.expect_eof();
}

#[test]
fn idle_keep_alive_connection_reaped() {
    let config = ServerConfig {
        idle_timeout: Duration::from_millis(150),
        ..ServerConfig::default()
    };
    let server = TestServer::start(config);
    let mut client = server.connect();
    client.send(b"GET /x HTTP/1.1\r\n\r\n");
    assert_eq!(client.read_response().0, 200);
    // Say nothing; the server reaps the idle connection (EOF, no 408).
    client.expect_eof();
}

#[test]
fn malformed_input_answered_400_and_closed() {
    let server = TestServer::start(ServerConfig::default());

    // Garbage where a request line should be.
    let mut client = server.connect();
    client.send(b"\x01\x02NOT HTTP\r\n\r\n");
    let (status, headers, _) = client.read_response();
    assert_eq!(status, 400);
    assert_eq!(header(&headers, "connection"), Some("close"));
    client.expect_eof();

    // Garbage *between* pipelined requests: the first request is
    // answered normally, then 400 + close — the junk is never misread
    // as a request and never jumps the response queue.
    let mut client = server.connect();
    client.send(b"GET /ok HTTP/1.1\r\n\r\n\x7f\x7fjunk junk junk\r\n\r\n");
    let (s1, _, b1) = client.read_response();
    assert_eq!((s1, b1.as_slice()), (200, b"path=/ok".as_slice()));
    let (s2, _, _) = client.read_response();
    assert_eq!(s2, 400);
    client.expect_eof();
}

#[test]
fn mid_body_disconnect_leaves_server_healthy() {
    let server = TestServer::start(ServerConfig::default());
    {
        let mut client = server.connect();
        // Promise 100 bytes, send 5, vanish.
        client.send(b"POST /p HTTP/1.1\r\nContent-Length: 100\r\n\r\nabcde");
        // Dropping the client closes the socket mid-body.
    }
    std::thread::sleep(Duration::from_millis(50));
    let mut client = server.connect();
    client.send(b"GET /after HTTP/1.1\r\n\r\n");
    let (status, _, body) = client.read_response();
    assert_eq!(status, 200);
    assert_eq!(body, b"path=/after");
}

#[test]
fn counters_track_admission_and_drops() {
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    };
    let handler = Arc::new(EchoHandler {
        calls: AtomicU64::new(0),
    });
    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&handler), config).unwrap();
    let addr = server.local_addr().unwrap();
    let counters = server.counters();
    let shutdown = server.shutdown_handle();
    let thread = std::thread::spawn(move || server.run());

    let mut busy = Client::connect(addr);
    busy.send(b"GET /sleep/300 HTTP/1.1\r\n\r\n");
    std::thread::sleep(Duration::from_millis(80));
    let mut q = Client::connect(addr);
    q.send(b"GET /q HTTP/1.1\r\n\r\n");
    std::thread::sleep(Duration::from_millis(80));
    let mut shed = Client::connect(addr);
    shed.send(b"GET /s HTTP/1.1\r\n\r\n");
    assert_eq!(shed.read_response().0, 503);
    assert_eq!(busy.read_response().0, 200);
    assert_eq!(q.read_response().0, 200);

    use lbr_net::NetCounters;
    assert_eq!(NetCounters::get(&counters.requests_dropped), 1);
    assert_eq!(NetCounters::get(&counters.requests_admitted), 2);
    assert_eq!(NetCounters::get(&counters.connections_accepted), 3);

    shutdown.signal();
    thread.join().unwrap().unwrap();
}
