//! Hand-declared Linux syscall bindings for the readiness loop.
//!
//! The workspace is zero-dependency by policy (no `libc` crate), so the
//! four epoll/eventfd entry points the event loop needs are declared
//! here against the platform C library the binary already links
//! (`std` links it). This is the crate's only `unsafe` surface; the
//! safe wrappers in [`crate::poller`] own the file descriptors through
//! `std::os::fd::OwnedFd` so lifetimes and close-on-drop are checked by
//! the compiler, not by convention.

use std::io;
use std::os::fd::{FromRawFd, OwnedFd, RawFd};

// Values from the Linux UAPI headers (stable ABI, architecture-
// independent except where noted).
pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

pub const EPOLL_CTL_ADD: i32 = 1;
pub const EPOLL_CTL_DEL: i32 = 2;
pub const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// `struct epoll_event`. The kernel ABI packs it on x86-64 (the
/// `__EPOLL_PACKED` attribute in the UAPI header); other architectures
/// use natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    /// The `epoll_data_t` union; this crate always uses the `u64` arm
    /// (a connection token).
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

/// `read(2)` on a borrowed descriptor (the eventfd drain path — sockets
/// go through `std::net` types).
pub fn fd_read(fd: RawFd, buf: &mut [u8]) -> io::Result<usize> {
    // SAFETY: the pointer/length pair describes the caller's live
    // mutable slice; the kernel writes at most `len` bytes.
    let rc = unsafe { read(fd, buf.as_mut_ptr(), buf.len()) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(rc as usize)
}

/// `write(2)` on a borrowed descriptor (the eventfd wake path).
pub fn fd_write(fd: RawFd, buf: &[u8]) -> io::Result<usize> {
    // SAFETY: the pointer/length pair describes the caller's live slice;
    // the kernel only reads from it.
    let rc = unsafe { write(fd, buf.as_ptr(), buf.len()) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(rc as usize)
}

/// Creates a close-on-exec epoll instance.
pub fn epoll_create() -> io::Result<OwnedFd> {
    // SAFETY: epoll_create1 takes no pointers; it returns a fresh fd (or
    // -1, mapped to an error below), which FromRawFd may take ownership
    // of exactly once — here.
    let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: `fd` is a valid, otherwise-unowned descriptor just vended
    // by the kernel.
    Ok(unsafe { OwnedFd::from_raw_fd(fd) })
}

/// Adds/modifies/removes `fd` in the interest list of `epfd`.
pub fn epoll_control(epfd: RawFd, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    let mut ev = EpollEvent {
        events,
        data: token,
    };
    // SAFETY: `ev` is a live stack value for the duration of the call;
    // the kernel copies it and keeps no pointer past return. For
    // EPOLL_CTL_DEL the kernel ignores the event argument (pre-2.6.9
    // kernels wanted it non-NULL, which passing `&mut ev` satisfies).
    let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Waits for readiness events, filling `events` from the front and
/// returning how many are valid. `timeout_ms < 0` blocks indefinitely.
pub fn epoll_poll(epfd: RawFd, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    debug_assert!(!events.is_empty());
    // SAFETY: the pointer/length pair describes the caller's live
    // mutable slice; the kernel writes at most `len` entries into it and
    // keeps no pointer past return. `EpollEvent` is plain old data, so
    // partially overwritten entries are still valid values.
    let rc = unsafe {
        epoll_wait(
            epfd,
            events.as_mut_ptr(),
            events.len().min(i32::MAX as usize) as i32,
            timeout_ms,
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(rc as usize)
}

/// Creates a nonblocking close-on-exec eventfd (the loop's wakeup pipe:
/// workers write 8 bytes, the loop drains them).
pub fn eventfd_create() -> io::Result<OwnedFd> {
    // SAFETY: eventfd takes no pointers; the returned fd (checked below)
    // is fresh and ownership is taken exactly once.
    let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: `fd` is a valid, otherwise-unowned descriptor just vended
    // by the kernel.
    Ok(unsafe { OwnedFd::from_raw_fd(fd) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::fd::AsRawFd;

    #[test]
    fn epoll_and_eventfd_round_trip() {
        let ep = epoll_create().unwrap();
        let ev = eventfd_create().unwrap();
        epoll_control(ep.as_raw_fd(), EPOLL_CTL_ADD, ev.as_raw_fd(), EPOLLIN, 7).unwrap();

        // Nothing signaled yet: a zero-timeout wait returns no events.
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        assert_eq!(epoll_poll(ep.as_raw_fd(), &mut events, 0).unwrap(), 0);

        // Signal the eventfd via its std wrapper and observe readiness.
        use std::io::Write;
        let mut f = std::fs::File::from(ev.try_clone().unwrap());
        f.write_all(&1u64.to_ne_bytes()).unwrap();
        let n = epoll_poll(ep.as_raw_fd(), &mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (events_bits, data) = (events[0].events, events[0].data);
        assert_eq!(data, 7);
        assert_ne!(events_bits & EPOLLIN, 0);

        epoll_control(ep.as_raw_fd(), EPOLL_CTL_DEL, ev.as_raw_fd(), 0, 0).unwrap();
    }
}
