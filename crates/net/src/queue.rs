//! Bounded admission queue between the event loop and the worker pool.
//!
//! The loop never blocks: [`AdmissionQueue::try_push`] either enqueues
//! or reports the queue full, and the loop answers `503` +
//! `Retry-After` directly from the readiness thread. Workers block in
//! [`AdmissionQueue::pop`] until a job (or shutdown) arrives. The bound
//! is the server's load-shedding valve: queued work is bounded memory
//! and bounded latency, everything beyond it is shed immediately
//! instead of growing an invisible backlog.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

struct Inner<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity multi-producer multi-consumer job queue.
pub struct AdmissionQueue<T> {
    capacity: usize,
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

/// Why a [`AdmissionQueue::try_push`] did not enqueue.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the caller sheds the job (503).
    Full(T),
    /// The queue is shut down; no worker will ever pop again.
    Closed(T),
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` (min 1) waiting jobs.
    pub fn new(capacity: usize) -> AdmissionQueue<T> {
        AdmissionQueue {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Recovers the guard from a poisoned lock. Safe because the queue's
    /// invariants hold at every await point (a VecDeque push/pop either
    /// happens or doesn't), so a panicking peer cannot leave the state
    /// half-updated.
    fn locked(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues without blocking, or returns the job back on overflow or
    /// shutdown.
    pub fn try_push(&self, job: T) -> Result<(), PushError<T>> {
        let mut inner = self.locked();
        if inner.closed {
            return Err(PushError::Closed(job));
        }
        if inner.jobs.len() >= self.capacity {
            return Err(PushError::Full(job));
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a job is available; `None` means the queue was
    /// closed and drained (the worker should exit).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.locked();
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Shuts the queue down: pending jobs still drain, then every
    /// blocked and future `pop` returns `None`.
    pub fn close(&self) {
        self.locked().closed = true;
        self.ready.notify_all();
    }

    /// Jobs currently waiting (diagnostics only; racy by nature).
    pub fn len(&self) -> usize {
        self.locked().jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = AdmissionQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn overflow_returns_job() {
        let q = AdmissionQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_drains_then_stops() {
        let q = AdmissionQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(PushError::Closed(2)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(AdmissionQueue::<u32>::new(4));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        // Give the workers a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn concurrent_producers_consumers() {
        let q = Arc::new(AdmissionQueue::new(8));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        for i in 0..100 {
            loop {
                match q.try_push(i) {
                    Ok(()) => break,
                    Err(PushError::Full(_)) => std::thread::yield_now(),
                    Err(PushError::Closed(_)) => panic!("closed early"),
                }
            }
        }
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got.len(), 100);
        assert!(got.windows(2).all(|w| w[0] < w[1]), "FIFO per producer");
    }
}
