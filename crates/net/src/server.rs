//! The event-driven serving core: one readiness-loop thread multiplexing
//! every connection over epoll, a bounded admission queue, and a worker
//! pool executing requests.
//!
//! ```text
//!               epoll readiness loop (1 thread)
//!   accept ──▶ read ──▶ parse ──▶ admission queue ──▶ workers (N threads)
//!                │ full? 503+Retry-After ▲                 │ handle(request)
//!                ▼                       │ eventfd waker   ▼
//!   write ◀── send buffer ◀───────── completions ◀── response
//! ```
//!
//! Invariants the loop maintains:
//!
//! - **At most one request per connection is in flight.** Pipelined
//!   followers wait in the connection's `pending` queue, which is what
//!   keeps responses in request order without sequence numbers.
//! - **The loop thread never blocks** on anything but `epoll_wait`:
//!   admission is `try_push` (overflow answered inline with `503`),
//!   completions arrive through a mutex-guarded vector plus an eventfd
//!   wake, and all sockets are nonblocking.
//! - **Writable interest is armed only while bytes are queued**, so a
//!   mostly-idle keep-alive connection costs one registered fd and
//!   nothing else.

use crate::http::{HttpError, Parse, Request, RequestParser, Response};
use crate::metrics::NetCounters;
use crate::poller::{Event, Interest, Poller, Waker};
use crate::queue::{AdmissionQueue, PushError};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const TOKEN_CONN_BASE: u64 = 2;
/// Per-read chunk size; level-triggered epoll re-reports leftovers.
const READ_CHUNK: usize = 16 * 1024;

/// Application callback: turns one parsed request into a response.
/// Called on a worker thread; `deadline` is when the response stops
/// being worth computing (handlers should pass it into the engine and
/// answer `504` when it fires).
pub trait Handler: Send + Sync + 'static {
    fn handle(&self, request: Request, deadline: Option<Instant>) -> Response;
}

/// Tuning knobs for [`NetServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Admitted-but-not-started request bound; overflow is answered
    /// `503` with `Retry-After`.
    pub queue_capacity: usize,
    /// Per-request execution budget, measured from admission. `None`
    /// disables deadlines.
    pub request_deadline: Option<Duration>,
    /// How long a connection may dribble an incomplete request before
    /// being answered `408` and closed (slow-loris defense).
    pub header_timeout: Duration,
    /// How long an idle keep-alive connection is retained.
    pub idle_timeout: Duration,
    /// Value of the `Retry-After` header on shed (`503`) responses.
    pub retry_after_secs: u32,
    /// Per-query tracing: when set, workers open a trace around each
    /// request (the handler's spans attach to it), record `read` /
    /// `queue_wait` retroactively, and the loop appends the response
    /// `write` span to published traces. `None` disables tracing.
    pub tracing: Option<Arc<lbr_obs::Tracing>>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            queue_capacity: 256,
            request_deadline: Some(Duration::from_secs(30)),
            header_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(60),
            retry_after_secs: 1,
            tracing: None,
        }
    }
}

/// Signals the event loop to stop from any thread. Cloneable; the loop
/// exits promptly, closing every connection and joining its workers.
#[derive(Clone)]
pub struct Shutdown {
    flag: Arc<AtomicBool>,
    waker: Arc<Waker>,
}

impl Shutdown {
    pub fn signal(&self) {
        self.flag.store(true, Ordering::SeqCst);
        self.waker.wake();
    }
}

/// A request handed to a worker.
struct Job {
    token: u64,
    gen: u64,
    request: Box<Request>,
    deadline: Option<Instant>,
    /// When the loop pushed this job (for the `queue_wait` span).
    enqueued: Instant,
    /// Wire time spent reading this request, microseconds (the `read`
    /// span), measured by the loop from first byte to complete parse.
    read_us: u64,
}

/// A worker's finished response, routed back to the loop.
struct Completion {
    token: u64,
    gen: u64,
    keep_alive: bool,
    response: Response,
    /// Published trace to append the response `write` span to.
    trace_id: Option<u64>,
}

/// One entry in a connection's pipelining backlog: either a parsed
/// request (with its wire read time in microseconds), or the parse
/// error that ends the stream — kept *in order* so a malformed tail
/// never jumps ahead of valid requests' responses.
enum Pending {
    Request(Box<Request>, u64),
    Reject(HttpError),
}

/// Per-connection state owned by the loop thread.
struct Conn {
    stream: TcpStream,
    gen: u64,
    buf_in: Vec<u8>,
    buf_out: Vec<u8>,
    parser: RequestParser,
    /// Parsed requests not yet dispatched (pipelining backlog).
    pending: VecDeque<Pending>,
    /// Whether a worker currently owns a request from this connection.
    in_flight: bool,
    last_activity: Instant,
    /// When the first byte of the currently-incomplete request arrived
    /// (drives the `read` span).
    read_start: Option<Instant>,
    /// Peer sent FIN (or read hit EOF): no more input, flush then close.
    saw_hangup: bool,
    /// Fatal protocol state: answer what is buffered, then close.
    close_after_flush: bool,
    registered: Interest,
}

impl Conn {
    fn wants(&self) -> Interest {
        Interest {
            readable: !self.close_after_flush && !self.saw_hangup,
            writable: !self.buf_out.is_empty(),
        }
    }

    /// Finished serving: nothing buffered, nothing pending, told to go.
    fn drained(&self) -> bool {
        (self.close_after_flush || self.saw_hangup)
            && self.buf_out.is_empty()
            && !self.in_flight
            && self.pending.is_empty()
    }
}

/// The event-driven HTTP server. Bind, grab the [`Shutdown`] handle and
/// address, then [`NetServer::run`] the loop (it owns the calling
/// thread until shut down).
pub struct NetServer<H: Handler> {
    listener: TcpListener,
    handler: Arc<H>,
    config: ServerConfig,
    counters: Arc<NetCounters>,
    poller: Poller,
    waker: Arc<Waker>,
    stop: Arc<AtomicBool>,
}

impl<H: Handler> NetServer<H> {
    pub fn bind(
        addr: impl ToSocketAddrs,
        handler: Arc<H>,
        config: ServerConfig,
    ) -> io::Result<NetServer<H>> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        let waker = Arc::new(Waker::new(&poller, TOKEN_WAKER)?);
        Ok(NetServer {
            listener,
            handler,
            config,
            counters: Arc::new(NetCounters::new()),
            poller,
            waker,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Admission/time-out counters, shared with the loop (read them any
    /// time, e.g. from a `/stats` handler).
    pub fn counters(&self) -> Arc<NetCounters> {
        Arc::clone(&self.counters)
    }

    /// Replaces the counter set with one the application allocated, so
    /// a `/stats` handler constructed *before* the server can still
    /// observe the loop's counters. Call before [`NetServer::run`].
    pub fn with_counters(mut self, counters: Arc<NetCounters>) -> NetServer<H> {
        self.counters = counters;
        self
    }

    pub fn shutdown_handle(&self) -> Shutdown {
        Shutdown {
            flag: Arc::clone(&self.stop),
            waker: Arc::clone(&self.waker),
        }
    }

    /// Runs the readiness loop on the calling thread until
    /// [`Shutdown::signal`]. Spawns (and on exit joins) the worker pool.
    pub fn run(self) -> io::Result<()> {
        let queue = Arc::new(AdmissionQueue::<Job>::new(self.config.queue_capacity));
        let completions = Arc::new(Mutex::new(Vec::<Completion>::new()));
        let workers: Vec<_> = (0..self.config.workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let completions = Arc::clone(&completions);
                let waker = Arc::clone(&self.waker);
                let handler = Arc::clone(&self.handler);
                let counters = Arc::clone(&self.counters);
                let tracing = self.config.tracing.clone();
                std::thread::Builder::new()
                    .name(format!("lbr-net-worker-{i}"))
                    .spawn(move || {
                        worker_loop(
                            &queue,
                            &completions,
                            &waker,
                            &*handler,
                            &counters,
                            tracing.as_deref(),
                        )
                    })
            })
            .collect::<io::Result<Vec<_>>>()?;

        let result = self.event_loop(&queue, &completions);

        queue.close();
        self.waker.wake();
        for w in workers {
            let _ = w.join();
        }
        result
    }

    fn event_loop(
        &self,
        queue: &AdmissionQueue<Job>,
        completions: &Mutex<Vec<Completion>>,
    ) -> io::Result<()> {
        let mut conns: Vec<Option<Conn>> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        let mut next_gen: u64 = 0;
        let mut events: Vec<Event> = Vec::new();
        let mut done: Vec<Completion> = Vec::new();
        let tick = (self.config.header_timeout.min(self.config.idle_timeout) / 4)
            .clamp(Duration::from_millis(10), Duration::from_secs(1));
        let mut last_scan = Instant::now();

        loop {
            events.clear();
            self.poller.wait(&mut events, Some(tick))?;
            if self.stop.load(Ordering::SeqCst) {
                return Ok(());
            }

            for ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(&mut conns, &mut free, &mut next_gen),
                    TOKEN_WAKER => self.waker.drain(),
                    token => {
                        let idx = (token - TOKEN_CONN_BASE) as usize;
                        let Some(conn) = conns.get_mut(idx).and_then(Option::as_mut) else {
                            continue; // already closed this batch
                        };
                        if ev.hangup {
                            conn.saw_hangup = true;
                        }
                        if ev.readable || ev.hangup {
                            self.drive_read(conn, ev.token, queue);
                        }
                        if ev.writable {
                            flush(conn);
                        }
                        self.settle(&mut conns, &mut free, idx);
                    }
                }
            }

            // Apply worker completions (drain under the lock, act outside).
            {
                let mut guard = completions.lock().unwrap_or_else(PoisonError::into_inner);
                done.append(&mut guard);
            }
            for completion in done.drain(..) {
                let idx = (completion.token - TOKEN_CONN_BASE) as usize;
                let Some(conn) = conns.get_mut(idx).and_then(Option::as_mut) else {
                    continue; // connection died while the worker ran
                };
                if conn.gen != completion.gen {
                    continue; // token reused by a newer connection
                }
                conn.in_flight = false;
                let write_start = Instant::now();
                let bytes_before = conn.buf_out.len();
                let alive = completion
                    .response
                    .encode_into(completion.keep_alive, &mut conn.buf_out);
                if let (Some(id), Some(t)) = (completion.trace_id, self.config.tracing.as_deref()) {
                    t.append_span(
                        id,
                        "write",
                        write_start.elapsed(),
                        &[("bytes", (conn.buf_out.len() - bytes_before) as u64)],
                    );
                }
                if !alive {
                    conn.close_after_flush = true;
                    conn.pending.clear();
                } else {
                    self.dispatch(conn, completion.token, queue);
                }
                self.settle(&mut conns, &mut free, idx);
            }

            // Periodic slow-loris / idle sweep.
            let now = Instant::now();
            if now.duration_since(last_scan) >= tick {
                last_scan = now;
                for idx in 0..conns.len() {
                    let Some(conn) = conns.get_mut(idx).and_then(Option::as_mut) else {
                        continue;
                    };
                    if conn.in_flight || !conn.pending.is_empty() || conn.close_after_flush {
                        continue;
                    }
                    let idle_for = now.duration_since(conn.last_activity);
                    if !conn.buf_in.is_empty() {
                        // Mid-request and dribbling: 408 and hang up.
                        if idle_for >= self.config.header_timeout {
                            NetCounters::bump(&self.counters.requests_timed_out);
                            let resp =
                                Response::text(408, "timed out waiting for complete request\n");
                            resp.encode_into(false, &mut conn.buf_out);
                            conn.close_after_flush = true;
                            self.settle(&mut conns, &mut free, idx);
                        }
                    } else if idle_for >= self.config.idle_timeout {
                        close_conn(&self.poller, &mut conns, &mut free, idx);
                    }
                }
            }
        }
    }

    /// Accepts every connection the listener has ready.
    fn accept_ready(
        &self,
        conns: &mut Vec<Option<Conn>>,
        free: &mut Vec<usize>,
        next_gen: &mut u64,
    ) {
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept errors (ECONNABORTED, EMFILE…): skip
                // this readiness round rather than killing the server.
                Err(_) => return,
            };
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            *next_gen += 1;
            let conn = Conn {
                stream,
                gen: *next_gen,
                buf_in: Vec::new(),
                buf_out: Vec::new(),
                parser: RequestParser::new(),
                pending: VecDeque::new(),
                in_flight: false,
                last_activity: Instant::now(),
                read_start: None,
                saw_hangup: false,
                close_after_flush: false,
                registered: Interest::READ,
            };
            let idx = match free.pop() {
                Some(idx) => {
                    conns[idx] = Some(conn);
                    idx
                }
                None => {
                    conns.push(Some(conn));
                    conns.len() - 1
                }
            };
            NetCounters::bump(&self.counters.connections_accepted);
            // Registration failure is fatal for the connection only.
            let token = TOKEN_CONN_BASE + idx as u64;
            let Some(conn) = conns[idx].as_ref() else {
                continue;
            };
            if self
                .poller
                .add(conn.stream.as_raw_fd(), token, Interest::READ)
                .is_err()
            {
                conns[idx] = None;
                free.push(idx);
            }
        }
    }

    /// Reads everything available, parses, and dispatches.
    fn drive_read(&self, conn: &mut Conn, token: u64, queue: &AdmissionQueue<Job>) {
        if conn.close_after_flush {
            return;
        }
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.saw_hangup = true;
                    break;
                }
                Ok(n) => {
                    conn.buf_in.extend_from_slice(&chunk[..n]);
                    conn.last_activity = Instant::now();
                    if conn.read_start.is_none() {
                        conn.read_start = Some(conn.last_activity);
                    }
                    if n < chunk.len() {
                        break; // short read: socket drained
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.saw_hangup = true;
                    break;
                }
            }
        }

        // Parse as many complete pipelined requests as arrived.
        while !conn.buf_in.is_empty() {
            match conn.parser.parse(&conn.buf_in) {
                Ok(Parse::Complete(request, consumed)) => {
                    conn.buf_in.drain(..consumed);
                    let read_us = conn
                        .read_start
                        .take()
                        .map(|t0| t0.elapsed().as_micros() as u64)
                        .unwrap_or(0);
                    // Leftover bytes are the head of the next pipelined
                    // request, which therefore started "now".
                    if !conn.buf_in.is_empty() {
                        conn.read_start = Some(Instant::now());
                    }
                    conn.pending.push_back(Pending::Request(request, read_us));
                }
                Ok(Parse::Partial) => break,
                Err(err) => {
                    // Malformed input: the stream can no longer be
                    // framed. Queue the rejection *behind* any valid
                    // pipelined predecessors so their responses go out
                    // first, and stop reading — the rest is garbage.
                    NetCounters::bump(&self.counters.requests_malformed);
                    conn.pending.push_back(Pending::Reject(err));
                    conn.buf_in.clear();
                    conn.saw_hangup = true;
                    break;
                }
            }
        }
        self.dispatch(conn, token, queue);
    }

    /// Hands the next pending request to the workers, answering `503`
    /// inline when the admission queue is full.
    fn dispatch(&self, conn: &mut Conn, token: u64, queue: &AdmissionQueue<Job>) {
        while !conn.in_flight && !conn.close_after_flush {
            let request = match conn.pending.pop_front() {
                None => return,
                Some(Pending::Reject(err)) => {
                    // The stream's terminal error, answered in order.
                    Response::from_error(&err).encode_into(false, &mut conn.buf_out);
                    conn.close_after_flush = true;
                    conn.pending.clear();
                    return;
                }
                Some(Pending::Request(request, read_us)) => (request, read_us),
            };
            let (request, read_us) = request;
            let keep_alive = request.keep_alive;
            let now = Instant::now();
            let job = Job {
                token,
                gen: conn.gen,
                request,
                deadline: self.config.request_deadline.map(|d| now + d),
                enqueued: now,
                read_us,
            };
            match queue.try_push(job) {
                Ok(()) => {
                    NetCounters::bump(&self.counters.requests_admitted);
                    NetCounters::bump(&self.counters.queue_depth);
                    conn.in_flight = true;
                }
                Err(PushError::Full(_)) => {
                    NetCounters::bump(&self.counters.requests_dropped);
                    Response::text(503, "server overloaded, retry shortly\n")
                        .with_header("Retry-After", self.config.retry_after_secs.to_string())
                        .encode_into(keep_alive, &mut conn.buf_out);
                    // Connection survives; try the next pipelined request.
                }
                Err(PushError::Closed(_)) => {
                    Response::text(503, "server shutting down\n")
                        .encode_into(false, &mut conn.buf_out);
                    conn.close_after_flush = true;
                    conn.pending.clear();
                }
            }
        }
    }

    /// Flushes, closes drained/erroring connections, re-arms interest.
    fn settle(&self, conns: &mut [Option<Conn>], free: &mut Vec<usize>, idx: usize) {
        let Some(conn) = conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        if !flush(conn) || conn.drained() {
            close_conn(&self.poller, conns, free, idx);
            return;
        }
        let wants = conn.wants();
        if wants != conn.registered {
            let token = TOKEN_CONN_BASE + idx as u64;
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), token, wants)
                .is_ok()
            {
                conn.registered = wants;
            } else {
                close_conn(&self.poller, conns, free, idx);
            }
        }
    }
}

/// Writes as much of the send buffer as the socket accepts. Returns
/// `false` when the connection is dead (write error).
fn flush(conn: &mut Conn) -> bool {
    while !conn.buf_out.is_empty() {
        match conn.stream.write(&conn.buf_out) {
            Ok(0) => return false,
            Ok(n) => {
                conn.buf_out.drain(..n);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    true
}

fn close_conn(poller: &Poller, conns: &mut [Option<Conn>], free: &mut Vec<usize>, idx: usize) {
    if let Some(conn) = conns.get_mut(idx).and_then(Option::take) {
        let _ = poller.delete(conn.stream.as_raw_fd());
        free.push(idx);
    }
}

/// Worker thread body: pop, execute (or synthesize `504`/`500`), report.
/// When tracing is on, the worker owns the trace lifecycle: it begins
/// collection before calling the handler (so engine/store spans attach),
/// records the wire `read` and `queue_wait` spans retroactively, and
/// decides publication from the handler's wall time.
fn worker_loop(
    queue: &AdmissionQueue<Job>,
    completions: &Mutex<Vec<Completion>>,
    waker: &Waker,
    handler: &dyn HandlerDyn,
    counters: &NetCounters,
    tracing: Option<&lbr_obs::Tracing>,
) {
    use std::fmt::Write as _;
    while let Some(job) = queue.pop() {
        NetCounters::drop_one(&counters.queue_depth);
        let keep_alive = job.request.keep_alive;
        let mut trace_id = None;
        let response = if job.deadline.is_some_and(|d| Instant::now() >= d) {
            // Spent its whole budget queued: don't start executing.
            NetCounters::bump(&counters.deadlines_exceeded);
            Response::text(504, "deadline exceeded before execution started\n")
        } else {
            let req = job.request;
            let deadline = job.deadline;
            let tracing = tracing.filter(|t| t.begin().is_some());
            let started = Instant::now();
            if tracing.is_some() {
                lbr_obs::set_label(|s| {
                    let _ = write!(s, "{} {}", req.method, req.path);
                });
                // Both precede the trace start, so their offsets clamp
                // to 0; the durations are what matters.
                lbr_obs::span_at(
                    "read",
                    job.enqueued,
                    Duration::from_micros(job.read_us),
                    &[],
                );
                lbr_obs::span_since("queue_wait", job.enqueued, &[]);
            }
            let mut response = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                handler.call(*req, deadline)
            })) {
                Ok(response) => response,
                Err(_) => {
                    lbr_obs::trace_abort();
                    Response::text(500, "internal error\n")
                }
            };
            if let Some(t) = tracing {
                trace_id = t.finish(started.elapsed());
                // A published trace is advertised to the client so a slow
                // request can be looked up in `/debug/traces` by id.
                if let Some(id) = trace_id {
                    response
                        .headers
                        .push(("X-Lbr-Trace-Id".to_string(), format!("{id:016x}")));
                }
            }
            response
        };
        completions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Completion {
                token: job.token,
                gen: job.gen,
                keep_alive,
                response,
                trace_id,
            });
        waker.wake();
    }
}

/// Object-safe shim so `worker_loop` is monomorphized once, not per
/// handler type.
trait HandlerDyn: Send + Sync {
    fn call(&self, request: Request, deadline: Option<Instant>) -> Response;
}

impl<H: Handler> HandlerDyn for H {
    fn call(&self, request: Request, deadline: Option<Instant>) -> Response {
        self.handle(request, deadline)
    }
}
