//! # lbr-net — event-driven HTTP/1.1 serving for the LBR endpoint
//!
//! A zero-dependency connection layer replacing thread-per-request,
//! connection-per-request serving with a single epoll readiness loop:
//!
//! - **Keep-alive + pipelining.** Requests and responses are
//!   `Content-Length`-framed, so one TCP connection carries many
//!   exchanges and clients may pipeline requests back-to-back;
//!   responses always come back in request order (the loop keeps at
//!   most one request per connection in flight).
//! - **Admission control.** Parsed requests pass through a bounded
//!   queue before a worker thread executes them. When the queue is
//!   full the loop answers `503 Service Unavailable` with a
//!   `Retry-After` header inline — overload sheds work in
//!   microseconds instead of queueing it invisibly.
//! - **Deadlines.** Every admitted request carries an absolute
//!   deadline. Requests that exhaust it while queued are answered
//!   `504 Gateway Timeout` without executing; handlers receive the
//!   deadline so execution engines can cut long joins short.
//! - **Timeouts.** Connections that dribble an incomplete request get
//!   `408 Request Timeout` (slow-loris defense); idle keep-alive
//!   connections are reaped after a configurable grace.
//! - **Strict framing.** Malformed bytes between pipelined requests
//!   are answered `400` and the connection closes — the stream is
//!   never resynchronized by guesswork.
//!
//! The crate is deliberately free of external dependencies: the epoll
//! and eventfd bindings are hand-declared in [`sys`] against the C
//! library the binary already links, and everything above them is safe
//! Rust over `std::net` types.
//!
//! ## Layering
//!
//! [`sys`] (FFI) → [`poller`] ([`Poller`]/[`Waker`]) → [`server`]
//! ([`NetServer`] readiness loop + worker pool) with [`http`]
//! (incremental [`RequestParser`], [`Response`] encoder), [`queue`]
//! ([`AdmissionQueue`]) and [`metrics`] ([`LatencyHistogram`],
//! [`NetCounters`]) alongside. Applications implement [`Handler`] and
//! never touch a socket.

pub mod http;
pub mod metrics;
pub mod poller;
pub mod queue;
pub mod server;
mod sys;

pub use http::{
    parse_form, percent_decode, reason, HttpError, Parse, Request, RequestParser, Response,
    MAX_BODY, MAX_HEAD, MAX_HEADERS,
};
pub use metrics::{LatencyHistogram, LatencySummary, NetCounters};
pub use poller::{Event, Interest, Poller, Waker};
pub use queue::{AdmissionQueue, PushError};
pub use server::{Handler, NetServer, ServerConfig, Shutdown};
