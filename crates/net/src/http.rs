//! HTTP/1.1 protocol layer for the event loop: an **incremental**
//! request parser over a connection's receive buffer, and
//! `Content-Length`-framed response encoding.
//!
//! Unlike a blocking `BufRead` parser, [`RequestParser::parse`] is
//! called with whatever bytes have arrived so far and either consumes
//! one complete request, asks for more bytes, or rejects the
//! connection with a typed [`HttpError`]. Because requests and
//! responses are both length-framed, a connection survives its first
//! exchange: keep-alive reuse and pipelining (several requests on the
//! wire before the first response) fall out of the framing.
//!
//! Error discipline: every malformed input maps to an [`HttpError`]
//! with `must_close = true` where the connection cannot be resynced
//! (garbage between framed requests, oversized or unparseable
//! `Content-Length`) — the encoder then answers `400` and closes
//! instead of misinterpreting body bytes as the next request line.
//! Nothing in this module panics on attacker-controlled bytes.

use std::fmt;

/// Longest accepted request head (request line + all headers), bytes.
pub const MAX_HEAD: usize = 64 * 1024;
/// Most accepted header lines.
pub const MAX_HEADERS: usize = 128;
/// Largest accepted request body (a POSTed query), in bytes.
pub const MAX_BODY: usize = 16 * 1024 * 1024;

/// A request-handling failure with the HTTP status it maps to.
#[derive(Debug)]
pub struct HttpError {
    /// Status code to answer with (400, 405, 406, 411, 413, 415, …).
    pub status: u16,
    /// Human-readable detail (becomes the plain-text error body).
    pub message: String,
    /// Value for the `Allow` header (405 responses).
    pub allow: Option<&'static str>,
    /// Whether the connection is desynchronized (framing can no longer
    /// be trusted) and must close after the error response.
    pub must_close: bool,
}

impl HttpError {
    /// An error with the given status and message (connection survives).
    pub fn new(status: u16, message: impl Into<String>) -> HttpError {
        HttpError {
            status,
            message: message.into(),
            allow: None,
            must_close: false,
        }
    }

    /// A framing-level error: answered, then the connection closes.
    pub fn fatal(status: u16, message: impl Into<String>) -> HttpError {
        HttpError {
            must_close: true,
            ..HttpError::new(status, message)
        }
    }

    /// A 405 carrying the `Allow` header value.
    pub fn method_not_allowed(allow: &'static str) -> HttpError {
        HttpError {
            status: 405,
            message: format!("method not allowed; allowed: {allow}"),
            allow: Some(allow),
            must_close: false,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}: {}",
            self.status,
            reason(self.status),
            self.message
        )
    }
}

/// The standard reason phrase for the status codes this layer emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        406 => "Not Acceptable",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        415 => "Unsupported Media Type",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method, upper-case as received (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the request target (before `?`), undecoded.
    pub path: String,
    /// Raw query string (after `?`), undecoded; `None` when absent.
    pub query_string: Option<String>,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The `Content-Length`-delimited body (empty when none).
    pub body: Vec<u8>,
    /// Whether the connection may serve another request after this one:
    /// HTTP/1.1 unless `Connection: close`; HTTP/1.0 only with
    /// `Connection: keep-alive`.
    pub keep_alive: bool,
}

impl Request {
    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The `Content-Type`, lower-cased with any `;` parameters (charset…)
    /// stripped.
    pub fn content_type(&self) -> Option<String> {
        self.header("content-type").map(|v| {
            v.split(';')
                .next()
                .unwrap_or("")
                .trim()
                .to_ascii_lowercase()
        })
    }
}

/// Outcome of one [`RequestParser::parse`] call.
#[derive(Debug)]
pub enum Parse {
    /// One complete request; `usize` is how many buffer bytes it
    /// consumed (the caller drains them before re-parsing — pipelined
    /// followers are already behind them).
    Complete(Box<Request>, usize),
    /// The buffer holds a prefix of a request; read more bytes.
    Partial,
}

/// Incremental parser state for one connection. Cheap to create; reset
/// automatically after every completed request.
#[derive(Debug, Default)]
pub struct RequestParser {
    /// Head-terminator scan resume point: bytes before this index are
    /// known not to start the blank line, so repeated `Partial` rounds
    /// stay O(new bytes), not O(buffer)².
    scanned: usize,
}

impl RequestParser {
    pub fn new() -> RequestParser {
        RequestParser::default()
    }

    /// Parses one request off the front of `buf` (the connection's
    /// receive buffer). Leading blank lines between pipelined requests
    /// are tolerated per RFC 9112 §2.2.
    pub fn parse(&mut self, buf: &[u8]) -> Result<Parse, HttpError> {
        // Skip leading CRLFs (robustness: some clients pad pipelined
        // requests). They count as consumed bytes of this request.
        let mut start = 0;
        while start < buf.len() && (buf[start] == b'\r' || buf[start] == b'\n') {
            start += 1;
        }
        if start >= buf.len() {
            self.scanned = start;
            return Ok(Parse::Partial);
        }

        // Find the head terminator ("\r\n\r\n", tolerating bare "\n\n").
        let scan_from = self.scanned.max(start);
        let Some(head_end) = find_head_end(buf, scan_from) else {
            if buf.len() - start > MAX_HEAD {
                return Err(HttpError::fatal(431, "request head too large"));
            }
            // Resume the scan before the tail in case the terminator
            // straddles this read and the next.
            self.scanned = buf.len().saturating_sub(3).max(start);
            return Ok(Parse::Partial);
        };
        if head_end - start > MAX_HEAD {
            return Err(HttpError::fatal(431, "request head too large"));
        }

        let head = std::str::from_utf8(&buf[start..head_end])
            .map_err(|_| HttpError::fatal(400, "non-UTF-8 bytes in request head"))?;
        let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));

        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split_ascii_whitespace();
        let (Some(method), Some(target), Some(version)) =
            (parts.next(), parts.next(), parts.next())
        else {
            return Err(HttpError::fatal(400, "malformed request line"));
        };
        let http11 = match version {
            "HTTP/1.1" => true,
            "HTTP/1.0" => false,
            v if v.starts_with("HTTP/1.") => true,
            v => return Err(HttpError::fatal(400, format!("unsupported version {v}"))),
        };
        let (path, query_string) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), Some(q.to_string())),
            None => (target.to_string(), None),
        };

        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue; // the terminator's own blank line
            }
            if headers.len() >= MAX_HEADERS {
                return Err(HttpError::fatal(431, "too many headers"));
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(HttpError::fatal(400, "malformed header line"));
            };
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }

        let mut request = Request {
            method: method.to_string(),
            path,
            query_string,
            headers,
            body: Vec::new(),
            keep_alive: http11,
        };
        // Connection header overrides the version default. Values are a
        // comma-separated token list ("keep-alive", "close, TE").
        if let Some(conn) = request.header("connection") {
            let mut tokens = conn.split(',').map(|t| t.trim().to_ascii_lowercase());
            if tokens.clone().any(|t| t == "close") {
                request.keep_alive = false;
            } else if tokens.any(|t| t == "keep-alive") {
                request.keep_alive = true;
            }
        }
        if request.header("transfer-encoding").is_some() {
            // Chunked request bodies are not supported; answering and
            // re-framing is impossible, so close.
            return Err(HttpError::fatal(
                411,
                "chunked bodies unsupported; send Content-Length",
            ));
        }

        let body_len = match request.header("content-length") {
            Some(v) => {
                let len: usize = v.trim().parse().map_err(|_| {
                    // An unparseable length desynchronizes the framing.
                    HttpError::fatal(400, "invalid Content-Length")
                })?;
                if len > MAX_BODY {
                    return Err(HttpError::fatal(413, "request body too large"));
                }
                len
            }
            None if request.method == "POST" => {
                return Err(HttpError::fatal(411, "POST requires Content-Length"));
            }
            None => 0,
        };
        let total = head_end + body_len;
        if buf.len() < total {
            // Head parsed but the body is still arriving; the resume
            // point keeps the head-terminator re-scan O(1).
            self.scanned = head_end.saturating_sub(3);
            return Ok(Parse::Partial);
        }
        request.body = buf[head_end..total].to_vec();
        self.scanned = 0;
        Ok(Parse::Complete(Box::new(request), total))
    }
}

/// Index just past the head terminator (`\r\n\r\n` or `\n\n`) at or
/// after `from`, scanning backwards-tolerantly so a terminator split
/// across reads is still found.
fn find_head_end(buf: &[u8], from: usize) -> Option<usize> {
    let mut i = from;
    while i < buf.len() {
        if buf[i] != b'\n' {
            i += 1;
            continue;
        }
        match buf.get(i + 1) {
            Some(b'\n') => return Some(i + 2),
            Some(b'\r') if buf.get(i + 2) == Some(&b'\n') => return Some(i + 3),
            _ => i += 1,
        }
    }
    None
}

/// A complete, `Content-Length`-framed response.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: String,
    /// Extra headers (`Allow`, `Retry-After`, …).
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// Force `Connection: close` regardless of the request's wishes
    /// (framing errors, shutdown).
    pub close: bool,
}

impl Response {
    /// A response with the given status, content type and body.
    pub fn new(status: u16, content_type: impl Into<String>, body: Vec<u8>) -> Response {
        Response {
            status,
            content_type: content_type.into(),
            headers: Vec::new(),
            body,
            close: false,
        }
    }

    /// A plain-text response (errors, `/healthz`).
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response::new(
            status,
            "text/plain; charset=utf-8",
            body.into().into_bytes(),
        )
    }

    /// The error response for an [`HttpError`] (carries `Allow`, closes
    /// the connection when the error says framing is lost).
    pub fn from_error(err: &HttpError) -> Response {
        let mut resp = Response::text(err.status, format!("{}\n", err.message));
        if let Some(allow) = err.allow {
            resp.headers.push(("Allow".to_string(), allow.to_string()));
        }
        resp.close = err.must_close;
        resp
    }

    /// Adds a header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Serializes head + body into `out` (a connection's send buffer).
    /// `keep_alive` is the *request's* wish; the response's `close`
    /// overrides it. Returns whether the connection stays open.
    pub fn encode_into(&self, keep_alive: bool, out: &mut Vec<u8>) -> bool {
        let alive = keep_alive && !self.close;
        out.extend_from_slice(b"HTTP/1.1 ");
        push_number(out, self.status as u64);
        out.push(b' ');
        out.extend_from_slice(reason(self.status).as_bytes());
        out.extend_from_slice(b"\r\nContent-Type: ");
        out.extend_from_slice(self.content_type.as_bytes());
        out.extend_from_slice(b"\r\nContent-Length: ");
        push_number(out, self.body.len() as u64);
        out.extend_from_slice(if alive {
            b"\r\nConnection: keep-alive\r\n".as_slice()
        } else {
            b"\r\nConnection: close\r\n".as_slice()
        });
        for (name, value) in &self.headers {
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(value.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        alive
    }
}

/// Decimal-formats `n` into `out` without a transient `String`.
fn push_number(out: &mut Vec<u8>, n: u64) {
    let mut digits = [0u8; 20];
    let mut i = digits.len();
    let mut n = n;
    loop {
        i -= 1;
        digits[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out.extend_from_slice(&digits[i..]);
}

/// Percent-decodes `s`. With `plus_as_space` (query strings and
/// urlencoded form bodies) a literal `+` decodes to a space; `%2B` is the
/// escaped plus either way. Malformed escapes (`%`, `%2`, `%GZ`) and
/// non-UTF-8 decoded bytes are errors — the handler answers 400, never
/// panics.
pub fn percent_decode(s: &str, plus_as_space: bool) -> Result<String, HttpError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let (Some(&hi), Some(&lo)) = (bytes.get(i + 1), bytes.get(i + 2)) else {
                    return Err(HttpError::new(400, "truncated percent escape"));
                };
                let (Some(hi), Some(lo)) = ((hi as char).to_digit(16), (lo as char).to_digit(16))
                else {
                    return Err(HttpError::new(
                        400,
                        format!("invalid percent escape %{}{}", hi as char, lo as char),
                    ));
                };
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b'+' if plus_as_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| HttpError::new(400, "percent-decoded bytes are not UTF-8"))
}

/// Parses an `application/x-www-form-urlencoded` document (or a URL query
/// string) into decoded `(key, value)` pairs. Empty segments (`a=1&&b=2`)
/// are skipped; a segment without `=` becomes a key with an empty value.
pub fn parse_form(s: &str) -> Result<Vec<(String, String)>, HttpError> {
    let mut pairs = Vec::new();
    for segment in s.split('&') {
        if segment.is_empty() {
            continue;
        }
        let (k, v) = segment.split_once('=').unwrap_or((segment, ""));
        pairs.push((percent_decode(k, true)?, percent_decode(v, true)?));
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(raw: &[u8]) -> Result<Parse, HttpError> {
        RequestParser::new().parse(raw)
    }

    fn complete(raw: &[u8]) -> (Box<Request>, usize) {
        match parse_one(raw) {
            Ok(Parse::Complete(r, n)) => (r, n),
            other => panic!("expected complete request, got {other:?}"),
        }
    }

    #[test]
    fn parses_get_with_query_string() {
        let (r, n) = complete(b"GET /sparql?query=SELECT%20*&x=1 HTTP/1.1\r\nHost: h\r\n\r\n");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/sparql");
        assert_eq!(r.query_string.as_deref(), Some("query=SELECT%20*&x=1"));
        assert_eq!(r.header("host"), Some("h"));
        assert_eq!(r.header("HOST"), Some("h"));
        assert!(r.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(
            n,
            b"GET /sparql?query=SELECT%20*&x=1 HTTP/1.1\r\nHost: h\r\n\r\n".len()
        );
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let (r, n) = complete(
            b"POST /sparql HTTP/1.1\r\nContent-Type: application/sparql-query\r\nContent-Length: 5\r\n\r\nhello",
        );
        assert_eq!(r.body, b"hello");
        assert_eq!(
            r.content_type().as_deref(),
            Some("application/sparql-query")
        );
        assert_eq!(&b"POST /sparql HTTP/1.1\r\nContent-Type: application/sparql-query\r\nContent-Length: 5\r\n\r\nhello"[..n].len(), &n);
    }

    #[test]
    fn incremental_byte_at_a_time() {
        let raw = b"POST /u HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
        let mut parser = RequestParser::new();
        for end in 1..raw.len() {
            match parser.parse(&raw[..end]) {
                Ok(Parse::Partial) => {}
                other => panic!("byte {end}: expected partial, got {other:?}"),
            }
        }
        match parser.parse(raw) {
            Ok(Parse::Complete(r, n)) => {
                assert_eq!(r.body, b"abcd");
                assert_eq!(n, raw.len());
            }
            other => panic!("expected complete, got {other:?}"),
        }
    }

    #[test]
    fn pipelined_requests_parse_in_sequence() {
        let raw: &[u8] = b"GET /healthz HTTP/1.1\r\n\r\nGET /stats HTTP/1.1\r\n\r\n";
        let mut parser = RequestParser::new();
        let (r1, n1) = match parser.parse(raw) {
            Ok(Parse::Complete(r, n)) => (r, n),
            other => panic!("{other:?}"),
        };
        assert_eq!(r1.path, "/healthz");
        let (r2, n2) = match parser.parse(&raw[n1..]) {
            Ok(Parse::Complete(r, n)) => (r, n),
            other => panic!("{other:?}"),
        };
        assert_eq!(r2.path, "/stats");
        assert_eq!(n1 + n2, raw.len());
    }

    #[test]
    fn keep_alive_negotiation() {
        let (r, _) = complete(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!r.keep_alive, "HTTP/1.0 defaults to close");
        let (r, _) = complete(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n");
        assert!(r.keep_alive);
        let (r, _) = complete(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!r.keep_alive);
        let (r, _) = complete(b"GET / HTTP/1.1\r\nConnection: close, TE\r\n\r\n");
        assert!(!r.keep_alive, "token list containing close");
    }

    #[test]
    fn garbage_between_requests_is_fatal_400() {
        let err = match parse_one(b"\x00\x01garbage\r\n\r\n") {
            Err(e) => e,
            other => panic!("{other:?}"),
        };
        assert_eq!(err.status, 400);
        assert!(err.must_close, "desynced framing must close");
    }

    #[test]
    fn oversized_content_length_is_fatal() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let err = parse_one(raw.as_bytes()).unwrap_err();
        assert_eq!(err.status, 413);
        assert!(err.must_close);

        let err = parse_one(b"POST / HTTP/1.1\r\nContent-Length: 99zz\r\n\r\n").unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.must_close, "unparseable length desyncs the stream");
    }

    #[test]
    fn post_without_length_is_411() {
        let err = parse_one(b"POST /sparql HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(err.status, 411);
    }

    #[test]
    fn malformed_requests_are_400() {
        assert_eq!(parse_one(b"GET\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse_one(b"GET / SPDY/3\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            parse_one(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
    }

    #[test]
    fn oversized_head_rejected_without_terminator() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD + 10));
        let err = parse_one(&raw).unwrap_err();
        assert_eq!(err.status, 431);
    }

    #[test]
    fn leading_crlf_tolerated() {
        let (r, n) = complete(b"\r\n\r\nGET /x HTTP/1.1\r\n\r\n");
        assert_eq!(r.path, "/x");
        assert_eq!(n, b"\r\n\r\nGET /x HTTP/1.1\r\n\r\n".len());
    }

    #[test]
    fn response_encoding_frames_by_length() {
        let resp = Response::text(200, "ok\n");
        let mut out = Vec::new();
        assert!(resp.encode_into(true, &mut out));
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));

        let mut out = Vec::new();
        assert!(!resp.encode_into(false, &mut out));
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("Connection: close\r\n"));

        let resp = Response::from_error(&HttpError::fatal(400, "nope"));
        let mut out = Vec::new();
        assert!(
            !resp.encode_into(true, &mut out),
            "fatal errors close even when the request wanted keep-alive"
        );
    }

    #[test]
    fn error_response_carries_allow() {
        let resp = Response::from_error(&HttpError::method_not_allowed("GET, POST"));
        let mut out = Vec::new();
        resp.encode_into(true, &mut out);
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"),
            "{text}"
        );
        assert!(text.contains("Allow: GET, POST\r\n"), "{text}");
    }

    #[test]
    fn percent_decoding_spaces_and_plus() {
        assert_eq!(percent_decode("a+b", true).unwrap(), "a b");
        assert_eq!(percent_decode("a+b", false).unwrap(), "a+b");
        assert_eq!(percent_decode("1%2B2%20%2b3", true).unwrap(), "1+2 +3");
        assert_eq!(
            percent_decode("SELECT+%2a+WHERE+%7B+%3Fs+%3Fp+%3Fo+.+%7D", true).unwrap(),
            "SELECT * WHERE { ?s ?p ?o . }"
        );
    }

    #[test]
    fn malformed_escapes_are_errors_not_panics() {
        for bad in ["%", "%2", "a%G1", "%zz", "x%"] {
            let err = percent_decode(bad, true).unwrap_err();
            assert_eq!(err.status, 400, "{bad}");
        }
        assert_eq!(percent_decode("%ff%fe", true).unwrap_err().status, 400);
    }

    #[test]
    fn form_parsing() {
        let pairs = parse_form("query=ASK+%7B%7D&default-graph-uri=&flag").unwrap();
        assert_eq!(
            pairs,
            vec![
                ("query".to_string(), "ASK {}".to_string()),
                ("default-graph-uri".to_string(), String::new()),
                ("flag".to_string(), String::new()),
            ]
        );
        assert!(parse_form("query=%G1").is_err());
        assert_eq!(parse_form("a=1&&b=2").unwrap().len(), 2);
    }
}
