//! Lock-free serving metrics: latency histograms and connection/request
//! counters, all plain atomics so the hot path never takes a lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Geometric bucket upper bounds in microseconds: 1µs … ~67s doubling,
/// plus a catch-all. 27 buckets cover every latency this server can
/// produce with ≤2× relative error, which is plenty for p50/p95/p99.
const BUCKET_COUNT: usize = 28;

fn bucket_for(micros: u64) -> usize {
    // Bucket i holds samples in (2^(i-1), 2^i] µs; bucket 0 holds ≤1µs.
    let m = micros.max(1);
    let floor_log2 = 63 - u64::leading_zeros(m) as usize;
    let bucket = if m.is_power_of_two() {
        floor_log2
    } else {
        floor_log2 + 1
    };
    bucket.min(BUCKET_COUNT - 1)
}

fn bucket_upper_micros(i: usize) -> u64 {
    1u64 << i
}

/// A fixed-bucket concurrent latency histogram.
#[derive(Default)]
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKET_COUNT],
    /// Exact maximum observed, in microseconds (`fetch_max`).
    max_micros: AtomicU64,
    total: AtomicU64,
    /// Sum of all observed samples, in microseconds (for `_sum`).
    sum_micros: AtomicU64,
}

/// A point-in-time percentile summary, microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    pub count: u64,
    pub p50_micros: u64,
    pub p95_micros: u64,
    pub p99_micros: u64,
    pub max_micros: u64,
}

impl LatencyHistogram {
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one sample.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u64::MAX as u128) as u64;
        self.counts[bucket_for(micros)].fetch_add(1, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Exports the histogram in Prometheus shape: ascending
    /// `(upper_bound_us, cumulative_count)` pairs for the finite buckets
    /// (the last bucket is the `+Inf` catch-all and is omitted — its
    /// cumulative value is the returned total count), plus the total
    /// count and sum of samples in microseconds.
    pub fn cumulative_buckets(&self) -> (Vec<(u64, u64)>, u64, u64) {
        let mut cumulative = 0u64;
        let mut buckets = Vec::with_capacity(BUCKET_COUNT - 1);
        for i in 0..BUCKET_COUNT - 1 {
            cumulative += self.counts[i].load(Ordering::Relaxed);
            buckets.push((bucket_upper_micros(i), cumulative));
        }
        let count = cumulative + self.counts[BUCKET_COUNT - 1].load(Ordering::Relaxed);
        (buckets, count, self.sum_micros.load(Ordering::Relaxed))
    }

    /// Computes p50/p95/p99/max. Percentiles are reported as the upper
    /// bound of the bucket the cumulative count crosses in (≤2× the true
    /// value); max is exact.
    pub fn summary(&self) -> LatencySummary {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        if count == 0 {
            return LatencySummary::default();
        }
        let max = self.max_micros.load(Ordering::Relaxed);
        let percentile = |p: f64| -> u64 {
            let rank = ((count as f64) * p).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    // Never report a percentile above the exact max.
                    return bucket_upper_micros(i).min(max);
                }
            }
            max
        };
        LatencySummary {
            count,
            p50_micros: percentile(0.50),
            p95_micros: percentile(0.95),
            p99_micros: percentile(0.99),
            max_micros: max,
        }
    }
}

/// Connection- and admission-level counters maintained by the event
/// loop; exported through `/stats`.
#[derive(Default)]
pub struct NetCounters {
    /// Connections accepted.
    pub connections_accepted: AtomicU64,
    /// Requests fully parsed and admitted to the worker queue.
    pub requests_admitted: AtomicU64,
    /// Requests shed with 503 because the admission queue was full.
    pub requests_dropped: AtomicU64,
    /// Connections closed with 408 for dribbling a request too slowly.
    pub requests_timed_out: AtomicU64,
    /// Requests rejected as malformed (4xx from the parser).
    pub requests_malformed: AtomicU64,
    /// Requests answered 504 because their deadline passed.
    pub deadlines_exceeded: AtomicU64,
    /// Requests currently sitting in the admission queue or being
    /// executed by a worker (gauge: incremented on dispatch, decremented
    /// when the handler returns).
    pub queue_depth: AtomicU64,
}

impl NetCounters {
    pub fn new() -> NetCounters {
        NetCounters::default()
    }

    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    pub fn drop_one(counter: &AtomicU64) {
        counter.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zero() {
        assert_eq!(LatencyHistogram::new().summary(), LatencySummary::default());
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_for(0), 0);
        assert_eq!(bucket_for(1), 0);
        assert_eq!(bucket_for(2), 1);
        assert_eq!(bucket_for(3), 2);
        assert_eq!(bucket_for(4), 2);
        assert_eq!(bucket_for(1024), 10);
        assert_eq!(bucket_for(u64::MAX), BUCKET_COUNT - 1);
    }

    #[test]
    fn percentiles_bound_true_values() {
        let h = LatencyHistogram::new();
        for micros in 1..=1000u64 {
            h.record(Duration::from_micros(micros));
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max_micros, 1000);
        // True p50 = 500µs; bucket answer must be within [500, 1000].
        assert!(
            (500..=1024.min(s.max_micros)).contains(&s.p50_micros),
            "{s:?}"
        );
        assert!(s.p95_micros >= 950 && s.p95_micros <= s.max_micros, "{s:?}");
        assert!(s.p99_micros >= 990 && s.p99_micros <= s.max_micros, "{s:?}");
        assert!(s.p50_micros <= s.p95_micros && s.p95_micros <= s.p99_micros);
    }

    #[test]
    fn single_sample() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(300));
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.max_micros, 300);
        assert_eq!(s.p50_micros, 300, "percentile clamped to exact max");
        assert_eq!(s.p99_micros, 300);
    }

    #[test]
    fn cumulative_export_matches_recorded_samples() {
        let h = LatencyHistogram::new();
        for micros in [1u64, 2, 3, 1000, 5_000_000] {
            h.record(Duration::from_micros(micros));
        }
        let (buckets, count, sum) = h.cumulative_buckets();
        assert_eq!(count, 5);
        assert_eq!(sum, 1 + 2 + 3 + 1000 + 5_000_000);
        assert_eq!(buckets.len(), BUCKET_COUNT - 1);
        // Bounds ascend and cumulative counts are monotone non-decreasing.
        for w in buckets.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        // 1µs lands in bucket ≤1; 2µs and 3µs by bucket ≤4.
        assert_eq!(buckets[0], (1, 1));
        assert_eq!(buckets[2], (4, 3));
        // Everything is inside the finite range, so the last finite
        // bucket holds the full count.
        assert_eq!(buckets.last().unwrap().1, 5);
    }

    #[test]
    fn zero_observation_export_is_all_zero() {
        let (buckets, count, sum) = LatencyHistogram::new().cumulative_buckets();
        assert_eq!((count, sum), (0, 0));
        assert!(buckets.iter().all(|&(_, c)| c == 0));
    }

    #[test]
    fn concurrent_recording_under_thread_scope() {
        let h = LatencyHistogram::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..500u64 {
                        h.record(Duration::from_micros(t * 500 + i + 1));
                    }
                });
            }
        });
        let s = h.summary();
        assert_eq!(s.count, 4000);
        assert_eq!(s.max_micros, 4000);
        let (buckets, count, sum) = h.cumulative_buckets();
        assert_eq!(count, 4000);
        // Sum of 1..=4000.
        assert_eq!(sum, 4000 * 4001 / 2);
        assert_eq!(buckets.last().unwrap().1, 4000);
    }

    #[test]
    fn concurrent_recording() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(Duration::from_micros(i));
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.summary().count, 4000);
    }
}
