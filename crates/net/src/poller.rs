//! Safe epoll wrapper: a [`Poller`] owns the epoll instance, a
//! [`Waker`] lets other threads interrupt a blocking wait.
//!
//! Registration is level-triggered (no `EPOLLET`): the loop re-hears
//! about unconsumed readiness on every wait, which makes partial
//! reads/writes impossible to lose at the cost of re-arming writable
//! interest only while there are bytes queued (the loop does exactly
//! that).

use crate::sys;
use std::io;
use std::os::fd::{AsRawFd, OwnedFd, RawFd};
use std::time::Duration;

/// What to listen for on a registered descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn bits(self) -> u32 {
        let mut bits = sys::EPOLLRDHUP;
        if self.readable {
            bits |= sys::EPOLLIN;
        }
        if self.writable {
            bits |= sys::EPOLLOUT;
        }
        bits
    }
}

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// Error or hangup: the peer is gone (or the socket failed); the
    /// connection should be torn down after a final read attempt.
    pub hangup: bool,
}

/// An owned epoll instance.
pub struct Poller {
    epfd: OwnedFd,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            epfd: sys::epoll_create()?,
        })
    }

    /// Registers `fd` under `token`.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_control(
            self.epfd.as_raw_fd(),
            sys::EPOLL_CTL_ADD,
            fd,
            interest.bits(),
            token,
        )
    }

    /// Re-arms `fd` (already registered) with a new interest set.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_control(
            self.epfd.as_raw_fd(),
            sys::EPOLL_CTL_MOD,
            fd,
            interest.bits(),
            token,
        )
    }

    /// Removes `fd` from the interest list. (Closing the descriptor
    /// also removes it; this exists for explicit teardown paths.)
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        sys::epoll_control(self.epfd.as_raw_fd(), sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks until readiness (or `timeout`), appending events to `out`.
    /// A timeout yields `Ok(0)` with `out` untouched; `EINTR` is treated
    /// as a timeout so signal delivery never kills the loop.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms = match timeout {
            // Round up so a 1ns timeout does not spin at 0ms.
            Some(t) => t.as_millis().min(i32::MAX as u128).max(1) as i32,
            None => -1,
        };
        let mut buf = [sys::EpollEvent { events: 0, data: 0 }; 256];
        let n = match sys::epoll_poll(self.epfd.as_raw_fd(), &mut buf, timeout_ms) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        for ev in &buf[..n] {
            let (bits, token) = (ev.events, ev.data);
            out.push(Event {
                token,
                readable: bits & sys::EPOLLIN != 0,
                writable: bits & sys::EPOLLOUT != 0,
                hangup: bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
            });
        }
        Ok(n)
    }
}

/// Wakes a [`Poller`] blocked in [`Poller::wait`] from another thread.
/// Backed by an eventfd registered in the poller under a caller-chosen
/// token; cloning shares the same eventfd.
pub struct Waker {
    fd: OwnedFd,
}

impl Waker {
    /// Creates a waker and registers it with `poller` under `token`.
    pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
        let fd = sys::eventfd_create()?;
        poller.add(fd.as_raw_fd(), token, Interest::READ)?;
        Ok(Waker { fd })
    }

    /// Signals the poller. Nonblocking: if the counter is already
    /// saturated the write fails with `WouldBlock`, which is fine — the
    /// poller is provably going to wake.
    pub fn wake(&self) {
        let _ = sys::fd_write(self.fd.as_raw_fd(), &1u64.to_ne_bytes());
    }

    /// Drains the pending wakeups (called by the loop when the waker's
    /// token fires) so level-triggered epoll stops reporting it.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = sys::fd_read(self.fd.as_raw_fd(), &mut buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn waker_interrupts_wait() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new(&poller, 99).unwrap();
        waker.wake();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 99 && e.readable));
        waker.drain();
        // Drained: the next zero-ish timeout wait is quiet.
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn socket_readiness_via_poller() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 1, Interest::READ).unwrap();

        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
    }
}
