//! The five lint families. Every lint works on a [`Scrub`](crate::lex::Scrub)
//! of one file: code is matched against the scrubbed text (so strings and
//! comments can't fire lints), comments are consulted only for `SAFETY:`
//! justifications and `// lbr-lint:` markers, and `#[cfg(test)]` lines are
//! skipped wherever a lint is about production code.

use crate::lex::{matching_brace, Scrub};
use crate::Finding;

/// Lint identifiers as they appear in `[brackets]` in findings and in the
/// baseline file.
pub const NO_ALLOC: &str = "no-alloc";
pub const UNSAFE_COMMENT: &str = "unsafe-comment";
pub const FORBID_UNSAFE: &str = "forbid-unsafe";
pub const PANIC_PATH: &str = "panic-path";
pub const LOCK_ORDER: &str = "lock-order";
pub const WAL_DURABILITY: &str = "wal-durability";
pub const UNSAFE_CONFINEMENT: &str = "unsafe-confinement";

/// Method calls that allocate (matched as `.name(` or `.name::<`).
const ALLOC_METHODS: &[&str] = &[
    "collect",
    "to_vec",
    "clone",
    "to_owned",
    "to_string",
    "with_capacity",
];
/// Path calls that allocate (matched as `Path::name(`).
const ALLOC_PATHS: &[&str] = &[
    "Vec::new",
    "Vec::with_capacity",
    "Box::new",
    "String::from",
    "String::new",
    "String::with_capacity",
];
/// Macros that allocate (matched as `name!`).
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Panicking method calls (`.name(`). `unwrap_or*` variants don't match —
/// the matcher requires the exact method name followed by `(`.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
/// Panicking macros. `unreachable!` is deliberately not here: it marks
/// statically-impossible branches, which the serving-path policy accepts.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

/// Is `text[pos..]` a call of `.method(` / `.method::<` with an exact
/// method-name boundary? `pos` points at the `.`.
fn method_call_at(text: &str, pos: usize, method: &str) -> bool {
    let b = text.as_bytes();
    let start = pos + 1;
    let end = start + method.len();
    if end > b.len() || &text[start..end] != method {
        return false;
    }
    match b.get(end) {
        Some(b'(') => true,
        Some(b':') => b.get(end + 1) == Some(&b':'), // turbofish
        _ => false,
    }
}

/// Is `text[pos..]` a call of `Path::name(` with word boundaries on both
/// sides? `pos` points at the first char of the path.
fn path_call_at(text: &str, pos: usize, path: &str) -> bool {
    let b = text.as_bytes();
    if pos > 0 {
        let prev = b[pos - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' || prev == b':' {
            return false;
        }
    }
    let end = pos + path.len();
    if end > b.len() || &text[pos..end] != path {
        return false;
    }
    b.get(end) == Some(&b'(')
}

/// Is `text[pos..]` an invocation of `name!`? `pos` points at the first
/// char of the macro name.
fn macro_call_at(text: &str, pos: usize, name: &str) -> bool {
    let b = text.as_bytes();
    if pos > 0 {
        let prev = b[pos - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' {
            return false;
        }
    }
    let end = pos + name.len();
    end < b.len() && &text[pos..end] == name && b[end] == b'!'
}

/// Slices a display snippet from the **original** text: the matched token
/// plus, for `expect`, its string argument (so distinct rationales are
/// distinct baseline keys). Paren balancing runs on the scrubbed text so
/// parens inside string args don't confuse it.
fn snippet(original: &str, scrubbed: &str, start: usize, token_end: usize) -> String {
    let b = scrubbed.as_bytes();
    if b.get(token_end) == Some(&b'(') {
        let mut depth = 0i64;
        for (off, &c) in b[token_end..].iter().enumerate() {
            match c {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        let end = token_end + off + 1;
                        if end - start <= 90 {
                            return original[start..end].to_string();
                        }
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    original[start..token_end].to_string()
}

/// ---------------------------------------------------------------------
/// Lint 1: no-alloc hot paths.
///
/// Regions between `// lbr-lint: no_alloc` and `// lbr-lint: end` deny
/// the allocating idioms above. An unclosed region is itself a finding.
/// ---------------------------------------------------------------------
pub fn lint_no_alloc(path: &str, original: &str, sc: &Scrub, out: &mut Vec<Finding>) {
    // A marker is a comment whose content *starts with* `lbr-lint:` (after
    // the comment sigils) — prose that merely mentions the syntax, like
    // this lint's own documentation, is not a marker.
    fn marker(comment: &str) -> Option<&str> {
        let c = comment.trim_start_matches(['/', '!', '*', ' ']).trim();
        let directive = c.strip_prefix("lbr-lint:")?;
        // The directive is the first word; trailing prose is welcome.
        Some(directive.split_whitespace().next().unwrap_or(""))
    }
    let mut regions: Vec<(usize, usize)> = Vec::new();
    let mut open: Option<usize> = None;
    for line in 1..=sc.n_lines() {
        let c = &sc.comment_lines[line];
        if marker(c) == Some("no_alloc") {
            if let Some(prev) = open {
                out.push(Finding::new(
                    path,
                    line,
                    NO_ALLOC,
                    "lbr-lint: no_alloc",
                    format!("nested no_alloc marker; region from line {prev} not closed"),
                ));
            }
            open = Some(line);
        } else if marker(c) == Some("end") {
            if let Some(start) = open.take() {
                regions.push((start, line));
            }
        }
    }
    if let Some(start) = open {
        out.push(Finding::new(
            path,
            start,
            NO_ALLOC,
            "lbr-lint: no_alloc",
            "unclosed no_alloc region (missing `// lbr-lint: end`)".to_string(),
        ));
    }
    if regions.is_empty() {
        return;
    }
    let in_region = |line: usize| regions.iter().any(|&(s, e)| line > s && line < e);
    scan_denied(
        path,
        original,
        sc,
        NO_ALLOC,
        ALLOC_METHODS,
        ALLOC_PATHS,
        ALLOC_MACROS,
        |line| in_region(line) && !sc.test_lines[line],
        "allocation in no_alloc region",
        out,
    );
}

/// ---------------------------------------------------------------------
/// Lint 3: panic-free serving and commit paths.
/// ---------------------------------------------------------------------
pub fn lint_panic_path(path: &str, original: &str, sc: &Scrub, out: &mut Vec<Finding>) {
    if !panic_scope(path) {
        return;
    }
    scan_denied(
        path,
        original,
        sc,
        PANIC_PATH,
        PANIC_METHODS,
        &[],
        PANIC_MACROS,
        |line| !sc.test_lines[line],
        "panic in serving/commit path",
        out,
    );
}

/// Files whose non-test code must be panic-free: the connection layer,
/// the HTTP server, the query facade it serves, and the store
/// commit/recovery path. The delta overlay read path (`overlay.rs`,
/// `delta.rs`) is exercised only via the facade and is out of scope.
pub fn panic_scope(path: &str) -> bool {
    path.starts_with("crates/net/src/")
        || path.starts_with("crates/server/src/")
        || path.starts_with("src/")
        || path == "crates/store/src/store.rs"
        || path == "crates/store/src/wal.rs"
}

#[allow(clippy::too_many_arguments)]
fn scan_denied(
    path: &str,
    original: &str,
    sc: &Scrub,
    lint: &'static str,
    methods: &[&str],
    paths: &[&str],
    macros: &[&str],
    line_ok: impl Fn(usize) -> bool,
    what: &str,
    out: &mut Vec<Finding>,
) {
    let text = &sc.scrubbed;
    let bytes = text.as_bytes();
    for (pos, &byte) in bytes.iter().enumerate() {
        let line = sc.line_of(pos);
        if !line_ok(line) {
            continue;
        }
        if byte == b'.' {
            for m in methods {
                if method_call_at(text, pos, m) {
                    let token_end = pos + 1 + m.len();
                    // Skip turbofish to the open paren for the snippet.
                    let call_open = text[token_end..]
                        .find('(')
                        .map_or(token_end, |o| token_end + o);
                    let snip = snippet(original, text, pos, call_open);
                    out.push(Finding::new(
                        path,
                        line,
                        lint,
                        snip.clone(),
                        format!("{what}: `{snip}`"),
                    ));
                    break;
                }
            }
        } else {
            for p in paths {
                if path_call_at(text, pos, p) {
                    out.push(Finding::new(
                        path,
                        line,
                        lint,
                        (*p).to_string(),
                        format!("{what}: `{p}(..)`"),
                    ));
                    break;
                }
            }
            for m in macros {
                if macro_call_at(text, pos, m) {
                    let snip = format!("{m}!");
                    out.push(Finding::new(
                        path,
                        line,
                        lint,
                        snip.clone(),
                        format!("{what}: `{snip}`"),
                    ));
                    break;
                }
            }
        }
    }
}

/// ---------------------------------------------------------------------
/// Lint 2: unsafe audit.
///
/// Every occurrence of the `unsafe` keyword in non-test scrubbed code
/// must have a `SAFETY:` comment adjacent: on the same line, or walking
/// upward over contiguous comment/attribute/blank lines. An impl-level
/// comment does not justify the fns inside it — each site needs its own.
/// ---------------------------------------------------------------------
pub fn lint_unsafe(path: &str, sc: &Scrub, out: &mut Vec<Finding>) {
    for site in unsafe_sites(sc) {
        if !has_adjacent_safety(sc, site) {
            out.push(Finding::new(
                path,
                site,
                UNSAFE_COMMENT,
                "unsafe",
                "unsafe without an adjacent `// SAFETY:` comment".to_string(),
            ));
        }
    }
}

/// 1-indexed lines containing the `unsafe` keyword in non-test code.
pub fn unsafe_sites(sc: &Scrub) -> Vec<usize> {
    let mut sites = Vec::new();
    let text = &sc.scrubbed;
    let mut from = 0;
    while let Some(off) = text[from..].find("unsafe") {
        let pos = from + off;
        from = pos + "unsafe".len();
        let b = text.as_bytes();
        let before_ok = pos == 0
            || !{
                let p = b[pos - 1];
                p.is_ascii_alphanumeric() || p == b'_'
            };
        let after_ok = b
            .get(pos + 6)
            .is_none_or(|&a| !(a.is_ascii_alphanumeric() || a == b'_'));
        if !(before_ok && after_ok) {
            continue; // e.g. `unsafe_code` in an attribute
        }
        let line = sc.line_of(pos);
        if !sc.test_lines[line] {
            sites.push(line);
        }
    }
    sites.dedup();
    sites
}

fn has_adjacent_safety(sc: &Scrub, line: usize) -> bool {
    if sc.comment_lines[line].contains("SAFETY:") {
        return true;
    }
    // Walk up over comment-only, attribute-only, or blank lines.
    let mut l = line;
    while l > 1 {
        l -= 1;
        if sc.comment_lines[l].contains("SAFETY:") {
            return true;
        }
        let code = sc.scrubbed_line(l).trim();
        let passthrough = code.is_empty() || code.starts_with("#[") || code.starts_with("#!");
        let has_comment = !sc.comment_lines[l].is_empty();
        if !(passthrough || (has_comment && code.is_empty())) {
            return false;
        }
    }
    false
}

/// ---------------------------------------------------------------------
/// Lint 2b: unsafe confinement.
///
/// Crates that dropped `#![forbid(unsafe_code)]` did so for a single,
/// named module; unsafe anywhere else in the crate is a policy violation
/// even when SAFETY-commented. Today the only such crate is `lbr-bitmat`,
/// whose unsafe is confined to the mmap FFI boundary in `mmap.rs` —
/// everything above the `Mmap` handle must stay safe code over slices.
/// ---------------------------------------------------------------------
pub struct ConfinementPolicy {
    /// Crate source prefix this policy governs, e.g. `crates/bitmat/src/`.
    pub crate_prefix: &'static str,
    /// File suffixes (relative to the prefix) where unsafe is allowed.
    pub allowed: &'static [&'static str],
}

/// `lbr-bitmat`: unsafe only in the mmap module.
pub const BITMAT_CONFINEMENT: ConfinementPolicy = ConfinementPolicy {
    crate_prefix: "crates/bitmat/src/",
    allowed: &["mmap.rs"],
};

pub fn lint_unsafe_confinement(
    path: &str,
    sc: &Scrub,
    policy: &ConfinementPolicy,
    out: &mut Vec<Finding>,
) {
    let Some(rel) = path.strip_prefix(policy.crate_prefix) else {
        return;
    };
    if policy.allowed.contains(&rel) {
        return;
    }
    for site in unsafe_sites(sc) {
        out.push(Finding::new(
            path,
            site,
            UNSAFE_CONFINEMENT,
            "unsafe",
            format!(
                "unsafe outside the allowed module(s) {:?} of `{}`",
                policy.allowed, policy.crate_prefix
            ),
        ));
    }
}

/// True when the file's non-test code has no `unsafe` at all — input to
/// the crate-level `#![forbid(unsafe_code)]` check in lib.rs.
pub fn file_is_unsafe_free(sc: &Scrub) -> bool {
    unsafe_sites(sc).is_empty()
}

/// Does this crate-root file declare `#![forbid(unsafe_code)]`?
pub fn declares_forbid_unsafe(sc: &Scrub) -> bool {
    sc.scrubbed
        .lines()
        .any(|l| l.contains("#![forbid(unsafe_code)]"))
}

/// ---------------------------------------------------------------------
/// Lint 4: lock discipline.
///
/// Within each function of a file with a declared lock order, nested
/// acquisitions must respect the order and must not re-acquire a held
/// lock. Acquisition receivers are matched textually: `self.writer.lock()`
/// acquires `writer`. Helper methods that acquire-and-release internally
/// (e.g. `snapshot()`, `publish()`) are *transient*: they are checked for
/// order against currently held locks, but don't join the held set.
/// ---------------------------------------------------------------------
pub struct LockPolicy {
    /// File this policy governs.
    pub path: &'static str,
    /// Lock names in required acquisition order.
    pub order: &'static [&'static str],
    /// Method names that transiently acquire a lock: (method, lock-name).
    pub transient: &'static [(&'static str, &'static str)],
}

/// The declared order for `Store`: writer → current → retained.
pub const STORE_LOCK_POLICY: LockPolicy = LockPolicy {
    path: "crates/store/src/store.rs",
    order: &["writer", "current", "retained"],
    transient: &[("snapshot", "current"), ("publish", "current")],
};

pub fn lint_lock_order(path: &str, sc: &Scrub, policy: &LockPolicy, out: &mut Vec<Finding>) {
    if path != policy.path {
        return;
    }
    let text = &sc.scrubbed;
    let bytes = text.as_bytes();
    // Find function bodies: `fn name(..) .. {` in non-test code.
    let mut from = 0;
    while let Some(off) = text[from..].find("fn ") {
        let fn_pos = from + off;
        from = fn_pos + 3;
        if fn_pos > 0 {
            let p = bytes[fn_pos - 1];
            if p.is_ascii_alphanumeric() || p == b'_' {
                continue;
            }
        }
        let line = sc.line_of(fn_pos);
        if sc.test_lines[line] {
            continue;
        }
        // Body opens at the first `{` at paren-depth 0 after the signature.
        let mut j = fn_pos;
        let mut paren = 0i64;
        let mut open = None;
        while j < bytes.len() {
            match bytes[j] {
                b'(' => paren += 1,
                b')' => paren -= 1,
                b'{' if paren == 0 => {
                    open = Some(j);
                    break;
                }
                b';' if paren == 0 => break, // trait method without body
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        let close = matching_brace(bytes, open).unwrap_or(bytes.len() - 1);
        check_fn_locks(path, sc, policy, open, close, out);
        from = from.max(open + 1);
    }
}

/// Scans one function body for lock acquisitions, tracking brace depth so
/// a lock acquired in an inner block is released when the block ends.
fn check_fn_locks(
    path: &str,
    sc: &Scrub,
    policy: &LockPolicy,
    open: usize,
    close: usize,
    out: &mut Vec<Finding>,
) {
    let text = &sc.scrubbed;
    let bytes = text.as_bytes();
    // Held locks: (order-index, name, brace-depth at acquisition).
    let mut held: Vec<(usize, &str, i64)> = Vec::new();
    let mut depth = 0i64;
    let mut i = open;
    while i <= close {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                held.retain(|&(_, _, d)| d <= depth);
            }
            b'.' => {
                // `.lock()` / `.read()` / `.write()` with a known receiver,
                // or a transient helper call.
                if let Some((name, acquiring)) = lock_acquisition_at(text, i, policy) {
                    let idx = policy.order.iter().position(|&n| n == name);
                    if let Some(idx) = idx {
                        let line = sc.line_of(i);
                        if held.iter().any(|&(_, h, _)| h == name) {
                            out.push(Finding::new(
                                path,
                                line,
                                LOCK_ORDER,
                                format!(".{name}"),
                                format!("`{name}` acquired while already held"),
                            ));
                        } else if let Some(&(hidx, hname, _)) =
                            held.iter().find(|&&(hidx, _, _)| hidx > idx)
                        {
                            let _ = hidx;
                            out.push(Finding::new(
                                path,
                                line,
                                LOCK_ORDER,
                                format!(".{name}"),
                                format!(
                                    "`{name}` acquired after `{hname}` violates declared order {}",
                                    policy.order.join(" -> ")
                                ),
                            ));
                        } else if acquiring {
                            held.push((idx, name, depth));
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// At a `.`: returns `(lock-name, joins-held-set)` when this is a lock
/// acquisition per the policy, else None.
fn lock_acquisition_at<'p>(
    text: &str,
    dot: usize,
    policy: &'p LockPolicy,
) -> Option<(&'p str, bool)> {
    for op in ["lock", "read", "write"] {
        if method_call_at(text, dot, op) {
            // Receiver: identifier chain immediately before the dot, e.g.
            // `self.writer` → last segment `writer`.
            let recv = ident_before(text, dot)?;
            return policy
                .order
                .iter()
                .find(|&&n| n == recv)
                .map(|&n| (n, true));
        }
    }
    for &(method, lock) in policy.transient {
        if method_call_at(text, dot, method) {
            return Some((lock, false));
        }
    }
    None
}

/// The identifier ending right before `text[dot]`.
fn ident_before(text: &str, dot: usize) -> Option<&str> {
    let b = text.as_bytes();
    let mut s = dot;
    while s > 0 && (b[s - 1].is_ascii_alphanumeric() || b[s - 1] == b'_') {
        s -= 1;
    }
    (s < dot).then(|| &text[s..dot])
}

/// ---------------------------------------------------------------------
/// Lint 5: WAL durability.
///
/// In `wal.rs` / `store.rs`, any function calling `rename(` must call
/// `sync_all(`/`sync_data(` before it (flush the source) and `sync_dir(`
/// or another `sync_all(` after it (persist the directory entry), all in
/// the same function body.
/// ---------------------------------------------------------------------
pub fn wal_scope(path: &str) -> bool {
    path.ends_with("/wal.rs") || path.ends_with("/store.rs")
}

pub fn lint_wal_durability(path: &str, sc: &Scrub, out: &mut Vec<Finding>) {
    if !wal_scope(path) {
        return;
    }
    let text = &sc.scrubbed;
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(off) = text[from..].find("fn ") {
        let fn_pos = from + off;
        from = fn_pos + 3;
        if fn_pos > 0 {
            let p = bytes[fn_pos - 1];
            if p.is_ascii_alphanumeric() || p == b'_' {
                continue;
            }
        }
        if sc.test_lines[sc.line_of(fn_pos)] {
            continue;
        }
        let Some(open) = text[fn_pos..].find('{').map(|o| fn_pos + o) else {
            continue;
        };
        let close = matching_brace(bytes, open).unwrap_or(bytes.len() - 1);
        let body = &text[open..=close.min(text.len() - 1)];
        let mut scan = 0;
        while let Some(r) = body[scan..].find("rename(") {
            let rpos = scan + r;
            scan = rpos + 7;
            // Word boundary (fs::rename, self.rename are fine; `prename(` not).
            let pb = body.as_bytes()[rpos.saturating_sub(1)];
            if pb.is_ascii_alphanumeric() || pb == b'_' {
                continue;
            }
            let line = sc.line_of(open + rpos);
            let before = &body[..rpos];
            let after = &body[rpos..];
            if !(before.contains("sync_all(") || before.contains("sync_data(")) {
                out.push(Finding::new(
                    path,
                    line,
                    WAL_DURABILITY,
                    "rename",
                    "rename without a preceding sync_all on the source file".to_string(),
                ));
            }
            if !(after.contains("sync_dir(") || after.contains("sync_all(")) {
                out.push(Finding::new(
                    path,
                    line,
                    WAL_DURABILITY,
                    "rename",
                    "rename without a following directory fsync".to_string(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::scrub;

    fn run<F: Fn(&str, &str, &Scrub, &mut Vec<Finding>)>(src: &str, f: F) -> Vec<Finding> {
        let sc = scrub(src);
        let mut out = Vec::new();
        f("crates/x/src/lib.rs", src, &sc, &mut out);
        out
    }

    #[test]
    fn alloc_denied_only_in_region() {
        let src = "fn a() { let v: Vec<u8> = Vec::new(); }\n// lbr-lint: no_alloc\nfn b(xs: &[u8]) -> Vec<u8> { xs.to_vec() }\n// lbr-lint: end\nfn c() { let v = vec![1]; }\n";
        let out = run(src, lint_no_alloc);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n";
        let sc = scrub(src);
        let mut out = Vec::new();
        lint_panic_path("crates/server/src/lib.rs", src, &sc, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unsafe_confined_to_mmap_module() {
        let src = "pub fn g(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}\n";
        let sc = scrub(src);
        // In mmap.rs: allowed.
        let mut out = Vec::new();
        lint_unsafe_confinement(
            "crates/bitmat/src/mmap.rs",
            &sc,
            &BITMAT_CONFINEMENT,
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
        // Anywhere else in the crate: flagged even with a SAFETY comment.
        let mut out = Vec::new();
        lint_unsafe_confinement(
            "crates/bitmat/src/disk.rs",
            &sc,
            &BITMAT_CONFINEMENT,
            &mut out,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].lint, UNSAFE_CONFINEMENT);
        assert_eq!(out[0].line, 3);
        // Other crates: out of scope.
        let mut out = Vec::new();
        lint_unsafe_confinement(
            "crates/store/src/wal.rs",
            &sc,
            &BITMAT_CONFINEMENT,
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn lock_out_of_order_flagged() {
        let src = "impl Store { fn bad(&self) { let r = self.retained.lock(); let w = self.writer.lock(); } }\n";
        let sc = scrub(src);
        let mut out = Vec::new();
        lint_lock_order(STORE_LOCK_POLICY.path, &sc, &STORE_LOCK_POLICY, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("writer"));
    }

    #[test]
    fn lock_released_by_scope() {
        let src = "impl Store { fn ok(&self) { { let w = self.writer.lock(); } let w2 = self.writer.lock(); } }\n";
        let sc = scrub(src);
        let mut out = Vec::new();
        lint_lock_order(STORE_LOCK_POLICY.path, &sc, &STORE_LOCK_POLICY, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn rename_needs_syncs() {
        let src = "fn swap(p: &Path) { fs::rename(a, b); }\n";
        let sc = scrub(src);
        let mut out = Vec::new();
        lint_wal_durability("crates/store/src/wal.rs", &sc, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
    }
}
