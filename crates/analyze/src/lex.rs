//! A hand-rolled Rust lexer — just enough of the language to scrub a
//! source file into a form the lints can pattern-match safely.
//!
//! The scrubber walks the byte stream once, tracking string/char/comment
//! state, and produces:
//!
//! * **`scrubbed`** — a same-length copy of the input in which every byte
//!   of a comment, string literal, byte string, raw string or char
//!   literal (delimiters included) is replaced by a space. Newlines are
//!   kept, so byte offsets and line numbers in `scrubbed` map 1:1 onto
//!   the original. Lints match *code* against `scrubbed` and slice the
//!   original text for display snippets — an allocating call spelled
//!   inside a string literal or a doc comment can never fire a lint.
//! * **`comment_lines`** — per line, the concatenated comment text that
//!   (partially) occupies it. This is where `// SAFETY:` justifications
//!   and `// lbr-lint:` markers are found: markers are comments, so they
//!   live here and only here.
//! * **`test_lines`** — per line, whether the line sits inside a
//!   `#[cfg(test)]` item (module, fn, impl). The scanner finds the
//!   attribute in scrubbed code (so a `#[cfg(test)]` inside a string
//!   does not count), then brace-matches the attached item, nesting
//!   included.

/// The scrubbed view of one source file. Lines are 1-indexed; index 0 of
/// the per-line vectors is unused padding so `lines[line_no]` just works.
#[derive(Debug)]
pub struct Scrub {
    /// Code only — comments and literal contents blanked, length preserved.
    pub scrubbed: String,
    /// Per line: comment text on that line (empty string when none).
    pub comment_lines: Vec<String>,
    /// Per line: true when inside a `#[cfg(test)]` item.
    pub test_lines: Vec<bool>,
    /// Byte offset of each line start in `scrubbed` (and the original).
    pub line_starts: Vec<usize>,
}

impl Scrub {
    /// Number of lines in the file.
    pub fn n_lines(&self) -> usize {
        self.line_starts.len().saturating_sub(1)
    }

    /// 1-indexed line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i.max(1),
            Err(i) => i - 1,
        }
    }

    /// The scrubbed text of one 1-indexed line (without the newline).
    pub fn scrubbed_line(&self, line: usize) -> &str {
        let start = self.line_starts[line];
        let end = self
            .line_starts
            .get(line + 1)
            .map_or(self.scrubbed.len(), |&e| e);
        self.scrubbed[start..end].trim_end_matches('\n')
    }
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Scrubs `text` (see module docs). Works byte-wise; multi-byte UTF-8
/// sequences only ever appear inside literals/comments (identifiers in
/// this workspace are ASCII), and are blanked byte-for-byte, so the
/// output remains valid UTF-8 of the same length.
pub fn scrub(text: &str) -> Scrub {
    let bytes = text.as_bytes();
    let mut out = bytes.to_vec();
    let mut comment_spans: Vec<(usize, usize)> = Vec::new();
    let mut state = State::Code;
    let mut i = 0usize;
    let mut span_start = 0usize;
    let blank = |out: &mut [u8], from: usize, to: usize| {
        for b in &mut out[from..to] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };
    while i < bytes.len() {
        let b = bytes[i];
        match state {
            State::Code => match b {
                b'/' if bytes.get(i + 1) == Some(&b'/') => {
                    state = State::LineComment;
                    span_start = i;
                    i += 2;
                }
                b'/' if bytes.get(i + 1) == Some(&b'*') => {
                    state = State::BlockComment(1);
                    span_start = i;
                    i += 2;
                }
                b'"' => {
                    state = State::Str;
                    span_start = i;
                    i += 1;
                }
                b'r' | b'b' if !is_ident(bytes.get(i.wrapping_sub(1)).copied()) => {
                    // r"…", r#"…"#, b"…", br#"…"# — raw/byte strings.
                    let mut j = i + 1;
                    if b == b'b' && bytes.get(j) == Some(&b'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&b'"') && (b == b'r' || j > i + 1) {
                        state = if hashes == 0 && b == b'b' && bytes[i + 1] == b'"' {
                            State::Str // plain byte string b"…"
                        } else {
                            State::RawStr(hashes)
                        };
                        span_start = i;
                        i = j + 1;
                    } else {
                        i += 1;
                    }
                }
                b'\'' => {
                    // Char literal vs lifetime: a literal closes with a
                    // quote after one (possibly escaped) character.
                    let close = match bytes.get(i + 1) {
                        Some(b'\\') => {
                            // Escape: find the next quote within a short
                            // window (\u{…} is the longest form).
                            bytes[i + 2..(i + 12).min(bytes.len())]
                                .iter()
                                .position(|&c| c == b'\'')
                                .map(|p| i + 2 + p)
                        }
                        Some(_) => (bytes.get(i + 2) == Some(&b'\'')).then_some(i + 2),
                        None => None,
                    };
                    match close {
                        Some(end) => {
                            blank(&mut out, i, end + 1);
                            i = end + 1;
                        }
                        None => i += 1, // lifetime: leave as code
                    }
                    let _ = State::Char; // state machine handles chars inline
                }
                _ => i += 1,
            },
            State::LineComment => {
                if b == b'\n' {
                    comment_spans.push((span_start, i));
                    blank(&mut out, span_start, i);
                    state = State::Code;
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    if depth == 1 {
                        comment_spans.push((span_start, i + 2));
                        blank(&mut out, span_start, i + 2);
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                    i += 2;
                } else {
                    i += 1;
                }
            }
            State::Str => {
                if b == b'\\' {
                    i += 2;
                } else if b == b'"' {
                    blank(&mut out, span_start, i + 1);
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if b == b'"' {
                    let end = i + 1 + hashes as usize;
                    if bytes[i + 1..end.min(bytes.len())]
                        .iter()
                        .all(|&c| c == b'#')
                        && end <= bytes.len()
                    {
                        blank(&mut out, span_start, end);
                        state = State::Code;
                        i = end;
                        continue;
                    }
                }
                i += 1;
            }
            State::Char => unreachable!("char literals are consumed inline"),
        }
    }
    // Unterminated trailing comment/string: blank to EOF.
    match state {
        State::LineComment | State::BlockComment(_) => {
            comment_spans.push((span_start, bytes.len()));
            blank(&mut out, span_start, bytes.len());
        }
        State::Str | State::RawStr(_) => blank(&mut out, span_start, bytes.len()),
        _ => {}
    }

    let scrubbed = String::from_utf8(out).unwrap_or_else(|e| {
        // Multi-byte chars partially blanked can in principle tear a
        // sequence; recover losslessly for our purposes.
        String::from_utf8_lossy(e.as_bytes()).into_owned()
    });

    let mut line_starts = vec![0usize, 0];
    for (pos, b) in text.bytes().enumerate() {
        if b == b'\n' {
            line_starts.push(pos + 1);
        }
    }
    let n_lines = line_starts.len() - 1;

    let mut comment_lines = vec![String::new(); n_lines + 1];
    {
        let line_of = |offset: usize| match line_starts.binary_search(&offset) {
            Ok(i) => i.max(1),
            Err(i) => i - 1,
        };
        for &(s, e) in &comment_spans {
            let text_span = &text[s..e.min(text.len())];
            for (line, part) in (line_of(s)..).zip(text_span.split('\n')) {
                if line <= n_lines {
                    comment_lines[line].push_str(part.trim());
                    comment_lines[line].push(' ');
                }
            }
        }
    }

    let mut sc = Scrub {
        scrubbed,
        comment_lines,
        test_lines: vec![false; n_lines + 1],
        line_starts,
    };
    mark_test_ranges(&mut sc);
    sc
}

fn is_ident(b: Option<u8>) -> bool {
    b.is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
}

/// Marks the line ranges of items carrying `#[cfg(test)]`. The attribute
/// is matched whitespace-tolerantly in scrubbed code; the attached item
/// extends to the matching close brace of its first block (or to the `;`
/// of a brace-less item).
fn mark_test_ranges(sc: &mut Scrub) {
    let bytes = sc.scrubbed.as_bytes();
    let mut i = 0usize;
    while let Some(found) = find_cfg_test(bytes, i) {
        let (attr_start, attr_end) = found;
        // Scan for the item's opening brace (skipping further attributes'
        // bracket groups) or a terminating semicolon.
        let mut j = attr_end;
        let mut open = None;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    open = Some(j);
                    break;
                }
                b';' => break,
                b'[' => {
                    // Another attribute: skip its bracket group.
                    let mut depth = 1;
                    j += 1;
                    while j < bytes.len() && depth > 0 {
                        match bytes[j] {
                            b'[' => depth += 1,
                            b']' => depth -= 1,
                            _ => {}
                        }
                        j += 1;
                    }
                    continue;
                }
                _ => {}
            }
            j += 1;
        }
        let item_end = match open {
            Some(brace) => matching_brace(bytes, brace).unwrap_or(bytes.len()),
            None => j,
        };
        let (from, to) = (
            sc.line_of(attr_start),
            sc.line_of(item_end.min(bytes.len() - 1)),
        );
        for line in from..=to.min(sc.n_lines()) {
            sc.test_lines[line] = true;
        }
        i = attr_end;
    }
}

/// Finds `#[cfg(test)]` (whitespace-tolerant) in scrubbed code at or
/// after `from`; returns the byte span of the attribute.
fn find_cfg_test(bytes: &[u8], from: usize) -> Option<(usize, usize)> {
    let mut i = from;
    while i < bytes.len() {
        if bytes[i] == b'#' {
            let start = i;
            let mut j = i + 1;
            let mut ok = true;
            for expected in ["[", "cfg", "(", "test", ")", "]"] {
                while j < bytes.len() && (bytes[j] as char).is_whitespace() {
                    j += 1;
                }
                if bytes[j..].starts_with(expected.as_bytes()) {
                    j += expected.len();
                } else {
                    ok = false;
                    break;
                }
            }
            if ok {
                return Some((start, j));
            }
        }
        i += 1;
    }
    None
}

/// Byte offset of the `}` matching the `{` at `open`.
pub fn matching_brace(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (off, &b) in bytes[open..].iter().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + off);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let a = \"x.unwrap()\"; // c.unwrap()\nlet b = 1; /* .clone() */ let c = 2;\n";
        let sc = scrub(src);
        assert!(!sc.scrubbed.contains("unwrap"));
        assert!(!sc.scrubbed.contains("clone"));
        assert!(sc.scrubbed.contains("let a ="));
        assert!(sc.scrubbed.contains("let c = 2;"));
        assert_eq!(sc.scrubbed.len(), src.len());
        assert!(sc.comment_lines[1].contains("c.unwrap()"));
        assert!(sc.comment_lines[2].contains(".clone()"));
    }

    #[test]
    fn raw_strings_and_chars() {
        let src = "let a = r#\"x \" .collect() \"#; let c = '\"'; let l: &'static str = x;\n";
        let sc = scrub(src);
        assert!(!sc.scrubbed.contains("collect"));
        assert!(sc.scrubbed.contains("&'static str"), "{}", sc.scrubbed);
    }

    #[test]
    fn doc_comments_are_comments() {
        let src = "/// has unsafe words\n//! and .unwrap() too\nfn f() {}\n";
        let sc = scrub(src);
        assert!(!sc.scrubbed.contains("unsafe"));
        assert!(sc.scrubbed.contains("fn f()"));
    }

    #[test]
    fn cfg_test_ranges_nest() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn a() {}\n  #[cfg(test)]\n  mod inner { fn b() {} }\n}\nfn live2() {}\n";
        let sc = scrub(src);
        assert!(!sc.test_lines[1]);
        for line in 2..=7 {
            assert!(sc.test_lines[line], "line {line}");
        }
        assert!(!sc.test_lines[8]);
    }

    #[test]
    fn cfg_test_in_string_is_ignored() {
        let src = "let s = \"#[cfg(test)]\";\nfn live() { s.len(); }\n";
        let sc = scrub(src);
        assert!(!sc.test_lines[2]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ fn f() {}\n";
        let sc = scrub(src);
        assert!(sc.scrubbed.contains("fn f()"));
        assert!(!sc.scrubbed.contains("inner"));
    }
}
