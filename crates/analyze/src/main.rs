//! CLI for the workspace invariant checker.
//!
//! ```text
//! lbr-analyze [--root DIR] [--baseline FILE] [--deny] [--write-baseline] [--report-unsafe]
//! ```
//!
//! Default root is the current directory (CI runs from the repo root);
//! default baseline is `<root>/analyze-baseline.txt`. `--deny` exits
//! nonzero on any finding not covered by the baseline — this is the CI
//! gate. `--write-baseline` prints the current findings in baseline
//! format (rationales left as TODO) to bootstrap or refresh the file.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use lbr_analyze::baseline::Baseline;
use lbr_analyze::{analyze_workspace_files, collect_workspace, unsafe_inventory};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut deny = false;
    let mut write_baseline = false;
    let mut report_unsafe = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline_path = Some(PathBuf::from(v)),
                None => return usage("--baseline needs a value"),
            },
            "--deny" => deny = true,
            "--write-baseline" => write_baseline = true,
            "--report-unsafe" => report_unsafe = true,
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("analyze-baseline.txt"));

    let files = match collect_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "lbr-analyze: cannot read workspace under {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    if files.is_empty() {
        eprintln!(
            "lbr-analyze: no sources found under {} (wrong --root?)",
            root.display()
        );
        return ExitCode::from(2);
    }

    let findings = analyze_workspace_files(&files);

    if write_baseline {
        print!("{}", Baseline::render(&findings));
        return ExitCode::SUCCESS;
    }

    if report_unsafe {
        let rows = unsafe_inventory(&files);
        println!("unsafe inventory ({} sites):", rows.len());
        for r in &rows {
            println!(
                "  {}:{} {}",
                r.path,
                r.line,
                if r.justified {
                    "SAFETY ok"
                } else {
                    "MISSING SAFETY"
                }
            );
        }
        println!();
    }

    let mut baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("lbr-analyze: {e}");
                return ExitCode::from(2);
            }
        },
        Err(_) => Baseline::default(),
    };

    let mut new_findings = Vec::new();
    let mut baselined = 0usize;
    for f in &findings {
        if baseline.matches(f) {
            baselined += 1;
        } else {
            new_findings.push(f);
        }
    }

    for f in &new_findings {
        println!("{f}");
    }
    let stale = baseline.stale();
    for e in &stale {
        eprintln!(
            "note: stale baseline entry (no longer matches anything): {} [{}] {}",
            e.path, e.lint, e.snippet
        );
    }
    eprintln!(
        "lbr-analyze: {} file(s), {} finding(s): {} new, {} baselined, {} stale baseline entr{}",
        files.len(),
        findings.len(),
        new_findings.len(),
        baselined,
        stale.len(),
        if stale.len() == 1 { "y" } else { "ies" }
    );

    if deny && !new_findings.is_empty() {
        eprintln!(
            "lbr-analyze: failing (--deny) on {} new finding(s)",
            new_findings.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("lbr-analyze: {err}");
    }
    eprintln!(
        "usage: lbr-analyze [--root DIR] [--baseline FILE] [--deny] [--write-baseline] [--report-unsafe]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
