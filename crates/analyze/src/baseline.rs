//! The grandfathering baseline.
//!
//! `analyze-baseline.txt` holds one line per accepted finding class:
//!
//! ```text
//! <path> [<lint-id>] <snippet> -- <rationale>
//! ```
//!
//! Lines starting with `#` and blank lines are comments. A finding
//! matches an entry when its `(path, lint, snippet)` triple matches —
//! line numbers are deliberately not part of the key, so entries survive
//! unrelated edits, and one entry covers every identical occurrence in
//! a file (e.g. four `.expect("stats poisoned")` sites are one entry).

use crate::Finding;

#[derive(Debug, Clone)]
pub struct BaselineEntry {
    pub path: String,
    pub lint: String,
    pub snippet: String,
    pub rationale: String,
    /// Set during matching; unused entries are reported as stale.
    pub used: bool,
}

#[derive(Debug, Default)]
pub struct Baseline {
    pub entries: Vec<BaselineEntry>,
}

/// Collapses all whitespace runs to single spaces so formatting drift in
/// a multi-line snippet doesn't break the match.
fn normalize(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

impl Baseline {
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = Vec::new();
        for (no, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |what: &str| format!("baseline line {}: {what}: {raw}", no + 1);
            let (path, rest) = line
                .split_once(" [")
                .ok_or_else(|| err("missing ` [lint]`"))?;
            let (lint, rest) = rest.split_once("] ").ok_or_else(|| err("missing `] `"))?;
            let (snippet, rationale) = rest
                .rsplit_once(" -- ")
                .ok_or_else(|| err("missing ` -- rationale`"))?;
            if rationale.trim().is_empty() {
                return Err(err("empty rationale"));
            }
            entries.push(BaselineEntry {
                path: path.trim().to_string(),
                lint: lint.trim().to_string(),
                snippet: normalize(snippet),
                rationale: rationale.trim().to_string(),
                used: false,
            });
        }
        Ok(Baseline { entries })
    }

    /// Marks matching entries used; returns true when `f` is baselined.
    pub fn matches(&mut self, f: &Finding) -> bool {
        let key = normalize(&f.snippet);
        let mut hit = false;
        for e in &mut self.entries {
            if e.path == f.path && e.lint == f.lint && e.snippet == key {
                e.used = true;
                hit = true;
            }
        }
        hit
    }

    /// Entries that never matched a live finding (candidates for removal).
    pub fn stale(&self) -> Vec<&BaselineEntry> {
        self.entries.iter().filter(|e| !e.used).collect()
    }

    /// Renders findings as baseline lines (for `--write-baseline`).
    pub fn render(findings: &[Finding]) -> String {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = String::from(
            "# lbr-analyze baseline: accepted findings, one class per line.\n\
             # Format: <path> [<lint>] <snippet> -- <rationale>\n",
        );
        for f in findings {
            let key = (f.path.clone(), f.lint.to_string(), normalize(&f.snippet));
            if seen.insert(key.clone()) {
                out.push_str(&format!(
                    "{} [{}] {} -- TODO: justify\n",
                    key.0, key.1, key.2
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_match() {
        let text = "# comment\n\ncrates/server/src/lib.rs [panic-path] .expect(\"stats poisoned\") -- poisoning is fatal by design\n";
        let mut b = Baseline::parse(text).unwrap();
        assert_eq!(b.entries.len(), 1);
        let f = Finding::new(
            "crates/server/src/lib.rs",
            42,
            "panic-path",
            ".expect(\"stats poisoned\")",
            "panic in serving/commit path".to_string(),
        );
        assert!(b.matches(&f));
        assert!(b.stale().is_empty());
        let other = Finding::new(
            "crates/server/src/lib.rs",
            7,
            "panic-path",
            ".unwrap()",
            "m".to_string(),
        );
        assert!(!b.matches(&other));
    }

    #[test]
    fn malformed_lines_error() {
        assert!(Baseline::parse("no brackets here").is_err());
        assert!(Baseline::parse("p [l] snippet without rationale").is_err());
    }
}
