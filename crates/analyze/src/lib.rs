//! `lbr-analyze` — a workspace invariant checker for the LBR repo.
//!
//! Five lint families enforce the invariants the engine work established
//! by hand (see README, "Static analysis & invariants"):
//!
//! 1. **no-alloc** — allocating idioms denied inside `// lbr-lint:
//!    no_alloc` regions of the kernels.
//! 2. **unsafe-comment / forbid-unsafe / unsafe-confinement** — every
//!    `unsafe` needs an adjacent `// SAFETY:`; crates with zero unsafe
//!    must declare `#![forbid(unsafe_code)]`; crates that allow unsafe
//!    (only `lbr-bitmat`) confine it to a named module (`mmap.rs`).
//! 3. **panic-path** — `unwrap`/`expect`/`panic!`/`todo!` denied in
//!    non-test serving and commit/recovery code.
//! 4. **lock-order** — nested lock acquisitions in `store.rs` checked
//!    against the declared order `writer -> current -> retained`.
//! 5. **wal-durability** — every `rename` in `wal.rs`/`store.rs` must be
//!    fsync-bracketed.
//!
//! Zero external dependencies: the lexer in [`lex`] is hand-rolled.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod lex;
pub mod lints;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One lint hit. `snippet` is the baseline key (with `path` and `lint`);
/// `line` is for display only.
#[derive(Debug, Clone)]
pub struct Finding {
    pub path: String,
    pub line: usize,
    pub lint: &'static str,
    pub snippet: String,
    pub message: String,
}

impl Finding {
    pub fn new(
        path: &str,
        line: usize,
        lint: &'static str,
        snippet: impl Into<String>,
        message: String,
    ) -> Self {
        Finding {
            path: path.to_string(),
            line,
            lint,
            snippet: snippet.into(),
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.lint, self.message
        )
    }
}

/// Per-file unsafe inventory row for `--report-unsafe`.
#[derive(Debug)]
pub struct UnsafeSite {
    pub path: String,
    pub line: usize,
    pub justified: bool,
}

/// Runs all per-file lints on one source file addressed by its
/// workspace-relative `path` (the path determines which scoped lints
/// apply — tests can pass virtual paths like `crates/server/src/x.rs`).
pub fn analyze_file(path: &str, text: &str) -> Vec<Finding> {
    let sc = lex::scrub(text);
    let mut out = Vec::new();
    lints::lint_no_alloc(path, text, &sc, &mut out);
    lints::lint_unsafe(path, &sc, &mut out);
    lints::lint_unsafe_confinement(path, &sc, &lints::BITMAT_CONFINEMENT, &mut out);
    lints::lint_panic_path(path, text, &sc, &mut out);
    lints::lint_lock_order(path, &sc, &lints::STORE_LOCK_POLICY, &mut out);
    lints::lint_wal_durability(path, &sc, &mut out);
    out
}

/// Analyzes a set of `(path, text)` files as a workspace: all per-file
/// lints, plus the crate-level rule that an unsafe-free crate must
/// declare `#![forbid(unsafe_code)]` at its root.
pub fn analyze_workspace_files(files: &[(String, String)]) -> Vec<Finding> {
    let mut out = Vec::new();
    // Group files by crate root ("src" or "crates/<name>/src"). A crate
    // may have several compilation roots (lib.rs and main.rs); each must
    // declare the forbid attribute when the crate is unsafe-free.
    let mut crates: std::collections::BTreeMap<String, (bool, Vec<usize>)> =
        std::collections::BTreeMap::new();
    for (i, (path, text)) in files.iter().enumerate() {
        out.extend(analyze_file(path, text));
        let Some(root) = crate_root(path) else {
            continue;
        };
        let sc = lex::scrub(text);
        let entry = crates.entry(root).or_insert((true, Vec::new()));
        if !lints::file_is_unsafe_free(&sc) {
            entry.0 = false;
        }
        if is_crate_root_file(path) {
            entry.1.push(i);
        }
    }
    for (root, (unsafe_free, root_files)) in crates {
        if !unsafe_free {
            continue;
        }
        for idx in root_files {
            let (path, text) = &files[idx];
            let sc = lex::scrub(text);
            if !lints::declares_forbid_unsafe(&sc) {
                out.push(Finding::new(
                    path,
                    1,
                    lints::FORBID_UNSAFE,
                    "missing #![forbid(unsafe_code)]",
                    format!("crate `{root}` has no unsafe code but does not declare #![forbid(unsafe_code)]"),
                ));
            }
        }
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

fn crate_root(path: &str) -> Option<String> {
    if let Some(rest) = path.strip_prefix("crates/") {
        let name = rest.split('/').next()?;
        Some(format!("crates/{name}"))
    } else if path.starts_with("src/") {
        Some("lbr".to_string())
    } else {
        None
    }
}

fn is_crate_root_file(path: &str) -> bool {
    path == "src/lib.rs"
        || path.starts_with("src/bin/")
        || (path.starts_with("crates/")
            && (path.ends_with("/src/lib.rs")
                || path.ends_with("/src/main.rs")
                || path.contains("/src/bin/")))
}

/// Collects the workspace sources under `root`: `src/**/*.rs` and
/// `crates/*/src/**/*.rs`. Vendored deps, build output, and the
/// analyzer's own lint fixtures are excluded.
pub fn collect_workspace(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    let mut dirs = vec![root.join("src")];
    if let Ok(rd) = fs::read_dir(root.join("crates")) {
        for e in rd.flatten() {
            let p = e.path().join("src");
            if p.is_dir() {
                dirs.push(p);
            }
        }
    }
    let mut stack: Vec<PathBuf> = dirs.into_iter().filter(|d| d.is_dir()).collect();
    while let Some(dir) = stack.pop() {
        for e in fs::read_dir(&dir)?.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                let rel = p
                    .strip_prefix(root)
                    .unwrap_or(&p)
                    .to_string_lossy()
                    .replace('\\', "/");
                if rel.contains("tests/fixtures") || rel.starts_with("vendor/") {
                    continue;
                }
                files.push((rel, fs::read_to_string(&p)?));
            }
        }
    }
    files.sort();
    Ok(files)
}

/// The unsafe inventory across a file set, for `--report-unsafe`.
pub fn unsafe_inventory(files: &[(String, String)]) -> Vec<UnsafeSite> {
    let mut rows = Vec::new();
    for (path, text) in files {
        let sc = lex::scrub(text);
        let flagged: std::collections::BTreeSet<usize> = {
            let mut out = Vec::new();
            lints::lint_unsafe(path, &sc, &mut out);
            out.iter().map(|f| f.line).collect()
        };
        for line in lints::unsafe_sites(&sc) {
            rows.push(UnsafeSite {
                path: path.clone(),
                line,
                justified: !flagged.contains(&line),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forbid_unsafe_required_for_clean_crate() {
        let files = vec![
            (
                "crates/clean/src/lib.rs".to_string(),
                "pub fn f() {}\n".to_string(),
            ),
            (
                "crates/dirty/src/lib.rs".to_string(),
                "pub fn g(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}\n".to_string(),
            ),
        ];
        let out = analyze_workspace_files(&files);
        let forbid: Vec<_> = out
            .iter()
            .filter(|f| f.lint == lints::FORBID_UNSAFE)
            .collect();
        assert_eq!(forbid.len(), 1, "{out:?}");
        assert_eq!(forbid[0].path, "crates/clean/src/lib.rs");
    }

    #[test]
    fn declared_forbid_passes() {
        let files = vec![(
            "crates/clean/src/lib.rs".to_string(),
            "#![forbid(unsafe_code)]\npub fn f() {}\n".to_string(),
        )];
        let out = analyze_workspace_files(&files);
        assert!(out.is_empty(), "{out:?}");
    }
}
