//! The self-check: the live workspace must be clean against the
//! committed baseline. This is the same judgment CI's `Analyze` step
//! makes with `cargo run -p lbr-analyze -- --deny`, run as a tier-1 test
//! so a lint regression fails `cargo test` too.

use lbr_analyze::baseline::Baseline;
use lbr_analyze::{analyze_workspace_files, collect_workspace};
use std::path::Path;

#[test]
fn workspace_is_clean_against_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = collect_workspace(&root).expect("walk workspace sources");
    assert!(
        files.len() > 50,
        "walker found only {} files — wrong root?",
        files.len()
    );
    let findings = analyze_workspace_files(&files);

    let text = std::fs::read_to_string(root.join("analyze-baseline.txt"))
        .expect("committed analyze-baseline.txt");
    let mut baseline = Baseline::parse(&text).expect("baseline parses");
    assert!(
        baseline.entries.len() <= 10,
        "baseline has {} entries; the budget is 10 — fix findings instead",
        baseline.entries.len()
    );

    let fresh: Vec<String> = findings
        .iter()
        .filter(|f| !baseline.matches(f))
        .map(|f| f.to_string())
        .collect();
    assert!(
        fresh.is_empty(),
        "non-baselined findings:\n{}",
        fresh.join("\n")
    );
    let stale: Vec<String> = baseline
        .stale()
        .iter()
        .map(|e| format!("{} [{}] {}", e.path, e.lint, e.snippet))
        .collect();
    assert!(
        stale.is_empty(),
        "stale baseline entries (delete them):\n{}",
        stale.join("\n")
    );
}
