//! The fixture suite: a passing and a failing case per lint family, plus
//! the lexing traps. Fixtures live under `tests/fixtures/` — never
//! compiled by cargo, excluded from the workspace walker — and are fed to
//! the analyzer under *virtual* paths so the path-scoped lints apply.

use lbr_analyze::{analyze_file, analyze_workspace_files, lints};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn lints_of(findings: &[lbr_analyze::Finding], lint: &str) -> usize {
    findings.iter().filter(|f| f.lint == lint).count()
}

#[test]
fn no_alloc_pass() {
    let out = analyze_file("crates/x/src/kernel.rs", &fixture("no_alloc_pass.rs"));
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn no_alloc_fail() {
    let out = analyze_file("crates/x/src/kernel.rs", &fixture("no_alloc_fail.rs"));
    // Vec::new, .collect, .to_vec, format!, Box::new — five distinct hits.
    assert_eq!(lints_of(&out, lints::NO_ALLOC), 5, "{out:?}");
}

#[test]
fn tricky_lexing_is_clean() {
    // Alloc spelled in strings, unsafe in a doc comment, nested
    // #[cfg(test)] — a correct lexer reports nothing, even under the
    // panic-path scope of a server path.
    let out = analyze_file("crates/server/src/tricky.rs", &fixture("tricky_lexing.rs"));
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn unsafe_pass() {
    let out = analyze_file("crates/x/src/lib.rs", &fixture("unsafe_pass.rs"));
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn unsafe_fail() {
    let out = analyze_file("crates/x/src/lib.rs", &fixture("unsafe_fail.rs"));
    assert_eq!(lints_of(&out, lints::UNSAFE_COMMENT), 1, "{out:?}");
}

#[test]
fn panic_pass() {
    let out = analyze_file("crates/server/src/handler.rs", &fixture("panic_pass.rs"));
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn panic_fail() {
    let out = analyze_file("crates/server/src/handler.rs", &fixture("panic_fail.rs"));
    // .unwrap, .expect, panic!, todo! — four distinct hits.
    assert_eq!(lints_of(&out, lints::PANIC_PATH), 4, "{out:?}");
}

#[test]
fn panic_scope_is_path_scoped() {
    // The same panicking file under a non-serving path is not checked.
    let out = analyze_file("crates/core/src/handler.rs", &fixture("panic_fail.rs"));
    assert_eq!(lints_of(&out, lints::PANIC_PATH), 0, "{out:?}");
}

#[test]
fn lock_pass() {
    let out = analyze_file("crates/store/src/store.rs", &fixture("lock_pass.rs"));
    assert_eq!(lints_of(&out, lints::LOCK_ORDER), 0, "{out:?}");
}

#[test]
fn lock_fail() {
    let out = analyze_file("crates/store/src/store.rs", &fixture("lock_fail.rs"));
    assert_eq!(lints_of(&out, lints::LOCK_ORDER), 2, "{out:?}");
    assert!(
        out.iter().any(|f| f.message.contains("declared order")),
        "{out:?}"
    );
    assert!(
        out.iter().any(|f| f.message.contains("already held")),
        "{out:?}"
    );
}

#[test]
fn wal_pass() {
    let out = analyze_file("crates/store/src/wal.rs", &fixture("wal_pass.rs"));
    assert_eq!(lints_of(&out, lints::WAL_DURABILITY), 0, "{out:?}");
}

#[test]
fn wal_fail() {
    let out = analyze_file("crates/store/src/wal.rs", &fixture("wal_fail.rs"));
    assert_eq!(lints_of(&out, lints::WAL_DURABILITY), 2, "{out:?}");
}

#[test]
fn forbid_unsafe_fail() {
    let files = vec![(
        "crates/clean/src/lib.rs".to_string(),
        fixture("forbid_fail.rs"),
    )];
    let out = analyze_workspace_files(&files);
    assert_eq!(lints_of(&out, lints::FORBID_UNSAFE), 1, "{out:?}");
}
