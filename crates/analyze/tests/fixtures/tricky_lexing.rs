//! Fixture: the lexing traps — an allocating call spelled inside a string
//! literal, `unsafe` appearing only in a doc comment, and `#[cfg(test)]`
//! nesting. A correct analyzer reports NOTHING for this file.

// lbr-lint: no_alloc
/// This doc comment mentions unsafe { } and .collect() — not code.
pub fn kernel(out: &mut Vec<u32>) {
    // A string spelling an allocation is data, not an allocation:
    let msg = "please call Vec::new() and .collect() and vec![1]";
    let raw = r#"format!("{}", x) and Box::new(y) stay data too"#;
    out.push(msg.len() as u32);
    out.push(raw.len() as u32);
}
// lbr-lint: end

#[cfg(test)]
mod tests {
    // Inside cfg(test): allocation and panics are fine everywhere.
    #[test]
    fn alloc_and_unwrap_are_fine_here() {
        let v: Vec<u32> = (0..4).collect();
        assert_eq!(v.first().copied().unwrap(), 0);
    }

    #[cfg(test)]
    mod nested {
        #[test]
        fn still_excluded() {
            let s = String::from("nested cfg(test) module");
            assert!(!s.is_empty());
        }
    }
}
