//! Fixture: allocating idioms inside a no_alloc region — every line in
//! the region below must fire the lint.

// lbr-lint: no_alloc
pub fn kernel(xs: &[u32]) -> Vec<u32> {
    let mut v = Vec::new();
    v.extend(xs.iter().filter(|x| **x % 2 == 0).collect::<Vec<_>>());
    let _copy = xs.to_vec();
    let _s = format!("{}", xs.len());
    let _b = Box::new(xs.len());
    v
}
// lbr-lint: end
