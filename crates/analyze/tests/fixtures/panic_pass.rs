//! Fixture (virtual path: crates/server/src/…): serving code that stays
//! panic-free — errors become values, tests may still unwrap.

pub fn parse_limit(q: &str) -> Result<usize, String> {
    q.strip_prefix("limit=")
        .ok_or_else(|| "missing limit".to_string())?
        .parse::<usize>()
        .map_err(|e| e.to_string())
}

pub fn clamp(v: Option<usize>) -> usize {
    v.unwrap_or(100)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::parse_limit("limit=7").unwrap(), 7);
    }
}
