//! Fixture: unsafe with no SAFETY comment anywhere near it.

pub fn read(p: *const u8) -> u8 {
    let x = 1;
    unsafe { *p.add(x) }
}
