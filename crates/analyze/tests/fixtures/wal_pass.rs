//! Fixture (virtual path: crates/store/src/wal.rs): the atomic publish
//! protocol — write temp, fsync, rename, fsync the directory.

pub fn publish(dir: &Path, frame: &[u8]) -> std::io::Result<()> {
    let tmp = dir.join("ckpt.tmp");
    let mut file = File::create(&tmp)?;
    file.write_all(frame)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, dir.join("ckpt"))?;
    sync_dir(dir)?;
    Ok(())
}
