//! Fixture: a clean no_alloc region — pushes into caller-owned buffers,
//! allocating setup outside the region.

pub fn setup() -> Vec<u32> {
    let mut v = Vec::new();
    v.push(1);
    v
}

// lbr-lint: no_alloc — steady state reuses `out`
pub fn kernel(xs: &[u32], out: &mut Vec<u32>) {
    out.clear();
    for &x in xs {
        if x % 2 == 0 {
            out.push(x);
        }
    }
}
// lbr-lint: end

pub fn teardown(v: Vec<u32>) -> String {
    format!("{} items", v.len())
}
