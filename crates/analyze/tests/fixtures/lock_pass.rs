//! Fixture (virtual path: crates/store/src/store.rs): lock acquisitions
//! in the declared order writer -> current -> retained, with inner-scope
//! release.

impl Store {
    fn commit(&self) {
        let writer = self.writer.lock().expect("store lock poisoned");
        let snap = self.current.read().expect("store lock poisoned");
        drop(snap);
        drop(writer);
    }

    fn reacquire_after_scope(&self) {
        {
            let w = self.writer.lock().expect("store lock poisoned");
            drop(w);
        }
        let w2 = self.writer.lock().expect("store lock poisoned");
        drop(w2);
    }

    fn pin(&self) {
        let snap = self.snapshot();
        let mut retained = self.retained.lock().expect("store lock poisoned");
        retained.push(snap);
    }
}
