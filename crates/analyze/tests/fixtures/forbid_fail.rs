//! Fixture (virtual path: crates/clean/src/lib.rs): an unsafe-free crate
//! root that forgets `#![forbid(unsafe_code)]` — one workspace finding.

pub fn double(x: u32) -> u32 {
    x * 2
}
