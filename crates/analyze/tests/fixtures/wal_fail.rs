//! Fixture (virtual path: crates/store/src/wal.rs): rename with neither
//! a source fsync before nor a directory fsync after — two findings.

pub fn publish(dir: &Path, frame: &[u8]) -> std::io::Result<()> {
    let tmp = dir.join("ckpt.tmp");
    let mut file = File::create(&tmp)?;
    file.write_all(frame)?;
    drop(file);
    std::fs::rename(&tmp, dir.join("ckpt"))?;
    Ok(())
}
