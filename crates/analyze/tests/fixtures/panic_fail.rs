//! Fixture (virtual path: crates/server/src/…): four distinct panic
//! idioms in non-test serving code — all must fire.

pub fn handle(q: &str) -> usize {
    let n: usize = q.parse().unwrap();
    let m: usize = q.parse().expect("q is a number");
    if n != m {
        panic!("impossible");
    }
    todo!()
}
