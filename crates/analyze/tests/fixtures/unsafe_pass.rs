//! Fixture: every unsafe site carries an adjacent SAFETY comment.

pub fn read(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` points at a live, aligned byte.
    unsafe { *p }
}

pub struct Wrapper(pub *const u8);

// SAFETY: the wrapped pointer is only dereferenced behind `read`, which
// re-checks the contract; sending the raw pointer itself is sound.
unsafe impl Send for Wrapper {}
