//! Fixture (virtual path: crates/store/src/store.rs): one out-of-order
//! acquisition, one double acquisition — two findings.

impl Store {
    fn inverted(&self) {
        let retained = self.retained.lock().expect("store lock poisoned");
        let writer = self.writer.lock().expect("store lock poisoned");
        drop((retained, writer));
    }

    fn double(&self) {
        let a = self.writer.lock().expect("store lock poisoned");
        let b = self.writer.lock().expect("store lock poisoned");
        drop((a, b));
    }
}
