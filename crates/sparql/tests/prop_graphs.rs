//! Property tests for the query-graph structures: Lemma 3.2 (GoT acyclic ⇒
//! GoJ acyclic), GoSN relation invariants, and the NWD transformation's
//! monotonicity/convergence, over random triple-pattern sets and random
//! pattern trees.

use lbr_sparql::algebra::{GraphPattern, TermPattern, TriplePattern};
use lbr_sparql::goj::{Goj, Got};
use lbr_sparql::gosn::Gosn;
use lbr_sparql::well_designed::{transform_nwd_pattern, violations};
use lbr_sparql::{classify, is_well_designed, parse_query, to_sparql};
use proptest::prelude::*;

/// The parser's canonical form: adjacent BGPs under a Join merge into one
/// BGP (SPARQL group juxtaposition). Applied to both sides before
/// comparing skeletons.
fn normalize(p: &GraphPattern) -> GraphPattern {
    match p {
        GraphPattern::Bgp(_) => p.clone(),
        GraphPattern::Join(l, r) => {
            let (l, r) = (normalize(l), normalize(r));
            match (l, r) {
                (GraphPattern::Bgp(mut a), GraphPattern::Bgp(b)) => {
                    a.extend(b);
                    GraphPattern::Bgp(a)
                }
                (GraphPattern::Join(x, y), GraphPattern::Bgp(b)) => {
                    // Right-merge through left-deep joins: (X ⋈ Bgp_y) ⋈ Bgp_b.
                    match (*y, b) {
                        (GraphPattern::Bgp(mut ys), bs) => {
                            ys.extend(bs);
                            GraphPattern::Join(x, Box::new(GraphPattern::Bgp(ys)))
                        }
                        (other, bs) => GraphPattern::join(
                            GraphPattern::Join(x, Box::new(other)),
                            GraphPattern::Bgp(bs),
                        ),
                    }
                }
                (l, r) => GraphPattern::join(l, r),
            }
        }
        GraphPattern::LeftJoin(l, r) => GraphPattern::left_join(normalize(l), normalize(r)),
        GraphPattern::Union(l, r) => GraphPattern::union(normalize(l), normalize(r)),
        GraphPattern::Filter(i, e) => GraphPattern::filter(normalize(i), e.clone()),
    }
}

/// Structural skeleton for parse↔print comparison.
fn skeleton(p: &GraphPattern) -> String {
    match p {
        GraphPattern::Bgp(tps) => format!(
            "B[{}]",
            tps.iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(";")
        ),
        GraphPattern::Join(l, r) => format!("J({},{})", skeleton(l), skeleton(r)),
        GraphPattern::LeftJoin(l, r) => format!("L({},{})", skeleton(l), skeleton(r)),
        GraphPattern::Union(l, r) => format!("U({},{})", skeleton(l), skeleton(r)),
        GraphPattern::Filter(i, e) => format!("F({},{e})", skeleton(i)),
    }
}

fn arb_tp() -> impl Strategy<Value = TriplePattern> {
    let term = prop_oneof![
        3 => (0u8..8).prop_map(|i| TermPattern::Var(format!("v{i}"))),
        1 => (0u8..5).prop_map(|i| TermPattern::Const(lbr_rdf::Term::iri(format!("c{i}")))),
    ];
    let pred = (0u8..4).prop_map(|i| TermPattern::Const(lbr_rdf::Term::iri(format!("p{i}"))));
    (term.clone(), pred, term).prop_map(|(s, p, o)| TriplePattern::new(s, p, o))
}

fn arb_pattern() -> impl Strategy<Value = GraphPattern> {
    let leaf = prop::collection::vec(arb_tp(), 1..4).prop_map(GraphPattern::Bgp);
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| GraphPattern::join(l, r)),
            (inner.clone(), inner).prop_map(|(l, r)| GraphPattern::left_join(l, r)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Lemma 3.2: an acyclic GoT implies an acyclic GoJ (we check the
    /// contrapositive the paper proves: GoJ cyclic ⇒ GoT cyclic, modulo
    /// the multigraph parallel-edge reading which the GoT shares).
    #[test]
    fn lemma_3_2(tps in prop::collection::vec(arb_tp(), 1..8)) {
        let goj = Goj::from_tps(&tps);
        let got = Got::from_tps(&tps);
        // Simple-graph cycles in GoJ must show up as GoT cycles.
        if got.is_acyclic() {
            // GoT acyclic ⇒ GoJ has no simple cycle. Parallel-edge cycles
            // (two TPs sharing a jvar pair) are invisible to the GoT's
            // shared-variable edges, so exclude them.
            let n = goj.len();
            let mut simple_edges = 0;
            for a in 0..n {
                simple_edges += goj.neighbours(a).filter(|&b| b > a).count();
            }
            let components = {
                // count components of the simple graph
                let mut seen = vec![false; n];
                let mut comps = 0;
                for start in 0..n {
                    if seen[start] { continue; }
                    comps += 1;
                    let mut stack = vec![start];
                    seen[start] = true;
                    while let Some(x) = stack.pop() {
                        for y in goj.neighbours(x) {
                            if !seen[y] { seen[y] = true; stack.push(y); }
                        }
                    }
                }
                comps
            };
            prop_assert_eq!(simple_edges + components, n,
                "GoT acyclic but GoJ has a simple cycle");
        }
    }

    /// GoSN invariants: absolute masters have no masters; peers share their
    /// master sets; masterhood is transitive along uni edges.
    #[test]
    fn gosn_relations(pattern in arb_pattern()) {
        let gosn = Gosn::from_pattern(&pattern).unwrap();
        let n = gosn.n_supernodes();
        for sn in 0..n {
            if gosn.is_absolute_master(sn) {
                prop_assert!(gosn.masters_of(sn).is_empty());
            }
            for peer in gosn.peers_of(sn) {
                prop_assert_eq!(gosn.masters_of(sn), gosn.masters_of(peer),
                    "peers must share master sets");
            }
        }
        for &(a, b) in gosn.uni_edges() {
            prop_assert!(gosn.is_master_of(a, b), "uni edge implies masterhood");
            // Transitivity: masters of a are masters of b.
            for &m in gosn.masters_of(a) {
                prop_assert!(gosn.is_master_of(m, b));
            }
        }
        // TP ↔ SN mapping is consistent.
        for tp in 0..gosn.n_tps() {
            prop_assert!(gosn.tps_of_sn(gosn.sn_of_tp(tp)).contains(&tp));
        }
    }

    /// Printing a pattern as SPARQL and re-parsing it preserves the
    /// operator skeleton (the parser's only normalization is BGP merging).
    #[test]
    fn parse_print_roundtrip(pattern in arb_pattern()) {
        let q = lbr_sparql::Query::select_all(pattern);
        let printed = to_sparql(&q);
        let q2 = parse_query(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed}"));
        prop_assert_eq!(
            skeleton(&normalize(&q.pattern)),
            skeleton(&normalize(&q2.pattern)),
            "\n{}", printed
        );
    }

    /// The Appendix-B transformation converges to a well-designed pattern
    /// and never touches well-designed inputs.
    #[test]
    fn nwd_transformation_converges(pattern in arb_pattern()) {
        let t = transform_nwd_pattern(&pattern);
        prop_assert!(is_well_designed(&t), "must converge to WD");
        if is_well_designed(&pattern) {
            prop_assert_eq!(&t, &pattern, "WD patterns are untouched");
            prop_assert!(violations(&pattern).is_empty());
        }
        // The transformation only turns LeftJoins into Joins: TP multiset
        // is preserved.
        let a: Vec<_> = pattern.triple_patterns().into_iter().cloned().collect();
        let b: Vec<_> = t.triple_patterns().into_iter().cloned().collect();
        prop_assert_eq!(a, b);
        // classify() must agree on the transformed pattern's designedness.
        prop_assert!(classify(&t).unwrap().well_designed);
    }
}
