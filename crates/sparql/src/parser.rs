//! Recursive-descent parser for the SPARQL subset of the paper:
//! `SELECT [DISTINCT|REDUCED] (*|vars)` / `ASK`, a
//! `WHERE { BGPs, OPTIONAL, nested groups, UNION, FILTER }` group, and the
//! solution modifiers `ORDER BY (ASC|DESC)`, `LIMIT`, `OFFSET` — with
//! `PREFIX` declarations, qnames, `a` for `rdf:type`, string / integer
//! literals, and comparison / boolean FILTER expressions.

use crate::algebra::{
    Dedup, Expr, GraphPattern, Modifiers, OrderKey, Query, QueryForm, Selection, TermPattern,
    TriplePattern,
};
use crate::error::SparqlError;
use lbr_rdf::Term;
use std::collections::HashMap;

/// The `rdf:type` IRI that the keyword `a` expands to.
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// Parses a query text.
pub fn parse_query(input: &str) -> Result<Query, SparqlError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
        prefixes: HashMap::new(),
    };
    p.skip_ws();
    while p.eat_keyword("PREFIX") {
        p.parse_prefix_decl()?;
    }
    let form = if p.eat_keyword("ASK") {
        QueryForm::Ask
    } else if p.eat_keyword("SELECT") {
        let dedup = if p.eat_keyword("DISTINCT") {
            Dedup::Distinct
        } else if p.eat_keyword("REDUCED") {
            Dedup::Reduced
        } else {
            Dedup::None
        };
        QueryForm::Select {
            selection: p.parse_selection()?,
            dedup,
        }
    } else {
        return Err(p.err("expected SELECT or ASK"));
    };
    p.eat_keyword("WHERE"); // WHERE keyword is optional in SPARQL
    let pattern = p.parse_group()?;
    let modifiers = p.parse_modifiers()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing input after query"));
    }
    Ok(Query {
        form,
        pattern,
        modifiers,
    })
}

pub(crate) struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    prefixes: HashMap<String, String>,
}

/// One element of a group body, before SPARQL's left-fold translation.
enum Element {
    Triples(Vec<TriplePattern>),
    Optional(GraphPattern),
    Sub(GraphPattern),
    Filter(Expr),
}

impl<'a> Parser<'a> {
    /// A fresh parser over `input` (shared by the query and update entry
    /// points in this crate).
    pub(crate) fn new(input: &'a str) -> Parser<'a> {
        Parser {
            input: input.as_bytes(),
            pos: 0,
            prefixes: HashMap::new(),
        }
    }

    /// True once only trailing whitespace/comments remain.
    pub(crate) fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos == self.input.len()
    }

    pub(crate) fn err(&self, message: impl Into<String>) -> SparqlError {
        SparqlError::Parse {
            at: self.pos,
            message: message.into(),
        }
    }

    pub(crate) fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    pub(crate) fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else if b == b'#' {
                while let Some(c) = self.peek() {
                    self.pos += 1;
                    if c == b'\n' {
                        break;
                    }
                }
            } else {
                break;
            }
        }
    }

    /// Case-insensitive keyword matcher; only fires on a word boundary.
    pub(crate) fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let end = self.pos + kw.len();
        if end > self.input.len() {
            return false;
        }
        let slice = &self.input[self.pos..end];
        if !slice.eq_ignore_ascii_case(kw.as_bytes()) {
            return false;
        }
        if let Some(&next) = self.input.get(end) {
            if next.is_ascii_alphanumeric() || next == b'_' {
                return false;
            }
        }
        self.pos = end;
        true
    }

    pub(crate) fn eat_char(&mut self, c: u8) -> bool {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    pub(crate) fn expect_char(&mut self, c: u8) -> Result<(), SparqlError> {
        if self.eat_char(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", c as char)))
        }
    }

    pub(crate) fn parse_prefix_decl(&mut self) -> Result<(), SparqlError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b':' {
                break;
            }
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' {
                self.pos += 1;
            } else {
                return Err(self.err("bad prefix name"));
            }
        }
        let name = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
        self.expect_char(b':')?;
        self.skip_ws();
        self.expect_char(b'<')?;
        let iri = self.take_until(b'>')?;
        self.prefixes.insert(name, iri);
        Ok(())
    }

    fn take_until(&mut self, stop: u8) -> Result<String, SparqlError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == stop {
                let s = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err(self.err(format!("unterminated, expected '{}'", stop as char)))
    }

    fn parse_selection(&mut self) -> Result<Selection, SparqlError> {
        self.skip_ws();
        if self.eat_char(b'*') {
            return Ok(Selection::All);
        }
        let mut vars = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b'?') || self.peek() == Some(b'$') {
                vars.push(self.parse_var()?);
            } else {
                break;
            }
        }
        if vars.is_empty() {
            return Err(self.err("expected '*' or variables after SELECT"));
        }
        Ok(Selection::Vars(vars))
    }

    fn parse_var(&mut self) -> Result<String, SparqlError> {
        self.skip_ws();
        match self.peek() {
            Some(b'?') | Some(b'$') => self.pos += 1,
            _ => return Err(self.err("expected variable")),
        }
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("empty variable name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    /// `{ … }` group; applies the SPARQL left-fold translation to
    /// Join / LeftJoin / Filter.
    fn parse_group(&mut self) -> Result<GraphPattern, SparqlError> {
        self.expect_char(b'{')?;
        let mut elements: Vec<Element> = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None => return Err(self.err("unterminated group")),
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                Some(b'{') => {
                    // Sub-group, possibly a UNION chain.
                    let mut g = self.parse_group()?;
                    while self.eat_keyword("UNION") {
                        let rhs = self.parse_group()?;
                        g = GraphPattern::union(g, rhs);
                    }
                    elements.push(Element::Sub(g));
                }
                Some(b'.') => {
                    self.pos += 1; // stray separator
                }
                _ => {
                    if self.eat_keyword("OPTIONAL") {
                        let g = self.parse_group()?;
                        elements.push(Element::Optional(g));
                    } else if self.eat_keyword("FILTER") {
                        let e = self.parse_constraint()?;
                        elements.push(Element::Filter(e));
                    } else {
                        let tps = self.parse_triples_block()?;
                        elements.push(Element::Triples(tps));
                    }
                }
            }
        }
        Ok(fold_group(elements))
    }

    /// One or more `s p o .` statements (the '.' separators are consumed by
    /// the group loop or here).
    pub(crate) fn parse_triples_block(&mut self) -> Result<Vec<TriplePattern>, SparqlError> {
        let mut tps = Vec::new();
        loop {
            let s = self.parse_term_pattern()?;
            let p = self.parse_term_pattern()?;
            let o = self.parse_term_pattern()?;
            tps.push(TriplePattern::new(s, p, o));
            if !self.eat_char(b'.') {
                break;
            }
            self.skip_ws();
            // A '.' may be a trailing separator before '}' / OPTIONAL / etc.
            match self.peek() {
                Some(b'?') | Some(b'$') | Some(b'<') | Some(b'"') | Some(b'_') => continue,
                Some(c) if c.is_ascii_alphanumeric() || c == b':' || c == b'-' => {
                    // Could be a qname or the OPTIONAL/FILTER keywords.
                    if self.looking_at_keyword("OPTIONAL") || self.looking_at_keyword("FILTER") {
                        break;
                    }
                    continue;
                }
                _ => break,
            }
        }
        Ok(tps)
    }

    fn looking_at_keyword(&self, kw: &str) -> bool {
        let end = self.pos + kw.len();
        if end > self.input.len() {
            return false;
        }
        if !self.input[self.pos..end].eq_ignore_ascii_case(kw.as_bytes()) {
            return false;
        }
        match self.input.get(end) {
            Some(&b) => !(b.is_ascii_alphanumeric() || b == b'_' || b == b':'),
            None => true,
        }
    }

    fn parse_term_pattern(&mut self) -> Result<TermPattern, SparqlError> {
        self.skip_ws();
        match self.peek() {
            Some(b'?') | Some(b'$') => Ok(TermPattern::Var(self.parse_var()?)),
            _ => Ok(TermPattern::Const(self.parse_const_term()?)),
        }
    }

    fn parse_const_term(&mut self) -> Result<Term, SparqlError> {
        self.skip_ws();
        match self.peek() {
            Some(b'<') => {
                self.pos += 1;
                Ok(Term::iri(self.take_until(b'>')?))
            }
            Some(b'_') => {
                self.pos += 1;
                self.expect_char(b':')?;
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                Ok(Term::blank(String::from_utf8_lossy(
                    &self.input[start..self.pos],
                )))
            }
            Some(b'"') => {
                self.pos += 1;
                let mut lex = String::new();
                loop {
                    match self.peek() {
                        None => return Err(self.err("unterminated string literal")),
                        Some(b'"') => {
                            self.pos += 1;
                            break;
                        }
                        Some(b'\\') => {
                            self.pos += 1;
                            match self.peek() {
                                Some(b'n') => lex.push('\n'),
                                Some(b't') => lex.push('\t'),
                                Some(b'"') => lex.push('"'),
                                Some(b'\\') => lex.push('\\'),
                                other => {
                                    return Err(self.err(format!(
                                        "bad escape {:?}",
                                        other.map(|c| c as char)
                                    )));
                                }
                            }
                            self.pos += 1;
                        }
                        Some(b) if b < 0x80 => {
                            lex.push(b as char);
                            self.pos += 1;
                        }
                        Some(_) => {
                            // Multibyte UTF-8: copy the full character.
                            let rest = std::str::from_utf8(&self.input[self.pos..])
                                .map_err(|_| self.err("invalid UTF-8"))?;
                            let c = rest.chars().next().unwrap();
                            lex.push(c);
                            self.pos += c.len_utf8();
                        }
                    }
                }
                if self.peek() == Some(b'^') {
                    self.pos += 1;
                    self.expect_char(b'^')?;
                    self.skip_ws();
                    self.expect_char(b'<')?;
                    let dt = self.take_until(b'>')?;
                    Ok(Term::typed_literal(lex, dt))
                } else if self.peek() == Some(b'@') {
                    self.pos += 1;
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b.is_ascii_alphanumeric() || b == b'-' {
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                    Ok(Term::lang_literal(
                        lex,
                        String::from_utf8_lossy(&self.input[start..self.pos]),
                    ))
                } else {
                    Ok(Term::literal(lex))
                }
            }
            Some(b) if b.is_ascii_digit() || b == b'-' || b == b'+' => {
                let start = self.pos;
                self.pos += 1;
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                let text = String::from_utf8_lossy(&self.input[start..self.pos]);
                let n: i64 = text
                    .parse()
                    .map_err(|_| self.err(format!("bad integer '{text}'")))?;
                Ok(Term::integer(n))
            }
            Some(_) => self.parse_qname_or_a(),
            None => Err(self.err("expected term")),
        }
    }

    fn parse_qname_or_a(&mut self) -> Result<Term, SparqlError> {
        // `a` keyword (only when not part of a longer name / qname).
        if self.looking_at_keyword("a") {
            self.pos += 1;
            return Ok(Term::iri(RDF_TYPE));
        }
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let prefix = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
        if self.peek() != Some(b':') {
            return Err(self.err(format!("expected qname, found '{prefix}'")));
        }
        self.pos += 1;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.' || b == b'/' {
                self.pos += 1;
            } else {
                break;
            }
        }
        // Trailing '.' is a triple terminator, not part of the local name.
        let mut end = self.pos;
        while end > start && self.input[end - 1] == b'.' {
            end -= 1;
        }
        self.pos = end;
        let local = String::from_utf8_lossy(&self.input[start..end]).into_owned();
        match self.prefixes.get(&prefix) {
            Some(base) => Ok(Term::iri(format!("{base}{local}"))),
            None => Err(SparqlError::UnknownPrefix(prefix)),
        }
    }

    /// Solution modifiers after the WHERE group: `ORDER BY` keys, then
    /// `LIMIT` / `OFFSET` in either order (the SPARQL grammar's
    /// `LimitOffsetClauses`).
    fn parse_modifiers(&mut self) -> Result<Modifiers, SparqlError> {
        let mut m = Modifiers::default();
        if self.eat_keyword("ORDER") {
            if !self.eat_keyword("BY") {
                return Err(self.err("expected BY after ORDER"));
            }
            loop {
                self.skip_ws();
                if self.eat_keyword("ASC") {
                    self.expect_char(b'(')?;
                    let var = self.parse_var()?;
                    self.expect_char(b')')?;
                    m.order_by.push(OrderKey {
                        var,
                        descending: false,
                    });
                } else if self.eat_keyword("DESC") {
                    self.expect_char(b'(')?;
                    let var = self.parse_var()?;
                    self.expect_char(b')')?;
                    m.order_by.push(OrderKey {
                        var,
                        descending: true,
                    });
                } else if matches!(self.peek(), Some(b'?') | Some(b'$')) {
                    m.order_by.push(OrderKey {
                        var: self.parse_var()?,
                        descending: false,
                    });
                } else {
                    break;
                }
            }
            if m.order_by.is_empty() {
                return Err(self.err("expected at least one ORDER BY key"));
            }
        }
        let mut saw_limit = false;
        let mut saw_offset = false;
        loop {
            if !saw_limit && self.eat_keyword("LIMIT") {
                m.limit = Some(self.parse_unsigned()?);
                saw_limit = true;
            } else if !saw_offset && self.eat_keyword("OFFSET") {
                m.offset = self.parse_unsigned()?;
                saw_offset = true;
            } else {
                break;
            }
        }
        Ok(m)
    }

    fn parse_unsigned(&mut self) -> Result<usize, SparqlError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a non-negative integer"));
        }
        let text = String::from_utf8_lossy(&self.input[start..self.pos]);
        text.parse()
            .map_err(|_| self.err(format!("integer '{text}' out of range")))
    }

    /// FILTER constraint: `( expr )` or a bare function call.
    fn parse_constraint(&mut self) -> Result<Expr, SparqlError> {
        self.skip_ws();
        if self.looking_at_keyword("BOUND") {
            return self.parse_primary_expr();
        }
        self.expect_char(b'(')?;
        let e = self.parse_or_expr()?;
        self.expect_char(b')')?;
        Ok(e)
    }

    fn parse_or_expr(&mut self) -> Result<Expr, SparqlError> {
        let mut left = self.parse_and_expr()?;
        loop {
            self.skip_ws();
            if self.input[self.pos..].starts_with(b"||") {
                self.pos += 2;
                let right = self.parse_and_expr()?;
                left = Expr::Or(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_and_expr(&mut self) -> Result<Expr, SparqlError> {
        let mut left = self.parse_cmp_expr()?;
        loop {
            self.skip_ws();
            if self.input[self.pos..].starts_with(b"&&") {
                self.pos += 2;
                let right = self.parse_cmp_expr()?;
                left = Expr::And(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_cmp_expr(&mut self) -> Result<Expr, SparqlError> {
        type BinOp = fn(Box<Expr>, Box<Expr>) -> Expr;
        let left = self.parse_primary_expr()?;
        self.skip_ws();
        let rest = &self.input[self.pos..];
        let (op, len): (BinOp, usize) = if rest.starts_with(b"!=") {
            (Expr::Ne, 2)
        } else if rest.starts_with(b"<=") {
            (Expr::Le, 2)
        } else if rest.starts_with(b">=") {
            (Expr::Ge, 2)
        } else if rest.starts_with(b"=") {
            (Expr::Eq, 1)
        } else if rest.starts_with(b"<") {
            (Expr::Lt, 1)
        } else if rest.starts_with(b">") {
            (Expr::Gt, 1)
        } else {
            return Ok(left);
        };
        self.pos += len;
        let right = self.parse_primary_expr()?;
        Ok(op(Box::new(left), Box::new(right)))
    }

    fn parse_primary_expr(&mut self) -> Result<Expr, SparqlError> {
        self.skip_ws();
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let e = self.parse_or_expr()?;
                self.expect_char(b')')?;
                Ok(e)
            }
            Some(b'!') if !self.input[self.pos..].starts_with(b"!=") => {
                self.pos += 1;
                Ok(Expr::Not(Box::new(self.parse_primary_expr()?)))
            }
            Some(b'?') | Some(b'$') => Ok(Expr::Var(self.parse_var()?)),
            _ => {
                if self.eat_keyword("BOUND") {
                    self.expect_char(b'(')?;
                    let v = self.parse_var()?;
                    self.expect_char(b')')?;
                    Ok(Expr::Bound(v))
                } else {
                    Ok(Expr::Const(self.parse_const_term()?))
                }
            }
        }
    }
}

/// SPARQL's group translation: fold elements left-to-right, merging
/// adjacent BGPs, nesting OPTIONALs as left-outer joins, and applying the
/// collected filters to the whole group.
fn fold_group(elements: Vec<Element>) -> GraphPattern {
    let mut acc: Option<GraphPattern> = None;
    let mut filters: Vec<Expr> = Vec::new();
    for el in elements {
        match el {
            Element::Triples(tps) => {
                acc = Some(match acc.take() {
                    None => GraphPattern::Bgp(tps),
                    Some(GraphPattern::Bgp(mut prev)) => {
                        prev.extend(tps);
                        GraphPattern::Bgp(prev)
                    }
                    Some(other) => GraphPattern::join(other, GraphPattern::Bgp(tps)),
                });
            }
            Element::Sub(p) => {
                acc = Some(match acc.take() {
                    None => p,
                    Some(prev) => GraphPattern::join(prev, p),
                });
            }
            Element::Optional(p) => {
                let lhs = acc.take().unwrap_or(GraphPattern::Bgp(Vec::new()));
                acc = Some(GraphPattern::left_join(lhs, p));
            }
            Element::Filter(e) => filters.push(e),
        }
    }
    let mut g = acc.unwrap_or(GraphPattern::Bgp(Vec::new()));
    for e in filters {
        g = GraphPattern::filter(g, e);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_query_q2_of_the_paper() {
        // Q2 from §1 (the running example).
        let q = parse_query(
            r#"
            PREFIX : <urn:x:>
            SELECT ?friend ?sitcom WHERE {
              :Jerry :hasFriend ?friend .
              OPTIONAL {
                ?friend :actedIn ?sitcom .
                ?sitcom :location :NewYorkCity . } }
            "#,
        )
        .unwrap();
        assert_eq!(
            q.form,
            QueryForm::Select {
                selection: Selection::Vars(vec!["friend".into(), "sitcom".into()]),
                dedup: Dedup::None,
            }
        );
        assert!(q.modifiers.is_empty());
        match &q.pattern {
            GraphPattern::LeftJoin(l, r) => {
                assert_eq!(l.triple_patterns().len(), 1);
                assert_eq!(r.triple_patterns().len(), 2);
            }
            other => panic!("expected LeftJoin, got {other:?}"),
        }
    }

    #[test]
    fn parses_nested_groups_as_joins() {
        let q = parse_query(
            r#"
            PREFIX u: <urn:u:>
            SELECT * WHERE {
              { ?a u:p1 ?b . OPTIONAL { ?b u:p2 ?c . } }
              { ?b u:p3 ?d . OPTIONAL { ?d u:p4 ?e . } } }
            "#,
        )
        .unwrap();
        match &q.pattern {
            GraphPattern::Join(l, r) => {
                assert!(matches!(**l, GraphPattern::LeftJoin(_, _)));
                assert!(matches!(**r, GraphPattern::LeftJoin(_, _)));
            }
            other => panic!("expected Join, got {other:?}"),
        }
    }

    #[test]
    fn a_keyword_and_qnames() {
        let q =
            parse_query("PREFIX ub: <http://lehigh/> SELECT * WHERE { ?x a ub:FullProfessor . }")
                .unwrap();
        let tps = q.pattern.triple_patterns();
        assert_eq!(tps[0].p.as_const().unwrap(), &Term::iri(RDF_TYPE));
        assert_eq!(
            tps[0].o.as_const().unwrap(),
            &Term::iri("http://lehigh/FullProfessor")
        );
    }

    #[test]
    fn default_prefix() {
        let q = parse_query("PREFIX : <urn:d:> SELECT * WHERE { :s :p ?o . }").unwrap();
        let tps = q.pattern.triple_patterns();
        assert_eq!(tps[0].s.as_const().unwrap(), &Term::iri("urn:d:s"));
    }

    #[test]
    fn unknown_prefix_is_an_error() {
        assert_eq!(
            parse_query("SELECT * WHERE { nope:s nope:p ?o . }"),
            Err(SparqlError::UnknownPrefix("nope".into()))
        );
    }

    #[test]
    fn literals_in_patterns() {
        let q =
            parse_query(r#"SELECT * WHERE { ?b <urn:modified> "2008-01-15" . ?b <urn:n> 42 . }"#)
                .unwrap();
        let tps = q.pattern.triple_patterns();
        assert_eq!(tps[0].o.as_const().unwrap(), &Term::literal("2008-01-15"));
        assert_eq!(tps[1].o.as_const().unwrap(), &Term::integer(42));
    }

    #[test]
    fn union_of_groups() {
        let q = parse_query("SELECT * WHERE { { ?x <urn:p> ?y . } UNION { ?x <urn:q> ?y . } }")
            .unwrap();
        assert!(matches!(q.pattern, GraphPattern::Union(_, _)));
    }

    #[test]
    fn filters_with_precedence() {
        let q = parse_query(
            "SELECT * WHERE { ?x <urn:p> ?y . FILTER ( ?y > 3 && ?y < 10 || BOUND(?x) ) }",
        )
        .unwrap();
        match &q.pattern {
            GraphPattern::Filter(_, e) => match e {
                Expr::Or(l, _) => assert!(matches!(**l, Expr::And(_, _))),
                other => panic!("expected Or at top, got {other:?}"),
            },
            other => panic!("expected Filter, got {other:?}"),
        }
    }

    #[test]
    fn iri_vs_less_than() {
        // '<' in expressions must not be eaten as an IRI opener.
        let q = parse_query("SELECT * WHERE { ?x <urn:p> ?y . FILTER(?y < 5) }").unwrap();
        assert!(matches!(q.pattern, GraphPattern::Filter(_, Expr::Lt(_, _))));
    }

    #[test]
    fn multiple_optionals_nest_left() {
        // DBPedia-style query: successive OPTIONALs fold as
        // ((G ⟕ O1) ⟕ O2).
        let q = parse_query(
            "SELECT * WHERE { ?v <urn:a> ?w . OPTIONAL { ?v <urn:b> ?x . } OPTIONAL { ?v <urn:c> ?y . } }",
        )
        .unwrap();
        match &q.pattern {
            GraphPattern::LeftJoin(l, _) => assert!(matches!(**l, GraphPattern::LeftJoin(_, _))),
            other => panic!("expected nested LeftJoin, got {other:?}"),
        }
    }

    #[test]
    fn optional_inside_group_with_more_triples_after() {
        let q = parse_query(
            "SELECT * WHERE { ?a <urn:p> ?b . OPTIONAL { ?b <urn:q> ?c . } ?a <urn:r> ?d . }",
        )
        .unwrap();
        // (Bgp(a p b) ⟕ Bgp(b q c)) ⋈ Bgp(a r d)
        match &q.pattern {
            GraphPattern::Join(l, r) => {
                assert!(matches!(**l, GraphPattern::LeftJoin(_, _)));
                assert!(matches!(**r, GraphPattern::Bgp(_)));
            }
            other => panic!("expected Join, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_query("SELECT WHERE { ?x <p> ?y }").is_err());
        assert!(parse_query("SELECT * WHERE { ?x <p> }").is_err());
        assert!(parse_query("SELECT * WHERE { ?x <p> ?y ").is_err());
        assert!(parse_query("SELECT * WHERE { ?x <p> ?y } trailing").is_err());
        assert!(parse_query("CONSTRUCT { ?x <p> ?y }").is_err());
        assert!(parse_query("SELECT * WHERE { ?x <p> ?y } ORDER ?y").is_err());
        assert!(parse_query("SELECT * WHERE { ?x <p> ?y } ORDER BY").is_err());
        assert!(parse_query("SELECT * WHERE { ?x <p> ?y } LIMIT").is_err());
        assert!(parse_query("SELECT * WHERE { ?x <p> ?y } LIMIT -3").is_err());
        assert!(parse_query("SELECT * WHERE { ?x <p> ?y } LIMIT 1 LIMIT 2").is_err());
        assert!(parse_query("ASK DISTINCT { ?x <p> ?y }").is_err());
    }

    #[test]
    fn ask_queries() {
        let q = parse_query("ASK { ?x <urn:p> ?y . }").unwrap();
        assert_eq!(q.form, QueryForm::Ask);
        assert!(q.projected_vars().is_empty());
        // WHERE is accepted before the group, and modifiers after it.
        let q = parse_query("ASK WHERE { ?x <urn:p> ?y . } LIMIT 1").unwrap();
        assert!(q.is_ask());
        assert_eq!(q.modifiers.limit, Some(1));
    }

    #[test]
    fn distinct_and_reduced() {
        let q = parse_query("SELECT DISTINCT ?x WHERE { ?x <urn:p> ?y . }").unwrap();
        assert_eq!(q.dedup(), Dedup::Distinct);
        assert_eq!(q.projected_vars(), vec!["x"]);
        let q = parse_query("SELECT REDUCED * WHERE { ?x <urn:p> ?y . }").unwrap();
        assert_eq!(q.dedup(), Dedup::Reduced);
        // DISTINCT is a keyword, not a variable-looking token.
        assert!(parse_query("SELECT DISTINCT WHERE { ?x <urn:p> ?y . }").is_err());
    }

    #[test]
    fn order_limit_offset() {
        let q = parse_query(
            "SELECT * WHERE { ?x <urn:p> ?y . } ORDER BY DESC(?y) ASC(?x) ?x LIMIT 10 OFFSET 4",
        )
        .unwrap();
        assert_eq!(
            q.modifiers.order_by,
            vec![
                OrderKey {
                    var: "y".into(),
                    descending: true
                },
                OrderKey {
                    var: "x".into(),
                    descending: false
                },
                OrderKey {
                    var: "x".into(),
                    descending: false
                },
            ]
        );
        assert_eq!(q.modifiers.limit, Some(10));
        assert_eq!(q.modifiers.offset, 4);
        // LIMIT/OFFSET accepted in either order (LimitOffsetClauses).
        let q = parse_query("SELECT * WHERE { ?x <urn:p> ?y . } OFFSET 2 LIMIT 5").unwrap();
        assert_eq!((q.modifiers.limit, q.modifiers.offset), (Some(5), 2));
        // ORDER BY a non-projected variable extends the execution schema.
        let q = parse_query("SELECT ?x WHERE { ?x <urn:p> ?y . } ORDER BY ?y").unwrap();
        assert_eq!(q.projected_vars(), vec!["x"]);
        assert_eq!(q.exec_vars(), vec!["x", "y"]);
    }

    #[test]
    fn comments_are_skipped() {
        let q = parse_query("# header\nSELECT * WHERE { # inline\n ?x <urn:p> ?y . }").unwrap();
        assert_eq!(q.pattern.triple_patterns().len(), 1);
    }
}
