//! Query classification (Figure 3.1): decides whether a nested BGP-OPT
//! query can skip nullification / best-match under LBR.
//!
//! For **well-designed** queries (and for non-well-designed queries after
//! the Appendix-B GoSN transformation):
//!
//! * acyclic GoJ → nullification / best-match avoidable (Lemma 3.3);
//! * cyclic GoJ with at most one join variable per slave supernode →
//!   avoidable (Lemma 3.4);
//! * cyclic GoJ with a slave supernode containing more than one join
//!   variable → nullification + best-match required.

use crate::algebra::GraphPattern;
use crate::error::SparqlError;
use crate::goj::Goj;
use crate::gosn::Gosn;
use crate::well_designed::{transform_nwd, violations_with};
use std::collections::BTreeSet;

/// The classification of one UNION-free query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryClass {
    /// Pérez et al. well-designedness.
    pub well_designed: bool,
    /// Whether the GoJ contains a cycle.
    pub cyclic: bool,
    /// Whether the query is free of Cartesian products (its TPs form one
    /// variable-connected component).
    pub connected: bool,
    /// Maximum number of distinct join variables in any slave supernode
    /// (on the NWD-transformed GoSN if the query was not well-designed).
    pub max_slave_sn_jvars: usize,
    /// `NB-reqd` of Alg 5.1: nullification and best-match are required.
    pub nb_required: bool,
}

/// Everything the engine needs to know about a UNION-free pattern: the
/// (possibly NWD-transformed) GoSN, the GoJ, and the classification.
#[derive(Debug, Clone)]
pub struct Analyzed {
    /// GoSN after the Appendix-B transformation (identity for
    /// well-designed queries).
    pub gosn: Gosn,
    /// Graph of join variables.
    pub goj: Goj,
    /// Classification.
    pub class: QueryClass,
}

/// Classifies a UNION-free pattern.
pub fn classify(pattern: &GraphPattern) -> Result<QueryClass, SparqlError> {
    analyze(pattern).map(|a| a.class)
}

/// Builds the full analysis: GoSN (transformed if NWD), GoJ, classification.
pub fn analyze(pattern: &GraphPattern) -> Result<Analyzed, SparqlError> {
    let gosn0 = Gosn::from_pattern(pattern)?;
    let viols = violations_with(pattern, &gosn0);
    let well_designed = viols.is_empty();
    let gosn = if well_designed {
        gosn0
    } else {
        transform_nwd(&gosn0, &viols)
    };

    let goj = Goj::from_tps(gosn.tps());
    let cyclic = goj.is_cyclic();

    // Slave supernode jvar counts (on the transformed GoSN).
    let mut max_slave_sn_jvars = 0usize;
    for sn in gosn.slave_sns() {
        let mut jvars: BTreeSet<usize> = BTreeSet::new();
        for &tp in gosn.tps_of_sn(sn) {
            jvars.extend(goj.jvars_of_tp(tp).iter().copied());
        }
        max_slave_sn_jvars = max_slave_sn_jvars.max(jvars.len());
    }

    let nb_required = cyclic && max_slave_sn_jvars > 1;
    let connected = tp_graph_connected(&gosn);
    Ok(Analyzed {
        gosn,
        goj,
        class: QueryClass {
            well_designed,
            cyclic,
            connected,
            max_slave_sn_jvars,
            nb_required,
        },
    })
}

/// True when the TPs form a single component under shared-variable edges
/// (no Cartesian product). Queries with zero or one TP are connected.
fn tp_graph_connected(gosn: &Gosn) -> bool {
    let n = gosn.n_tps();
    if n <= 1 {
        return true;
    }
    let tps = gosn.tps();
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    let mut visited = 1usize;
    while let Some(i) = stack.pop() {
        for (j, seen_j) in seen.iter_mut().enumerate() {
            if !*seen_j && tps[i].vars().iter().any(|v| tps[j].has_var(v)) {
                *seen_j = true;
                visited += 1;
                stack.push(j);
            }
        }
    }
    visited == n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{TermPattern, TriplePattern};
    use lbr_rdf::Term;

    fn bgp(tps: &[(&str, &str, &str)]) -> GraphPattern {
        let f = |x: &str| {
            if let Some(v) = x.strip_prefix('?') {
                TermPattern::Var(v.to_string())
            } else {
                TermPattern::Const(Term::iri(x))
            }
        };
        GraphPattern::Bgp(
            tps.iter()
                .map(|&(s, p, o)| TriplePattern::new(f(s), f(p), f(o)))
                .collect(),
        )
    }

    #[test]
    fn acyclic_well_designed_avoids_nb() {
        let q = GraphPattern::left_join(
            bgp(&[("Jerry", "hasFriend", "?friend")]),
            bgp(&[
                ("?friend", "actedIn", "?sitcom"),
                ("?sitcom", "location", "NewYorkCity"),
            ]),
        );
        let c = classify(&q).unwrap();
        assert!(c.well_designed);
        assert!(!c.cyclic);
        assert!(c.connected);
        assert!(!c.nb_required);
    }

    #[test]
    fn cyclic_one_jvar_per_slave_avoids_nb() {
        // Master has the triangle; the slave touches only ?a.
        let q = GraphPattern::left_join(
            bgp(&[("?a", "p1", "?b"), ("?b", "p2", "?c"), ("?a", "p3", "?c")]),
            bgp(&[("?a", "p4", "?z")]),
        );
        let c = classify(&q).unwrap();
        assert!(c.well_designed);
        assert!(c.cyclic);
        assert_eq!(c.max_slave_sn_jvars, 1);
        assert!(!c.nb_required, "Lemma 3.4");
    }

    #[test]
    fn cyclic_multi_jvar_slave_needs_nb() {
        // tp1 ⟕ (tp2 ⋈ tp3) with a jvar triangle crossing the slave.
        let q = GraphPattern::left_join(
            bgp(&[("?a", "p1", "?b")]),
            bgp(&[("?a", "p2", "?c"), ("?c", "p3", "?b")]),
        );
        let c = classify(&q).unwrap();
        assert!(c.well_designed);
        assert!(c.cyclic);
        assert_eq!(c.max_slave_sn_jvars, 3);
        assert!(c.nb_required);
    }

    #[test]
    fn nwd_is_classified_on_transformed_gosn() {
        // Px ⟕ (Py ⟕ Pz), Pz violating with Px: after the transformation
        // Pz is a peer of Px, so only Py-side slaves remain.
        let q = GraphPattern::left_join(
            bgp(&[("?j", "p1", "?x")]),
            GraphPattern::left_join(bgp(&[("?x", "p2", "?y")]), bgp(&[("?j", "p3", "?z")])),
        );
        let a = analyze(&q).unwrap();
        assert!(!a.class.well_designed);
        // Pz (SN2) became a peer of Px (SN0).
        assert!(a.gosn.are_peers(0, 2));
        assert!(!a.class.nb_required);
    }

    #[test]
    fn cartesian_product_detected() {
        let q = GraphPattern::join(bgp(&[("?a", "p1", "?b")]), bgp(&[("?c", "p2", "?d")]));
        let c = classify(&q).unwrap();
        assert!(!c.connected);
        let q = bgp(&[("?a", "p1", "?b"), ("?b", "p2", "?c")]);
        assert!(classify(&q).unwrap().connected);
    }

    #[test]
    fn single_tp_query() {
        let c = classify(&bgp(&[("?a", "p1", "?b")])).unwrap();
        assert!(c.well_designed && !c.cyclic && c.connected && !c.nb_required);
        assert_eq!(c.max_slave_sn_jvars, 0);
    }
}
