//! # lbr-sparql
//!
//! The query model of the Left Bit Right (LBR) paper: a SPARQL subset
//! covering **basic graph patterns (BGPs), OPTIONAL, UNION and FILTER**,
//! plus the structures LBR's optimizer is built on:
//!
//! * [`algebra`] — triple patterns, the `Bgp / Join / LeftJoin / Union /
//!   Filter` pattern algebra, and SELECT queries;
//! * [`parser`] — a recursive-descent parser for the SPARQL subset;
//! * [`gosn`] — the **graph of supernodes** (§2): OPT-free BGPs as
//!   supernodes, unidirectional edges for left-outer joins, bidirectional
//!   edges for inner joins, and the derived *master / slave / peer /
//!   absolute-master* relations;
//! * [`goj`] — the graphs of triple patterns (GoT) and of join variables
//!   (GoJ) with acyclicity tests (§3.1, Lemma 3.2);
//! * [`well_designed`] — Pérez et al.'s well-designedness test and the
//!   Appendix-B transformation for non-well-designed queries;
//! * [`classify`] — the Figure 3.1 classification that decides whether
//!   nullification / best-match can be avoided;
//! * [`rewrite`] — the §5.2 UNION-normal-form and filter push-in rewrites.

pub mod algebra;
pub mod classify;
pub mod error;
pub mod goj;
pub mod gosn;
pub mod parser;
pub mod rewrite;
pub mod serialize;
pub mod well_designed;

pub use algebra::{Expr, GraphPattern, Query, Selection, TermPattern, TriplePattern};
pub use classify::{classify, QueryClass};
pub use error::SparqlError;
pub use goj::{Goj, Got};
pub use gosn::{Gosn, SnId, TpId};
pub use parser::parse_query;
pub use rewrite::{rewrite_to_unf, UnfBranch};
pub use serialize::to_sparql;
pub use well_designed::{is_well_designed, transform_nwd_pattern, violations, Violation};
