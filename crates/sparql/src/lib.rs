//! # lbr-sparql
//!
//! The query model of the Left Bit Right (LBR) paper: a SPARQL subset
//! covering **basic graph patterns (BGPs), OPTIONAL, UNION and FILTER**,
//! plus the structures LBR's optimizer is built on:
//!
//! * [`algebra`] — triple patterns, the `Bgp / Join / LeftJoin / Union /
//!   Filter` pattern algebra, and full query specs: the `SELECT
//!   [DISTINCT|REDUCED]` / `ASK` query forms plus the `ORDER BY` /
//!   `LIMIT` / `OFFSET` solution modifiers;
//! * [`parser`] — a recursive-descent parser for the SPARQL subset;
//! * [`update`] — SPARQL 1.1 Update (`INSERT DATA` / `DELETE DATA` /
//!   `DELETE WHERE`), sharing the parser's tokens and prefix handling;
//! * [`gosn`] — the **graph of supernodes** (§2): OPT-free BGPs as
//!   supernodes, unidirectional edges for left-outer joins, bidirectional
//!   edges for inner joins, and the derived *master / slave / peer /
//!   absolute-master* relations;
//! * [`goj`] — the graphs of triple patterns (GoT) and of join variables
//!   (GoJ) with acyclicity tests (§3.1, Lemma 3.2);
//! * [`well_designed`] — Pérez et al.'s well-designedness test and the
//!   Appendix-B transformation for non-well-designed queries;
//! * [`classify`] — the Figure 3.1 classification that decides whether
//!   nullification / best-match can be avoided;
//! * [`rewrite`] — the §5.2 UNION-normal-form and filter push-in rewrites.
//!
//! A parsed [`Query`] is a full query spec — form, pattern, modifiers:
//!
//! ```
//! use lbr_sparql::{parse_query, Dedup, QueryForm};
//!
//! let q = parse_query(
//!     "SELECT DISTINCT ?s WHERE { ?s <p> ?o . } ORDER BY DESC(?o) LIMIT 10 OFFSET 2",
//! ).unwrap();
//! assert!(matches!(q.form, QueryForm::Select { dedup: Dedup::Distinct, .. }));
//! assert_eq!(q.projected_vars(), vec!["s"]);
//! assert_eq!(q.exec_vars(), vec!["s", "o"]); // ORDER BY key rides along
//! assert_eq!((q.modifiers.limit, q.modifiers.offset), (Some(10), 2));
//! assert!(parse_query("ASK { ?s <p> ?o . }").unwrap().is_ask());
//! ```

#![forbid(unsafe_code)]

pub mod algebra;
pub mod classify;
pub mod error;
pub mod goj;
pub mod gosn;
pub mod parser;
pub mod rewrite;
pub mod serialize;
pub mod update;
pub mod well_designed;

pub use algebra::{
    Dedup, Expr, GraphPattern, Modifiers, OrderKey, Query, QueryForm, Selection, TermPattern,
    TriplePattern,
};
pub use classify::{classify, QueryClass};
pub use error::SparqlError;
pub use goj::{Goj, Got};
pub use gosn::{Gosn, SnId, TpId};
pub use parser::parse_query;
pub use rewrite::{rewrite_to_unf, UnfBranch};
pub use serialize::to_sparql;
pub use update::{parse_update, Update, UpdateOp};
pub use well_designed::{is_well_designed, transform_nwd_pattern, violations, Violation};
