//! The pattern algebra: triple patterns, graph patterns, expressions and
//! SELECT queries.
//!
//! A nested BGP-OPT query is a tree over [`GraphPattern`]: `Bgp` leaves
//! joined by `Join` (SPARQL group juxtaposition, SQL inner join ⋈) and
//! `LeftJoin` (SPARQL OPTIONAL, SQL left-outer join ⟕), with `Union` and
//! `Filter` for §5.2.

use lbr_rdf::Term;
use std::collections::BTreeSet;
use std::fmt;

/// A position in a triple pattern: a variable or a constant term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TermPattern {
    /// A query variable (name without the leading `?`).
    Var(String),
    /// A constant RDF term.
    Const(Term),
}

impl TermPattern {
    /// Variable name, if this position is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            TermPattern::Var(v) => Some(v),
            TermPattern::Const(_) => None,
        }
    }

    /// Constant term, if this position is fixed.
    pub fn as_const(&self) -> Option<&Term> {
        match self {
            TermPattern::Var(_) => None,
            TermPattern::Const(t) => Some(t),
        }
    }
}

impl fmt::Display for TermPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TermPattern::Var(v) => write!(f, "?{v}"),
            TermPattern::Const(t) => write!(f, "{t}"),
        }
    }
}

/// A triple pattern `(s p o)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TriplePattern {
    /// Subject position.
    pub s: TermPattern,
    /// Predicate position.
    pub p: TermPattern,
    /// Object position.
    pub o: TermPattern,
}

impl TriplePattern {
    /// Creates a triple pattern.
    pub fn new(s: TermPattern, p: TermPattern, o: TermPattern) -> Self {
        TriplePattern { s, p, o }
    }

    /// The variables of this pattern in S, P, O order (deduplicated,
    /// preserving first occurrence).
    pub fn vars(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::with_capacity(3);
        for tp in [&self.s, &self.p, &self.o] {
            if let Some(v) = tp.as_var() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// True if the variable occurs in this pattern.
    pub fn has_var(&self, name: &str) -> bool {
        self.vars().contains(&name)
    }

    /// Number of fixed (constant) positions.
    pub fn n_fixed(&self) -> usize {
        [&self.s, &self.p, &self.o]
            .iter()
            .filter(|t| t.as_const().is_some())
            .count()
    }
}

impl fmt::Display for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.s, self.p, self.o)
    }
}

/// A FILTER expression (safe-filter subset of §5.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Variable reference.
    Var(String),
    /// Constant term.
    Const(Term),
    /// `=` on RDF terms.
    Eq(Box<Expr>, Box<Expr>),
    /// `!=`.
    Ne(Box<Expr>, Box<Expr>),
    /// `<` (numeric when both sides parse as integers, else lexical).
    Lt(Box<Expr>, Box<Expr>),
    /// `<=`.
    Le(Box<Expr>, Box<Expr>),
    /// `>`.
    Gt(Box<Expr>, Box<Expr>),
    /// `>=`.
    Ge(Box<Expr>, Box<Expr>),
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// `BOUND(?v)`.
    Bound(String),
}

impl Expr {
    /// All variables referenced by the expression.
    pub fn vars(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars<'a>(&'a self, out: &mut BTreeSet<&'a str>) {
        match self {
            Expr::Var(v) | Expr::Bound(v) => {
                out.insert(v.as_str());
            }
            Expr::Const(_) => {}
            Expr::Eq(a, b)
            | Expr::Ne(a, b)
            | Expr::Lt(a, b)
            | Expr::Le(a, b)
            | Expr::Gt(a, b)
            | Expr::Ge(a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Not(a) => a.collect_vars(out),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(v) => write!(f, "?{v}"),
            Expr::Const(t) => write!(f, "{t}"),
            Expr::Eq(a, b) => write!(f, "({a} = {b})"),
            Expr::Ne(a, b) => write!(f, "({a} != {b})"),
            Expr::Lt(a, b) => write!(f, "({a} < {b})"),
            Expr::Le(a, b) => write!(f, "({a} <= {b})"),
            Expr::Gt(a, b) => write!(f, "({a} > {b})"),
            Expr::Ge(a, b) => write!(f, "({a} >= {b})"),
            Expr::And(a, b) => write!(f, "({a} && {b})"),
            Expr::Or(a, b) => write!(f, "({a} || {b})"),
            Expr::Not(a) => write!(f, "(!{a})"),
            Expr::Bound(v) => write!(f, "BOUND(?{v})"),
        }
    }
}

/// A graph pattern tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphPattern {
    /// A basic graph pattern: a set of triple patterns (inner joins).
    Bgp(Vec<TriplePattern>),
    /// Inner join `⋈` of two sub-patterns.
    Join(Box<GraphPattern>, Box<GraphPattern>),
    /// Left-outer join `⟕` (SPARQL OPTIONAL).
    LeftJoin(Box<GraphPattern>, Box<GraphPattern>),
    /// SPARQL UNION (bag semantics).
    Union(Box<GraphPattern>, Box<GraphPattern>),
    /// FILTER applied to a sub-pattern.
    Filter(Box<GraphPattern>, Expr),
}

impl GraphPattern {
    /// Convenience constructor for joins.
    pub fn join(l: GraphPattern, r: GraphPattern) -> Self {
        GraphPattern::Join(Box::new(l), Box::new(r))
    }

    /// Convenience constructor for left-outer joins.
    pub fn left_join(l: GraphPattern, r: GraphPattern) -> Self {
        GraphPattern::LeftJoin(Box::new(l), Box::new(r))
    }

    /// Convenience constructor for unions.
    pub fn union(l: GraphPattern, r: GraphPattern) -> Self {
        GraphPattern::Union(Box::new(l), Box::new(r))
    }

    /// Convenience constructor for filters.
    pub fn filter(p: GraphPattern, e: Expr) -> Self {
        GraphPattern::Filter(Box::new(p), e)
    }

    /// All triple patterns, left-to-right.
    pub fn triple_patterns(&self) -> Vec<&TriplePattern> {
        let mut out = Vec::new();
        self.walk_tps(&mut out);
        out
    }

    fn walk_tps<'a>(&'a self, out: &mut Vec<&'a TriplePattern>) {
        match self {
            GraphPattern::Bgp(tps) => out.extend(tps.iter()),
            GraphPattern::Join(l, r) | GraphPattern::LeftJoin(l, r) | GraphPattern::Union(l, r) => {
                l.walk_tps(out);
                r.walk_tps(out);
            }
            GraphPattern::Filter(p, _) => p.walk_tps(out),
        }
    }

    /// All variables mentioned in triple patterns (not filters), sorted.
    pub fn variables(&self) -> BTreeSet<&str> {
        self.triple_patterns()
            .into_iter()
            .flat_map(|tp| tp.vars())
            .collect()
    }

    /// True if the subtree contains no `LeftJoin` — an *OPT-free* pattern,
    /// the unit from which GoSN supernodes are made (§2.1).
    pub fn is_opt_free(&self) -> bool {
        match self {
            GraphPattern::Bgp(_) => true,
            GraphPattern::Join(l, r) | GraphPattern::Union(l, r) => {
                l.is_opt_free() && r.is_opt_free()
            }
            GraphPattern::LeftJoin(_, _) => false,
            GraphPattern::Filter(p, _) => p.is_opt_free(),
        }
    }

    /// True if the subtree contains a `Union`.
    pub fn has_union(&self) -> bool {
        match self {
            GraphPattern::Bgp(_) => false,
            GraphPattern::Union(_, _) => true,
            GraphPattern::Join(l, r) | GraphPattern::LeftJoin(l, r) => {
                l.has_union() || r.has_union()
            }
            GraphPattern::Filter(p, _) => p.has_union(),
        }
    }

    /// True if the subtree contains a `Filter`.
    pub fn has_filter(&self) -> bool {
        match self {
            GraphPattern::Bgp(_) => false,
            GraphPattern::Filter(_, _) => true,
            GraphPattern::Join(l, r) | GraphPattern::LeftJoin(l, r) | GraphPattern::Union(l, r) => {
                l.has_filter() || r.has_filter()
            }
        }
    }

    /// The paper's serialized-parenthesized form, e.g.
    /// `((Pa ⟕ Pb) ⋈ (Pc ⟕ Pd))` with BGPs shown as `{tp . tp}`.
    pub fn serialized(&self) -> String {
        match self {
            GraphPattern::Bgp(tps) => {
                let inner: Vec<String> = tps.iter().map(|t| t.to_string()).collect();
                format!("{{{}}}", inner.join(" . "))
            }
            GraphPattern::Join(l, r) => format!("({} ⋈ {})", l.serialized(), r.serialized()),
            GraphPattern::LeftJoin(l, r) => {
                format!("({} ⟕ {})", l.serialized(), r.serialized())
            }
            GraphPattern::Union(l, r) => format!("({} ∪ {})", l.serialized(), r.serialized()),
            GraphPattern::Filter(p, e) => format!("Filter({}, {})", p.serialized(), e),
        }
    }
}

/// SELECT projection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Selection {
    /// `SELECT *` — the common case (the paper notes >95 % of DBPedia
    /// queries select all variables, §5.2).
    All,
    /// `SELECT ?a ?b …`.
    Vars(Vec<String>),
}

/// Duplicate handling of a SELECT query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Dedup {
    /// Plain `SELECT` — bag semantics, duplicates preserved.
    #[default]
    None,
    /// `SELECT DISTINCT` — duplicate solutions are eliminated.
    Distinct,
    /// `SELECT REDUCED` — duplicates *may* be eliminated; this engine
    /// treats it exactly like DISTINCT (a permitted cardinality).
    Reduced,
}

/// The query form: what the solution sequence is turned into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryForm {
    /// `SELECT [DISTINCT|REDUCED] (*|vars)` — a table of bindings.
    Select {
        /// Projection list.
        selection: Selection,
        /// Duplicate handling.
        dedup: Dedup,
    },
    /// `ASK` — a boolean: does at least one solution survive the
    /// modifiers?
    Ask,
}

impl QueryForm {
    /// Writes the form prefix in parseable SPARQL: `ASK ` or
    /// `SELECT [DISTINCT |REDUCED ](* |?vars )WHERE `. The single
    /// serializer behind both [`Query`]'s `Display` and
    /// `serialize::to_sparql`.
    pub fn write_prefix<W: fmt::Write>(&self, w: &mut W) -> fmt::Result {
        match self {
            QueryForm::Ask => w.write_str("ASK "),
            QueryForm::Select { selection, dedup } => {
                w.write_str("SELECT ")?;
                match dedup {
                    Dedup::None => {}
                    Dedup::Distinct => w.write_str("DISTINCT ")?,
                    Dedup::Reduced => w.write_str("REDUCED ")?,
                }
                match selection {
                    Selection::All => w.write_str("* ")?,
                    Selection::Vars(vs) => {
                        for v in vs {
                            write!(w, "?{v} ")?;
                        }
                    }
                }
                w.write_str("WHERE ")
            }
        }
    }
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderKey {
    /// The variable ordered on (name without the `?`).
    pub var: String,
    /// `DESC(?v)` when true, `ASC(?v)` / bare `?v` when false.
    pub descending: bool,
}

/// Solution modifiers: `ORDER BY`, `LIMIT`, `OFFSET`.
///
/// Applied in SPARQL's §18.2.5 order: ORDER BY, then projection, then
/// DISTINCT/REDUCED, then OFFSET, then LIMIT.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Modifiers {
    /// `ORDER BY` keys, outermost first.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT n` — at most `n` solutions.
    pub limit: Option<usize>,
    /// `OFFSET n` — skip the first `n` solutions (0 = none).
    pub offset: usize,
}

impl Modifiers {
    /// True when no modifier is set (the bare-`SELECT`/`ASK` fast path).
    pub fn is_empty(&self) -> bool {
        self.order_by.is_empty() && self.limit.is_none() && self.offset == 0
    }

    /// Writes the ` ORDER BY … LIMIT … OFFSET …` suffix in parseable
    /// SPARQL (nothing when no modifier is set). The single serializer
    /// behind both [`Query`]'s `Display` and `serialize::to_sparql`.
    pub fn write_suffix<W: fmt::Write>(&self, w: &mut W) -> fmt::Result {
        if !self.order_by.is_empty() {
            w.write_str(" ORDER BY")?;
            for k in &self.order_by {
                if k.descending {
                    write!(w, " DESC(?{})", k.var)?;
                } else {
                    write!(w, " ASC(?{})", k.var)?;
                }
            }
        }
        if let Some(n) = self.limit {
            write!(w, " LIMIT {n}")?;
        }
        if self.offset > 0 {
            write!(w, " OFFSET {}", self.offset)?;
        }
        Ok(())
    }
}

/// A full query: form + WHERE pattern + solution modifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The query form (`SELECT …` / `ASK`).
    pub form: QueryForm,
    /// The WHERE pattern.
    pub pattern: GraphPattern,
    /// Solution modifiers.
    pub modifiers: Modifiers,
}

impl Query {
    /// A modifier-free `SELECT *` query (the overwhelmingly common case).
    pub fn select_all(pattern: GraphPattern) -> Query {
        Query {
            form: QueryForm::Select {
                selection: Selection::All,
                dedup: Dedup::None,
            },
            pattern,
            modifiers: Modifiers::default(),
        }
    }

    /// A modifier-free `SELECT ?a ?b …` query.
    pub fn select_vars(vars: Vec<String>, pattern: GraphPattern) -> Query {
        Query {
            form: QueryForm::Select {
                selection: Selection::Vars(vars),
                dedup: Dedup::None,
            },
            pattern,
            modifiers: Modifiers::default(),
        }
    }

    /// A modifier-free `ASK` query.
    pub fn ask(pattern: GraphPattern) -> Query {
        Query {
            form: QueryForm::Ask,
            pattern,
            modifiers: Modifiers::default(),
        }
    }

    /// Replaces the solution modifiers (builder-style).
    pub fn with_modifiers(mut self, modifiers: Modifiers) -> Query {
        self.modifiers = modifiers;
        self
    }

    /// True for an `ASK` query.
    pub fn is_ask(&self) -> bool {
        matches!(self.form, QueryForm::Ask)
    }

    /// The duplicate handling (`Dedup::None` for `ASK`, which has no
    /// DISTINCT in the grammar).
    pub fn dedup(&self) -> Dedup {
        match &self.form {
            QueryForm::Select { dedup, .. } => *dedup,
            QueryForm::Ask => Dedup::None,
        }
    }

    /// The variables the query projects, in a deterministic order
    /// (declaration order for explicit SELECT, first-occurrence order of
    /// triple-pattern variables for `SELECT *`, empty for `ASK`).
    ///
    /// A selected variable that occurs nowhere in the WHERE pattern is
    /// kept: per SPARQL semantics it yields an all-unbound column, never
    /// an error.
    pub fn projected_vars(&self) -> Vec<String> {
        match &self.form {
            QueryForm::Ask => Vec::new(),
            QueryForm::Select { selection, .. } => match selection {
                Selection::Vars(vs) => vs.clone(),
                Selection::All => {
                    let mut seen = Vec::new();
                    for tp in self.pattern.triple_patterns() {
                        for v in tp.vars() {
                            if !seen.iter().any(|s: &String| s == v) {
                                seen.push(v.to_string());
                            }
                        }
                    }
                    seen
                }
            },
        }
    }

    /// The columns raw execution must materialize: the projection plus
    /// any `ORDER BY` key that is not projected (sorting happens before
    /// the projection in SPARQL's modifier order, so the keys must exist
    /// as columns; the shared modifier seam drops the extras afterwards).
    pub fn exec_vars(&self) -> Vec<String> {
        let mut vars = self.projected_vars();
        if !self.is_ask() {
            for key in &self.modifiers.order_by {
                if !vars.iter().any(|v| v == &key.var) {
                    vars.push(key.var.clone());
                }
            }
        }
        vars
    }
}

impl fmt::Display for Query {
    /// The form and modifiers print through the same serializers
    /// `serialize::to_sparql` uses; only the pattern differs (the
    /// paper's `⟕`/`⋈` notation here, parseable group syntax there).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.form.write_prefix(f)?;
        f.write_str(&self.pattern.serialized())?;
        self.modifiers.write_suffix(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn var(v: &str) -> TermPattern {
        TermPattern::Var(v.into())
    }

    pub(crate) fn iri(v: &str) -> TermPattern {
        TermPattern::Const(Term::iri(v))
    }

    fn tp(s: TermPattern, p: TermPattern, o: TermPattern) -> TriplePattern {
        TriplePattern::new(s, p, o)
    }

    #[test]
    fn tp_vars_dedup_and_order() {
        let t = tp(var("x"), iri("p"), var("x"));
        assert_eq!(t.vars(), vec!["x"]);
        let t = tp(var("b"), var("a"), var("c"));
        assert_eq!(t.vars(), vec!["b", "a", "c"]);
        assert!(t.has_var("a"));
        assert!(!t.has_var("z"));
        assert_eq!(t.n_fixed(), 0);
        assert_eq!(tp(iri("s"), iri("p"), var("o")).n_fixed(), 2);
    }

    #[test]
    fn opt_free_detection() {
        let bgp = GraphPattern::Bgp(vec![tp(var("x"), iri("p"), var("y"))]);
        assert!(bgp.is_opt_free());
        let lj = GraphPattern::left_join(bgp.clone(), bgp.clone());
        assert!(!lj.is_opt_free());
        assert!(GraphPattern::join(bgp.clone(), bgp.clone()).is_opt_free());
        assert!(!GraphPattern::join(bgp.clone(), lj.clone()).is_opt_free());
        assert!(GraphPattern::filter(bgp.clone(), Expr::Bound("x".into())).is_opt_free());
    }

    #[test]
    fn serialized_form_matches_paper_style() {
        let pa = GraphPattern::Bgp(vec![tp(var("a"), iri("p"), var("b"))]);
        let pb = GraphPattern::Bgp(vec![tp(var("b"), iri("q"), var("c"))]);
        let q = GraphPattern::left_join(pa, pb);
        assert_eq!(q.serialized(), "({?a <p> ?b} ⟕ {?b <q> ?c})");
    }

    #[test]
    fn query_projection() {
        let p = GraphPattern::Bgp(vec![
            tp(var("b"), iri("p"), var("a")),
            tp(var("a"), iri("q"), var("c")),
        ]);
        let q = Query::select_all(p.clone());
        assert_eq!(q.projected_vars(), vec!["b", "a", "c"]);
        let q = Query::select_vars(vec!["c".into()], p.clone());
        assert_eq!(q.projected_vars(), vec!["c"]);
        // ASK projects nothing; ORDER BY keys extend the execution schema.
        assert!(Query::ask(p.clone()).projected_vars().is_empty());
        assert!(Query::ask(p.clone()).exec_vars().is_empty());
        let q = Query::select_vars(vec!["c".into()], p).with_modifiers(Modifiers {
            order_by: vec![
                OrderKey {
                    var: "a".into(),
                    descending: true,
                },
                OrderKey {
                    var: "c".into(),
                    descending: false,
                },
            ],
            limit: Some(5),
            offset: 2,
        });
        assert_eq!(q.projected_vars(), vec!["c"]);
        assert_eq!(q.exec_vars(), vec!["c", "a"]);
        assert_eq!(
            q.to_string(),
            "SELECT ?c WHERE {?b <p> ?a . ?a <q> ?c} ORDER BY DESC(?a) ASC(?c) LIMIT 5 OFFSET 2"
        );
    }

    #[test]
    fn expr_vars() {
        let e = Expr::And(
            Box::new(Expr::Gt(
                Box::new(Expr::Var("x".into())),
                Box::new(Expr::Const(Term::integer(3))),
            )),
            Box::new(Expr::Bound("y".into())),
        );
        let vs: Vec<&str> = e.vars().into_iter().collect();
        assert_eq!(vs, vec!["x", "y"]);
        assert_eq!(
            e.to_string(),
            "((?x > \"3\"^^<http://www.w3.org/2001/XMLSchema#integer>) && BOUND(?y))"
        );
    }

    #[test]
    fn union_filter_detection() {
        let bgp = GraphPattern::Bgp(vec![tp(var("x"), iri("p"), var("y"))]);
        let u = GraphPattern::union(bgp.clone(), bgp.clone());
        assert!(u.has_union());
        assert!(!bgp.has_union());
        assert!(GraphPattern::filter(bgp.clone(), Expr::Bound("x".into())).has_filter());
        assert!(!u.has_filter());
    }
}
