//! Error type for query parsing and analysis.

use std::fmt;

/// Errors produced by the SPARQL front end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparqlError {
    /// Parse error at a byte offset with a message.
    Parse {
        /// Byte offset into the query text.
        at: usize,
        /// Human-readable description.
        message: String,
    },
    /// An undeclared prefix was used.
    UnknownPrefix(String),
    /// A construct outside the supported subset.
    Unsupported(String),
}

impl fmt::Display for SparqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparqlError::Parse { at, message } => {
                write!(f, "parse error at byte {at}: {message}")
            }
            SparqlError::UnknownPrefix(p) => write!(f, "undeclared prefix '{p}:'"),
            SparqlError::Unsupported(m) => write!(f, "unsupported construct: {m}"),
        }
    }
}

impl std::error::Error for SparqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(SparqlError::Parse {
            at: 5,
            message: "x".into()
        }
        .to_string()
        .contains("byte 5"));
        assert!(SparqlError::UnknownPrefix("ub".into())
            .to_string()
            .contains("ub:"));
        assert!(SparqlError::Unsupported("ASK".into())
            .to_string()
            .contains("ASK"));
    }
}
