//! The **graph of supernodes** (GoSN) of §2.
//!
//! Each maximal OPT-free sub-pattern of the query becomes a *supernode*
//! encapsulating its triple patterns. For every left-outer join
//! `Pm ⟕ Pn` a **unidirectional** edge connects the leftmost supernodes of
//! `Pm` and `Pn`; for every inner join `Px ⋈ Py` a **bidirectional** edge
//! connects their leftmost supernodes. The derived relations drive the
//! whole optimizer:
//!
//! * **master / slave** — `SNa` is a master of `SNb` when `SNb` is
//!   reachable from `SNa` over a path using at least one unidirectional
//!   edge (bidirectional edges may be crossed in both directions);
//! * **peers** — supernodes connected using only bidirectional edges;
//! * **absolute masters** — supernodes with no master at all.
//!
//! Undirected, the GoSN is a tree (one edge per `⋈`/`⟕` node of the
//! pattern), which Appendix B relies on for the unique-path argument of the
//! non-well-designed transformation.

use crate::algebra::{Expr, GraphPattern, TriplePattern};
use crate::error::SparqlError;
use std::collections::{BTreeSet, VecDeque};

/// Index of a supernode within a [`Gosn`].
pub type SnId = usize;
/// Index of a triple pattern within a [`Gosn`] (left-to-right query order).
pub type TpId = usize;

/// Edge kind in the GoSN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Left-outer join edge (master → slave).
    Uni,
    /// Inner join edge (peers).
    Bi,
}

/// The binary join structure over supernodes (mirrors the query tree).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnTree {
    /// A supernode leaf.
    Leaf(SnId),
    /// Inner join of two sub-trees.
    Join(Box<SnTree>, Box<SnTree>),
    /// Left-outer join of two sub-trees.
    LeftJoin(Box<SnTree>, Box<SnTree>),
}

impl SnTree {
    /// The leftmost supernode of the sub-tree (§2.1's "leftmost OPT-free
    /// BGP").
    pub fn leftmost(&self) -> SnId {
        match self {
            SnTree::Leaf(id) => *id,
            SnTree::Join(l, _) | SnTree::LeftJoin(l, _) => l.leftmost(),
        }
    }
}

/// The graph of supernodes.
#[derive(Debug, Clone)]
pub struct Gosn {
    tps: Vec<TriplePattern>,
    tp_sn: Vec<SnId>,
    sn_tps: Vec<Vec<TpId>>,
    uni: Vec<(SnId, SnId)>,
    bi: Vec<(SnId, SnId)>,
    masters: Vec<BTreeSet<SnId>>,
    peer_group: Vec<usize>,
    tree: SnTree,
    /// Filters that live entirely inside one supernode.
    sn_filters: Vec<Vec<Expr>>,
    /// Filters spanning supernodes (applied by the FaN hook, §5.2).
    global_filters: Vec<Expr>,
}

impl Gosn {
    /// Builds the GoSN of a UNION-free pattern.
    ///
    /// Filters inside an OPT-free sub-pattern are attached to its supernode;
    /// filters wrapping patterns that contain OPTIONALs become global
    /// (FaN-stage) filters. `Union` nodes are rejected — rewrite to UNION
    /// normal form first ([`crate::rewrite::rewrite_to_unf`]).
    pub fn from_pattern(pattern: &GraphPattern) -> Result<Gosn, SparqlError> {
        let mut b = Builder::default();
        let tree = b.build(pattern)?;
        let mut g = Gosn {
            tps: b.tps,
            tp_sn: b.tp_sn,
            sn_tps: b.sn_tps,
            uni: Vec::new(),
            bi: Vec::new(),
            masters: Vec::new(),
            peer_group: Vec::new(),
            tree,
            sn_filters: b.sn_filters,
            global_filters: b.global_filters,
        };
        collect_edges(&g.tree.clone(), &mut g);
        g.recompute_relations();
        Ok(g)
    }

    /// Recomputes masters / peers / absolutes from the current edge sets.
    fn recompute_relations(&mut self) {
        let n = self.sn_tps.len();
        // Peers: connected components over bidirectional edges.
        let mut pg: Vec<usize> = (0..n).collect();
        fn find(pg: &mut Vec<usize>, x: usize) -> usize {
            if pg[x] != x {
                let root = find(pg, pg[x]);
                pg[x] = root;
            }
            pg[x]
        }
        for &(a, b) in &self.bi {
            let (ra, rb) = (find(&mut pg, a), find(&mut pg, b));
            if ra != rb {
                pg[ra] = rb;
            }
        }
        self.peer_group = (0..n).map(|x| find(&mut pg, x)).collect();

        // Masters: reachability with ≥1 unidirectional edge.
        // BFS over states (node, crossed_uni_edge_yet).
        let mut fwd: Vec<Vec<(SnId, bool)>> = vec![Vec::new(); n];
        for &(a, b) in &self.uni {
            fwd[a].push((b, true));
        }
        for &(a, b) in &self.bi {
            fwd[a].push((b, false));
            fwd[b].push((a, false));
        }
        let mut masters: Vec<BTreeSet<SnId>> = vec![BTreeSet::new(); n];
        for src in 0..n {
            let mut seen = vec![[false; 2]; n];
            let mut q = VecDeque::new();
            seen[src][0] = true;
            q.push_back((src, false));
            while let Some((x, used)) = q.pop_front() {
                for &(y, is_uni) in &fwd[x] {
                    let nu = used || is_uni;
                    if !seen[y][nu as usize] {
                        seen[y][nu as usize] = true;
                        if nu && y != src {
                            masters[y].insert(src);
                        }
                        q.push_back((y, nu));
                    }
                }
            }
        }
        self.masters = masters;
    }

    /// Number of supernodes.
    pub fn n_supernodes(&self) -> usize {
        self.sn_tps.len()
    }

    /// Number of triple patterns.
    pub fn n_tps(&self) -> usize {
        self.tps.len()
    }

    /// All triple patterns in query order.
    pub fn tps(&self) -> &[TriplePattern] {
        &self.tps
    }

    /// A triple pattern by index.
    pub fn tp(&self, id: TpId) -> &TriplePattern {
        &self.tps[id]
    }

    /// The supernode containing a triple pattern.
    pub fn sn_of_tp(&self, tp: TpId) -> SnId {
        self.tp_sn[tp]
    }

    /// Triple patterns of a supernode.
    pub fn tps_of_sn(&self, sn: SnId) -> &[TpId] {
        &self.sn_tps[sn]
    }

    /// The masters of a supernode (transitive).
    pub fn masters_of(&self, sn: SnId) -> &BTreeSet<SnId> {
        &self.masters[sn]
    }

    /// True when the supernode has no master (§2.2 "absolute master").
    pub fn is_absolute_master(&self, sn: SnId) -> bool {
        self.masters[sn].is_empty()
    }

    /// Supernodes in the same peer group (including `sn` itself).
    pub fn peers_of(&self, sn: SnId) -> Vec<SnId> {
        let g = self.peer_group[sn];
        (0..self.n_supernodes())
            .filter(|&x| self.peer_group[x] == g)
            .collect()
    }

    /// True when two supernodes are peers (connected via only bi edges).
    pub fn are_peers(&self, a: SnId, b: SnId) -> bool {
        self.peer_group[a] == self.peer_group[b]
    }

    /// True when `master` is a (transitive) master of `slave`.
    pub fn is_master_of(&self, master: SnId, slave: SnId) -> bool {
        self.masters[slave].contains(&master)
    }

    /// TP-level master test: is `tp_i`'s supernode a master of `tp_j`'s?
    /// (The paper's `slave-of(tpj, tpi)` in Alg 3.2.)
    pub fn tp_is_master_of(&self, tp_i: TpId, tp_j: TpId) -> bool {
        self.is_master_of(self.tp_sn[tp_i], self.tp_sn[tp_j])
    }

    /// TP-level peer test (same supernode or peer supernodes).
    pub fn tp_are_peers(&self, a: TpId, b: TpId) -> bool {
        self.are_peers(self.tp_sn[a], self.tp_sn[b])
    }

    /// True when the TP sits in an absolute-master supernode.
    pub fn tp_in_absolute_master(&self, tp: TpId) -> bool {
        self.is_absolute_master(self.tp_sn[tp])
    }

    /// Unidirectional (⟕) edges.
    pub fn uni_edges(&self) -> &[(SnId, SnId)] {
        &self.uni
    }

    /// Bidirectional (⋈) edges.
    pub fn bi_edges(&self) -> &[(SnId, SnId)] {
        &self.bi
    }

    /// The join tree over supernodes.
    pub fn tree(&self) -> &SnTree {
        &self.tree
    }

    /// Per-supernode filters.
    pub fn sn_filters(&self, sn: SnId) -> &[Expr] {
        &self.sn_filters[sn]
    }

    /// Filters spanning supernodes.
    pub fn global_filters(&self) -> &[Expr] {
        &self.global_filters
    }

    /// Supernodes that are slaves (have at least one master).
    pub fn slave_sns(&self) -> Vec<SnId> {
        (0..self.n_supernodes())
            .filter(|&x| !self.is_absolute_master(x))
            .collect()
    }

    /// The unique undirected path between two supernodes, as edge index
    /// pairs `(a, b, kind)` (GoSN is a tree when undirected).
    pub fn undirected_path(&self, from: SnId, to: SnId) -> Vec<(SnId, SnId, EdgeKind)> {
        let n = self.n_supernodes();
        let mut adj: Vec<Vec<(SnId, EdgeKind)>> = vec![Vec::new(); n];
        for &(a, b) in &self.uni {
            adj[a].push((b, EdgeKind::Uni));
            adj[b].push((a, EdgeKind::Uni));
        }
        for &(a, b) in &self.bi {
            adj[a].push((b, EdgeKind::Bi));
            adj[b].push((a, EdgeKind::Bi));
        }
        let mut prev: Vec<Option<(SnId, EdgeKind)>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut q = VecDeque::new();
        seen[from] = true;
        q.push_back(from);
        while let Some(x) = q.pop_front() {
            if x == to {
                break;
            }
            for &(y, k) in &adj[x] {
                if !seen[y] {
                    seen[y] = true;
                    prev[y] = Some((x, k));
                    q.push_back(y);
                }
            }
        }
        let mut path = Vec::new();
        let mut cur = to;
        while let Some((p, k)) = prev[cur] {
            path.push((p, cur, k));
            cur = p;
        }
        path.reverse();
        path
    }

    /// Appendix-B transformation: converts the given unidirectional edges
    /// (given as `(a, b)` in their stored orientation) into bidirectional
    /// edges and recomputes all relations. Monotonic: only ⟕ → ⋈.
    pub fn convert_uni_to_bi(&self, edges: &[(SnId, SnId)]) -> Gosn {
        let mut g = self.clone();
        let mut moved = Vec::new();
        g.uni.retain(|e| {
            if edges.contains(e) {
                moved.push(*e);
                false
            } else {
                true
            }
        });
        g.bi.extend(moved);
        g.recompute_relations();
        g
    }

    /// Paper-style serialization with supernode labels, e.g.
    /// `((SN0 ⋈ SN1) ⟕ SN2)`.
    pub fn serialized(&self) -> String {
        fn go(t: &SnTree, out: &mut String) {
            match t {
                SnTree::Leaf(id) => out.push_str(&format!("SN{id}")),
                SnTree::Join(l, r) => {
                    out.push('(');
                    go(l, out);
                    out.push_str(" ⋈ ");
                    go(r, out);
                    out.push(')');
                }
                SnTree::LeftJoin(l, r) => {
                    out.push('(');
                    go(l, out);
                    out.push_str(" ⟕ ");
                    go(r, out);
                    out.push(')');
                }
            }
        }
        let mut s = String::new();
        go(&self.tree, &mut s);
        s
    }
}

#[derive(Default)]
struct Builder {
    tps: Vec<TriplePattern>,
    tp_sn: Vec<SnId>,
    sn_tps: Vec<Vec<TpId>>,
    sn_filters: Vec<Vec<Expr>>,
    global_filters: Vec<Expr>,
}

impl Builder {
    fn build(&mut self, p: &GraphPattern) -> Result<SnTree, SparqlError> {
        if p.is_opt_free() {
            return Ok(SnTree::Leaf(self.new_supernode(p)?));
        }
        match p {
            GraphPattern::Join(l, r) => {
                let lt = self.build(l)?;
                let rt = self.build(r)?;
                Ok(SnTree::Join(Box::new(lt), Box::new(rt)))
            }
            GraphPattern::LeftJoin(l, r) => {
                let lt = self.build(l)?;
                let rt = self.build(r)?;
                Ok(SnTree::LeftJoin(Box::new(lt), Box::new(rt)))
            }
            GraphPattern::Filter(inner, e) => {
                self.global_filters.push(e.clone());
                self.build(inner)
            }
            GraphPattern::Union(_, _) => Err(SparqlError::Unsupported(
                "UNION inside GoSN construction; rewrite to UNION normal form first".into(),
            )),
            GraphPattern::Bgp(_) => unreachable!("BGPs are OPT-free"),
        }
    }

    /// Flattens an OPT-free pattern into one supernode.
    fn new_supernode(&mut self, p: &GraphPattern) -> Result<SnId, SparqlError> {
        let sn = self.sn_tps.len();
        self.sn_tps.push(Vec::new());
        self.sn_filters.push(Vec::new());
        self.flatten_into(p, sn)?;
        Ok(sn)
    }

    fn flatten_into(&mut self, p: &GraphPattern, sn: SnId) -> Result<(), SparqlError> {
        match p {
            GraphPattern::Bgp(tps) => {
                for tp in tps {
                    let id = self.tps.len();
                    self.tps.push(tp.clone());
                    self.tp_sn.push(sn);
                    self.sn_tps[sn].push(id);
                }
                Ok(())
            }
            GraphPattern::Join(l, r) => {
                self.flatten_into(l, sn)?;
                self.flatten_into(r, sn)
            }
            GraphPattern::Filter(inner, e) => {
                self.sn_filters[sn].push(e.clone());
                self.flatten_into(inner, sn)
            }
            GraphPattern::Union(_, _) => Err(SparqlError::Unsupported(
                "UNION inside an OPT-free pattern; rewrite to UNION normal form first".into(),
            )),
            GraphPattern::LeftJoin(_, _) => {
                unreachable!("flatten_into is only called on OPT-free patterns")
            }
        }
    }
}

fn collect_edges(tree: &SnTree, g: &mut Gosn) {
    match tree {
        SnTree::Leaf(_) => {}
        SnTree::Join(l, r) => {
            g.bi.push((l.leftmost(), r.leftmost()));
            collect_edges(l, g);
            collect_edges(r, g);
        }
        SnTree::LeftJoin(l, r) => {
            g.uni.push((l.leftmost(), r.leftmost()));
            collect_edges(l, g);
            collect_edges(r, g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::TermPattern;
    use lbr_rdf::Term;

    fn bgp1(s: &str, p: &str, o: &str) -> GraphPattern {
        let f = |x: &str| {
            if let Some(v) = x.strip_prefix('?') {
                TermPattern::Var(v.to_string())
            } else {
                TermPattern::Const(Term::iri(x))
            }
        };
        GraphPattern::Bgp(vec![TriplePattern::new(f(s), f(p), f(o))])
    }

    /// Figure 2.1(a): Q2 of §1 — `P1 ⟕ P2` with P1 = {tp1}, P2 = {tp2, tp3}.
    fn q2_pattern() -> GraphPattern {
        let p1 = bgp1("Jerry", "hasFriend", "?friend");
        let p2 = GraphPattern::Bgp(vec![
            TriplePattern::new(
                TermPattern::Var("friend".into()),
                TermPattern::Const(Term::iri("actedIn")),
                TermPattern::Var("sitcom".into()),
            ),
            TriplePattern::new(
                TermPattern::Var("sitcom".into()),
                TermPattern::Const(Term::iri("location")),
                TermPattern::Const(Term::iri("NewYorkCity")),
            ),
        ]);
        GraphPattern::left_join(p1, p2)
    }

    #[test]
    fn figure_2_1_a() {
        let g = Gosn::from_pattern(&q2_pattern()).unwrap();
        assert_eq!(g.n_supernodes(), 2);
        assert_eq!(g.tps_of_sn(0), &[0]);
        assert_eq!(g.tps_of_sn(1), &[1, 2]);
        assert_eq!(g.uni_edges(), &[(0, 1)]);
        assert!(g.bi_edges().is_empty());
        assert!(g.is_absolute_master(0));
        assert!(!g.is_absolute_master(1));
        assert!(g.is_master_of(0, 1));
        assert!(g.tp_is_master_of(0, 1) && g.tp_is_master_of(0, 2));
        assert!(g.tp_are_peers(1, 2), "tps of the same supernode are peers");
        assert_eq!(g.serialized(), "(SN0 ⟕ SN1)");
    }

    /// Figure 2.1(b): ((Pa ⟕ Pb) ⋈ (Pc ⟕ Pd)) ⟕ (Pe ⟕ Pf).
    fn fig_2_1_b() -> Gosn {
        let leaf = |n: &str| bgp1(&format!("?x{n}"), &format!("p{n}"), &format!("?y{n}"));
        let pat = GraphPattern::left_join(
            GraphPattern::join(
                GraphPattern::left_join(leaf("a"), leaf("b")),
                GraphPattern::left_join(leaf("c"), leaf("d")),
            ),
            GraphPattern::left_join(leaf("e"), leaf("f")),
        );
        Gosn::from_pattern(&pat).unwrap()
    }

    #[test]
    fn figure_2_1_b() {
        // Supernodes in left-to-right order: a=0 b=1 c=2 d=3 e=4 f=5.
        let g = fig_2_1_b();
        assert_eq!(g.n_supernodes(), 6);
        let mut uni = g.uni_edges().to_vec();
        uni.sort_unstable();
        assert_eq!(uni, vec![(0, 1), (0, 4), (2, 3), (4, 5)]);
        assert_eq!(g.bi_edges(), &[(0, 2)]);
        // Absolute masters: SNa and SNc.
        let abs: Vec<SnId> = (0..6).filter(|&x| g.is_absolute_master(x)).collect();
        assert_eq!(abs, vec![0, 2]);
        // Peers: a ↔ c.
        assert!(g.are_peers(0, 2));
        assert!(!g.are_peers(0, 1));
        // Transitive masters: f's masters are a, c and e.
        assert_eq!(
            g.masters_of(5).iter().copied().collect::<Vec<_>>(),
            vec![0, 2, 4]
        );
        // b and d are mastered by both absolute masters.
        assert_eq!(
            g.masters_of(1).iter().copied().collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert_eq!(
            g.masters_of(3).iter().copied().collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert_eq!(
            g.serialized(),
            "(((SN0 ⟕ SN1) ⋈ (SN2 ⟕ SN3)) ⟕ (SN4 ⟕ SN5))"
        );
    }

    #[test]
    fn undirected_path_is_unique_tree_path() {
        let g = fig_2_1_b();
        // b – a – e – f; edges are reported in traversal orientation.
        assert_eq!(
            g.undirected_path(1, 5),
            vec![
                (1, 0, EdgeKind::Uni),
                (0, 4, EdgeKind::Uni),
                (4, 5, EdgeKind::Uni)
            ]
        );
    }

    #[test]
    fn convert_uni_to_bi_changes_relations() {
        let g = fig_2_1_b();
        let g2 = g.convert_uni_to_bi(&[(0, 1)]);
        assert!(g2.are_peers(0, 1));
        assert!(g2.is_absolute_master(1), "b joined the absolute peer group");
        assert!(g2.uni_edges().iter().all(|&e| e != (0, 1)));
        // d is still a slave.
        assert!(!g2.is_absolute_master(3));
    }

    #[test]
    fn filters_attach_to_supernodes_or_globally() {
        let inner = GraphPattern::filter(bgp1("?x", "p", "?y"), Expr::Bound("x".into()));
        let pat = GraphPattern::left_join(inner, bgp1("?y", "q", "?z"));
        let g = Gosn::from_pattern(&pat).unwrap();
        assert_eq!(g.sn_filters(0).len(), 1);
        assert!(g.global_filters().is_empty());

        let pat2 = GraphPattern::filter(
            GraphPattern::left_join(bgp1("?x", "p", "?y"), bgp1("?y", "q", "?z")),
            Expr::Bound("z".into()),
        );
        let g2 = Gosn::from_pattern(&pat2).unwrap();
        assert_eq!(g2.global_filters().len(), 1);
    }

    #[test]
    fn union_is_rejected() {
        let pat = GraphPattern::left_join(
            bgp1("?x", "p", "?y"),
            GraphPattern::union(bgp1("?y", "q", "?z"), bgp1("?y", "r", "?z")),
        );
        assert!(matches!(
            Gosn::from_pattern(&pat),
            Err(SparqlError::Unsupported(_))
        ));
    }

    #[test]
    fn deep_nesting_keeps_leftmost_rule() {
        // (((Pa ⟕ Pb) ⟕ Pc) ⋈ Pd): leftmost of the left side is Pa.
        let pat = GraphPattern::join(
            GraphPattern::left_join(
                GraphPattern::left_join(bgp1("?a", "p", "?b"), bgp1("?b", "q", "?c")),
                bgp1("?a", "r", "?d"),
            ),
            bgp1("?a", "s", "?e"),
        );
        let g = Gosn::from_pattern(&pat).unwrap();
        let mut uni = g.uni_edges().to_vec();
        uni.sort_unstable();
        assert_eq!(uni, vec![(0, 1), (0, 2)]);
        assert_eq!(g.bi_edges(), &[(0, 3)]);
        assert!(g.are_peers(0, 3));
    }
}
