//! §5.2 rewrites: UNION normal form and filter push-in.
//!
//! Rewrite rules (equivalences (1)–(5) of the paper):
//!
//! 1. `(P1 ∪ P2) ⋈ P3 ≡ (P1 ⋈ P3) ∪ (P2 ⋈ P3)` (and symmetrically),
//! 2. `(P1 ∪ P2) ⟕ P3 ≡ (P1 ⟕ P3) ∪ (P2 ⟕ P3)`,
//! 3. `P1 ⟕ (P2 ∪ P3) → (P1 ⟕ P2) ∪ (P1 ⟕ P3)` — **not** an equivalence:
//!    spurious subsumed results may appear and must be removed by a final
//!    best-match pass (flagged via [`UnfBranch::used_rule3`]),
//! 4. `(P1 ⟕ P2) FILTER R ≡ (P1 FILTER R) ⟕ P2` for safe filters with
//!    `vars(R) ⊆ vars(P1)`,
//! 5. `(P1 ∪ P2) FILTER R ≡ (P1 FILTER R) ∪ (P2 FILTER R)`.
//!
//! Plus the "cheap" optimization: `P FILTER(?m = ?n)` rewrites to `P` with
//! every `?n` replaced by `?m`.

use crate::algebra::{Expr, GraphPattern, TriplePattern};
use std::collections::BTreeSet;

/// One UNION-free branch of the UNION normal form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnfBranch {
    /// The union-free pattern (filters pushed in as far as safely possible).
    pub pattern: GraphPattern,
    /// True when rule (3) fired anywhere on the way to this branch — the
    /// caller must apply best-match across all branches to drop spurious
    /// subsumed results.
    pub used_rule3: bool,
}

/// Rewrites a pattern into UNION normal form `P1 ∪ … ∪ Pn`.
pub fn rewrite_to_unf(pattern: &GraphPattern) -> Vec<UnfBranch> {
    branches(pattern)
}

fn branches(p: &GraphPattern) -> Vec<UnfBranch> {
    match p {
        GraphPattern::Bgp(_) => {
            vec![UnfBranch {
                pattern: p.clone(),
                used_rule3: false,
            }]
        }
        GraphPattern::Union(l, r) => {
            let mut out = branches(l);
            out.extend(branches(r));
            out
        }
        GraphPattern::Join(l, r) => {
            // Rule (1) in both directions: distribute over all pairs.
            let ls = branches(l);
            let rs = branches(r);
            let mut out = Vec::with_capacity(ls.len() * rs.len());
            for bl in &ls {
                for br in &rs {
                    out.push(UnfBranch {
                        pattern: GraphPattern::join(bl.pattern.clone(), br.pattern.clone()),
                        used_rule3: bl.used_rule3 || br.used_rule3,
                    });
                }
            }
            out
        }
        GraphPattern::LeftJoin(l, r) => {
            let ls = branches(l); // rule (2)
            let rs = branches(r); // rule (3) when |rs| > 1
            let rule3 = rs.len() > 1;
            let mut out = Vec::with_capacity(ls.len() * rs.len());
            for bl in &ls {
                for br in &rs {
                    out.push(UnfBranch {
                        pattern: GraphPattern::left_join(bl.pattern.clone(), br.pattern.clone()),
                        used_rule3: rule3 || bl.used_rule3 || br.used_rule3,
                    });
                }
            }
            out
        }
        GraphPattern::Filter(inner, e) => {
            // Rule (5): distribute the filter over the branches, then push
            // it inside each branch (rule (4) and join-side placement).
            branches(inner)
                .into_iter()
                .map(|b| UnfBranch {
                    pattern: push_filter(b.pattern, e.clone()),
                    ..b
                })
                .collect()
        }
    }
}

/// Pushes a (safe) filter as deep as its variable set allows.
pub fn push_filter(p: GraphPattern, e: Expr) -> GraphPattern {
    // Cheap optimization: FILTER(?m = ?n) → substitute ?n by ?m.
    if let Expr::Eq(a, b) = &e {
        if let (Expr::Var(m), Expr::Var(n)) = (a.as_ref(), b.as_ref()) {
            return substitute_var(p, n, m);
        }
    }
    let fvars: BTreeSet<String> = e.vars().into_iter().map(|s| s.to_string()).collect();
    push_filter_inner(p, e, &fvars)
}

fn covers(p: &GraphPattern, fvars: &BTreeSet<String>) -> bool {
    let vars = p.variables();
    fvars.iter().all(|v| vars.contains(v.as_str()))
}

fn push_filter_inner(p: GraphPattern, e: Expr, fvars: &BTreeSet<String>) -> GraphPattern {
    match p {
        GraphPattern::LeftJoin(l, r) if covers(&l, fvars) => {
            // Rule (4).
            GraphPattern::left_join(push_filter_inner(*l, e, fvars), *r)
        }
        GraphPattern::Join(l, r) => {
            if covers(&l, fvars) {
                GraphPattern::join(push_filter_inner(*l, e, fvars), *r)
            } else if covers(&r, fvars) {
                GraphPattern::join(*l, push_filter_inner(*r, e, fvars))
            } else {
                GraphPattern::filter(GraphPattern::Join(l, r), e)
            }
        }
        other => GraphPattern::filter(other, e),
    }
}

/// Replaces every occurrence of variable `from` by `to` in triple patterns
/// and filters.
pub fn substitute_var(p: GraphPattern, from: &str, to: &str) -> GraphPattern {
    use crate::algebra::TermPattern;
    let sub_tp = |tp: &TriplePattern| -> TriplePattern {
        let f = |t: &TermPattern| match t {
            TermPattern::Var(v) if v == from => TermPattern::Var(to.to_string()),
            other => other.clone(),
        };
        TriplePattern::new(f(&tp.s), f(&tp.p), f(&tp.o))
    };
    match p {
        GraphPattern::Bgp(tps) => GraphPattern::Bgp(tps.iter().map(sub_tp).collect()),
        GraphPattern::Join(l, r) => {
            GraphPattern::join(substitute_var(*l, from, to), substitute_var(*r, from, to))
        }
        GraphPattern::LeftJoin(l, r) => {
            GraphPattern::left_join(substitute_var(*l, from, to), substitute_var(*r, from, to))
        }
        GraphPattern::Union(l, r) => {
            GraphPattern::union(substitute_var(*l, from, to), substitute_var(*r, from, to))
        }
        GraphPattern::Filter(inner, e) => GraphPattern::filter(
            substitute_var(*inner, from, to),
            substitute_expr(e, from, to),
        ),
    }
}

fn substitute_expr(e: Expr, from: &str, to: &str) -> Expr {
    let go = |x: Box<Expr>| Box::new(substitute_expr(*x, from, to));
    match e {
        Expr::Var(v) if v == from => Expr::Var(to.to_string()),
        Expr::Bound(v) if v == from => Expr::Bound(to.to_string()),
        Expr::Eq(a, b) => Expr::Eq(go(a), go(b)),
        Expr::Ne(a, b) => Expr::Ne(go(a), go(b)),
        Expr::Lt(a, b) => Expr::Lt(go(a), go(b)),
        Expr::Le(a, b) => Expr::Le(go(a), go(b)),
        Expr::Gt(a, b) => Expr::Gt(go(a), go(b)),
        Expr::Ge(a, b) => Expr::Ge(go(a), go(b)),
        Expr::And(a, b) => Expr::And(go(a), go(b)),
        Expr::Or(a, b) => Expr::Or(go(a), go(b)),
        Expr::Not(a) => Expr::Not(go(a)),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::TermPattern;
    use lbr_rdf::Term;

    fn bgp(tps: &[(&str, &str, &str)]) -> GraphPattern {
        let f = |x: &str| {
            if let Some(v) = x.strip_prefix('?') {
                TermPattern::Var(v.to_string())
            } else {
                TermPattern::Const(Term::iri(x))
            }
        };
        GraphPattern::Bgp(
            tps.iter()
                .map(|&(s, p, o)| TriplePattern::new(f(s), f(p), f(o)))
                .collect(),
        )
    }

    #[test]
    fn union_free_is_single_branch() {
        let q = GraphPattern::left_join(bgp(&[("?a", "p", "?b")]), bgp(&[("?b", "q", "?c")]));
        let b = rewrite_to_unf(&q);
        assert_eq!(b.len(), 1);
        assert!(!b[0].used_rule3);
        assert_eq!(b[0].pattern, q);
    }

    #[test]
    fn rule_1_distributes_join() {
        let q = GraphPattern::join(
            GraphPattern::union(bgp(&[("?a", "p1", "?b")]), bgp(&[("?a", "p2", "?b")])),
            bgp(&[("?b", "q", "?c")]),
        );
        let b = rewrite_to_unf(&q);
        assert_eq!(b.len(), 2);
        assert!(b.iter().all(|x| !x.used_rule3));
        assert!(b.iter().all(|x| !x.pattern.has_union()));
    }

    #[test]
    fn rule_2_distributes_left_union() {
        let q = GraphPattern::left_join(
            GraphPattern::union(bgp(&[("?a", "p1", "?b")]), bgp(&[("?a", "p2", "?b")])),
            bgp(&[("?b", "q", "?c")]),
        );
        let b = rewrite_to_unf(&q);
        assert_eq!(b.len(), 2);
        assert!(
            b.iter().all(|x| !x.used_rule3),
            "rule (2) is an equivalence"
        );
    }

    #[test]
    fn rule_3_flags_spurious_results() {
        let q = GraphPattern::left_join(
            bgp(&[("?a", "p", "?b")]),
            GraphPattern::union(bgp(&[("?b", "q1", "?c")]), bgp(&[("?b", "q2", "?c")])),
        );
        let b = rewrite_to_unf(&q);
        assert_eq!(b.len(), 2);
        assert!(
            b.iter().all(|x| x.used_rule3),
            "rule (3) branches need best-match"
        );
    }

    #[test]
    fn nested_unions_multiply() {
        let u = |p1: GraphPattern, p2| GraphPattern::union(p1, p2);
        let q = GraphPattern::join(
            u(bgp(&[("?a", "p1", "?b")]), bgp(&[("?a", "p2", "?b")])),
            u(bgp(&[("?b", "q1", "?c")]), bgp(&[("?b", "q2", "?c")])),
        );
        assert_eq!(rewrite_to_unf(&q).len(), 4);
    }

    #[test]
    fn rule_4_pushes_filter_into_master() {
        let e = Expr::Gt(
            Box::new(Expr::Var("a".into())),
            Box::new(Expr::Const(Term::integer(3))),
        );
        let q = GraphPattern::filter(
            GraphPattern::left_join(bgp(&[("?a", "p", "?b")]), bgp(&[("?b", "q", "?c")])),
            e.clone(),
        );
        let b = rewrite_to_unf(&q);
        assert_eq!(b.len(), 1);
        match &b[0].pattern {
            GraphPattern::LeftJoin(l, _) => {
                assert!(
                    matches!(**l, GraphPattern::Filter(_, _)),
                    "filter pushed to master side"
                )
            }
            other => panic!("expected LeftJoin, got {other:?}"),
        }
    }

    #[test]
    fn filter_on_slave_vars_stays_outside() {
        // vars(R) ⊄ vars(P1): rule (4) must NOT fire.
        let e = Expr::Bound("c".into());
        let q = GraphPattern::filter(
            GraphPattern::left_join(bgp(&[("?a", "p", "?b")]), bgp(&[("?b", "q", "?c")])),
            e,
        );
        let b = rewrite_to_unf(&q);
        assert!(matches!(b[0].pattern, GraphPattern::Filter(_, _)));
    }

    #[test]
    fn rule_5_distributes_filter_over_union() {
        let e = Expr::Bound("a".into());
        let q = GraphPattern::filter(
            GraphPattern::union(bgp(&[("?a", "p1", "?b")]), bgp(&[("?a", "p2", "?b")])),
            e,
        );
        let b = rewrite_to_unf(&q);
        assert_eq!(b.len(), 2);
        for br in &b {
            assert!(br.pattern.has_filter());
            assert!(!br.pattern.has_union());
        }
    }

    #[test]
    fn cheap_var_equality_substitution() {
        let e = Expr::Eq(
            Box::new(Expr::Var("m".into())),
            Box::new(Expr::Var("n".into())),
        );
        let q = GraphPattern::filter(bgp(&[("?m", "p", "?n")]), e);
        let b = rewrite_to_unf(&q);
        assert_eq!(b[0].pattern, bgp(&[("?m", "p", "?m")]));
    }

    #[test]
    fn join_side_filter_placement() {
        let e = Expr::Bound("c".into());
        let q = GraphPattern::filter(
            GraphPattern::join(bgp(&[("?a", "p", "?b")]), bgp(&[("?b", "q", "?c")])),
            e,
        );
        let b = rewrite_to_unf(&q);
        match &b[0].pattern {
            GraphPattern::Join(_, r) => assert!(matches!(**r, GraphPattern::Filter(_, _))),
            other => panic!("expected Join, got {other:?}"),
        }
    }
}
