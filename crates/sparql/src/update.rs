//! SPARQL 1.1 Update (the subset an updatable BitMat store needs):
//! `INSERT DATA`, `DELETE DATA` and `DELETE WHERE`.
//!
//! An update request is a `;`-separated sequence of operations sharing
//! one prologue of `PREFIX` declarations, executed in order:
//!
//! ```text
//! PREFIX ex: <http://example.org/>
//! INSERT DATA { ex:s ex:p ex:o . ex:s ex:p "v" } ;
//! DELETE DATA { ex:s ex:q ex:old } ;
//! DELETE WHERE { ex:s ex:p ?o }
//! ```
//!
//! * `INSERT DATA` / `DELETE DATA` take **ground** triples — a variable
//!   in the block is a parse error, per the SPARQL 1.1 grammar
//!   (`QuadData` allows no variables);
//! * `DELETE WHERE` takes a basic graph pattern (triples only — the LBR
//!   engine evaluates it as a `SELECT *` and deletes every instantiation;
//!   `OPTIONAL`/`UNION`/`FILTER` are not part of this subset).
//!
//! Parsing reuses the query [`crate::parser`] internals (same tokens,
//! same prefix handling, same comment rules), so IRIs, qnames, literals
//! and `a` behave identically in queries and updates.

use crate::algebra::{TermPattern, TriplePattern};
use crate::error::SparqlError;
use crate::parser::Parser;
use lbr_rdf::Triple;

/// One operation of an update request.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    /// `INSERT DATA { … }` — add these ground triples.
    InsertData(Vec<Triple>),
    /// `DELETE DATA { … }` — remove these ground triples.
    DeleteData(Vec<Triple>),
    /// `DELETE WHERE { … }` — remove every instantiation of the pattern.
    DeleteWhere(Vec<TriplePattern>),
}

/// A parsed update request: operations in execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// The operations, in the order they must be applied.
    pub ops: Vec<UpdateOp>,
}

/// Parses an update request.
pub fn parse_update(input: &str) -> Result<Update, SparqlError> {
    let mut p = Parser::new(input);
    p.skip_ws();
    while p.eat_keyword("PREFIX") {
        p.parse_prefix_decl()?;
    }
    let mut ops = Vec::new();
    loop {
        if p.eat_keyword("INSERT") {
            if !p.eat_keyword("DATA") {
                return Err(p.err("expected DATA after INSERT (only INSERT DATA is supported)"));
            }
            ops.push(UpdateOp::InsertData(parse_ground_block(
                &mut p,
                "INSERT DATA",
            )?));
        } else if p.eat_keyword("DELETE") {
            if p.eat_keyword("DATA") {
                ops.push(UpdateOp::DeleteData(parse_ground_block(
                    &mut p,
                    "DELETE DATA",
                )?));
            } else if p.eat_keyword("WHERE") {
                ops.push(UpdateOp::DeleteWhere(parse_pattern_block(&mut p)?));
            } else {
                return Err(p.err("expected DATA or WHERE after DELETE"));
            }
        } else if ops.is_empty() {
            return Err(p.err("expected INSERT DATA, DELETE DATA or DELETE WHERE"));
        } else {
            return Err(p.err("expected another operation after ';'"));
        }
        // `;` separates operations; a trailing `;` before end is allowed.
        if !p.eat_char(b';') {
            break;
        }
        if p.at_end() {
            break;
        }
    }
    if !p.at_end() {
        return Err(p.err("trailing input after update"));
    }
    Ok(Update { ops })
}

/// `{ triples }` where every term must be constant.
fn parse_ground_block(p: &mut Parser<'_>, what: &str) -> Result<Vec<Triple>, SparqlError> {
    let tps = parse_pattern_block(p)?;
    tps.into_iter()
        .map(|tp| {
            ground(&tp).ok_or_else(|| SparqlError::Parse {
                at: 0,
                message: format!("{what} takes ground triples; found a variable in the block"),
            })
        })
        .collect()
}

/// `{ triple patterns }` — a plain triples block, no sub-patterns.
fn parse_pattern_block(p: &mut Parser<'_>) -> Result<Vec<TriplePattern>, SparqlError> {
    p.expect_char(b'{')?;
    p.skip_ws();
    let tps = if p.peek() == Some(b'}') {
        Vec::new()
    } else {
        p.parse_triples_block()?
    };
    p.expect_char(b'}')?;
    Ok(tps)
}

/// Converts a fully-constant pattern into a concrete triple.
fn ground(tp: &TriplePattern) -> Option<Triple> {
    match (&tp.s, &tp.p, &tp.o) {
        (TermPattern::Const(s), TermPattern::Const(p), TermPattern::Const(o)) => {
            Some(Triple::new(s.clone(), p.clone(), o.clone()))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_rdf::Term;

    fn iri(v: &str) -> Term {
        Term::iri(v)
    }

    #[test]
    fn insert_data_with_prefixes_and_literals() {
        let u = parse_update(
            r#"PREFIX ex: <http://ex.org/>
               INSERT DATA { ex:s ex:p ex:o . ex:s ex:p "v\"w" . }"#,
        )
        .unwrap();
        assert_eq!(u.ops.len(), 1);
        let UpdateOp::InsertData(ts) = &u.ops[0] else {
            panic!("wrong op")
        };
        assert_eq!(
            ts[0],
            Triple::new(
                iri("http://ex.org/s"),
                iri("http://ex.org/p"),
                iri("http://ex.org/o")
            )
        );
        assert_eq!(ts[1].o, Term::literal("v\"w"));
    }

    #[test]
    fn sequences_share_the_prologue_and_keep_order() {
        let u = parse_update(
            "PREFIX e: <u:> INSERT DATA { e:a e:p e:b } ;
             DELETE DATA { e:a e:p e:b } ;
             DELETE WHERE { ?s e:p ?o } ;",
        )
        .unwrap();
        assert_eq!(u.ops.len(), 3);
        assert!(matches!(u.ops[0], UpdateOp::InsertData(_)));
        assert!(matches!(u.ops[1], UpdateOp::DeleteData(_)));
        let UpdateOp::DeleteWhere(tps) = &u.ops[2] else {
            panic!("wrong op")
        };
        assert_eq!(tps.len(), 1);
        assert!(matches!(tps[0].s, TermPattern::Var(_)));
    }

    #[test]
    fn empty_blocks_are_legal() {
        let u = parse_update("INSERT DATA { }").unwrap();
        assert_eq!(u.ops, vec![UpdateOp::InsertData(vec![])]);
    }

    #[test]
    fn variables_in_data_blocks_are_rejected() {
        assert!(parse_update("INSERT DATA { ?s <p> <o> }").is_err());
        assert!(parse_update("DELETE DATA { <s> <p> ?o }").is_err());
        // …but fine in DELETE WHERE.
        assert!(parse_update("DELETE WHERE { <s> <p> ?o }").is_ok());
    }

    #[test]
    fn malformed_updates_are_rejected() {
        for bad in [
            "",
            "INSERT { <s> <p> <o> }",              // no DATA
            "DELETE { <s> <p> <o> }",              // no DATA/WHERE
            "INSERT DATA { <s> <p> <o> ",          // unterminated
            "INSERT DATA { <s> <p> <o> } garbage", // trailing input
            "INSERT DATA { <s> <p> <o> } ; ; ",    // empty op after ;
            "SELECT * WHERE { ?s ?p ?o }",         // a query, not an update
        ] {
            assert!(parse_update(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn a_keyword_and_comments_work_in_updates() {
        let u = parse_update("# add a type\nINSERT DATA { <s> a <C> . } # trailing").unwrap();
        let UpdateOp::InsertData(ts) = &u.ops[0] else {
            panic!("wrong op")
        };
        assert_eq!(ts[0].p, iri(crate::parser::RDF_TYPE));
    }
}
