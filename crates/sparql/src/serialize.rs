//! Re-serialization of the algebra back to parseable SPARQL text.
//!
//! [`to_sparql`] is the inverse of [`crate::parse_query`] up to
//! whitespace and grouping: `parse(to_sparql(q))` yields a query with the
//! same algebra. Useful for logging, for shipping rewritten queries (UNF
//! branches, NWD-transformed patterns) to other engines, and as a
//! round-trip test target for the parser.

use crate::algebra::{Expr, GraphPattern, Query, TermPattern, TriplePattern};
use std::fmt::Write as _;

/// Renders a query as SPARQL text that [`crate::parse_query`] accepts.
/// The form prefix and modifier suffix come from the same serializers
/// `Query`'s `Display` uses ([`crate::algebra::QueryForm::write_prefix`]
/// / [`crate::algebra::Modifiers::write_suffix`]), so the two cannot
/// drift; only the pattern rendering differs.
pub fn to_sparql(query: &Query) -> String {
    let mut s = String::new();
    let _ = query.form.write_prefix(&mut s);
    s.push_str(&pattern_text(&query.pattern));
    let _ = query.modifiers.write_suffix(&mut s);
    s
}

/// Renders a pattern as a braced group.
pub fn pattern_text(p: &GraphPattern) -> String {
    let mut s = String::new();
    write_group(p, &mut s);
    s
}

fn term(t: &TermPattern, out: &mut String) {
    match t {
        TermPattern::Var(v) => {
            let _ = write!(out, "?{v}");
        }
        TermPattern::Const(c) => {
            let _ = write!(out, "{c}");
        }
    }
}

fn write_tp(tp: &TriplePattern, out: &mut String) {
    term(&tp.s, out);
    out.push(' ');
    term(&tp.p, out);
    out.push(' ');
    term(&tp.o, out);
    out.push_str(" . ");
}

/// Writes `p` as a `{ … }` group. OPTIONAL right-hand sides and UNION arms
/// become nested groups; left-fold structure re-emerges on parse.
fn write_group(p: &GraphPattern, out: &mut String) {
    out.push_str("{ ");
    write_body(p, out);
    out.push('}');
}

fn write_body(p: &GraphPattern, out: &mut String) {
    match p {
        GraphPattern::Bgp(tps) => {
            for tp in tps {
                write_tp(tp, out);
            }
        }
        GraphPattern::Join(l, r) => {
            // Juxtaposition; UNION arms need their own braces to keep
            // precedence.
            if matches!(**l, GraphPattern::Union(_, _)) {
                write_group(l, out);
                out.push(' ');
            } else {
                write_body(l, out);
            }
            if matches!(**r, GraphPattern::Bgp(_)) {
                write_body(r, out);
            } else {
                write_group(r, out);
                out.push(' ');
            }
        }
        GraphPattern::LeftJoin(l, r) => {
            if matches!(**l, GraphPattern::Union(_, _)) {
                write_group(l, out);
                out.push(' ');
            } else {
                write_body(l, out);
            }
            out.push_str("OPTIONAL ");
            write_group(r, out);
            out.push(' ');
        }
        GraphPattern::Union(l, r) => {
            write_group(l, out);
            out.push_str(" UNION ");
            write_group(r, out);
            out.push(' ');
        }
        GraphPattern::Filter(inner, e) => {
            write_body(inner, out);
            out.push_str("FILTER ( ");
            write_expr(e, out);
            out.push_str(" ) ");
        }
    }
}

fn write_expr(e: &Expr, out: &mut String) {
    let bin = |out: &mut String, a: &Expr, op: &str, b: &Expr| {
        out.push_str("( ");
        write_expr(a, out);
        let _ = write!(out, " {op} ");
        write_expr(b, out);
        out.push_str(" )");
    };
    match e {
        Expr::Var(v) => {
            let _ = write!(out, "?{v}");
        }
        Expr::Const(t) => {
            let _ = write!(out, "{t}");
        }
        Expr::Eq(a, b) => bin(out, a, "=", b),
        Expr::Ne(a, b) => bin(out, a, "!=", b),
        Expr::Lt(a, b) => bin(out, a, "<", b),
        Expr::Le(a, b) => bin(out, a, "<=", b),
        Expr::Gt(a, b) => bin(out, a, ">", b),
        Expr::Ge(a, b) => bin(out, a, ">=", b),
        Expr::And(a, b) => bin(out, a, "&&", b),
        Expr::Or(a, b) => bin(out, a, "||", b),
        Expr::Not(a) => {
            out.push_str("!( ");
            write_expr(a, out);
            out.push_str(" )");
        }
        Expr::Bound(v) => {
            let _ = write!(out, "BOUND(?{v})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    /// Structural equivalence modulo the parser's BGP-merging: compare the
    /// TP sequence plus the join/OPT/union/filter skeleton.
    fn skeleton(p: &GraphPattern) -> String {
        match p {
            GraphPattern::Bgp(tps) => {
                format!(
                    "B[{}]",
                    tps.iter()
                        .map(|t| t.to_string())
                        .collect::<Vec<_>>()
                        .join(";")
                )
            }
            GraphPattern::Join(l, r) => format!("J({},{})", skeleton(l), skeleton(r)),
            GraphPattern::LeftJoin(l, r) => format!("L({},{})", skeleton(l), skeleton(r)),
            GraphPattern::Union(l, r) => format!("U({},{})", skeleton(l), skeleton(r)),
            GraphPattern::Filter(i, e) => format!("F({},{e})", skeleton(i)),
        }
    }

    #[track_caller]
    fn roundtrips(text: &str) {
        let q1 = parse_query(text).unwrap();
        let printed = to_sparql(&q1);
        let q2 = parse_query(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\nprinted: {printed}"));
        assert_eq!(
            skeleton(&q1.pattern),
            skeleton(&q2.pattern),
            "skeleton changed;\noriginal: {text}\nprinted: {printed}"
        );
        assert_eq!(q1.form, q2.form);
        assert_eq!(q1.modifiers, q2.modifiers);
    }

    #[test]
    fn simple_roundtrips() {
        roundtrips("SELECT * WHERE { ?a <p> ?b . }");
        roundtrips("SELECT ?a ?b WHERE { ?a <p> ?b . ?b <q> <c> . }");
        roundtrips("SELECT * WHERE { ?a <p> ?b . OPTIONAL { ?b <q> ?c . ?c <r> ?d . } }");
    }

    #[test]
    fn nested_roundtrips() {
        roundtrips(
            "SELECT * WHERE { { ?a <p> ?b . OPTIONAL { ?b <q> ?c . } }
               { ?a <r> ?d . OPTIONAL { ?d <s> ?e . OPTIONAL { ?e <t> ?f . } } } }",
        );
        roundtrips("SELECT * WHERE { { ?a <p> ?b . } UNION { ?a <q> ?b . } }");
        roundtrips(
            "SELECT * WHERE { ?a <p> ?b .
               OPTIONAL { { ?b <q> ?c . } UNION { ?b <r> ?c . } } }",
        );
    }

    #[test]
    fn filter_roundtrips() {
        roundtrips("SELECT * WHERE { ?a <p> ?b . FILTER ( ?b > 3 && ?b < 9 ) }");
        roundtrips("SELECT * WHERE { ?a <p> ?b . FILTER ( BOUND(?b) || !( ?a = <x> ) ) }");
        roundtrips("SELECT * WHERE { ?a <p> ?b . OPTIONAL { ?b <q> ?c . FILTER ( ?c != <z> ) } }");
    }

    #[test]
    fn literals_roundtrip() {
        roundtrips(r#"SELECT * WHERE { ?a <p> "lit with spaces" . ?a <q> 42 . }"#);
    }

    #[test]
    fn forms_and_modifiers_roundtrip() {
        roundtrips("ASK { ?a <p> ?b . }");
        roundtrips("ASK { ?a <p> ?b . OPTIONAL { ?b <q> ?c . } } LIMIT 1 OFFSET 2");
        roundtrips("SELECT DISTINCT ?a WHERE { ?a <p> ?b . }");
        roundtrips("SELECT REDUCED * WHERE { ?a <p> ?b . }");
        roundtrips("SELECT * WHERE { ?a <p> ?b . } ORDER BY DESC(?b) ?a LIMIT 10 OFFSET 3");
        roundtrips("SELECT ?a WHERE { ?a <p> ?b . } ORDER BY ?b OFFSET 7");
        roundtrips(
            "SELECT DISTINCT ?a WHERE { ?a <p> ?b . OPTIONAL { ?b <q> ?c . } }
               ORDER BY ASC(?a) DESC(?c) LIMIT 5",
        );
    }
}
