//! Well-designedness (Pérez et al., §2.2) and the Appendix-B
//! transformation for non-well-designed (NWD) patterns.
//!
//! A pattern is **well-designed** when for every sub-pattern
//! `P' = Pk ⟕ Pl`: every variable of `Pl` that also appears *outside* `P'`
//! appears in `Pk` too. Violations identify pairs of OPT-free BGPs
//! (supernodes); converting the unidirectional edges on the unique GoSN
//! path between each violating pair into bidirectional edges yields a GoSN
//! on which the ordinary LBR machinery is sound under SQL's null-intolerant
//! join semantics (Appendix B).

use crate::algebra::GraphPattern;
use crate::gosn::{EdgeKind, Gosn, SnId};
use std::collections::BTreeSet;

/// One well-designedness violation: variable `var` occurs in the slave side
/// of an OPTIONAL and in a supernode outside it, but not in the master side.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// The offending join variable.
    pub var: String,
    /// A supernode inside the OPTIONAL's right-hand side containing `var`.
    pub slave_sn: SnId,
    /// A supernode outside the OPTIONAL pattern containing `var`.
    pub outside_sn: SnId,
}

/// Tests well-designedness.
pub fn is_well_designed(pattern: &GraphPattern) -> bool {
    let Ok(gosn) = Gosn::from_pattern(pattern) else {
        // UNION queries: well-designedness is tested per UNF branch.
        return false;
    };
    violations_with(pattern, &gosn).is_empty()
}

/// Lists all violations (deduplicated supernode pairs).
pub fn violations(pattern: &GraphPattern) -> Vec<Violation> {
    match Gosn::from_pattern(pattern) {
        Ok(gosn) => violations_with(pattern, &gosn),
        Err(_) => Vec::new(),
    }
}

/// Lists violations against a pre-built GoSN (TP order must match).
pub fn violations_with(pattern: &GraphPattern, gosn: &Gosn) -> Vec<Violation> {
    let tps = pattern.triple_patterns();
    let mut out: BTreeSet<Violation> = BTreeSet::new();
    // Each subtree owns a contiguous TP index range in left-to-right order.
    walk(pattern, 0, &tps, gosn, &mut out);
    out.into_iter().collect()
}

/// Recursively visits sub-patterns; returns the TP count of the subtree.
fn walk(
    p: &GraphPattern,
    start: usize,
    all: &[&crate::algebra::TriplePattern],
    gosn: &Gosn,
    out: &mut BTreeSet<Violation>,
) -> usize {
    match p {
        GraphPattern::Bgp(tps) => tps.len(),
        GraphPattern::Filter(inner, _) => walk(inner, start, all, gosn, out),
        GraphPattern::Union(l, r) | GraphPattern::Join(l, r) => {
            let ln = walk(l, start, all, gosn, out);
            let rn = walk(r, start + ln, all, gosn, out);
            ln + rn
        }
        GraphPattern::LeftJoin(l, r) => {
            let ln = walk(l, start, all, gosn, out);
            let rn = walk(r, start + ln, all, gosn, out);
            let whole = start..start + ln + rn;
            let right = start + ln..start + ln + rn;
            // Variables of Pk (the master side).
            let mut master_vars: BTreeSet<&str> = BTreeSet::new();
            for tp in &all[start..start + ln] {
                master_vars.extend(tp.vars());
            }
            // For each var of Pl: does it occur outside P' but not in Pk?
            for l_idx in right.clone() {
                for v in all[l_idx].vars() {
                    if master_vars.contains(v) {
                        continue;
                    }
                    for (o_idx, tp) in all.iter().enumerate() {
                        if whole.contains(&o_idx) {
                            continue;
                        }
                        if tp.has_var(v) {
                            out.insert(Violation {
                                var: v.to_string(),
                                slave_sn: gosn.sn_of_tp(l_idx),
                                outside_sn: gosn.sn_of_tp(o_idx),
                            });
                        }
                    }
                }
            }
            ln + rn
        }
    }
}

/// Appendix-B transformation: for every violation, converts all
/// unidirectional edges on the (unique, undirected) GoSN path between the
/// violating supernodes into bidirectional edges. Monotonic and
/// convergent: edges only ever change ⟕ → ⋈.
pub fn transform_nwd(gosn: &Gosn, violations: &[Violation]) -> Gosn {
    let mut to_convert: BTreeSet<(SnId, SnId)> = BTreeSet::new();
    for v in violations {
        for (a, b, kind) in gosn.undirected_path(v.slave_sn, v.outside_sn) {
            if kind == EdgeKind::Uni {
                // Stored orientation: uni edges are kept as (master, slave);
                // the path reports traversal order, so look both ways.
                if gosn.uni_edges().contains(&(a, b)) {
                    to_convert.insert((a, b));
                } else {
                    to_convert.insert((b, a));
                }
            }
        }
    }
    let edges: Vec<(SnId, SnId)> = to_convert.into_iter().collect();
    gosn.convert_uni_to_bi(&edges)
}

/// The Appendix-B transformation applied at the *pattern* level: rebuilds
/// the query tree with every LeftJoin whose GoSN edge the transformation
/// converts turned into an inner Join. Iterates to a fixpoint (conversion
/// can surface further violations in deeply nested queries).
///
/// This is the **semantics the paper assigns to non-well-designed
/// queries**: it coincides with SQL's null-intolerant evaluation of the
/// original query for the common shapes (a violating OPTIONAL consumed by
/// a downstream null-intolerant inner join — the Galindo-Legaria
/// simplification), but for violations buried under further OPTIONALs it
/// is genuinely a *definition*, not an equivalence.
pub fn transform_nwd_pattern(pattern: &GraphPattern) -> GraphPattern {
    let mut current = pattern.clone();
    for _ in 0..64 {
        let Ok(gosn) = Gosn::from_pattern(&current) else {
            return current;
        };
        let viols = violations_with(&current, &gosn);
        if viols.is_empty() {
            return current;
        }
        let mut converted: BTreeSet<(SnId, SnId)> = BTreeSet::new();
        for v in &viols {
            for (a, b, kind) in gosn.undirected_path(v.slave_sn, v.outside_sn) {
                if kind == EdgeKind::Uni {
                    converted.insert((a.min(b), a.max(b)));
                }
            }
        }
        let mut counter = 0usize;
        current = rebuild(&current, &converted, &mut counter).0;
    }
    current
}

/// Rebuilds the tree, numbering supernodes exactly as [`Gosn`] does
/// (left-to-right extraction of maximal OPT-free sub-patterns) and turning
/// converted LeftJoins into Joins. Returns the subtree and its leftmost
/// supernode id.
fn rebuild(
    p: &GraphPattern,
    converted: &BTreeSet<(SnId, SnId)>,
    counter: &mut usize,
) -> (GraphPattern, SnId) {
    if p.is_opt_free() {
        let id = *counter;
        *counter += 1;
        return (p.clone(), id);
    }
    match p {
        GraphPattern::Join(l, r) => {
            let (lp, la) = rebuild(l, converted, counter);
            let (rp, _) = rebuild(r, converted, counter);
            (GraphPattern::join(lp, rp), la)
        }
        GraphPattern::LeftJoin(l, r) => {
            let (lp, la) = rebuild(l, converted, counter);
            let (rp, rb) = rebuild(r, converted, counter);
            let key = (la.min(rb), la.max(rb));
            if converted.contains(&key) {
                (GraphPattern::join(lp, rp), la)
            } else {
                (GraphPattern::left_join(lp, rp), la)
            }
        }
        GraphPattern::Filter(inner, e) => {
            let (ip, a) = rebuild(inner, converted, counter);
            (GraphPattern::filter(ip, e.clone()), a)
        }
        GraphPattern::Union(_, _) | GraphPattern::Bgp(_) => {
            // Unions are rewritten away before NWD handling; BGPs are
            // OPT-free and handled above.
            let id = *counter;
            *counter += 1;
            (p.clone(), id)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{TermPattern, TriplePattern};
    use lbr_rdf::Term;

    fn bgp(tps: &[(&str, &str, &str)]) -> GraphPattern {
        let f = |x: &str| {
            if let Some(v) = x.strip_prefix('?') {
                TermPattern::Var(v.to_string())
            } else {
                TermPattern::Const(Term::iri(x))
            }
        };
        GraphPattern::Bgp(
            tps.iter()
                .map(|&(s, p, o)| TriplePattern::new(f(s), f(p), f(o)))
                .collect(),
        )
    }

    #[test]
    fn q2_is_well_designed() {
        let q = GraphPattern::left_join(
            bgp(&[("Jerry", "hasFriend", "?friend")]),
            bgp(&[
                ("?friend", "actedIn", "?sitcom"),
                ("?sitcom", "location", "NewYorkCity"),
            ]),
        );
        assert!(is_well_designed(&q));
        assert!(violations(&q).is_empty());
    }

    #[test]
    fn textbook_nwd() {
        // Px ⟕ (Py ⟕ Pz) where Pz shares ?j with Px but Py does not.
        let q = GraphPattern::left_join(
            bgp(&[("?j", "p1", "?x")]),
            GraphPattern::left_join(bgp(&[("?x", "p2", "?y")]), bgp(&[("?j", "p3", "?z")])),
        );
        assert!(!is_well_designed(&q));
        let v = violations(&q);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].var, "j");
        assert_eq!(v[0].slave_sn, 2);
        assert_eq!(v[0].outside_sn, 0);
    }

    #[test]
    fn deeply_shared_var_is_fine() {
        // ?x appears everywhere including the master — well-designed.
        let q = GraphPattern::left_join(
            bgp(&[("?x", "p1", "?a")]),
            GraphPattern::left_join(bgp(&[("?x", "p2", "?b")]), bgp(&[("?x", "p3", "?c")])),
        );
        assert!(is_well_designed(&q));
    }

    /// Figure B.1: (Pa ⟕ Pb) ⋈ ((Pc ⟕ Pd) ⟕ (Pe ⟕ Pf)), where Pb and Pf
    /// violate WD with Pc over ?j1 (and with each other).
    #[test]
    fn figure_b_1_transformation() {
        let pa = bgp(&[("?a1", "pa", "?a2")]);
        let pb = bgp(&[("?a2", "pb", "?j1")]); // shares ?j1 with Pc and Pf
        let pc = bgp(&[("?j1", "pc", "?c2")]);
        let pd = bgp(&[("?c2", "pd", "?d2")]);
        let pe = bgp(&[("?c2", "pe", "?e2")]);
        let pf = bgp(&[("?e2", "pf", "?j1")]);
        let q = GraphPattern::join(
            GraphPattern::left_join(pa, pb),
            GraphPattern::left_join(
                GraphPattern::left_join(pc, pd),
                GraphPattern::left_join(pe, pf),
            ),
        );
        // SN ids in left-to-right order: a=0 b=1 c=2 d=3 e=4 f=5.
        let gosn = Gosn::from_pattern(&q).unwrap();
        let mut uni = gosn.uni_edges().to_vec();
        uni.sort_unstable();
        assert_eq!(uni, vec![(0, 1), (2, 3), (2, 4), (4, 5)]);
        assert_eq!(gosn.bi_edges(), &[(0, 2)]);

        let v = violations(&q);
        assert!(!v.is_empty());
        // Pb violates with Pc (and Pf); Pf violates with Pb (via its own
        // OPTIONAL: ?j1 in Pf, outside, not in Pe).
        assert!(v.iter().any(|x| x.slave_sn == 1 && x.outside_sn == 2));
        assert!(v.iter().any(|x| x.slave_sn == 5));

        let t = transform_nwd(&gosn, &v);
        // After the transformation only c→d stays unidirectional
        // (Figure B.1's right-hand side).
        assert_eq!(t.uni_edges(), &[(2, 3)]);
        let mut bi = t.bi_edges().to_vec();
        bi.sort_unstable();
        assert_eq!(bi, vec![(0, 1), (0, 2), (2, 4), (4, 5)]);
        // b, e, f joined the absolute-master peer group; d is still a slave.
        for sn in [0usize, 1, 2, 4, 5] {
            assert!(t.is_absolute_master(sn), "SN{sn} should be absolute");
        }
        assert!(!t.is_absolute_master(3));
    }

    #[test]
    fn pattern_level_transformation() {
        // Px ⟕ (Py ⟕ Pz) with ?j in Pz violating against Px: the whole
        // path SN0–SN1–SN2 converts, leaving pure inner joins.
        let q = GraphPattern::left_join(
            bgp(&[("?j", "p1", "?x")]),
            GraphPattern::left_join(bgp(&[("?x", "p2", "?y")]), bgp(&[("?j", "p3", "?z")])),
        );
        let t = transform_nwd_pattern(&q);
        assert!(is_well_designed(&t));
        assert_eq!(
            t,
            GraphPattern::join(
                bgp(&[("?j", "p1", "?x")]),
                GraphPattern::join(bgp(&[("?x", "p2", "?y")]), bgp(&[("?j", "p3", "?z")])),
            )
        );
        // Well-designed patterns are untouched.
        let wd = GraphPattern::left_join(bgp(&[("?a", "p", "?b")]), bgp(&[("?b", "q", "?c")]));
        assert_eq!(transform_nwd_pattern(&wd), wd);
    }

    #[test]
    fn violation_via_projection_is_out_of_scope() {
        // Only TP occurrences count; a var used nowhere else is fine even
        // if projected.
        let q = GraphPattern::left_join(bgp(&[("?a", "p1", "?b")]), bgp(&[("?b", "p2", "?c")]));
        assert!(is_well_designed(&q));
    }
}
