//! The graph of triple patterns (GoT) and the graph of join variables
//! (GoJ) of §3.1, with acyclicity tests and the tree traversal orders used
//! by `get_jvar_order` (Alg 3.1).
//!
//! * **GoT**: one node per triple pattern, an undirected edge between TPs
//!   sharing a join variable; redundant cycles from >2 TPs sharing the same
//!   variable are removed by connecting such TPs in a star (per Bernstein
//!   et al.'s construction).
//! * **GoJ**: one node per join variable, an undirected edge between two
//!   join variables that co-occur in a TP. Lemma 3.2: GoT acyclic ⇒ GoJ
//!   acyclic.
//!
//! A *join variable* (jvar) is a variable occurring in two or more triple
//! patterns.

use crate::algebra::TriplePattern;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The graph of join variables.
#[derive(Debug, Clone)]
pub struct Goj {
    jvars: Vec<String>,
    /// Collapsed simple adjacency (parallel edges merged).
    adj: Vec<BTreeSet<usize>>,
    cyclic: bool,
    /// Component id per jvar node.
    component: Vec<usize>,
    /// For each TP (by caller's index), the jvar node ids it contains.
    tp_jvars: Vec<Vec<usize>>,
}

impl Goj {
    /// Builds the GoJ of a TP list.
    pub fn from_tps(tps: &[TriplePattern]) -> Goj {
        // Count occurrences: a jvar occurs in ≥ 2 TPs.
        let mut occurrences: BTreeMap<&str, usize> = BTreeMap::new();
        for tp in tps {
            for v in tp.vars() {
                *occurrences.entry(v).or_default() += 1;
            }
        }
        let jvars: Vec<String> = occurrences
            .iter()
            .filter(|&(_, &c)| c >= 2)
            .map(|(v, _)| v.to_string())
            .collect();
        let index: BTreeMap<&str, usize> = jvars
            .iter()
            .enumerate()
            .map(|(i, v)| (v.as_str(), i))
            .collect();

        let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); jvars.len()];
        let mut tp_jvars: Vec<Vec<usize>> = Vec::with_capacity(tps.len());
        // Multigraph reading: the GoJ is a *multigraph* — when two distinct
        // TPs both contain the same jvar pair, the parallel edges close a
        // cycle. This matters for Lemma 3.3: per-dimension fold/unfold
        // semi-joins project each jvar independently and cannot express the
        // pair constraint, so such queries must take the cyclic
        // (greedy-order, nullification-capable) path.
        let mut edge_owner: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        let mut parallel_edge = false;
        for (tp_idx, tp) in tps.iter().enumerate() {
            let ids: Vec<usize> = tp
                .vars()
                .into_iter()
                .filter_map(|v| index.get(v).copied())
                .collect();
            for i in 0..ids.len() {
                for j in i + 1..ids.len() {
                    adj[ids[i]].insert(ids[j]);
                    adj[ids[j]].insert(ids[i]);
                    let key = (ids[i].min(ids[j]), ids[i].max(ids[j]));
                    match edge_owner.get(&key) {
                        Some(&owner) if owner != tp_idx => parallel_edge = true,
                        Some(_) => {}
                        None => {
                            edge_owner.insert(key, tp_idx);
                        }
                    }
                }
            }
            tp_jvars.push(ids);
        }

        // Cycle + component detection on the collapsed simple graph.
        let n = jvars.len();
        let mut component = vec![usize::MAX; n];
        let mut cyclic = false;
        let mut n_edges_double = 0usize;
        for s in adj.iter() {
            n_edges_double += s.len();
        }
        let n_edges = n_edges_double / 2;
        let mut n_components = 0;
        for start in 0..n {
            if component[start] != usize::MAX {
                continue;
            }
            let cid = n_components;
            n_components += 1;
            let mut q = VecDeque::new();
            component[start] = cid;
            q.push_back(start);
            while let Some(x) = q.pop_front() {
                for &y in &adj[x] {
                    if component[y] == usize::MAX {
                        component[y] = cid;
                        q.push_back(y);
                    }
                }
            }
        }
        // An undirected simple graph is a forest iff |E| = |V| - #components;
        // parallel edges (distinct TPs over the same jvar pair) also cycle.
        if n_edges + n_components != n || parallel_edge {
            cyclic = true;
        }
        Goj {
            jvars,
            adj,
            cyclic,
            component,
            tp_jvars,
        }
    }

    /// Join-variable names, in node-id order (lexicographic).
    pub fn jvars(&self) -> &[String] {
        &self.jvars
    }

    /// Number of jvar nodes.
    pub fn len(&self) -> usize {
        self.jvars.len()
    }

    /// True when the query has no join variables.
    pub fn is_empty(&self) -> bool {
        self.jvars.is_empty()
    }

    /// Node id of a variable, if it is a join variable.
    pub fn node_of(&self, var: &str) -> Option<usize> {
        self.jvars.iter().position(|v| v == var)
    }

    /// True when the GoJ contains a cycle (§3.3 queries).
    pub fn is_cyclic(&self) -> bool {
        self.cyclic
    }

    /// True when all jvar nodes are in one connected component.
    pub fn is_connected(&self) -> bool {
        self.component.iter().all(|&c| c == 0)
    }

    /// Jvar node ids present in TP `i` (caller's TP order).
    pub fn jvars_of_tp(&self, i: usize) -> &[usize] {
        &self.tp_jvars[i]
    }

    /// Neighbours of a jvar node.
    pub fn neighbours(&self, node: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj[node].iter().copied()
    }

    /// Top-down (root-first, BFS) order over the sub-graph induced by
    /// `subset`, starting at `root`. If the induced sub-graph is
    /// disconnected, remaining nodes are appended component-by-component
    /// (lowest node id as auxiliary root) — defensive: the paper argues the
    /// induced sub-graphs it uses are connected when the query has no
    /// Cartesian products.
    pub fn top_down_order(&self, subset: &[usize], root: usize) -> Vec<usize> {
        debug_assert!(subset.contains(&root));
        let in_subset: BTreeSet<usize> = subset.iter().copied().collect();
        let mut order = Vec::with_capacity(subset.len());
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut roots = vec![root];
        roots.extend(subset.iter().copied().filter(|&x| x != root));
        for r in roots {
            if seen.contains(&r) {
                continue;
            }
            let mut q = VecDeque::new();
            seen.insert(r);
            q.push_back(r);
            while let Some(x) = q.pop_front() {
                order.push(x);
                for &y in &self.adj[x] {
                    if in_subset.contains(&y) && seen.insert(y) {
                        q.push_back(y);
                    }
                }
            }
        }
        order
    }

    /// Bottom-up (leaves-first) order: the reverse of
    /// [`Goj::top_down_order`].
    pub fn bottom_up_order(&self, subset: &[usize], root: usize) -> Vec<usize> {
        let mut o = self.top_down_order(subset, root);
        o.reverse();
        o
    }
}

/// The graph of triple patterns (GoT), with redundant-cycle removal.
#[derive(Debug, Clone)]
pub struct Got {
    /// Undirected adjacency over TP indices.
    adj: Vec<BTreeSet<usize>>,
    acyclic: bool,
}

impl Got {
    /// Builds the GoT of a TP list. For each jvar shared by k ≥ 2 TPs, the
    /// TPs are connected in a star around the first of them (removing the
    /// redundant clique cycles of footnote 4).
    pub fn from_tps(tps: &[TriplePattern]) -> Got {
        let mut var_tps: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, tp) in tps.iter().enumerate() {
            for v in tp.vars() {
                var_tps.entry(v).or_default().push(i);
            }
        }
        let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); tps.len()];
        for (_, members) in var_tps.iter().filter(|&(_, m)| m.len() >= 2) {
            let hub = members[0];
            for &other in &members[1..] {
                adj[hub].insert(other);
                adj[other].insert(hub);
            }
        }
        // Forest test.
        let n = tps.len();
        let n_edges: usize = adj.iter().map(|s| s.len()).sum::<usize>() / 2;
        let mut comp = vec![usize::MAX; n];
        let mut n_components = 0;
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            comp[start] = n_components;
            let mut q = VecDeque::from([start]);
            while let Some(x) = q.pop_front() {
                for &y in &adj[x] {
                    if comp[y] == usize::MAX {
                        comp[y] = n_components;
                        q.push_back(y);
                    }
                }
            }
            n_components += 1;
        }
        Got {
            adj,
            acyclic: n_edges + n_components == n,
        }
    }

    /// True when the (redundancy-reduced) GoT is acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.acyclic
    }

    /// Neighbours of a TP.
    pub fn neighbours(&self, tp: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj[tp].iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::TermPattern;
    use lbr_rdf::Term;

    fn tp(s: &str, p: &str, o: &str) -> TriplePattern {
        let f = |x: &str| {
            if let Some(v) = x.strip_prefix('?') {
                TermPattern::Var(v.to_string())
            } else {
                TermPattern::Const(Term::iri(x))
            }
        };
        TriplePattern::new(f(s), f(p), f(o))
    }

    /// Figure 3.3: the GoT and GoJ of the running example.
    #[test]
    fn figure_3_3() {
        let tps = vec![
            tp("Jerry", "hasFriend", "?friend"),
            tp("?friend", "actedIn", "?sitcom"),
            tp("?sitcom", "location", "NewYorkCity"),
        ];
        let goj = Goj::from_tps(&tps);
        assert_eq!(goj.jvars(), &["friend".to_string(), "sitcom".to_string()]);
        assert!(!goj.is_cyclic());
        assert!(goj.is_connected());
        // ?friend – ?sitcom edge comes from tp2.
        assert_eq!(goj.neighbours(0).collect::<Vec<_>>(), vec![1]);
        assert_eq!(goj.jvars_of_tp(1), &[0, 1]);
        assert_eq!(goj.jvars_of_tp(0), &[0]);

        let got = Got::from_tps(&tps);
        assert!(got.is_acyclic());
        assert_eq!(got.neighbours(1).collect::<Vec<_>>(), vec![0, 2]);
    }

    /// Lemma 3.2's example shape: a 3-cycle of jvars.
    #[test]
    fn cyclic_triangle() {
        let tps = vec![
            tp("?a", "p1", "?b"),
            tp("?b", "p2", "?c"),
            tp("?a", "p3", "?c"),
        ];
        let goj = Goj::from_tps(&tps);
        assert_eq!(goj.len(), 3);
        assert!(goj.is_cyclic());
        let got = Got::from_tps(&tps);
        assert!(
            !got.is_acyclic(),
            "GoT must be cyclic when GoJ is (Lemma 3.2 contrapositive)"
        );
    }

    /// Redundant cycles — many TPs sharing one jvar (footnote 4) must NOT
    /// count as cycles.
    #[test]
    fn star_join_is_acyclic() {
        let tps = vec![
            tp("?x", "p1", "?a"),
            tp("?x", "p2", "?b"),
            tp("?x", "p3", "?c"),
            tp("?x", "p4", "?d"),
        ];
        let goj = Goj::from_tps(&tps);
        assert_eq!(goj.len(), 1, "only ?x joins");
        assert!(!goj.is_cyclic());
        let got = Got::from_tps(&tps);
        assert!(got.is_acyclic(), "clique over ?x must be reduced to a star");
    }

    #[test]
    fn non_join_vars_are_not_jvar_nodes() {
        let tps = vec![tp("?x", "p1", "?once"), tp("?x", "p2", "?alsoOnce")];
        let goj = Goj::from_tps(&tps);
        assert_eq!(goj.jvars(), &["x".to_string()]);
        assert_eq!(goj.node_of("once"), None);
        assert_eq!(goj.node_of("x"), Some(0));
    }

    #[test]
    fn traversal_orders() {
        // Path: a - b - c - d (via two-var TPs).
        let tps = vec![
            tp("?a", "p1", "?b"),
            tp("?b", "p2", "?c"),
            tp("?c", "p3", "?d"),
            tp("?a", "q1", "?z1"),
            tp("?b", "q2", "?z2"),
            tp("?c", "q3", "?z3"),
            tp("?d", "q4", "?z4"),
        ];
        let goj = Goj::from_tps(&tps);
        assert!(!goj.is_cyclic());
        let a = goj.node_of("a").unwrap();
        let b = goj.node_of("b").unwrap();
        let c = goj.node_of("c").unwrap();
        let d = goj.node_of("d").unwrap();
        let all = vec![a, b, c, d];
        let td = goj.top_down_order(&all, a);
        assert_eq!(td, vec![a, b, c, d]);
        let bu = goj.bottom_up_order(&all, a);
        assert_eq!(bu, vec![d, c, b, a]);
        // Induced subset {a, c, d}: c–d connected, a isolated.
        let sub = vec![a, c, d];
        let td = goj.top_down_order(&sub, c);
        assert_eq!(td[0], c);
        assert_eq!(td.len(), 3);
        assert!(td.contains(&a) && td.contains(&d));
    }

    #[test]
    fn disconnected_goj() {
        let tps = vec![
            tp("?a", "p1", "?b"),
            tp("?b", "p2", "?c"),
            tp("?d", "p3", "?e"),
            tp("?e", "p4", "?f"),
        ];
        let goj = Goj::from_tps(&tps);
        assert_eq!(goj.len(), 2, "only ?b and ?e join");
        assert!(!goj.is_connected());
        assert!(!goj.is_cyclic());
    }

    /// Two distinct TPs over the same jvar pair: a multigraph cycle.
    /// Per-dimension folds cannot enforce the pair constraint, so these
    /// queries must classify as cyclic (see module docs).
    #[test]
    fn parallel_edges_are_cyclic() {
        let tps = vec![tp("?a", "p1", "?b"), tp("?a", "p2", "?b")];
        let goj = Goj::from_tps(&tps);
        assert!(goj.is_cyclic());
        // The same pair inside ONE TP twice is impossible (vars dedup), and
        // a single TP's pair is not a cycle.
        let tps = vec![tp("?a", "p1", "?b"), tp("?b", "p2", "?c")];
        assert!(!Goj::from_tps(&tps).is_cyclic());
    }

    #[test]
    fn empty_tp_list() {
        let goj = Goj::from_tps(&[]);
        assert!(goj.is_empty());
        assert!(!goj.is_cyclic());
        assert!(Got::from_tps(&[]).is_acyclic());
    }
}
