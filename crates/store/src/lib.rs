//! # lbr-store
//!
//! Updatable, durable storage for the LBR engine: an LSM-style **delta
//! memtable over the immutable compressed BitMat segments**, fronted by a
//! write-ahead log and published through epoch-stamped snapshots.
//!
//! The paper's index ([`lbr_bitmat::BitMatStore`]) is built once from a
//! dictionary-encoded graph and never changes — that immutability is what
//! makes the fold/unfold kernels allocation-free. This crate adds writes
//! *around* that design instead of inside it:
//!
//! * [`Delta`] — per-predicate insert and tombstone triple sets in the
//!   base dictionary's ID space, with the invariants `inserts ∩ base = ∅`,
//!   `tombstones ⊆ base` and `inserts ∩ tombstones = ∅`, so every count is
//!   exact arithmetic (`base + inserts − tombstones`);
//! * [`OverlayCatalog`] — a [`lbr_bitmat::Catalog`] that merges the delta
//!   into the compressed [`lbr_bitmat::BitRow`] cursors at load time
//!   (additions OR'd in, tombstones masked out). Every engine consumes the
//!   `Catalog` trait, so all five engines see the merged view with no
//!   per-engine code;
//! * [`Wal`] — an append-only log of term-level operations (length +
//!   CRC32-framed records, one fsync per commit, torn-tail truncation on
//!   recovery);
//! * [`Store`] — snapshot isolation: the current [`Snapshot`] sits behind
//!   an `Arc` swap; readers clone the `Arc` and keep a consistent view
//!   while a writer commits; compaction folds a large delta into freshly
//!   built segments and swaps the epoch atomically.
//!
//! Updates whose terms all exist in the frozen dictionary (in the roles
//! they are used in) take the fast path: the delta absorbs them and the
//! dictionary and segments are untouched. A new term — or an existing term
//! in a new role, which would break the Appendix-D shared `Vso` prefix —
//! forces a rebuild of dictionary + segments from the merged triples,
//! which is exactly a compaction.

pub mod delta;
pub mod overlay;
pub mod store;
pub mod wal;

pub use delta::{Delta, TripleSet};
pub use overlay::{OverlayCatalog, SegmentSource};
pub use store::{CommitInfo, Snapshot, Store, StoreError, StoreObs, UpdateBatch};
pub use wal::{Wal, WalOp, WalOpKind, WalRecovery};
