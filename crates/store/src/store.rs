//! [`Store`]: epoch-stamped snapshots over segments + delta + WAL.
//!
//! ## Snapshot isolation
//!
//! The current [`Snapshot`] sits behind an `RwLock<Arc<Snapshot>>`.
//! Readers call [`Store::snapshot`] and keep serving from their `Arc`
//! regardless of what writers do; a commit builds a **new** snapshot off
//! to the side and swaps the `Arc` in one assignment. Writers serialize
//! on a separate mutex, so the data path never blocks behind a rebuild.
//!
//! ## Fast path vs rebuild
//!
//! The dictionary is frozen at build time (the Appendix-D shared `Vso`
//! prefix bakes "is this term both a subject and an object?" into the ID
//! layout), so there are two commit shapes:
//!
//! * **fast**: every inserted triple is encodable in the current
//!   dictionary — the commit clones the (small) delta, applies the batch,
//!   and publishes a snapshot sharing the old graph + segments `Arc`s;
//! * **rebuild**: an insert carries a new term, or an existing term in a
//!   new role — dictionary + segments are rebuilt from the merged triples
//!   (this is exactly a compaction, so the new delta is empty).
//!
//! Deletes never force a rebuild: a triple whose terms the dictionary
//! does not know cannot be present, so the delete is a no-op.
//!
//! ## Compaction & checkpointing
//!
//! When the delta reaches the threshold (default
//! [`DEFAULT_COMPACT_THRESHOLD`]) the commit folds base + delta into
//! freshly built segments **under the same dictionary** and publishes an
//! empty delta. Rebuild commits compact as a side effect (their delta is
//! empty by construction).
//!
//! Every compaction point also **checkpoints** the WAL: the merged view
//! is written atomically to `lbr.ckpt` and the log is truncated, so the
//! WAL only ever holds the updates since the last fold and reopen cost
//! is bounded by (checkpoint size + tail length) instead of the full
//! update history. [`Store::open`] prefers the checkpoint over the
//! passed-in base when one exists. Checkpointing is best-effort
//! ([`CommitInfo::checkpointed`] reports it): if writing the image
//! fails, the old checkpoint + full log still replay to the same state;
//! if only the truncation fails, replaying the stale log over the new
//! checkpoint is idempotent because records hold absolute term-level
//! ops (per-triple last-writer-wins).

use crate::delta::Delta;
use crate::overlay::{OverlayCatalog, SegmentSource};
use crate::wal::{self, Wal, WalOp, WalOpKind};
use lbr_bitmat::{BitMatStore, Catalog, CubeDims, DiskCatalog};
use lbr_rdf::{Dictionary, EncodedGraph, EncodedTriple, Graph, Triple};
use std::collections::HashSet;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Delta size (inserts + tombstones) at which a commit folds the delta
/// into fresh segments.
pub const DEFAULT_COMPACT_THRESHOLD: usize = 100_000;

/// One consistent, immutable view of the database.
///
/// Cheap to clone via `Arc`; everything an engine needs — dictionary,
/// merged catalog — hangs off it, pinned to the epoch it was created at.
#[derive(Debug)]
pub struct Snapshot {
    epoch: u64,
    graph: Arc<EncodedGraph>,
    catalog: OverlayCatalog,
}

impl Snapshot {
    fn new(epoch: u64, graph: Arc<EncodedGraph>, segments: SegmentSource, delta: Delta) -> Self {
        Snapshot {
            epoch,
            catalog: OverlayCatalog::with_source(segments, Arc::new(delta)),
            graph,
        }
    }

    /// The epoch this snapshot was published at (0 = as loaded).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The base graph (dictionary + the encoded triples the segments were
    /// built from — delta changes are *not* reflected here).
    pub fn graph(&self) -> &EncodedGraph {
        &self.graph
    }

    /// The dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.graph.dict
    }

    /// The merged catalog engines should run on.
    pub fn catalog(&self) -> &OverlayCatalog {
        &self.catalog
    }

    /// The immutable base segments (without the delta) — heap-built or
    /// mmap'd from an on-disk checkpoint segment.
    pub fn segments(&self) -> &SegmentSource {
        self.catalog.segments()
    }

    /// The delta memtable.
    pub fn delta(&self) -> &Delta {
        self.catalog.delta()
    }

    /// Total triples in the merged view.
    pub fn n_triples(&self) -> u64 {
        self.catalog.dims().n_triples
    }

    /// True when `t` is in the merged view.
    pub fn contains(&self, t: &Triple) -> bool {
        match self.graph.dict.encode(t) {
            None => false,
            Some(e) => self.contains_encoded(e),
        }
    }

    fn contains_encoded(&self, e: EncodedTriple) -> bool {
        let delta = self.catalog.delta();
        delta.inserts.contains(e) || (self.segments().contains(e) && !delta.tombstones.contains(e))
    }

    /// Materializes the merged view as term-level triples (sorted) — the
    /// rebuild and equivalence-test substrate, not a hot path.
    pub fn triples(&self) -> Vec<Triple> {
        let delta = self.catalog.delta();
        let dict = &self.graph.dict;
        let decode = |e: EncodedTriple| dict.decode(&e).expect("base IDs decode");
        let mut out: Vec<Triple> = self
            .graph
            .triples
            .iter()
            .filter(|e| !delta.tombstones.contains(**e))
            .map(|e| decode(*e))
            .chain(delta.inserts.iter().map(decode))
            .collect();
        out.sort_unstable();
        out
    }

    /// The merged view with `staged` net-presence overrides composed on
    /// top, as a catalog sharing this snapshot's segments + dictionary.
    /// Lets a multi-operation update evaluate patterns against its own
    /// uncommitted effects without committing anything.
    ///
    /// Returns `None` when a staged **insert** is not encodable in this
    /// dictionary (new term, or an old term in a new role) — the caller
    /// must fall back to a materialized view. Unencodable *deletes* are
    /// vacuous: the triple cannot be present.
    pub fn overlay_with(&self, staged: &[(Triple, bool)]) -> Option<OverlayCatalog> {
        if staged.is_empty() {
            return Some(self.catalog.clone());
        }
        let mut delta = self.delta().clone();
        for (t, present) in staged {
            match self.graph.dict.encode(t) {
                None => {
                    if *present {
                        return None;
                    }
                }
                Some(e) => {
                    if self.segments().contains(e) {
                        if *present {
                            delta.tombstones.remove(e);
                        } else {
                            delta.tombstones.insert(e);
                        }
                        delta.inserts.remove(e);
                    } else if *present {
                        delta.inserts.insert(e);
                    } else {
                        delta.inserts.remove(e);
                    }
                }
            }
        }
        Some(OverlayCatalog::with_source(
            self.catalog.segments().clone(),
            Arc::new(delta),
        ))
    }
}

/// A set of concrete triples to apply atomically. Deletes are applied
/// before inserts.
#[derive(Debug, Clone, Default)]
pub struct UpdateBatch {
    /// Triples to add.
    pub inserts: Vec<Triple>,
    /// Triples to remove.
    pub deletes: Vec<Triple>,
}

impl UpdateBatch {
    /// A pure-insert batch.
    pub fn insert(triples: Vec<Triple>) -> Self {
        UpdateBatch {
            inserts: triples,
            deletes: Vec::new(),
        }
    }

    /// A pure-delete batch.
    pub fn delete(triples: Vec<Triple>) -> Self {
        UpdateBatch {
            inserts: Vec::new(),
            deletes: triples,
        }
    }
}

/// What a commit did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitInfo {
    /// Triples actually added (no-ops excluded).
    pub inserted: u64,
    /// Triples actually removed (no-ops excluded).
    pub deleted: u64,
    /// The epoch after the commit (unchanged if the batch was a no-op).
    pub epoch: u64,
    /// The dictionary + segments were rebuilt (new term or new role).
    pub rebuilt: bool,
    /// The delta was folded into fresh segments.
    pub compacted: bool,
    /// A WAL checkpoint was written and the log truncated (only ever
    /// true when `compacted` is; checkpointing is best-effort).
    pub checkpointed: bool,
}

/// Monotone storage-activity counters, snapshotted for `/metrics` and
/// `/stats`. Durations live in the per-query trace spans (`wal_append`,
/// `compact`, `checkpoint`); these count occurrences across the store's
/// lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreObs {
    /// WAL records appended (one per effective logged commit).
    pub wal_appends: u64,
    /// Delta folds into fresh segments (explicit or threshold-triggered).
    pub compactions: u64,
    /// Checkpoint images written with the log truncated.
    pub checkpoints: u64,
}

/// Everything that can go wrong committing an update.
#[derive(Debug)]
pub enum StoreError {
    /// Writing or syncing the WAL failed; the commit did not publish.
    Io(std::io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "write-ahead log error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// The updatable store: immutable segments + delta + WAL behind an
/// epoch-stamped `Arc` swap.
pub struct Store {
    current: RwLock<Arc<Snapshot>>,
    /// Snapshots that have been vended as plain borrows, in vend order.
    /// [`Store::current_ref`] pins its snapshot here **on first vend**
    /// (not on publish), which is what makes the unsafe borrow sound:
    /// the list only grows and lives as long as the store. Epochs that
    /// are never borrowed — the common case, since the facade's
    /// owned-output paths use `Arc` snapshots — are freed as soon as
    /// their readers drop, so memory does not grow with the commit
    /// count.
    retained: Mutex<Vec<Arc<Snapshot>>>,
    writer: Mutex<Option<Wal>>,
    compact_threshold: AtomicUsize,
    /// Lock-free mirror of the current snapshot's epoch, updated by
    /// [`Store::publish`] *after* the swap: once a reader observes epoch
    /// `N` here, [`Store::snapshot`] returns epoch ≥ `N`. Lets hot
    /// serving paths (result-cache staleness probes, `/stats`) read the
    /// epoch without contending on the snapshot `RwLock`.
    epoch: AtomicU64,
    wal_appends: AtomicU64,
    compactions: AtomicU64,
    checkpoints: AtomicU64,
}

impl Store {
    /// Opens a store over a loaded base graph. With a `wal_dir`, the log
    /// is created (or recovered — torn tail truncated, committed records
    /// replayed) and every future commit is logged there. When the
    /// directory holds a checkpoint, it replaces `base`: the checkpoint
    /// is the merged view as of the last compaction, and the (truncated)
    /// log holds only the updates since. A v2 checkpoint ships with a
    /// compacted on-disk segment file (`lbr.seg`), which reopen `mmap`s
    /// directly — the BitMat rebuild is skipped entirely.
    pub fn open(base: EncodedGraph, wal_dir: Option<&Path>) -> Result<Store, StoreError> {
        Self::open_with_segments(base, None, wal_dir)
    }

    /// [`Store::open`] with pre-opened immutable segments for `base`
    /// (e.g. an mmap'd disk index built by `lbr_bitmat::disk::save_store`
    /// over the same data). The segments are used only when their
    /// dimensions match the graph that actually boots the store — a
    /// checkpoint in `wal_dir` supersedes `base`, and then the
    /// checkpoint's own segment file is preferred. On any mismatch the
    /// store falls back to building heap segments, which is always
    /// correct, just slower.
    pub fn open_with_segments(
        base: EncodedGraph,
        segments: Option<SegmentSource>,
        wal_dir: Option<&Path>,
    ) -> Result<Store, StoreError> {
        let (graph, source) = match wal_dir {
            Some(dir) => match wal::read_checkpoint_image(dir)? {
                Some(image) => {
                    let source = open_checkpoint_segments(dir, &image);
                    (image.graph, source)
                }
                None => (base, segments),
            },
            None => (base, segments),
        };
        let graph = Arc::new(graph);
        let source = match source {
            Some(s) if s.dims() == graph_dims(&graph) => s,
            _ => SegmentSource::Heap(Arc::new(BitMatStore::build(&graph))),
        };
        let snapshot = Arc::new(Snapshot::new(0, graph, source, Delta::new()));
        let store = Store {
            current: RwLock::new(snapshot),
            retained: Mutex::new(Vec::new()),
            writer: Mutex::new(None),
            compact_threshold: AtomicUsize::new(DEFAULT_COMPACT_THRESHOLD),
            epoch: AtomicU64::new(0),
            wal_appends: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
        };
        if let Some(dir) = wal_dir {
            let (wal, recovery) = Wal::open(dir)?;
            for record in recovery.records {
                let mut batch = UpdateBatch::default();
                for op in record {
                    match op.kind {
                        WalOpKind::Insert => batch.inserts.push(op.triple),
                        WalOpKind::Delete => batch.deletes.push(op.triple),
                    }
                }
                // Replay through the normal commit path, minus logging.
                store.commit(batch, false)?;
            }
            *store.writer.lock().expect("store lock poisoned") = Some(wal);
        }
        Ok(store)
    }

    /// An in-memory store (no WAL; updates are lost on drop).
    pub fn in_memory(base: EncodedGraph) -> Store {
        Store::open(base, None).expect("in-memory open cannot fail")
    }

    /// The current snapshot; callers keep a consistent view for as long
    /// as they hold the `Arc`, no matter how many commits happen.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read().expect("store lock poisoned"))
    }

    /// The current snapshot as a plain borrow of `self`.
    ///
    /// This is what lets the `lbr` facade keep its borrow-shaped API
    /// (`dict()`, `engine_of()`) over a mutable store. The borrow is
    /// pinned to the epoch current at the call; later commits do not move
    /// or free it. Each **distinct epoch** vended this way stays
    /// allocated for the store's lifetime — fine for borrow-shaped
    /// facade accessors, but owned-output paths should use
    /// [`Store::snapshot`] so unvended epochs can be freed.
    pub fn current_ref(&self) -> &Snapshot {
        let arc = self.snapshot();
        let mut retained = self.retained.lock().expect("store lock poisoned");
        // Recent epochs sit at the tail; one snapshot is vended many
        // times, so the reverse scan usually stops immediately.
        if !retained.iter().rev().any(|r| Arc::ptr_eq(r, &arc)) {
            retained.push(Arc::clone(&arc));
        }
        drop(retained);
        let ptr = Arc::as_ptr(&arc);
        // SAFETY: the pointee is kept alive by the `retained` entry just
        // ensured above; `retained` only grows and lives as long as
        // `self`, and `Arc` contents never move. The full soundness
        // argument (why commits cannot free a vended epoch) is on the
        // `retained` field declaration.
        unsafe { &*ptr }
    }

    /// The current epoch (0 = as loaded, +1 per effective commit).
    /// Lock-free: reads the atomic mirror, not the snapshot `RwLock`, so
    /// serving paths can poll it per-request without writer contention.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Snapshots the monotone storage-activity counters (lock-free).
    pub fn obs(&self) -> StoreObs {
        StoreObs {
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
        }
    }

    /// Sets the delta size at which commits auto-compact.
    pub fn set_compact_threshold(&self, threshold: usize) {
        self.compact_threshold
            .store(threshold.max(1), Ordering::Relaxed);
    }

    /// Disables the per-commit WAL fsync (bulk loads, benchmarks).
    pub fn set_sync(&self, sync: bool) {
        if let Some(wal) = self.writer.lock().expect("store lock poisoned").as_mut() {
            wal.set_sync(sync);
        }
    }

    /// Applies one batch atomically: logs the effective ops to the WAL
    /// (one record, one fsync), then publishes the new snapshot. A batch
    /// with no effect writes nothing and keeps the epoch.
    pub fn apply(&self, batch: UpdateBatch) -> Result<CommitInfo, StoreError> {
        self.commit(batch, true)
    }

    /// Folds the delta into freshly built segments now (same dictionary,
    /// empty delta) and bumps the epoch. No-op on an empty delta.
    pub fn compact(&self) -> Result<CommitInfo, StoreError> {
        let mut writer = self.writer.lock().expect("store lock poisoned");
        let snap = self.snapshot();
        if snap.delta().is_empty() {
            return Ok(CommitInfo {
                epoch: snap.epoch(),
                ..CommitInfo::default()
            });
        }
        let t_compact = Instant::now();
        let next = Arc::new(fold(&snap, snap.epoch() + 1));
        let epoch = next.epoch();
        self.publish(Arc::clone(&next));
        self.compactions.fetch_add(1, Ordering::Relaxed);
        lbr_obs::span_since(
            "compact",
            t_compact,
            &[("triples", next.triples().len() as u64)],
        );
        let checkpointed = self.checkpoint_with(&mut writer, &next);
        Ok(CommitInfo {
            epoch,
            compacted: true,
            checkpointed,
            ..CommitInfo::default()
        })
    }

    fn publish(&self, next: Arc<Snapshot>) {
        let epoch = next.epoch();
        *self.current.write().expect("store lock poisoned") = next;
        // Stored after the swap, inside the commit: the mirror is updated
        // before the committing call returns, so any request ordered
        // after an update's response observes the new epoch (the
        // result-cache invalidation contract). A concurrent reader may
        // briefly see the previous epoch — the same snapshot-isolation
        // semantics as pinning a view an instant before the commit.
        self.epoch.store(epoch, Ordering::Release);
    }

    /// Writes the checkpoint image for `snap` — the dictionary + encoded
    /// triples plus a compacted on-disk segment file (`lbr.seg`) that the
    /// next open `mmap`s instead of rebuilding BitMats — and truncates
    /// the log. Best-effort: any failure leaves the previous checkpoint
    /// + log intact, which still replay to the same state.
    fn checkpoint_with(&self, writer: &mut Option<Wal>, snap: &Snapshot) -> bool {
        let Some(wal) = writer.as_mut() else {
            return false;
        };
        let Some(dir) = wal.path().parent().map(Path::to_path_buf) else {
            return false;
        };
        // Checkpoints happen right after a fold/rebuild, so the snapshot
        // always carries freshly built heap segments; a disk-sourced
        // snapshot has an empty delta and nothing to checkpoint.
        let Some(segments) = snap.segments().as_heap() else {
            return false;
        };
        let t_checkpoint = Instant::now();
        if wal::write_checkpoint_v2(&dir, &snap.graph, segments, wal.is_sync()).is_err() {
            return false;
        }
        // A failed truncation is safe: replaying the stale log over the
        // fresh checkpoint is idempotent (absolute term-level ops).
        let _ = wal.reset();
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        lbr_obs::span_since(
            "checkpoint",
            t_checkpoint,
            &[("triples", snap.triples().len() as u64)],
        );
        true
    }

    fn commit(&self, batch: UpdateBatch, log: bool) -> Result<CommitInfo, StoreError> {
        let mut writer = self.writer.lock().expect("store lock poisoned");
        let snap = self.snapshot();
        let dict = snap.dict();

        // Fast-path attempt: apply the batch to a working copy of the
        // delta, recording the effective (non-no-op) term-level ops.
        // Deletes first, then inserts.
        let mut working = snap.delta().clone();
        let mut effective: Vec<WalOp> = Vec::new();
        let mut needs_rebuild = false;
        for t in &batch.deletes {
            let Some(e) = dict.encode(t) else {
                continue; // unknown term in that role ⇒ cannot be present
            };
            let present = working.inserts.contains(e)
                || (snap.segments().contains(e) && !working.tombstones.contains(e));
            if !present {
                continue;
            }
            if !working.inserts.remove(e) {
                working.tombstones.insert(e);
            }
            effective.push(WalOp {
                kind: WalOpKind::Delete,
                triple: t.clone(),
            });
        }
        for t in &batch.inserts {
            let Some(e) = dict.encode(t) else {
                needs_rebuild = true; // new term, or an old term in a new role
                break;
            };
            let present = working.inserts.contains(e)
                || (snap.segments().contains(e) && !working.tombstones.contains(e));
            if present {
                continue;
            }
            if !working.tombstones.remove(e) {
                working.inserts.insert(e);
            }
            effective.push(WalOp {
                kind: WalOpKind::Insert,
                triple: t.clone(),
            });
        }

        // Rebuild path: redo the effect computation at term level against
        // the materialized view, then rebuild dictionary + segments from
        // the merged set (canonical: `Graph::from_triples` sorts, so the
        // result is identical to a from-scratch load of these triples).
        let mut compacted = false;
        let next: Arc<Snapshot> = if needs_rebuild {
            effective.clear();
            let mut view: HashSet<Triple> = snap.triples().into_iter().collect();
            for t in &batch.deletes {
                if view.remove(t) {
                    effective.push(WalOp {
                        kind: WalOpKind::Delete,
                        triple: t.clone(),
                    });
                }
            }
            for t in &batch.inserts {
                if view.insert(t.clone()) {
                    effective.push(WalOp {
                        kind: WalOpKind::Insert,
                        triple: t.clone(),
                    });
                }
            }
            if effective.is_empty() {
                return Ok(CommitInfo {
                    epoch: snap.epoch(),
                    ..CommitInfo::default()
                });
            }
            compacted = true;
            let graph = Arc::new(Graph::from_triples(view.into_iter().collect()).encode());
            let segments = SegmentSource::Heap(Arc::new(BitMatStore::build(&graph)));
            Arc::new(Snapshot::new(
                snap.epoch() + 1,
                graph,
                segments,
                Delta::new(),
            ))
        } else {
            if effective.is_empty() {
                return Ok(CommitInfo {
                    epoch: snap.epoch(),
                    ..CommitInfo::default()
                });
            }
            let staged = Snapshot::new(
                snap.epoch() + 1,
                Arc::clone(&snap.graph),
                snap.catalog().segments().clone(),
                working,
            );
            if staged.delta().len() >= self.compact_threshold.load(Ordering::Relaxed) {
                compacted = true;
                Arc::new(fold(&staged, staged.epoch()))
            } else {
                Arc::new(staged)
            }
        };

        let inserted = effective
            .iter()
            .filter(|op| op.kind == WalOpKind::Insert)
            .count() as u64;
        let deleted = effective.len() as u64 - inserted;

        // WAL before data: if the append or fsync fails, nothing is
        // published and the store keeps serving the old epoch.
        if log {
            if let Some(wal) = writer.as_mut() {
                let t_append = Instant::now();
                wal.append(&effective)?;
                self.wal_appends.fetch_add(1, Ordering::Relaxed);
                lbr_obs::span_since("wal_append", t_append, &[("ops", effective.len() as u64)]);
            }
        }

        let mut info = CommitInfo {
            inserted,
            deleted,
            epoch: next.epoch(),
            rebuilt: needs_rebuild,
            compacted,
            checkpointed: false,
        };
        self.publish(Arc::clone(&next));
        if compacted {
            self.compactions.fetch_add(1, Ordering::Relaxed);
        }
        // Compaction points bound the log: checkpoint the folded view and
        // truncate. Skipped during replay (`log == false`, and the writer
        // is not installed yet anyway) so a partially replayed log is
        // never clobbered.
        if log && compacted {
            info.checkpointed = self.checkpoint_with(&mut writer, &next);
        }
        Ok(info)
    }
}

/// Folds a snapshot's delta into freshly built segments under the same
/// dictionary, producing a snapshot at `epoch` with an empty delta.
fn fold(snap: &Snapshot, epoch: u64) -> Snapshot {
    let delta = snap.delta();
    let mut triples: Vec<EncodedTriple> = snap
        .graph
        .triples
        .iter()
        .filter(|e| !delta.tombstones.contains(**e))
        .copied()
        .chain(delta.inserts.iter())
        .collect();
    triples.sort_unstable();
    let graph = Arc::new(EncodedGraph {
        dict: snap.graph.dict.clone(),
        triples,
    });
    let segments = SegmentSource::Heap(Arc::new(BitMatStore::build(&graph)));
    Snapshot::new(epoch, graph, segments, Delta::new())
}

/// The cube dimensions a segment source must have to serve `graph`.
fn graph_dims(graph: &EncodedGraph) -> CubeDims {
    let dict = &graph.dict;
    CubeDims {
        n_subjects: dict.n_subjects(),
        n_predicates: dict.n_predicates(),
        n_objects: dict.n_objects(),
        n_shared: dict.n_shared(),
        n_triples: graph.triples.len() as u64,
    }
}

/// Tries to `mmap` the segment file a v2 checkpoint ships with. `None`
/// whenever anything disagrees with the checkpoint image (missing file,
/// stale length or header checksum, dimension mismatch, corrupt format):
/// the caller then rebuilds heap segments from the checkpoint graph,
/// which is always correct — the segment file is purely an opener
/// fast-path, never the source of truth.
fn open_checkpoint_segments(dir: &Path, image: &wal::CheckpointImage) -> Option<SegmentSource> {
    let seg = image.segments.as_ref()?;
    let path = dir.join(wal::SEGMENTS_FILE);
    let meta = std::fs::metadata(&path).ok()?;
    if meta.len() != seg.len {
        return None;
    }
    let head = wal::read_segment_head(&path).ok()?;
    if wal::crc32(&head) != seg.head_crc {
        return None;
    }
    let catalog = DiskCatalog::open(&path).ok()?;
    (catalog.dims() == graph_dims(&image.graph)).then(|| SegmentSource::Disk(Arc::new(catalog)))
}

// The facade shares one `Store` across `lbr-server`'s worker pool.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Store>();
    assert_send_sync::<Snapshot>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_rdf::Term;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn base() -> EncodedGraph {
        Graph::from_triples(vec![t("a", "p", "b"), t("b", "p", "c"), t("a", "q", "c")]).encode()
    }

    #[test]
    fn fast_path_insert_and_delete() {
        let store = Store::in_memory(base());
        assert_eq!(store.epoch(), 0);

        // Insert with existing terms in existing roles: no rebuild.
        let info = store
            .apply(UpdateBatch::insert(vec![
                t("a", "p", "c"),
                t("a", "p", "b"),
            ]))
            .unwrap();
        assert_eq!(
            (info.inserted, info.deleted),
            (1, 0),
            "duplicate is a no-op"
        );
        assert!(!info.rebuilt);
        assert_eq!(info.epoch, 1);
        let snap = store.snapshot();
        assert!(snap.contains(&t("a", "p", "c")));
        assert_eq!(snap.n_triples(), 4);

        let info = store
            .apply(UpdateBatch::delete(vec![
                t("a", "p", "b"),
                t("x", "p", "y"),
            ]))
            .unwrap();
        assert_eq!(
            (info.inserted, info.deleted),
            (0, 1),
            "unknown term delete is a no-op"
        );
        assert_eq!(store.epoch(), 2);
        assert!(!store.snapshot().contains(&t("a", "p", "b")));
    }

    #[test]
    fn insert_then_delete_cancels_in_the_delta() {
        let store = Store::in_memory(base());
        store
            .apply(UpdateBatch::insert(vec![t("b", "q", "c")]))
            .unwrap();
        store
            .apply(UpdateBatch::delete(vec![t("b", "q", "c")]))
            .unwrap();
        let snap = store.snapshot();
        assert!(snap.delta().is_empty(), "insert+delete cancel exactly");
        assert_eq!(snap.n_triples(), 3);
    }

    #[test]
    fn new_term_forces_rebuild_with_empty_delta() {
        let store = Store::in_memory(base());
        let info = store
            .apply(UpdateBatch::insert(vec![t("new", "p", "a")]))
            .unwrap();
        assert!(info.rebuilt);
        let snap = store.snapshot();
        assert!(snap.delta().is_empty());
        assert_eq!(snap.n_triples(), 4);
        assert!(snap.contains(&t("new", "p", "a")));
        // Role change (object-only term used as subject) also rebuilds
        // when it is not encodable… "c" appears as S already; use a pure
        // object term: "b" is S and O; add literal object term first.
        let info = store
            .apply(UpdateBatch::insert(vec![t("a", "p", "lit-only")]))
            .unwrap();
        assert!(info.rebuilt);
        let info = store
            .apply(UpdateBatch::insert(vec![t("lit-only", "p", "a")]))
            .unwrap();
        assert!(info.rebuilt, "O-only term used as S breaks the Vso prefix");
        assert!(store.snapshot().contains(&t("lit-only", "p", "a")));
    }

    #[test]
    fn noop_batch_keeps_epoch_and_writes_nothing() {
        let store = Store::in_memory(base());
        let info = store
            .apply(UpdateBatch::insert(vec![t("a", "p", "b")]))
            .unwrap();
        assert_eq!(info.epoch, 0);
        assert_eq!(store.epoch(), 0);
        let info = store
            .apply(UpdateBatch::delete(vec![t("nope", "p", "nope")]))
            .unwrap();
        assert_eq!(info.epoch, 0);
    }

    #[test]
    fn compaction_folds_and_preserves_the_view() {
        let store = Store::in_memory(base());
        store.set_compact_threshold(1_000_000);
        store
            .apply(UpdateBatch::insert(vec![
                t("a", "p", "c"),
                t("c", "q", "b"),
            ]))
            .unwrap();
        store
            .apply(UpdateBatch::delete(vec![t("b", "p", "c")]))
            .unwrap();
        let before = store.snapshot();
        let view = before.triples();
        assert!(!before.delta().is_empty());

        let info = store.compact().unwrap();
        assert!(info.compacted);
        let after = store.snapshot();
        assert!(after.delta().is_empty());
        assert_eq!(after.triples(), view, "fold preserves the merged view");
        assert_eq!(after.epoch(), before.epoch() + 1);

        // Old snapshot still serves its own epoch untouched.
        assert_eq!(before.triples(), view);
        assert!(!before.delta().is_empty());
    }

    #[test]
    fn obs_counters_track_wal_compaction_and_checkpoint_activity() {
        // In-memory store: no WAL, so only compactions count.
        let store = Store::in_memory(base());
        store.set_compact_threshold(1_000_000);
        assert_eq!(store.obs(), StoreObs::default());
        store
            .apply(UpdateBatch::insert(vec![t("a", "p", "c")]))
            .unwrap();
        let obs = store.obs();
        assert_eq!(
            (obs.wal_appends, obs.compactions, obs.checkpoints),
            (0, 0, 0),
            "plain in-memory commit touches no counter"
        );
        store.compact().unwrap();
        let obs = store.obs();
        assert_eq!(
            (obs.wal_appends, obs.compactions, obs.checkpoints),
            (0, 1, 0),
            "explicit compaction counts; no WAL, no checkpoint"
        );
        store.compact().unwrap();
        assert_eq!(store.obs().compactions, 1, "empty-delta compact is a no-op");

        // WAL-backed store: appends and checkpoints count too.
        let dir = std::env::temp_dir().join(format!("lbr-store-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store = Store::open(base(), Some(&dir)).unwrap();
        store.set_compact_threshold(2);
        store
            .apply(UpdateBatch::insert(vec![t("a", "p", "c")]))
            .unwrap();
        let obs = store.obs();
        assert_eq!((obs.wal_appends, obs.compactions), (1, 0));
        let info = store
            .apply(UpdateBatch::insert(vec![t("c", "p", "a")]))
            .unwrap();
        assert!(info.compacted && info.checkpointed);
        let obs = store.obs();
        assert_eq!(
            (obs.wal_appends, obs.compactions, obs.checkpoints),
            (2, 1, 1),
            "threshold commit logs, folds and checkpoints"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn auto_compaction_triggers_at_threshold() {
        let store = Store::in_memory(base());
        store.set_compact_threshold(2);
        store
            .apply(UpdateBatch::insert(vec![t("a", "p", "c")]))
            .unwrap();
        assert!(!store.snapshot().delta().is_empty());
        let info = store
            .apply(UpdateBatch::insert(vec![t("c", "p", "a")]))
            .unwrap();
        assert!(info.compacted, "second change reaches the threshold");
        assert!(store.snapshot().delta().is_empty());
        assert_eq!(store.snapshot().n_triples(), 5);
    }

    #[test]
    fn current_ref_survives_epoch_swaps() {
        let store = Store::in_memory(base());
        let before = store.current_ref();
        let epoch0 = before.epoch();
        // Base roles: subjects {a, b}, predicates {p, q}, objects {b, c};
        // every combination is encodable, so all commits take the fast path.
        for s in ["a", "b"] {
            for p in ["p", "q"] {
                for o in ["b", "c"] {
                    let info = store.apply(UpdateBatch::insert(vec![t(s, p, o)])).unwrap();
                    assert!(!info.rebuilt);
                }
            }
        }
        assert_eq!(store.epoch(), 5, "8 combinations, 3 already present");
        // The borrow taken before the commits still reads its own epoch.
        assert_eq!(before.epoch(), epoch0);
        assert_eq!(before.n_triples(), 3);
        assert_eq!(store.current_ref().n_triples(), 8);
    }

    #[test]
    fn wal_roundtrip_replays_to_the_same_state() {
        let dir = std::env::temp_dir().join(format!("lbr-store-walrt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let view = {
            let store = Store::open(base(), Some(&dir)).unwrap();
            store
                .apply(UpdateBatch::insert(vec![
                    t("a", "p", "c"),
                    t("zz", "p", "a"),
                ]))
                .unwrap();
            store
                .apply(UpdateBatch::delete(vec![t("a", "q", "c")]))
                .unwrap();
            store.snapshot().triples()
        };
        let reopened = Store::open(base(), Some(&dir)).unwrap();
        assert_eq!(reopened.snapshot().triples(), view);
        // The zz-insert was a rebuild ⇒ checkpointed + truncated the log,
        // so only the later delete replays: epoch 1, not 2.
        assert_eq!(reopened.epoch(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshots_not_vended_as_borrows_are_freed() {
        let store = Store::in_memory(base());
        store
            .apply(UpdateBatch::insert(vec![t("a", "p", "c")]))
            .unwrap();
        let weak = Arc::downgrade(&store.snapshot());
        store
            .apply(UpdateBatch::insert(vec![t("b", "q", "c")]))
            .unwrap();
        assert!(
            weak.upgrade().is_none(),
            "an epoch never vended as a borrow must drop once superseded"
        );
        // A vended borrow, by contrast, pins its epoch for the store's
        // lifetime across any number of commits.
        let pinned = store.current_ref();
        let epoch = pinned.epoch();
        store
            .apply(UpdateBatch::insert(vec![t("c", "q", "b")]))
            .unwrap();
        store.compact().unwrap();
        assert_eq!(pinned.epoch(), epoch);
    }

    #[test]
    fn rebuild_checkpoints_and_truncates_the_wal() {
        let dir = std::env::temp_dir().join(format!("lbr-store-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let view = {
            let store = Store::open(base(), Some(&dir)).unwrap();
            let info = store
                .apply(UpdateBatch::insert(vec![t("fresh", "p", "a")]))
                .unwrap();
            assert!(info.rebuilt && info.compacted && info.checkpointed);
            let rec = Wal::inspect(&dir).unwrap();
            assert!(rec.records.is_empty(), "checkpoint truncated the log");
            // A following fast-path commit lands in the (short) tail.
            let info = store
                .apply(UpdateBatch::delete(vec![t("a", "q", "c")]))
                .unwrap();
            assert!(!info.compacted && !info.checkpointed);
            assert_eq!(Wal::inspect(&dir).unwrap().records.len(), 1);
            store.snapshot().triples()
        };
        let ckpt = wal::read_checkpoint(&dir).unwrap().expect("image exists");
        assert!(ckpt.contains(&t("fresh", "p", "a")));
        let reopened = Store::open(base(), Some(&dir)).unwrap();
        assert_eq!(reopened.snapshot().triples(), view);
        assert_eq!(reopened.epoch(), 1, "only the tail record replays");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_uses_checkpoint_segments() {
        let dir = std::env::temp_dir().join(format!("lbr-store-seg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let view = {
            let store = Store::open(base(), Some(&dir)).unwrap();
            let info = store
                .apply(UpdateBatch::insert(vec![t("fresh", "p", "a")]))
                .unwrap();
            assert!(info.checkpointed, "rebuild writes a v2 checkpoint");
            store.snapshot().triples()
        };
        assert!(
            dir.join(wal::SEGMENTS_FILE).is_file(),
            "checkpoint persisted a compacted segment file"
        );
        // Reopen: the checkpointed segments are mmap'd instead of rebuilt,
        // and the merged view is identical.
        let reopened = Store::open(base(), Some(&dir)).unwrap();
        assert!(
            reopened.snapshot().segments().is_disk(),
            "reopen serves the checkpointed segments zero-copy"
        );
        assert_eq!(reopened.snapshot().triples(), view);
        // Further fast-path commits work against disk segments.
        reopened
            .apply(UpdateBatch::delete(vec![t("a", "q", "c")]))
            .unwrap();
        assert!(!reopened.snapshot().contains(&t("a", "q", "c")));
        assert!(reopened.snapshot().contains(&t("fresh", "p", "a")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_segment_file_falls_back_to_heap_rebuild() {
        let dir = std::env::temp_dir().join(format!("lbr-store-segcor-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let view = {
            let store = Store::open(base(), Some(&dir)).unwrap();
            store
                .apply(UpdateBatch::insert(vec![t("fresh", "p", "a")]))
                .unwrap();
            store.snapshot().triples()
        };
        // Simulate a crash between the two checkpoint renames: the segment
        // file no longer matches the pin (length + head CRC) in the ckpt.
        let seg = dir.join(wal::SEGMENTS_FILE);
        let mut bytes = std::fs::read(&seg).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(&seg, &bytes).unwrap();
        let reopened = Store::open(base(), Some(&dir)).unwrap();
        assert!(
            !reopened.snapshot().segments().is_disk(),
            "mismatched segment pin falls back to a heap rebuild"
        );
        assert_eq!(reopened.snapshot().triples(), view);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
