//! The delta memtable: insert and tombstone sets in the base ID space.
//!
//! A [`TripleSet`] keeps every triple under three orderings — `(p,s,o)`,
//! `(s,p,o)` and `(o,p,s)` — so each of the four BitMat families can range
//! over exactly the triples it needs (`so`/`os` by predicate, `po` by
//! subject, `ps` by object) without scanning the whole delta. The sets are
//! `BTreeSet`s: deltas are small by design (compaction folds them away),
//! and ordered range scans produce the sorted position lists the
//! compressed-row constructors want.

use lbr_rdf::EncodedTriple;
use std::collections::BTreeSet;

/// A set of encoded triples indexed for all four BitMat access paths.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TripleSet {
    /// `(p, s, o)` — serves the per-predicate S-O / O-S families.
    by_pso: BTreeSet<(u32, u32, u32)>,
    /// `(s, p, o)` — serves the per-subject P-O family.
    by_spo: BTreeSet<(u32, u32, u32)>,
    /// `(o, p, s)` — serves the per-object P-S family.
    by_ops: BTreeSet<(u32, u32, u32)>,
}

impl TripleSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.by_pso.len()
    }

    /// True when no triple is present.
    pub fn is_empty(&self) -> bool {
        self.by_pso.is_empty()
    }

    /// Inserts a triple; returns `true` if it was new.
    pub fn insert(&mut self, t: EncodedTriple) -> bool {
        let added = self.by_pso.insert((t.p, t.s, t.o));
        if added {
            self.by_spo.insert((t.s, t.p, t.o));
            self.by_ops.insert((t.o, t.p, t.s));
        }
        added
    }

    /// Removes a triple; returns `true` if it was present.
    pub fn remove(&mut self, t: EncodedTriple) -> bool {
        let removed = self.by_pso.remove(&(t.p, t.s, t.o));
        if removed {
            self.by_spo.remove(&(t.s, t.p, t.o));
            self.by_ops.remove(&(t.o, t.p, t.s));
        }
        removed
    }

    /// Membership test.
    pub fn contains(&self, t: EncodedTriple) -> bool {
        self.by_pso.contains(&(t.p, t.s, t.o))
    }

    /// All triples, ascending by `(p, s, o)`.
    pub fn iter(&self) -> impl Iterator<Item = EncodedTriple> + '_ {
        self.by_pso
            .iter()
            .map(|&(p, s, o)| EncodedTriple::new(s, p, o))
    }

    /// `(s, o)` pairs of predicate `p`, ascending — the S-O family's order.
    pub fn pairs_of_p(&self, p: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.by_pso
            .range((p, 0, 0)..=(p, u32::MAX, u32::MAX))
            .map(|&(_, s, o)| (s, o))
    }

    /// `(p, o)` pairs of subject `s`, ascending — the P-O family's order.
    pub fn pairs_of_s(&self, s: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.by_spo
            .range((s, 0, 0)..=(s, u32::MAX, u32::MAX))
            .map(|&(_, p, o)| (p, o))
    }

    /// `(p, s)` pairs of object `o`, ascending — the P-S family's order.
    pub fn pairs_of_o(&self, o: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.by_ops
            .range((o, 0, 0)..=(o, u32::MAX, u32::MAX))
            .map(|&(_, p, s)| (p, s))
    }

    /// Objects of `(s, p, ?o)`, ascending.
    pub fn objects_of_sp(&self, s: u32, p: u32) -> impl Iterator<Item = u32> + '_ {
        self.by_spo
            .range((s, p, 0)..=(s, p, u32::MAX))
            .map(|&(_, _, o)| o)
    }

    /// Subjects of `(?s, p, o)`, ascending.
    pub fn subjects_of_po(&self, p: u32, o: u32) -> impl Iterator<Item = u32> + '_ {
        self.by_ops
            .range((o, p, 0)..=(o, p, u32::MAX))
            .map(|&(_, _, s)| s)
    }

    /// Triple count of predicate `p`.
    pub fn count_p(&self, p: u32) -> u64 {
        self.pairs_of_p(p).count() as u64
    }

    /// Triple count of subject `s`.
    pub fn count_s(&self, s: u32) -> u64 {
        self.pairs_of_s(s).count() as u64
    }

    /// Triple count of object `o`.
    pub fn count_o(&self, o: u32) -> u64 {
        self.pairs_of_o(o).count() as u64
    }

    /// Count of `(s, p, ?o)` matches.
    pub fn count_sp(&self, s: u32, p: u32) -> u64 {
        self.objects_of_sp(s, p).count() as u64
    }

    /// Count of `(?s, p, o)` matches.
    pub fn count_po(&self, p: u32, o: u32) -> u64 {
        self.subjects_of_po(p, o).count() as u64
    }
}

/// The memtable: what the current epoch has added to and removed from the
/// immutable base segments.
///
/// Invariants (maintained by [`crate::Store`] at apply time, relied on by
/// [`crate::OverlayCatalog`] for exact arithmetic counts):
///
/// * every `inserts` triple is **absent** from the base segments;
/// * every `tombstones` triple is **present** in the base segments;
/// * `inserts` and `tombstones` are disjoint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Delta {
    /// Triples added since the segments were built.
    pub inserts: TripleSet,
    /// Base triples deleted since the segments were built.
    pub tombstones: TripleSet,
}

impl Delta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when the delta holds no changes (the overlay is then a pure
    /// pass-through to the base segments).
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.tombstones.is_empty()
    }

    /// Number of resident changes (inserts + tombstones) — what the
    /// compaction threshold is compared against.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.tombstones.len()
    }

    /// Net triple-count change relative to the base.
    pub fn net(&self) -> i64 {
        self.inserts.len() as i64 - self.tombstones.len() as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u32, p: u32, o: u32) -> EncodedTriple {
        EncodedTriple::new(s, p, o)
    }

    #[test]
    fn three_orderings_stay_in_sync() {
        let mut set = TripleSet::new();
        assert!(set.insert(t(1, 0, 2)));
        assert!(set.insert(t(3, 0, 2)));
        assert!(set.insert(t(1, 1, 4)));
        assert!(!set.insert(t(1, 0, 2)), "duplicate insert is a no-op");
        assert_eq!(set.len(), 3);

        assert_eq!(set.pairs_of_p(0).collect::<Vec<_>>(), vec![(1, 2), (3, 2)]);
        assert_eq!(set.pairs_of_s(1).collect::<Vec<_>>(), vec![(0, 2), (1, 4)]);
        assert_eq!(set.pairs_of_o(2).collect::<Vec<_>>(), vec![(0, 1), (0, 3)]);
        assert_eq!(set.objects_of_sp(1, 0).collect::<Vec<_>>(), vec![2]);
        assert_eq!(set.subjects_of_po(0, 2).collect::<Vec<_>>(), vec![1, 3]);

        assert!(set.remove(t(3, 0, 2)));
        assert!(!set.remove(t(3, 0, 2)));
        assert_eq!(set.count_p(0), 1);
        assert_eq!(set.count_o(2), 1);
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![t(1, 0, 2), t(1, 1, 4)]);
    }

    #[test]
    fn delta_len_and_net() {
        let mut d = Delta::new();
        assert!(d.is_empty());
        d.inserts.insert(t(0, 0, 0));
        d.inserts.insert(t(0, 0, 1));
        d.tombstones.insert(t(1, 0, 0));
        assert_eq!(d.len(), 3);
        assert_eq!(d.net(), 1);
        assert!(!d.is_empty());
    }
}
