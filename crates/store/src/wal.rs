//! The write-ahead log: durability for the delta memtable.
//!
//! One file (`lbr.wal`), append-only. Each **record** is one committed
//! update batch:
//!
//! ```text
//! [payload_len: u32 LE][crc32(payload): u32 LE][payload]
//! payload = [op_count: u32 LE] then per op:
//!           [tag: u8 — 0 insert, 1 delete]
//!           [line_len: u32 LE][line: one N-Triples line, UTF-8]
//! ```
//!
//! Ops are **term-level and effective**: the store resolves `DELETE WHERE`
//! patterns and drops no-op inserts/deletes *before* logging, so replay is
//! deterministic and independent of query evaluation. Terms ride as
//! N-Triples text because the dictionary is rebuilt on compaction — raw
//! IDs would dangle.
//!
//! Group commit: a batch is one record and one `fsync` regardless of how
//! many ops it carries. Recovery reads records until the first short or
//! CRC-mismatching frame — a torn tail from a crash mid-append — and
//! truncates the file there, so the log always reopens to exactly the
//! committed prefix.
//!
//! ## Checkpoints
//!
//! Next to the log lives an optional **checkpoint** (`lbr.ckpt`): the
//! full merged view as of some commit, written atomically (temp file →
//! fsync → rename → directory fsync) by the store whenever it folds the
//! delta into fresh segments. After a checkpoint the WAL is truncated —
//! its records are folded into the image — so the log only ever holds
//! the updates since the last fold and reopen cost stops growing with
//! history. [`read_checkpoint`] loads the image; a present-but-corrupt
//! checkpoint is a hard error, because the atomic write protocol never
//! leaves a torn image behind (unlike the WAL's expected torn tail).

use lbr_bitmat::{disk, BitMatError, BitMatStore};
use lbr_rdf::{parse_ntriples, Dictionary, EncodedGraph, EncodedTriple, Graph, Triple};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// The WAL file name inside a `wal_dir`.
pub const WAL_FILE: &str = "lbr.wal";

/// The checkpoint file name inside a `wal_dir`.
pub const CHECKPOINT_FILE: &str = "lbr.ckpt";

/// The compacted segment file a v2 checkpoint ships with: the BitMat
/// store of the checkpoint graph in `lbr_bitmat::disk` format, ready to
/// be `mmap`ed on reopen instead of rebuilt.
pub const SEGMENTS_FILE: &str = "lbr.seg";

/// Magic prefix of a v2 checkpoint frame. A v1 frame starts with its
/// payload length instead — `"LBRC"` as a little-endian length would be
/// a ~1.1 GB payload, and the CRC would reject it regardless, so the
/// two formats cannot be confused.
const CKPT_MAGIC_V2: &[u8; 8] = b"LBRCKPT2";

/// Fsyncs a directory, pinning entry creations and renames inside it to
/// disk — syncing a file's *data* alone does not make its *name*
/// durable, so a crash right after creating `lbr.wal` could otherwise
/// lose the whole file despite acknowledged commits.
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

/// What one logged operation does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOpKind {
    /// Add the triple.
    Insert,
    /// Remove the triple.
    Delete,
}

/// One term-level operation of a committed batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalOp {
    /// Insert or delete.
    pub kind: WalOpKind,
    /// The concrete triple (already resolved — never a pattern).
    pub triple: Triple,
}

/// The result of reading a WAL: the committed records plus how much of a
/// torn tail (if any) followed them.
#[derive(Debug, Default)]
pub struct WalRecovery {
    /// Fully committed batches, oldest first.
    pub records: Vec<Vec<WalOp>>,
    /// Byte length of the valid prefix.
    pub valid_bytes: u64,
    /// Bytes of torn tail discarded after the valid prefix.
    pub truncated_bytes: u64,
}

/// The append-only log handle.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    sync: bool,
}

impl Wal {
    /// Opens (creating if absent) the log in `dir`, recovering the
    /// committed records and truncating any torn tail in place.
    pub fn open(dir: &Path) -> std::io::Result<(Wal, WalRecovery)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(WAL_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let recovery = decode(&bytes);
        if recovery.truncated_bytes > 0 {
            file.set_len(recovery.valid_bytes)?;
            file.sync_all()?;
        }
        // Make the file's *existence* durable too: without the directory
        // fsync a crash after the first acknowledged commit could lose
        // the just-created log file itself.
        sync_dir(dir)?;
        file.seek(SeekFrom::Start(recovery.valid_bytes))?;
        Ok((
            Wal {
                file,
                path,
                sync: true,
            },
            recovery,
        ))
    }

    /// Reads a WAL file without touching it (no truncation) — what the
    /// crash-recovery tests use to learn the committed prefix.
    pub fn inspect(dir: &Path) -> std::io::Result<WalRecovery> {
        let bytes = std::fs::read(dir.join(WAL_FILE))?;
        Ok(decode(&bytes))
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Disables the per-commit fsync (benchmarks; crash safety is then
    /// the file system's problem).
    pub fn set_sync(&mut self, sync: bool) {
        self.sync = sync;
    }

    /// Whether the per-commit fsync is enabled.
    pub fn is_sync(&self) -> bool {
        self.sync
    }

    /// Truncates the log to empty — called right after a checkpoint made
    /// every logged record redundant. The file itself stays (same
    /// inode), so no directory fsync is needed here.
    pub fn reset(&mut self) -> std::io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_all()
    }

    /// Appends one committed batch as a single record, then fsyncs once
    /// (group commit: the batch shares that one fsync).
    pub fn append(&mut self, ops: &[WalOp]) -> std::io::Result<()> {
        let payload = encode_payload(ops);
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        if self.sync {
            self.file.sync_data()?;
        }
        Ok(())
    }
}

fn encode_payload(ops: &[WalOp]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        out.push(match op.kind {
            WalOpKind::Insert => 0,
            WalOpKind::Delete => 1,
        });
        let line = op.triple.to_string();
        out.extend_from_slice(&(line.len() as u32).to_le_bytes());
        out.extend_from_slice(line.as_bytes());
    }
    out
}

/// Decodes a WAL image into committed records plus the torn tail length.
/// Any malformed frame — short header, short payload, CRC mismatch, or a
/// payload that does not parse back into ops — ends the valid prefix.
pub fn decode(bytes: &[u8]) -> WalRecovery {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while let Some(header) = bytes.get(pos..pos + 8) {
        let len = le_u32(header, 0) as usize;
        let crc = le_u32(header, 4);
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        let Some(ops) = decode_payload(payload) else {
            break;
        };
        records.push(ops);
        pos += 8 + len;
    }
    WalRecovery {
        records,
        valid_bytes: pos as u64,
        truncated_bytes: (bytes.len() - pos) as u64,
    }
}

/// Reads the little-endian u32 at `at`; the caller has already
/// length-checked the slice, so this never sees fewer than 4 bytes.
fn le_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
}

/// Reads the little-endian u64 at `at`; caller length-checked.
fn le_u64(bytes: &[u8], at: usize) -> u64 {
    (le_u32(bytes, at) as u64) | ((le_u32(bytes, at + 4) as u64) << 32)
}

fn decode_payload(payload: &[u8]) -> Option<Vec<WalOp>> {
    let count = u32::from_le_bytes(payload.get(0..4)?.try_into().ok()?) as usize;
    let mut pos = 4usize;
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        let kind = match payload.get(pos)? {
            0 => WalOpKind::Insert,
            1 => WalOpKind::Delete,
            _ => return None,
        };
        pos += 1;
        let len = u32::from_le_bytes(payload.get(pos..pos + 4)?.try_into().ok()?) as usize;
        pos += 4;
        let line = std::str::from_utf8(payload.get(pos..pos + len)?).ok()?;
        pos += len;
        let mut triples = parse_ntriples(line).ok()?;
        if triples.len() != 1 {
            return None;
        }
        ops.push(WalOp {
            kind,
            triple: triples.pop()?,
        });
    }
    (pos == payload.len()).then_some(ops)
}

/// Writes `triples` as the checkpoint image of `dir`, atomically: the
/// frame goes to a temp file, is fsynced, renamed over
/// [`CHECKPOINT_FILE`], and the directory is fsynced so the rename
/// survives a crash. A reader sees either the old complete image or the
/// new one, never a torn mix. The frame is
/// `[payload_len: u32 LE][crc32(payload): u32 LE][payload]` with the
/// payload being the triples as N-Triples lines.
///
/// `sync` mirrors the WAL's group-commit fsync switch: benchmarks that
/// turned off per-commit syncing skip the checkpoint syncs too.
pub fn write_checkpoint(dir: &Path, triples: &[Triple], sync: bool) -> std::io::Result<()> {
    let mut payload = String::new();
    for t in triples {
        payload.push_str(&t.to_string());
        payload.push('\n');
    }
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload.as_bytes()).to_le_bytes());
    frame.extend_from_slice(payload.as_bytes());
    let tmp = dir.join(format!("{CHECKPOINT_FILE}.tmp"));
    let mut file = File::create(&tmp)?;
    file.write_all(&frame)?;
    if sync {
        file.sync_all()?;
    }
    drop(file);
    std::fs::rename(&tmp, dir.join(CHECKPOINT_FILE))?;
    if sync {
        sync_dir(dir)?;
    }
    Ok(())
}

/// How a v2 checkpoint pins the segment file it was written with: the
/// exact byte length plus a CRC of the header page. A crash between the
/// two renames of [`write_checkpoint_v2`] leaves image and segment file
/// from different checkpoints — the mismatch is detected here and the
/// opener falls back to rebuilding from the (always-authoritative)
/// checkpoint graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentRef {
    /// Byte length of `lbr.seg`.
    pub len: u64,
    /// CRC-32 of the segment file's first page (`min(4096, len)` bytes).
    pub head_crc: u32,
}

/// A decoded checkpoint: the graph it restores, and (v2 only) the
/// reference to the compacted segment file written alongside.
#[derive(Debug)]
pub struct CheckpointImage {
    /// Dictionary + encoded triples of the checkpointed merged view. A
    /// v1 checkpoint stores N-Triples text, so its graph is re-encoded
    /// here; a v2 checkpoint restores the exact dictionary the segments
    /// were built in.
    pub graph: EncodedGraph,
    /// The segment-file reference (v2 checkpoints only).
    pub segments: Option<SegmentRef>,
}

fn ckpt_corrupt(what: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("corrupt checkpoint: {what}"),
    )
}

/// Reads `dir`'s checkpoint as term-level triples. `Ok(None)` when no
/// checkpoint exists. A present-but-corrupt checkpoint is a hard error:
/// the atomic write protocol never leaves a torn image behind, so
/// corruption is real damage — silently falling back to the boot-time
/// source would undo every checkpointed update.
pub fn read_checkpoint(dir: &Path) -> std::io::Result<Option<Vec<Triple>>> {
    let Some(image) = read_checkpoint_image(dir)? else {
        return Ok(None);
    };
    let mut out = Vec::with_capacity(image.graph.triples.len());
    for e in &image.graph.triples {
        out.push(
            image
                .graph
                .dict
                .decode(e)
                .ok_or_else(|| ckpt_corrupt("triple ID outside the dictionary"))?,
        );
    }
    Ok(Some(out))
}

/// Reads `dir`'s checkpoint in full — graph plus the v2 segment-file
/// reference. Same error contract as [`read_checkpoint`].
pub fn read_checkpoint_image(dir: &Path) -> std::io::Result<Option<CheckpointImage>> {
    let bytes = match std::fs::read(dir.join(CHECKPOINT_FILE)) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let v2 = bytes.starts_with(CKPT_MAGIC_V2);
    let base = if v2 { CKPT_MAGIC_V2.len() } else { 0 };
    let header = bytes
        .get(base..base + 8)
        .ok_or_else(|| ckpt_corrupt("short header"))?;
    let len = le_u32(header, 0) as usize;
    let crc = le_u32(header, 4);
    let payload = bytes
        .get(base + 8..base + 8 + len)
        .ok_or_else(|| ckpt_corrupt("short payload"))?;
    if bytes.len() != base + 8 + len {
        return Err(ckpt_corrupt("trailing bytes"));
    }
    if crc32(payload) != crc {
        return Err(ckpt_corrupt("CRC mismatch"));
    }
    if v2 {
        decode_v2_payload(payload).map(Some)
    } else {
        let text =
            std::str::from_utf8(payload).map_err(|_| ckpt_corrupt("payload is not UTF-8"))?;
        let triples = parse_ntriples(text).map_err(|_| ckpt_corrupt("payload is not N-Triples"))?;
        Ok(Some(CheckpointImage {
            graph: Graph::from_triples(triples).encode(),
            segments: None,
        }))
    }
}

/// Decodes a v2 payload: `[seg_len u64][seg_head_crc u32]
/// [dict_len u64][dict bytes][n_triples u64][(s p o) u32×3 …]`.
fn decode_v2_payload(payload: &[u8]) -> std::io::Result<CheckpointImage> {
    let mut pos = 0usize;
    let mut take = |n: usize| -> std::io::Result<&[u8]> {
        let b = payload
            .get(pos..pos + n)
            .ok_or_else(|| ckpt_corrupt("short v2 payload"))?;
        pos += n;
        Ok(b)
    };
    let seg_len = le_u64(take(8)?, 0);
    let head_crc = le_u32(take(4)?, 0);
    let dict_len = le_u64(take(8)?, 0) as usize;
    let dict_bytes = take(dict_len)?;
    let dict = Dictionary::from_bytes(dict_bytes)
        .map_err(|e| ckpt_corrupt(&format!("dictionary: {e}")))?;
    let n_triples = le_u64(take(8)?, 0) as usize;
    if n_triples > payload.len() / 12 {
        return Err(ckpt_corrupt("triple count exceeds payload"));
    }
    let mut triples = Vec::with_capacity(n_triples);
    for _ in 0..n_triples {
        let b = take(12)?;
        let e = EncodedTriple {
            s: le_u32(b, 0),
            p: le_u32(b, 4),
            o: le_u32(b, 8),
        };
        if e.s >= dict.n_subjects() || e.p >= dict.n_predicates() || e.o >= dict.n_objects() {
            return Err(ckpt_corrupt("triple ID outside the dictionary"));
        }
        triples.push(e);
    }
    if pos != payload.len() {
        return Err(ckpt_corrupt("trailing v2 payload bytes"));
    }
    Ok(CheckpointImage {
        graph: EncodedGraph { dict, triples },
        segments: Some(SegmentRef {
            len: seg_len,
            head_crc,
        }),
    })
}

/// The segment file's header page: its first `min(4096, len)` bytes —
/// what [`SegmentRef::head_crc`] covers.
pub fn read_segment_head(path: &Path) -> std::io::Result<Vec<u8>> {
    let mut file = File::open(path)?;
    let len = file.metadata()?.len().min(4096) as usize;
    let mut head = vec![0u8; len];
    file.read_exact(&mut head)?;
    Ok(head)
}

fn io_of_bitmat(e: BitMatError) -> std::io::Error {
    match e {
        BitMatError::Io(io) => io,
        other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
    }
}

/// Writes a **v2** checkpoint: the compacted segment file first
/// (`lbr.seg`, via [`disk::save_store`], temp → fsync → rename), then
/// the checkpoint frame carrying the dictionary, the encoded triples and
/// the [`SegmentRef`] pinning the segment file (temp → fsync → rename →
/// directory fsync). Each rename is atomic; a crash between the two
/// leaves a segment/image pair whose `SegmentRef` does not match, which
/// the opener detects and survives by rebuilding from the image.
pub fn write_checkpoint_v2(
    dir: &Path,
    graph: &EncodedGraph,
    segments: &BitMatStore,
    sync: bool,
) -> std::io::Result<()> {
    // 1. The segment file.
    let tmp_seg = dir.join(format!("{SEGMENTS_FILE}.tmp"));
    let seg_len = disk::save_store(segments, &tmp_seg).map_err(io_of_bitmat)?;
    let head_crc = crc32(&read_segment_head(&tmp_seg)?);
    if sync {
        File::open(&tmp_seg)?.sync_all()?;
    }
    std::fs::rename(&tmp_seg, dir.join(SEGMENTS_FILE))?;

    // 2. The checkpoint frame referencing it.
    let dict_bytes = graph.dict.to_bytes();
    let mut payload = Vec::with_capacity(28 + dict_bytes.len() + 12 * graph.triples.len());
    payload.extend_from_slice(&seg_len.to_le_bytes());
    payload.extend_from_slice(&head_crc.to_le_bytes());
    payload.extend_from_slice(&(dict_bytes.len() as u64).to_le_bytes());
    payload.extend_from_slice(&dict_bytes);
    payload.extend_from_slice(&(graph.triples.len() as u64).to_le_bytes());
    for e in &graph.triples {
        payload.extend_from_slice(&e.s.to_le_bytes());
        payload.extend_from_slice(&e.p.to_le_bytes());
        payload.extend_from_slice(&e.o.to_le_bytes());
    }
    let mut frame = Vec::with_capacity(16 + payload.len());
    frame.extend_from_slice(CKPT_MAGIC_V2);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    let tmp = dir.join(format!("{CHECKPOINT_FILE}.tmp"));
    let mut file = File::create(&tmp)?;
    file.write_all(&frame)?;
    if sync {
        file.sync_all()?;
    }
    drop(file);
    std::fs::rename(&tmp, dir.join(CHECKPOINT_FILE))?;
    if sync {
        sync_dir(dir)?;
    }
    Ok(())
}

/// CRC-32 (IEEE 802.3, reflected) — implemented here because the build
/// environment is offline and the workspace vendors no checksum crate.
pub fn crc32(bytes: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }
    const TABLE: [u32; 256] = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_rdf::Term;

    fn op(kind: WalOpKind, s: &str) -> WalOp {
        WalOp {
            kind,
            triple: Triple::new(
                Term::iri(s),
                Term::iri("p"),
                Term::literal("v \"quoted\"\n"),
            ),
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lbr-wal-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn append_reopen_roundtrip_with_escapes() {
        let dir = tmp_dir("roundtrip");
        let batches = vec![
            vec![op(WalOpKind::Insert, "a"), op(WalOpKind::Insert, "b")],
            vec![op(WalOpKind::Delete, "a")],
            vec![],
        ];
        {
            let (mut wal, rec) = Wal::open(&dir).unwrap();
            assert!(rec.records.is_empty());
            for b in &batches {
                wal.append(b).unwrap();
            }
        }
        let (_, rec) = Wal::open(&dir).unwrap();
        assert_eq!(rec.records, batches);
        assert_eq!(rec.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_at_every_offset() {
        let dir = tmp_dir("torn");
        {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            wal.append(&[op(WalOpKind::Insert, "a")]).unwrap();
            wal.append(&[op(WalOpKind::Insert, "b"), op(WalOpKind::Delete, "a")])
                .unwrap();
        }
        let full = std::fs::read(dir.join(WAL_FILE)).unwrap();
        let first = decode(&full).records[0].clone();
        let boundary = u32::from_le_bytes(full[0..4].try_into().unwrap()) as usize + 8;
        for cut in 0..full.len() {
            std::fs::write(dir.join(WAL_FILE), &full[..cut]).unwrap();
            let (_, rec) = Wal::open(&dir).unwrap();
            // Every cut keeps exactly the records whose frames fit.
            let expect: usize = if cut < boundary {
                0
            } else if cut < full.len() {
                1
            } else {
                2
            };
            assert_eq!(rec.records.len(), expect, "cut at {cut}");
            if expect >= 1 {
                assert_eq!(rec.records[0], first);
            }
            // And the truncation is persistent: reopening is clean.
            let again = Wal::inspect(&dir).unwrap();
            assert_eq!(again.truncated_bytes, 0, "cut at {cut} left a tail");
            assert_eq!(again.records.len(), expect);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_roundtrip() {
        let dir = tmp_dir("ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(read_checkpoint(&dir).unwrap(), None);
        let triples = vec![
            Triple::new(Term::iri("a"), Term::iri("p"), Term::literal("v \"q\"\n")),
            Triple::new(Term::iri("b"), Term::iri("p"), Term::iri("a")),
        ];
        write_checkpoint(&dir, &triples, true).unwrap();
        assert_eq!(read_checkpoint(&dir).unwrap(), Some(triples.clone()));
        // Overwriting replaces the image atomically; no temp file stays.
        write_checkpoint(&dir, &triples[..1], false).unwrap();
        assert_eq!(read_checkpoint(&dir).unwrap(), Some(triples[..1].to_vec()));
        assert!(!dir.join(format!("{CHECKPOINT_FILE}.tmp")).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoint_is_a_hard_error() {
        let dir = tmp_dir("ckpt-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let triples = vec![Triple::new(Term::iri("a"), Term::iri("p"), Term::iri("b"))];
        write_checkpoint(&dir, &triples, true).unwrap();
        let mut bytes = std::fs::read(dir.join(CHECKPOINT_FILE)).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(dir.join(CHECKPOINT_FILE), &bytes).unwrap();
        let err = read_checkpoint(&dir).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_in_payload_is_rejected() {
        let dir = tmp_dir("bitflip");
        {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            wal.append(&[op(WalOpKind::Insert, "a")]).unwrap();
        }
        let mut bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(dir.join(WAL_FILE), &bytes).unwrap();
        let (_, rec) = Wal::open(&dir).unwrap();
        assert!(rec.records.is_empty());
        assert_eq!(rec.valid_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
