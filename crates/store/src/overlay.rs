//! [`OverlayCatalog`]: the delta merged into the compressed cursors.
//!
//! Engines never see the delta: they consume the [`Catalog`] trait, and
//! this implementation answers every load with *base segments + inserts −
//! tombstones*, materialized per query exactly like [`BitMatStore`]
//! answers them (owned matrices, `None` for empty). Rows untouched by the
//! delta are cloned from the compressed base row verbatim; touched rows
//! are re-compressed from the merged sorted position list — so the result
//! of every load is **bit-for-bit identical** to what a `BitMatStore`
//! built from the merged triples would return, which is what keeps all
//! five engines byte-equivalent to a from-scratch rebuild.
//!
//! With an empty delta every method is a pure delegation to the base
//! store: the 0 %-delta overhead on the PR 5 kernel numbers is one branch
//! per load.

use crate::delta::Delta;
use lbr_bitmat::{
    compute_shard_ranges, BitMat, BitMatError, BitMatStore, BitRow, Catalog, CubeDims, DiskCatalog,
    DEFAULT_SHARDS,
};
use lbr_rdf::EncodedTriple;
use std::sync::Arc;

/// Sorted `(row, col)` delta pairs of one per-predicate family.
type PairList = Vec<(u32, u32)>;

/// One shard's merged matrices: `(p, S-O, O-S)` per predicate, as
/// returned by [`OverlayCatalog::shard_matrices`].
pub type ShardMatrices = Vec<(u32, Option<BitMat>, Option<BitMat>)>;

/// Where the immutable base segments live: built on the heap, or mmap'd
/// from an on-disk segment file written by `lbr_bitmat::disk::save_store`.
///
/// The overlay treats both uniformly through the [`Catalog`] trait, so
/// the delta/WAL layers above are agnostic to the segment medium — an
/// updatable store can reopen straight onto a mapped checkpoint segment
/// and skip the BitMat rebuild entirely.
#[derive(Debug, Clone)]
pub enum SegmentSource {
    /// Segments built in memory by [`BitMatStore::build`].
    Heap(Arc<BitMatStore>),
    /// Segments read zero-copy from an mmap'd segment file.
    Disk(Arc<DiskCatalog>),
}

impl SegmentSource {
    /// The segments as a [`Catalog`].
    pub fn catalog(&self) -> &dyn Catalog {
        match self {
            SegmentSource::Heap(s) => s.as_ref(),
            SegmentSource::Disk(d) => d.as_ref(),
        }
    }

    /// The cube dimensions of the base segments.
    pub fn dims(&self) -> CubeDims {
        self.catalog().dims()
    }

    /// True when the segments are mmap'd from disk.
    pub fn is_disk(&self) -> bool {
        matches!(self, SegmentSource::Disk(_))
    }

    /// The heap store, when the segments live in memory.
    pub fn as_heap(&self) -> Option<&Arc<BitMatStore>> {
        match self {
            SegmentSource::Heap(s) => Some(s),
            SegmentSource::Disk(_) => None,
        }
    }

    /// True when the base segments contain the encoded triple.
    pub fn contains(&self, e: EncodedTriple) -> bool {
        match self {
            SegmentSource::Heap(s) => s.po(e.s).is_some_and(|m| m.get(e.p, e.o)),
            // Mapped path: one row materialization; a read error on a
            // validated mapping cannot happen, so it degrades to absent.
            SegmentSource::Disk(d) => d
                .load_po_row(e.s, e.p)
                .ok()
                .flatten()
                .is_some_and(|row| row.contains(e.o)),
        }
    }

    /// The predicate-family shard ranges of the base segments: the heap
    /// store's precomputed ranges, or (for a mapped catalog) the same
    /// mass-balanced partition recomputed from the per-predicate counts
    /// in the segment TOC.
    pub fn shard_ranges(&self) -> Vec<(u32, u32)> {
        match self {
            SegmentSource::Heap(s) => s.shard_ranges().to_vec(),
            SegmentSource::Disk(d) => {
                let n = d.dims().n_predicates;
                let counts: Vec<u64> = (0..n).map(|p| d.count_so(p)).collect();
                compute_shard_ranges(&counts, DEFAULT_SHARDS)
            }
        }
    }
}

/// A [`Catalog`] over immutable segments plus a delta memtable.
///
/// Cheap to clone (a few `Arc`s); a clone is pinned to the segment/delta
/// pair it was created with, which is how [`crate::Snapshot`] provides
/// isolation.
#[derive(Debug, Clone)]
pub struct OverlayCatalog {
    segments: SegmentSource,
    delta: Arc<Delta>,
    dims: CubeDims,
    /// Predicate-family shard ranges of the base segments, shared across
    /// snapshot clones.
    shards: Arc<Vec<(u32, u32)>>,
}

impl OverlayCatalog {
    /// Wraps heap segments and a delta. The delta must be in the
    /// segments' ID space and satisfy the [`Delta`] invariants.
    pub fn new(segments: Arc<BitMatStore>, delta: Arc<Delta>) -> Self {
        Self::with_source(SegmentSource::Heap(segments), delta)
    }

    /// Wraps any segment source (heap or mmap'd) and a delta.
    pub fn with_source(segments: SegmentSource, delta: Arc<Delta>) -> Self {
        let mut dims = segments.dims();
        dims.n_triples = (dims.n_triples as i64 + delta.net()) as u64;
        let shards = Arc::new(segments.shard_ranges());
        OverlayCatalog {
            segments,
            delta,
            dims,
            shards,
        }
    }

    /// The immutable base segments.
    pub fn segments(&self) -> &SegmentSource {
        &self.segments
    }

    /// The delta memtable.
    pub fn delta(&self) -> &Arc<Delta> {
        &self.delta
    }

    /// Number of predicate-family shards (0 only with no predicates).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The contiguous predicate-ID ranges `[lo, hi)` of every shard.
    pub fn shard_ranges(&self) -> &[(u32, u32)] {
        &self.shards
    }

    /// The shard a predicate belongs to (`None` if `p` is out of range).
    pub fn shard_of(&self, p: u32) -> Option<usize> {
        if p >= self.dims.n_predicates {
            return None;
        }
        Some(self.shards.partition_point(|&(_, hi)| hi <= p))
    }

    /// Materializes one shard's per-predicate matrices **with the delta
    /// merged in**: `(p, S-O, O-S)` for every predicate of the shard.
    /// This is the unit of work for shard-parallel consumers (bulk
    /// exports, shard-local statistics); rows are bit-for-bit what
    /// [`Catalog::load_so`]/[`Catalog::load_os`] return.
    pub fn shard_matrices(&self, shard: usize) -> Result<ShardMatrices, BitMatError> {
        let (lo, hi) = self.shards.get(shard).copied().unwrap_or((0, 0));
        (lo..hi)
            .map(|p| Ok((p, self.load_so(p)?, self.load_os(p)?)))
            .collect()
    }

    /// Merges per-key delta changes into a base matrix.
    ///
    /// `ins` / `tomb` are `(row, col)` lists sorted ascending; rows they
    /// touch are rebuilt from the merged sorted positions, all other rows
    /// are cloned from the compressed base row as-is.
    fn merge_matrix(
        base: Option<&BitMat>,
        n_rows: u32,
        n_cols: u32,
        ins: &[(u32, u32)],
        tomb: &[(u32, u32)],
    ) -> Option<BitMat> {
        if ins.is_empty() && tomb.is_empty() {
            return base.filter(|m| !m.is_empty()).cloned();
        }
        let base_rows: &[(u32, BitRow)] = base.map_or(&[], |m| m.rows());
        let mut out: Vec<(u32, BitRow)> = Vec::with_capacity(base_rows.len() + ins.len());
        let (mut bi, mut ii, mut ti) = (0usize, 0usize, 0usize);
        let mut cols: Vec<u32> = Vec::new();
        loop {
            // The next row index any of the three sorted streams mentions.
            let next_row = [
                base_rows.get(bi).map(|&(r, _)| r),
                ins.get(ii).map(|&(r, _)| r),
                tomb.get(ti).map(|&(r, _)| r),
            ]
            .into_iter()
            .flatten()
            .min();
            let Some(r) = next_row else { break };

            let base_row = if base_rows.get(bi).is_some_and(|&(br, _)| br == r) {
                let row = &base_rows[bi].1;
                bi += 1;
                Some(row)
            } else {
                None
            };
            let ins_start = ii;
            while ins.get(ii).is_some_and(|&(ir, _)| ir == r) {
                ii += 1;
            }
            let tomb_start = ti;
            while tomb.get(ti).is_some_and(|&(tr, _)| tr == r) {
                ti += 1;
            }
            if ins_start == ii && tomb_start == ti {
                // Untouched row: keep the compressed base row verbatim.
                out.push((
                    r,
                    base_row.expect("row came from one of the streams").clone(),
                ));
                continue;
            }

            // Touched row: merge sorted base positions with the inserted
            // columns, masking out the tombstoned ones.
            cols.clear();
            let mut add = ins[ins_start..ii].iter().map(|&(_, c)| c).peekable();
            let dead: &[(u32, u32)] = &tomb[tomb_start..ti];
            let mut di = 0usize;
            let mut push = |c: u32, di: &mut usize| {
                while dead.get(*di).is_some_and(|&(_, dc)| dc < c) {
                    *di += 1;
                }
                if dead.get(*di).is_none_or(|&(_, dc)| dc != c) {
                    cols.push(c);
                }
            };
            if let Some(row) = base_row {
                for c in row.iter_ones() {
                    while add.peek().is_some_and(|&a| a < c) {
                        push(add.next().unwrap(), &mut di);
                    }
                    if add.peek() == Some(&c) {
                        add.next();
                    }
                    push(c, &mut di);
                }
            }
            for c in add {
                push(c, &mut di);
            }
            if !cols.is_empty() {
                out.push((r, BitRow::from_sorted_positions(n_cols, &cols)));
            }
        }
        if out.is_empty() {
            None
        } else {
            Some(BitMat::from_rows(n_rows, n_cols, out))
        }
    }

    /// `(row, col)` delta lists for a per-predicate family; `swap` flips
    /// `(s, o)` into `(o, s)` for the O-S family.
    fn p_changes(&self, p: u32, swap: bool) -> (PairList, PairList) {
        let reorder = |it: &mut Vec<(u32, u32)>| {
            if swap {
                for pair in it.iter_mut() {
                    *pair = (pair.1, pair.0);
                }
                it.sort_unstable();
            }
        };
        let mut ins: Vec<(u32, u32)> = self.delta.inserts.pairs_of_p(p).collect();
        let mut tomb: Vec<(u32, u32)> = self.delta.tombstones.pairs_of_p(p).collect();
        reorder(&mut ins);
        reorder(&mut tomb);
        (ins, tomb)
    }
}

impl Catalog for OverlayCatalog {
    fn dims(&self) -> CubeDims {
        self.dims
    }

    fn load_so(&self, p: u32) -> Result<Option<BitMat>, BitMatError> {
        if self.delta.is_empty() {
            return self.segments.catalog().load_so(p);
        }
        let (ins, tomb) = self.p_changes(p, false);
        let d = self.dims;
        let owned;
        let base: Option<&BitMat> = match &self.segments {
            SegmentSource::Heap(s) => s.so(p),
            SegmentSource::Disk(dk) => {
                owned = dk.load_so(p)?;
                owned.as_ref()
            }
        };
        Ok(Self::merge_matrix(
            base,
            d.n_subjects,
            d.n_objects,
            &ins,
            &tomb,
        ))
    }

    fn load_os(&self, p: u32) -> Result<Option<BitMat>, BitMatError> {
        if self.delta.is_empty() {
            return self.segments.catalog().load_os(p);
        }
        let (ins, tomb) = self.p_changes(p, true);
        let d = self.dims;
        let owned;
        let base: Option<&BitMat> = match &self.segments {
            SegmentSource::Heap(s) => s.os(p),
            SegmentSource::Disk(dk) => {
                owned = dk.load_os(p)?;
                owned.as_ref()
            }
        };
        Ok(Self::merge_matrix(
            base,
            d.n_objects,
            d.n_subjects,
            &ins,
            &tomb,
        ))
    }

    fn load_po(&self, s: u32) -> Result<Option<BitMat>, BitMatError> {
        if self.delta.is_empty() {
            return self.segments.catalog().load_po(s);
        }
        let ins: Vec<(u32, u32)> = self.delta.inserts.pairs_of_s(s).collect();
        let tomb: Vec<(u32, u32)> = self.delta.tombstones.pairs_of_s(s).collect();
        let d = self.dims;
        let owned;
        let base: Option<&BitMat> = match &self.segments {
            SegmentSource::Heap(st) => st.po(s),
            SegmentSource::Disk(dk) => {
                owned = dk.load_po(s)?;
                owned.as_ref()
            }
        };
        Ok(Self::merge_matrix(
            base,
            d.n_predicates,
            d.n_objects,
            &ins,
            &tomb,
        ))
    }

    fn load_ps(&self, o: u32) -> Result<Option<BitMat>, BitMatError> {
        if self.delta.is_empty() {
            return self.segments.catalog().load_ps(o);
        }
        let ins: Vec<(u32, u32)> = self.delta.inserts.pairs_of_o(o).collect();
        let tomb: Vec<(u32, u32)> = self.delta.tombstones.pairs_of_o(o).collect();
        let d = self.dims;
        let owned;
        let base: Option<&BitMat> = match &self.segments {
            SegmentSource::Heap(st) => st.ps(o),
            SegmentSource::Disk(dk) => {
                owned = dk.load_ps(o)?;
                owned.as_ref()
            }
        };
        Ok(Self::merge_matrix(
            base,
            d.n_predicates,
            d.n_subjects,
            &ins,
            &tomb,
        ))
    }

    fn load_po_row(&self, s: u32, p: u32) -> Result<Option<BitRow>, BitMatError> {
        if self.delta.is_empty() {
            return self.segments.catalog().load_po_row(s, p);
        }
        let owned;
        let base: Option<&BitRow> = match &self.segments {
            SegmentSource::Heap(st) => st.po(s).and_then(|m| m.row(p)),
            SegmentSource::Disk(dk) => {
                owned = dk.load_po_row(s, p)?;
                owned.as_ref()
            }
        };
        let mut ins = self.delta.inserts.objects_of_sp(s, p).peekable();
        if base.is_none() && ins.peek().is_none() {
            return Ok(None);
        }
        let tomb: Vec<u32> = self.delta.tombstones.objects_of_sp(s, p).collect();
        Ok(merge_row(base, ins, &tomb, self.dims.n_objects))
    }

    fn load_ps_row(&self, o: u32, p: u32) -> Result<Option<BitRow>, BitMatError> {
        if self.delta.is_empty() {
            return self.segments.catalog().load_ps_row(o, p);
        }
        let owned;
        let base: Option<&BitRow> = match &self.segments {
            SegmentSource::Heap(st) => st.ps(o).and_then(|m| m.row(p)),
            SegmentSource::Disk(dk) => {
                owned = dk.load_ps_row(o, p)?;
                owned.as_ref()
            }
        };
        let mut ins = self.delta.inserts.subjects_of_po(p, o).peekable();
        if base.is_none() && ins.peek().is_none() {
            return Ok(None);
        }
        let tomb: Vec<u32> = self.delta.tombstones.subjects_of_po(p, o).collect();
        Ok(merge_row(base, ins, &tomb, self.dims.n_subjects))
    }

    fn count_so(&self, p: u32) -> u64 {
        self.segments.catalog().count_so(p) + self.delta.inserts.count_p(p)
            - self.delta.tombstones.count_p(p)
    }

    fn count_po(&self, s: u32) -> u64 {
        self.segments.catalog().count_po(s) + self.delta.inserts.count_s(s)
            - self.delta.tombstones.count_s(s)
    }

    fn count_ps(&self, o: u32) -> u64 {
        self.segments.catalog().count_ps(o) + self.delta.inserts.count_o(o)
            - self.delta.tombstones.count_o(o)
    }

    fn count_po_row(&self, s: u32, p: u32) -> u64 {
        self.segments.catalog().count_po_row(s, p) + self.delta.inserts.count_sp(s, p)
            - self.delta.tombstones.count_sp(s, p)
    }

    fn count_ps_row(&self, o: u32, p: u32) -> u64 {
        self.segments.catalog().count_ps_row(o, p) + self.delta.inserts.count_po(p, o)
            - self.delta.tombstones.count_po(p, o)
    }
}

/// Merges one compressed row with sorted inserted and tombstoned
/// positions; `None` when the result has no set bit (matching what a
/// rebuilt store returns for an absent row).
fn merge_row(
    base: Option<&BitRow>,
    ins: impl Iterator<Item = u32>,
    tomb: &[u32],
    universe: u32,
) -> Option<BitRow> {
    let mut ins = ins.peekable();
    let mut positions: Vec<u32> = Vec::new();
    let mut ti = 0usize;
    let mut push = |pos: u32, ti: &mut usize| {
        while tomb.get(*ti).is_some_and(|&t| t < pos) {
            *ti += 1;
        }
        if tomb.get(*ti) != Some(&pos) {
            positions.push(pos);
        }
    };
    if let Some(row) = base {
        for pos in row.iter_ones() {
            while ins.peek().is_some_and(|&a| a < pos) {
                push(ins.next().unwrap(), &mut ti);
            }
            if ins.peek() == Some(&pos) {
                ins.next();
            }
            push(pos, &mut ti);
        }
    }
    for pos in ins {
        push(pos, &mut ti);
    }
    if positions.is_empty() {
        None
    } else {
        Some(BitRow::from_sorted_positions(universe, &positions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::Delta;
    use lbr_rdf::{EncodedGraph, EncodedTriple, Graph, Term, Triple};

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    /// Builds the overlay (base minus `del`, plus `add`) and the
    /// from-scratch store over the merged triples **with the same
    /// dictionary**, then asserts every load and count is identical.
    fn assert_overlay_matches_rebuild(base: Vec<Triple>, add: Vec<Triple>, del: Vec<Triple>) {
        let graph = Graph::from_triples(base).encode();
        let segments = Arc::new(BitMatStore::build(&graph));

        let mut delta = Delta::new();
        for tr in &del {
            let e = graph.dict.encode(tr).expect("delete uses base terms");
            delta.tombstones.insert(e);
        }
        for tr in &add {
            let e = graph.dict.encode(tr).expect("insert uses base terms");
            delta.inserts.insert(e);
        }

        // From-scratch: same dictionary, merged triple set.
        let mut merged: Vec<EncodedTriple> = graph
            .triples
            .iter()
            .copied()
            .filter(|e| !delta.tombstones.contains(*e))
            .chain(delta.inserts.iter())
            .collect();
        merged.sort_unstable();
        let rebuilt = BitMatStore::build(&EncodedGraph {
            dict: graph.dict.clone(),
            triples: merged,
        });

        let overlay = OverlayCatalog::new(segments, Arc::new(delta));
        let d = overlay.dims();
        assert_eq!(d, rebuilt.dims());
        for p in 0..d.n_predicates {
            assert_eq!(overlay.load_so(p).unwrap(), rebuilt.load_so(p).unwrap());
            assert_eq!(overlay.load_os(p).unwrap(), rebuilt.load_os(p).unwrap());
            assert_eq!(overlay.count_so(p), rebuilt.count_so(p));
        }
        for s in 0..d.n_subjects {
            assert_eq!(overlay.load_po(s).unwrap(), rebuilt.load_po(s).unwrap());
            assert_eq!(overlay.count_po(s), rebuilt.count_po(s));
            for p in 0..d.n_predicates {
                assert_eq!(
                    overlay.load_po_row(s, p).unwrap(),
                    rebuilt.load_po_row(s, p).unwrap()
                );
                assert_eq!(overlay.count_po_row(s, p), rebuilt.count_po_row(s, p));
            }
        }
        for o in 0..d.n_objects {
            assert_eq!(overlay.load_ps(o).unwrap(), rebuilt.load_ps(o).unwrap());
            assert_eq!(overlay.count_ps(o), rebuilt.count_ps(o));
            for p in 0..d.n_predicates {
                assert_eq!(
                    overlay.load_ps_row(o, p).unwrap(),
                    rebuilt.load_ps_row(o, p).unwrap()
                );
                assert_eq!(overlay.count_ps_row(o, p), rebuilt.count_ps_row(o, p));
            }
        }
    }

    fn sitcom_base() -> Vec<Triple> {
        vec![
            t("Julia", "actedIn", "Seinfeld"),
            t("Julia", "actedIn", "Veep"),
            t("Jerry", "actedIn", "Seinfeld"),
            t("Seinfeld", "location", "NewYork"),
            t("Veep", "location", "Washington"),
            t("Jerry", "hasFriend", "Julia"),
        ]
    }

    #[test]
    fn empty_delta_is_pass_through() {
        assert_overlay_matches_rebuild(sitcom_base(), vec![], vec![]);
    }

    #[test]
    fn inserts_are_ored_in() {
        assert_overlay_matches_rebuild(
            sitcom_base(),
            vec![
                t("Julia", "actedIn", "NewYork"), // new object for existing row
                t("Julia", "hasFriend", "Julia"), // self-loop on shared term
                t("Veep", "location", "NewYork"), // second object under a predicate
            ],
            vec![],
        );
    }

    #[test]
    fn tombstones_are_masked_out() {
        assert_overlay_matches_rebuild(
            sitcom_base(),
            vec![],
            vec![
                t("Julia", "actedIn", "Veep"),       // leaves the row non-empty
                t("Veep", "location", "Washington"), // empties a whole matrix row
            ],
        );
    }

    #[test]
    fn mixed_insert_delete_on_one_row() {
        assert_overlay_matches_rebuild(
            sitcom_base(),
            vec![t("Julia", "actedIn", "NewYork")],
            vec![
                t("Julia", "actedIn", "Seinfeld"),
                t("Julia", "actedIn", "Veep"),
            ],
        );
    }

    #[test]
    fn deleting_every_triple_of_a_predicate_yields_none() {
        let base = sitcom_base();
        let dels = vec![
            t("Seinfeld", "location", "NewYork"),
            t("Veep", "location", "Washington"),
        ];
        assert_overlay_matches_rebuild(base.clone(), vec![], dels.clone());

        // And directly: the merged load is None, exactly like a rebuilt store.
        let graph = Graph::from_triples(base).encode();
        let segments = Arc::new(BitMatStore::build(&graph));
        let mut delta = Delta::new();
        for tr in &dels {
            delta.tombstones.insert(graph.dict.encode(tr).unwrap());
        }
        let p = graph
            .dict
            .id(&Term::iri("location"), lbr_rdf::Dimension::Predicate)
            .unwrap();
        let overlay = OverlayCatalog::new(segments, Arc::new(delta));
        assert_eq!(overlay.load_so(p).unwrap(), None);
        assert_eq!(overlay.count_so(p), 0);
    }

    /// Heap- and disk-backed overlays agree shard for shard: same ranges
    /// (the mass-balanced partition is recomputed from the disk TOC's
    /// per-predicate counts) and same merged matrices under a live delta.
    #[test]
    fn shard_iteration_agrees_across_heap_and_disk_sources() {
        let graph = Graph::from_triples(sitcom_base()).encode();
        let segments = Arc::new(BitMatStore::build(&graph));

        let path =
            std::env::temp_dir().join(format!("lbr-overlay-shard-{}.seg", std::process::id()));
        lbr_bitmat::disk::save_store(&segments, &path).unwrap();
        let catalog = Arc::new(lbr_bitmat::DiskCatalog::open(&path).unwrap());

        let mut delta = Delta::new();
        delta.inserts.insert(
            graph
                .dict
                .encode(&t("Jerry", "hasFriend", "Seinfeld"))
                .unwrap(),
        );
        delta.tombstones.insert(
            graph
                .dict
                .encode(&t("Jerry", "actedIn", "Seinfeld"))
                .unwrap(),
        );
        let delta = Arc::new(delta);

        let heap = OverlayCatalog::new(segments, Arc::clone(&delta));
        let disk = OverlayCatalog::with_source(SegmentSource::Disk(catalog), delta);

        assert_eq!(heap.dims(), disk.dims());
        assert_eq!(heap.shard_ranges(), disk.shard_ranges());
        assert!(heap.n_shards() >= 1);
        for shard in 0..heap.n_shards() {
            let h = heap.shard_matrices(shard).unwrap();
            let d = disk.shard_matrices(shard).unwrap();
            assert_eq!(h, d, "shard {shard} differs between heap and disk");
        }
        // Every predicate maps into exactly one shard.
        for p in 0..heap.dims().n_predicates {
            let s = heap.shard_of(p).expect("in-range predicate has a shard");
            let (lo, hi) = heap.shard_ranges()[s];
            assert!(lo <= p && p < hi);
        }
        assert_eq!(heap.shard_of(heap.dims().n_predicates), None);
        std::fs::remove_file(&path).unwrap();
    }
}
