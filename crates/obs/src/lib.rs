//! lbr-obs — the observability layer of the LBR reproduction.
//!
//! Three pieces, all zero-dependency:
//!
//! * [`trace`]: a thread-local span recorder (allocation-free record fast
//!   path) plus [`Tracing`], the per-server sampler and bounded ring of
//!   finished traces behind `GET /debug/traces` and `X-Lbr-Trace-Id`.
//! * [`expo`]: the unified metric registry rendered as Prometheus text
//!   (`GET /metrics`) and as the `/stats` JSON document from one source.
//! * [`lint`]: a Prometheus text-exposition linter, exposed as the
//!   `lbr-obs --lint-exposition` binary for CI scrape validation.
//!
//! All durations on the exposition surfaces are integer **microseconds**
//! (`_us` suffix); see the README's Observability section for the span
//! model and the documented legacy millisecond aliases.

#![forbid(unsafe_code)]

pub mod expo;
pub mod lint;
pub mod trace;

pub use expo::{
    escape_help_into, escape_label_into, json_escape_into, Exposition, HistogramData, Kind, Value,
};
pub use lint::{lint_exposition, LintReport};
pub use trace::{
    render_traces_json, set_label, span_at, span_since, trace_abort, trace_active, trace_begin,
    trace_drain, trace_id, trace_start, FinishedTrace, Span, Tracing, MAX_ATTRS, MAX_SPANS,
};

/// Build identity baked in at compile time.
#[derive(Debug, Clone, Copy)]
pub struct BuildInfo {
    /// Workspace crate version.
    pub version: &'static str,
    /// Git hash from the `LBR_GIT_HASH` build environment variable, or
    /// `"unknown"` when the build didn't provide one.
    pub git_hash: &'static str,
    /// `"debug"` or `"release"`.
    pub profile: &'static str,
}

/// The build identity of the running binary.
pub const fn build_info() -> BuildInfo {
    BuildInfo {
        version: env!("CARGO_PKG_VERSION"),
        git_hash: match option_env!("LBR_GIT_HASH") {
            Some(h) => h,
            None => "unknown",
        },
        profile: if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_info_is_populated() {
        let b = build_info();
        assert!(!b.version.is_empty());
        assert!(!b.git_hash.is_empty());
        assert!(b.profile == "debug" || b.profile == "release");
    }
}
