//! A hand-rolled Prometheus text-exposition linter — the validator behind
//! `lbr-obs --lint-exposition`, used by CI to check a live `/metrics`
//! scrape without reaching for an external toolchain.
//!
//! Checks: metric/label name grammar, quoted label values with legal
//! escapes, parseable sample values (including `+Inf`/`-Inf`/`NaN`),
//! `# TYPE` lines that use known types and precede their family's
//! samples (at most one per family), histogram families carrying an
//! `le="+Inf"` bucket whose value equals `_count`, non-decreasing
//! cumulative buckets per labelset, no duplicate name+labelset, and a
//! trailing newline.

use std::collections::{HashMap, HashSet};

/// Summary of a clean exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintReport {
    /// Families declared with `# TYPE`.
    pub families: usize,
    /// Sample lines parsed.
    pub samples: usize,
}

#[derive(Default)]
struct HistState {
    /// Per non-`le` labelset: last bucket bound and cumulative value.
    last_bucket: HashMap<String, (f64, f64)>,
    inf: HashMap<String, f64>,
    count: HashMap<String, f64>,
}

/// Lints a Prometheus text exposition, returning a summary or every
/// violation found.
pub fn lint_exposition(text: &str) -> Result<LintReport, Vec<String>> {
    let mut errors: Vec<String> = Vec::new();
    if text.is_empty() {
        errors.push("exposition is empty".to_string());
        return Err(errors);
    }
    if !text.ends_with('\n') {
        errors.push("exposition must end with a newline".to_string());
    }
    let mut types: HashMap<String, String> = HashMap::new();
    let mut sampled_families: HashSet<String> = HashSet::new();
    let mut seen_series: HashSet<String> = HashSet::new();
    let mut hists: HashMap<String, HistState> = HashMap::new();
    let mut samples = 0usize;

    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(r) = rest.strip_prefix("TYPE ") {
                let mut it = r.trim().splitn(2, ' ');
                let name = it.next().unwrap_or("");
                let ty = it.next().unwrap_or("").trim();
                if !valid_metric_name(name) {
                    errors.push(format!("line {n}: invalid metric name in TYPE: {name:?}"));
                    continue;
                }
                if !matches!(
                    ty,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    errors.push(format!("line {n}: unknown metric type {ty:?} for {name}"));
                }
                if sampled_families.contains(name) {
                    errors.push(format!(
                        "line {n}: TYPE for {name} appears after its samples"
                    ));
                }
                if types.insert(name.to_string(), ty.to_string()).is_some() {
                    errors.push(format!("line {n}: duplicate TYPE for family {name}"));
                }
            } else if let Some(r) = rest.strip_prefix("HELP ") {
                let name = r.trim().split(' ').next().unwrap_or("");
                if !valid_metric_name(name) {
                    errors.push(format!("line {n}: invalid metric name in HELP: {name:?}"));
                }
            }
            // Other comments are legal and ignored.
            continue;
        }
        match parse_sample(line) {
            Err(e) => errors.push(format!("line {n}: {e}")),
            Ok((name, labels, value)) => {
                samples += 1;
                let family = family_of(&name, &types);
                match family {
                    None => errors.push(format!(
                        "line {n}: sample {name} has no preceding # TYPE declaration"
                    )),
                    Some(family) => {
                        sampled_families.insert(family.clone());
                        let is_hist = types.get(&family).map(String::as_str) == Some("histogram");
                        if is_hist {
                            check_histogram_sample(
                                &mut hists,
                                &mut errors,
                                n,
                                &family,
                                &name,
                                &labels,
                                value,
                            );
                        }
                    }
                }
                let series = format!("{name}{}", normalize_labels(&labels, None));
                if !seen_series.insert(series) {
                    errors.push(format!(
                        "line {n}: duplicate sample for {name} with identical labels"
                    ));
                }
            }
        }
    }

    // Histogram families must close with a +Inf bucket matching _count.
    for (family, h) in &hists {
        for (labelset, inf) in &h.inf {
            match h.count.get(labelset) {
                None => errors.push(format!(
                    "histogram {family}{labelset} has buckets but no _count sample"
                )),
                Some(count) if count != inf => errors.push(format!(
                    "histogram {family}{labelset}: _count {count} != le=\"+Inf\" bucket {inf}"
                )),
                Some(_) => {}
            }
        }
        for labelset in h.count.keys() {
            if !h.inf.contains_key(labelset) {
                errors.push(format!(
                    "histogram {family}{labelset} is missing an le=\"+Inf\" bucket"
                ));
            }
        }
    }

    if errors.is_empty() {
        Ok(LintReport {
            families: types.len(),
            samples,
        })
    } else {
        Err(errors)
    }
}

fn check_histogram_sample(
    hists: &mut HashMap<String, HistState>,
    errors: &mut Vec<String>,
    n: usize,
    family: &str,
    name: &str,
    labels: &[(String, String)],
    value: f64,
) {
    let h = hists.entry(family.to_string()).or_default();
    if let Some(stripped) = name.strip_suffix("_bucket") {
        debug_assert_eq!(stripped, family);
        let le = labels.iter().find(|(k, _)| k == "le");
        let key = normalize_labels(labels, Some("le"));
        match le {
            None => errors.push(format!("line {n}: {name} sample without an le label")),
            Some((_, le)) if le == "+Inf" => {
                h.inf.insert(key, value);
            }
            Some((_, le)) => match le.parse::<f64>() {
                Err(_) => errors.push(format!("line {n}: unparseable le bound {le:?}")),
                Ok(bound) => {
                    if let Some(&(prev_bound, prev_cum)) = h.last_bucket.get(&key) {
                        if bound <= prev_bound {
                            errors.push(format!(
                                "line {n}: {family} bucket bounds not increasing ({prev_bound} then {bound})"
                            ));
                        }
                        if value < prev_cum {
                            errors.push(format!(
                                "line {n}: {family} cumulative counts decreased ({prev_cum} then {value})"
                            ));
                        }
                    }
                    h.last_bucket.insert(key, (bound, value));
                }
            },
        }
    } else if name.ends_with("_count") {
        h.count.insert(normalize_labels(labels, None), value);
    }
    // _sum needs no cross-sample bookkeeping.
}

/// Maps a sample name to its declared family: exact match, or the
/// histogram/summary base when the name carries a component suffix.
fn family_of(name: &str, types: &HashMap<String, String>) -> Option<String> {
    if types.contains_key(name) {
        return Some(name.to_string());
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if let Some(ty) = types.get(base) {
                let legal = match suffix {
                    "_bucket" => ty == "histogram",
                    _ => ty == "histogram" || ty == "summary",
                };
                if legal {
                    return Some(base.to_string());
                }
            }
        }
    }
    None
}

/// Canonical `{k="v",…}` rendering of a labelset, sorted by key,
/// optionally excluding one label (used to group histogram buckets).
fn normalize_labels(labels: &[(String, String)], exclude: Option<&str>) -> String {
    let mut pairs: Vec<&(String, String)> = labels
        .iter()
        .filter(|(k, _)| Some(k.as_str()) != exclude)
        .collect();
    pairs.sort();
    if pairs.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
    out
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// A parsed sample: metric name, label pairs, value.
type Sample = (String, Vec<(String, String)>, f64);

/// Parses one sample line: `name[{labels}] value [timestamp]`.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len()
        && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b':')
    {
        i += 1;
    }
    let name = &line[..i];
    if !valid_metric_name(name) {
        return Err(format!("invalid metric name at start of sample: {line:?}"));
    }
    let mut labels = Vec::new();
    if i < bytes.len() && bytes[i] == b'{' {
        i += 1;
        loop {
            while i < bytes.len() && bytes[i] == b' ' {
                i += 1;
            }
            if i < bytes.len() && bytes[i] == b'}' {
                i += 1;
                break;
            }
            let start = i;
            while i < bytes.len() && bytes[i] != b'=' && bytes[i] != b'}' {
                i += 1;
            }
            if i >= bytes.len() || bytes[i] != b'=' {
                return Err("label without '=' in labelset".to_string());
            }
            let lname = line[start..i].trim();
            if !valid_label_name(lname) {
                return Err(format!("invalid label name {lname:?}"));
            }
            i += 1;
            if i >= bytes.len() || bytes[i] != b'"' {
                return Err(format!("label {lname} value is not quoted"));
            }
            i += 1;
            let mut value = String::new();
            loop {
                if i >= bytes.len() {
                    return Err(format!("unterminated label value for {lname}"));
                }
                match bytes[i] {
                    b'"' => {
                        i += 1;
                        break;
                    }
                    b'\\' => {
                        i += 1;
                        match bytes.get(i) {
                            Some(b'\\') => value.push('\\'),
                            Some(b'"') => value.push('"'),
                            Some(b'n') => value.push('\n'),
                            other => {
                                return Err(format!(
                                    "illegal escape {:?} in label value for {lname}",
                                    other.map(|&b| b as char)
                                ))
                            }
                        }
                        i += 1;
                    }
                    _ => {
                        // Multi-byte UTF-8 is legal inside label values.
                        let rest = &line[i..];
                        let c = rest.chars().next().expect("in-bounds char");
                        value.push(c);
                        i += c.len_utf8();
                    }
                }
            }
            labels.push((lname.to_string(), value));
            while i < bytes.len() && bytes[i] == b' ' {
                i += 1;
            }
            if i < bytes.len() && bytes[i] == b',' {
                i += 1;
                continue;
            }
        }
    }
    let rest = line[i..].trim();
    if rest.is_empty() {
        return Err(format!("sample {name} has no value"));
    }
    let mut parts = rest.split_whitespace();
    let vtok = parts.next().expect("non-empty rest");
    let value = parse_value(vtok).ok_or_else(|| format!("unparseable sample value {vtok:?}"))?;
    if let Some(ts) = parts.next() {
        if ts.parse::<i64>().is_err() {
            return Err(format!("unparseable timestamp {ts:?}"));
        }
    }
    if parts.next().is_some() {
        return Err(format!("trailing garbage after sample {name}"));
    }
    Ok((name.to_string(), labels, value))
}

fn parse_value(tok: &str) -> Option<f64> {
    match tok {
        "+Inf" | "Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => tok.parse::<f64>().ok(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(text: &str) -> LintReport {
        match lint_exposition(text) {
            Ok(r) => r,
            Err(e) => panic!("expected clean exposition, got {e:?}"),
        }
    }

    fn errs(text: &str) -> Vec<String> {
        lint_exposition(text).expect_err("expected lint errors")
    }

    #[test]
    fn accepts_a_well_formed_exposition() {
        let text = "\
# HELP lbr_cache_hits_total Cache hits.
# TYPE lbr_cache_hits_total counter
lbr_cache_hits_total{cache=\"plan\"} 3
lbr_cache_hits_total{cache=\"result\"} 9
# HELP lbr_request_duration_us Latency.
# TYPE lbr_request_duration_us histogram
lbr_request_duration_us_bucket{endpoint=\"sparql\",le=\"1\"} 0
lbr_request_duration_us_bucket{endpoint=\"sparql\",le=\"2\"} 2
lbr_request_duration_us_bucket{endpoint=\"sparql\",le=\"+Inf\"} 4
lbr_request_duration_us_sum{endpoint=\"sparql\"} 11
lbr_request_duration_us_count{endpoint=\"sparql\"} 4
# HELP lbr_build_info Build identity.
# TYPE lbr_build_info gauge
lbr_build_info{version=\"0.1.0\",git_hash=\"unknown\"} 1
";
        let r = ok(text);
        assert_eq!(r.families, 3);
        assert_eq!(r.samples, 8);
    }

    #[test]
    fn accepts_escaped_label_values_and_special_floats() {
        let text = "\
# TYPE lbr_x gauge
lbr_x{v=\"a\\\\b\\\"c\\nd\"} +Inf
lbr_x{v=\"other\"} NaN
";
        assert_eq!(ok(text).samples, 2);
    }

    #[test]
    fn rejects_missing_final_newline() {
        let e = errs("# TYPE lbr_x gauge\nlbr_x 1");
        assert!(e.iter().any(|m| m.contains("end with a newline")), "{e:?}");
    }

    #[test]
    fn rejects_sample_without_type() {
        let e = errs("lbr_x 1\n");
        assert!(e.iter().any(|m| m.contains("no preceding # TYPE")), "{e:?}");
    }

    #[test]
    fn rejects_type_after_samples_and_duplicate_type() {
        let e = errs("# TYPE lbr_x gauge\nlbr_x 1\n# TYPE lbr_x gauge\n");
        assert!(e.iter().any(|m| m.contains("after its samples")), "{e:?}");
        assert!(e.iter().any(|m| m.contains("duplicate TYPE")), "{e:?}");
    }

    #[test]
    fn rejects_unknown_type_and_bad_names() {
        let e = errs("# TYPE lbr_x widget\n");
        assert!(e.iter().any(|m| m.contains("unknown metric type")), "{e:?}");
        let e = errs("# TYPE 9bad gauge\n");
        assert!(e.iter().any(|m| m.contains("invalid metric name")), "{e:?}");
        let e = errs("# TYPE lbr_x gauge\nlbr_x{9bad=\"v\"} 1\n");
        assert!(e.iter().any(|m| m.contains("invalid label name")), "{e:?}");
    }

    #[test]
    fn rejects_duplicate_series_and_bad_values() {
        let e = errs("# TYPE lbr_x gauge\nlbr_x 1\nlbr_x 2\n");
        assert!(e.iter().any(|m| m.contains("duplicate sample")), "{e:?}");
        let e = errs("# TYPE lbr_x gauge\nlbr_x pony\n");
        assert!(
            e.iter().any(|m| m.contains("unparseable sample value")),
            "{e:?}"
        );
    }

    #[test]
    fn rejects_illegal_label_escape() {
        let e = errs("# TYPE lbr_x gauge\nlbr_x{v=\"a\\tb\"} 1\n");
        assert!(e.iter().any(|m| m.contains("illegal escape")), "{e:?}");
    }

    #[test]
    fn rejects_histogram_count_mismatch_and_missing_inf() {
        let text = "\
# TYPE lbr_h histogram
lbr_h_bucket{le=\"1\"} 1
lbr_h_bucket{le=\"+Inf\"} 4
lbr_h_sum 9
lbr_h_count 5
";
        let e = errs(text);
        assert!(
            e.iter()
                .any(|m| m.contains("_count 5 != le=\"+Inf\" bucket 4")),
            "{e:?}"
        );
        let text = "\
# TYPE lbr_h histogram
lbr_h_bucket{le=\"1\"} 1
lbr_h_sum 9
lbr_h_count 1
";
        let e = errs(text);
        assert!(
            e.iter().any(|m| m.contains("missing an le=\"+Inf\"")),
            "{e:?}"
        );
    }

    #[test]
    fn rejects_non_monotone_histograms() {
        let text = "\
# TYPE lbr_h histogram
lbr_h_bucket{le=\"2\"} 3
lbr_h_bucket{le=\"1\"} 3
lbr_h_bucket{le=\"+Inf\"} 3
lbr_h_sum 1
lbr_h_count 3
";
        let e = errs(text);
        assert!(
            e.iter().any(|m| m.contains("bounds not increasing")),
            "{e:?}"
        );
        let text = "\
# TYPE lbr_h histogram
lbr_h_bucket{le=\"1\"} 3
lbr_h_bucket{le=\"2\"} 2
lbr_h_bucket{le=\"+Inf\"} 3
lbr_h_sum 1
lbr_h_count 3
";
        let e = errs(text);
        assert!(
            e.iter().any(|m| m.contains("cumulative counts decreased")),
            "{e:?}"
        );
    }

    #[test]
    fn histograms_track_labelsets_independently() {
        // Interleaved endpoints must not trip the monotonicity check.
        let text = "\
# TYPE lbr_h histogram
lbr_h_bucket{endpoint=\"a\",le=\"1\"} 5
lbr_h_bucket{endpoint=\"b\",le=\"1\"} 0
lbr_h_bucket{endpoint=\"a\",le=\"2\"} 6
lbr_h_bucket{endpoint=\"b\",le=\"2\"} 0
lbr_h_bucket{endpoint=\"a\",le=\"+Inf\"} 6
lbr_h_bucket{endpoint=\"b\",le=\"+Inf\"} 0
lbr_h_sum{endpoint=\"a\"} 9
lbr_h_count{endpoint=\"a\"} 6
lbr_h_sum{endpoint=\"b\"} 0
lbr_h_count{endpoint=\"b\"} 0
";
        assert_eq!(ok(text).samples, 10);
    }

    #[test]
    fn own_renderer_passes_the_linter() {
        use crate::expo::{Exposition, HistogramData};
        let mut e = Exposition::new();
        e.counter("lbr_queries_ok_total", "queries.ok", "Queries served.", 7);
        e.counter_l(
            "lbr_cache_hits_total",
            vec![("cache", "plan".to_string())],
            "cache.hits",
            "Cache hits.",
            1,
        );
        e.counter_l(
            "lbr_cache_hits_total",
            vec![("cache", "result".to_string())],
            "result_cache.hits",
            "Cache hits.",
            2,
        );
        e.histogram(
            "lbr_request_duration_us",
            vec![("endpoint", "sparql".to_string())],
            "Latency (µs).",
            HistogramData {
                buckets: vec![(1, 0), (2, 1)],
                count: 3,
                sum: 12,
            },
        );
        e.info(
            "lbr_build_info",
            "Build identity.",
            vec![
                ("version", "0.1.0".to_string()),
                ("hash", "x\"y\\z".to_string()),
            ],
        );
        let prom = e.render_prometheus();
        let r = ok(&prom);
        assert_eq!(r.families, 4);
    }
}
