//! Per-query execution tracing: a thread-local span recorder with an
//! allocation-free record fast path, and [`Tracing`] — the per-server
//! sampler + bounded ring of finished traces.
//!
//! The design resolves the "always-on for slow queries, probabilistic
//! otherwise" requirement without knowing a query's duration up front:
//! whenever a [`Tracing`] handle is attached, every request *collects*
//! spans into a reusable thread-local buffer (one thread-local flag check
//! per record; no heap allocation once the buffer reached its high-water
//! mark), and the publication decision happens at [`Tracing::finish`],
//! when the total wall time is known — a trace over the slow threshold is
//! always kept, anything else is kept with probability
//! `sample_per_1024 / 1024`. Unpublished traces are dropped without
//! touching a lock or the heap.
//!
//! Span timing is explicit (`start` + duration), so spans can be recorded
//! retroactively — the net layer stamps a request's enqueue time in the
//! event loop and records the `queue_wait` span on the worker that pops
//! it, and the response `write` span is appended to an already-published
//! trace by id ([`Tracing::append_span`]).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Attributes a span can carry (fixed-size so recording never allocates).
pub const MAX_ATTRS: usize = 4;

/// Spans retained per trace; recording beyond this drops the span (and
/// counts it) rather than growing the buffer on the hot path.
pub const MAX_SPANS: usize = 256;

/// One recorded stage of a trace. Stage names are stable, `'static`, and
/// documented in the README's span model table (`parse`, `plan`, `init`,
/// `prune_pass`, `join`, `best_match`, `finalize`, `serialize`,
/// `wal_append`, `compact`, `checkpoint`, `queue_wait`, `read`, `write`,
/// plus the per-TP / per-jvar cardinality markers `tp` and `jvar`).
#[derive(Debug, Clone, Copy)]
pub struct Span {
    /// Stable stage name.
    pub name: &'static str,
    /// Microseconds from the trace start to this span's start.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    attrs: [(&'static str, u64); MAX_ATTRS],
    n_attrs: u8,
}

impl Span {
    /// The span's attributes, in recording order.
    pub fn attrs(&self) -> &[(&'static str, u64)] {
        &self.attrs[..self.n_attrs as usize]
    }

    /// The value of the attribute `name`, if recorded.
    pub fn attr(&self, name: &str) -> Option<u64> {
        self.attrs()
            .iter()
            .find(|&&(k, _)| k == name)
            .map(|&(_, v)| v)
    }
}

/// The reusable thread-local collection state of one in-flight trace.
struct Active {
    on: bool,
    id: u64,
    start: Instant,
    spans: Vec<Span>,
    label: String,
    dropped_spans: u64,
}

thread_local! {
    static CURRENT: RefCell<Active> = RefCell::new(Active {
        on: false,
        id: 0,
        start: Instant::now(),
        spans: Vec::new(),
        label: String::new(),
        dropped_spans: 0,
    });
}

/// Activates span collection on this thread under trace id `id`,
/// clearing (but keeping the capacity of) the reusable buffers. Usually
/// called through [`Tracing::begin`].
pub fn trace_begin(id: u64) {
    CURRENT.with(|c| {
        let mut t = c.borrow_mut();
        t.on = true;
        t.id = id;
        t.start = Instant::now();
        t.spans.clear();
        // One-time per-thread growth to the fixed high-water mark; the
        // record fast path never grows the buffer.
        t.spans.reserve(MAX_SPANS);
        t.label.clear();
        t.dropped_spans = 0;
    });
}

/// Whether a trace is collecting on this thread — the single check that
/// gates every optional capture (per-jvar cardinalities, TP actuals).
pub fn trace_active() -> bool {
    CURRENT.with(|c| c.borrow().on)
}

/// The active trace's id (what `X-Lbr-Trace-Id` advertises), if any.
pub fn trace_id() -> Option<u64> {
    CURRENT.with(|c| {
        let t = c.borrow();
        t.on.then_some(t.id)
    })
}

/// The active trace's start instant (for computing span offsets of work
/// that began before the trace did, e.g. request read time).
pub fn trace_start() -> Option<Instant> {
    CURRENT.with(|c| {
        let t = c.borrow();
        t.on.then_some(t.start)
    })
}

/// Writes the trace label (e.g. `GET /sparql?query=…`) via a closure over
/// the reusable thread-local `String` — callers append with `write!`, so
/// the steady state reuses the buffer's capacity. No-op when inactive.
pub fn set_label(f: impl FnOnce(&mut String)) {
    CURRENT.with(|c| {
        let mut t = c.borrow_mut();
        if t.on {
            t.label.clear();
            f(&mut t.label);
        }
    });
}

// lbr-lint: no_alloc — the span-record fast path: one thread-local flag
// check when tracing is inactive; when active, fixed-size attrs are copied
// into the pre-reserved buffer and a full buffer drops the span instead of
// growing.

/// Records a span with an explicit start and duration. Inactive traces
/// cost one thread-local flag load; attributes beyond [`MAX_ATTRS`] are
/// silently truncated.
pub fn span_at(name: &'static str, start: Instant, dur: Duration, attrs: &[(&'static str, u64)]) {
    CURRENT.with(|c| {
        let mut t = c.borrow_mut();
        if !t.on {
            return;
        }
        if t.spans.len() >= MAX_SPANS {
            t.dropped_spans += 1;
            return;
        }
        let start_us = start.saturating_duration_since(t.start).as_micros() as u64;
        let mut fixed = [("", 0u64); MAX_ATTRS];
        let n = attrs.len().min(MAX_ATTRS);
        fixed[..n].copy_from_slice(&attrs[..n]);
        t.spans.push(Span {
            name,
            start_us,
            dur_us: dur.as_micros() as u64,
            attrs: fixed,
            n_attrs: n as u8,
        });
    });
}

/// Records a span that started at `start` and ends now.
pub fn span_since(name: &'static str, start: Instant, attrs: &[(&'static str, u64)]) {
    span_at(name, start, start.elapsed(), attrs);
}
// lbr-lint: end

/// Deactivates the thread-local trace without publishing anything.
/// Returns whether a trace was active.
pub fn trace_abort() -> bool {
    CURRENT.with(|c| std::mem::replace(&mut c.borrow_mut().on, false))
}

/// Deactivates the thread-local trace and copies its spans into `out`
/// and its label into `label` (both cleared first). Returns the trace id
/// when one was active. Used by `EXPLAIN ANALYZE`, which consumes spans
/// directly instead of publishing to a ring.
pub fn trace_drain(out: &mut Vec<Span>, label: &mut String) -> Option<u64> {
    CURRENT.with(|c| {
        let mut t = c.borrow_mut();
        if !t.on {
            return None;
        }
        t.on = false;
        out.clear();
        out.extend_from_slice(&t.spans);
        label.clear();
        label.push_str(&t.label);
        Some(t.id)
    })
}

/// A published trace in the bounded ring.
#[derive(Debug, Clone)]
pub struct FinishedTrace {
    /// The id advertised in `X-Lbr-Trace-Id`.
    pub id: u64,
    /// Request label (`GET /sparql?query=…`).
    pub label: String,
    /// End-to-end wall time, microseconds.
    pub total_us: u64,
    /// Whether the slow-query threshold (not the probabilistic sampler)
    /// published it.
    pub slow: bool,
    /// Spans recorded while collecting was active on a thread whose
    /// record span went beyond [`MAX_SPANS`].
    pub dropped_spans: u64,
    /// The recorded spans, in record order.
    pub spans: Vec<Span>,
}

#[derive(Debug)]
struct Ring {
    traces: VecDeque<FinishedTrace>,
    capacity: usize,
}

/// The per-server tracing instance: sampling knobs, trace-id allocator,
/// and the bounded ring of published traces behind `GET /debug/traces`.
#[derive(Debug)]
pub struct Tracing {
    slow_us: AtomicU64,
    sample_per_1024: AtomicU32,
    next_id: AtomicU64,
    finished: AtomicU64,
    published: AtomicU64,
    log_slow: AtomicBool,
    ring: Mutex<Ring>,
}

/// SplitMix64: the deterministic per-trace-id hash behind probabilistic
/// sampling — no RNG state, no syscall, reproducible in tests.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Tracing {
    /// Creates a tracing instance with a ring of `capacity` traces, a
    /// slow-query threshold (`Duration::ZERO` disables the always-keep
    /// path) and a probabilistic publication rate out of 1024.
    ///
    /// A zero-capacity ring is rejected with a descriptive error — it
    /// could never retain a trace, so every published id would dangle.
    pub fn new(capacity: usize, slow: Duration, sample_per_1024: u32) -> Result<Tracing, String> {
        if capacity == 0 {
            return Err(
                "trace ring capacity must be at least 1 (a 0-capacity ring can never \
                 retain a trace)"
                    .to_string(),
            );
        }
        Ok(Tracing {
            slow_us: AtomicU64::new(slow.as_micros() as u64),
            sample_per_1024: AtomicU32::new(sample_per_1024.min(1024)),
            next_id: AtomicU64::new(0),
            finished: AtomicU64::new(0),
            published: AtomicU64::new(0),
            log_slow: AtomicBool::new(false),
            ring: Mutex::new(Ring {
                traces: VecDeque::with_capacity(capacity.min(1024)),
                capacity,
            }),
        })
    }

    /// Enables the slow-query log: published-as-slow traces also print
    /// one stderr line.
    pub fn with_slow_log(self, on: bool) -> Tracing {
        self.log_slow.store(on, Ordering::Relaxed);
        self
    }

    /// Allocates a trace id and activates collection on this thread.
    /// When both sampling knobs are off (slow threshold 0 and rate 0)
    /// nothing could ever publish, so collection is skipped entirely and
    /// `None` is returned — the fully-off configuration costs two atomic
    /// loads per request.
    pub fn begin(&self) -> Option<u64> {
        if self.slow_us.load(Ordering::Relaxed) == 0
            && self.sample_per_1024.load(Ordering::Relaxed) == 0
        {
            return None;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        trace_begin(id);
        Some(id)
    }

    /// Finishes the thread-local trace with the request's end-to-end
    /// wall time and decides publication: total ≥ slow threshold always
    /// publishes (the slow-query guarantee); otherwise the id hash keeps
    /// `sample_per_1024` of 1024. Returns the id when published. The
    /// unpublished path drops the trace without locking or allocating.
    pub fn finish(&self, total: Duration) -> Option<u64> {
        let id = trace_id()?;
        self.finished.fetch_add(1, Ordering::Relaxed);
        let total_us = total.as_micros() as u64;
        let slow_us = self.slow_us.load(Ordering::Relaxed);
        let slow = slow_us > 0 && total_us >= slow_us;
        let rate = self.sample_per_1024.load(Ordering::Relaxed) as u64;
        let sampled = rate > 0 && (splitmix64(id) & 1023) < rate;
        if !slow && !sampled {
            trace_abort();
            return None;
        }
        let mut spans = Vec::new();
        let mut label = String::new();
        let id = trace_drain(&mut spans, &mut label)?;
        let dropped_spans = CURRENT.with(|c| c.borrow().dropped_spans);
        if slow && self.log_slow.load(Ordering::Relaxed) {
            eprintln!("[lbr-obs] slow query trace #{id}: {total_us}us {label}");
        }
        let trace = FinishedTrace {
            id,
            label,
            total_us,
            slow,
            dropped_spans,
            spans,
        };
        {
            let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
            if ring.traces.len() == ring.capacity {
                ring.traces.pop_front();
            }
            ring.traces.push_back(trace);
        }
        self.published.fetch_add(1, Ordering::Relaxed);
        Some(id)
    }

    /// Appends a post-completion span (e.g. the response `write`) to an
    /// already-published trace. The span's start offset is the trace's
    /// total time — it happened after the handler finished. A no-op when
    /// the id already rotated out of the ring.
    pub fn append_span(
        &self,
        id: u64,
        name: &'static str,
        dur: Duration,
        attrs: &[(&'static str, u64)],
    ) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(t) = ring.traces.iter_mut().rev().find(|t| t.id == id) {
            let mut fixed = [("", 0u64); MAX_ATTRS];
            let n = attrs.len().min(MAX_ATTRS);
            fixed[..n].copy_from_slice(&attrs[..n]);
            t.spans.push(Span {
                name,
                start_us: t.total_us,
                dur_us: dur.as_micros() as u64,
                attrs: fixed,
                n_attrs: n as u8,
            });
        }
    }

    /// Clones the ring's current contents, oldest first.
    pub fn snapshot(&self) -> Vec<FinishedTrace> {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.traces.iter().cloned().collect()
    }

    /// Traces finished (published or not) through this instance.
    pub fn finished(&self) -> u64 {
        self.finished.load(Ordering::Relaxed)
    }

    /// Traces published into the ring.
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).capacity
    }

    /// Traces currently retained.
    pub fn len(&self) -> usize {
        self.ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .traces
            .len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The slow-query threshold in microseconds (0 = disabled).
    pub fn slow_us(&self) -> u64 {
        self.slow_us.load(Ordering::Relaxed)
    }

    /// The probabilistic publication rate out of 1024.
    pub fn sample_per_1024(&self) -> u32 {
        self.sample_per_1024.load(Ordering::Relaxed)
    }
}

/// Renders traces as the `/debug/traces` JSON document.
pub fn render_traces_json(traces: &[FinishedTrace]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\"traces\":[");
    for (i, t) in traces.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"id\":{},\"label\":", t.id);
        crate::expo::json_escape_into(&mut out, &t.label);
        let _ = write!(
            out,
            ",\"total_us\":{},\"slow\":{},\"dropped_spans\":{},\"spans\":[",
            t.total_us, t.slow, t.dropped_spans
        );
        for (j, s) in t.spans.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"start_us\":{},\"dur_us\":{}",
                s.name, s.start_us, s.dur_us
            );
            if !s.attrs().is_empty() {
                out.push_str(",\"attrs\":{");
                for (k, &(name, v)) in s.attrs().iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{name}\":{v}");
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

#[allow(dead_code)]
fn assert_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<Tracing>();
    check::<FinishedTrace>();
    check::<Span>();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(capacity: usize, slow: Duration, rate: u32) -> Tracing {
        Tracing::new(capacity, slow, rate).expect("valid tracing config")
    }

    #[test]
    fn zero_capacity_ring_is_rejected() {
        let err = Tracing::new(0, Duration::from_millis(250), 0).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn slow_trace_always_published_fast_trace_dropped() {
        let tr = t(8, Duration::from_micros(50), 0);
        // Fast trace: below the threshold, rate 0 → dropped.
        tr.begin().expect("collection active");
        span_at("plan", Instant::now(), Duration::from_micros(5), &[]);
        assert!(tr.finish(Duration::from_micros(10)).is_none());
        assert_eq!((tr.published(), tr.finished()), (0, 1));
        // Slow trace: always kept, spans intact.
        let id = tr.begin().expect("collection active");
        span_at(
            "join",
            Instant::now(),
            Duration::from_micros(80),
            &[("seeds", 7)],
        );
        set_label(|s| s.push_str("GET /sparql?query=slow"));
        assert_eq!(tr.finish(Duration::from_micros(120)), Some(id));
        let snap = tr.snapshot();
        assert_eq!(snap.len(), 1);
        assert!(snap[0].slow);
        assert_eq!(snap[0].total_us, 120);
        assert_eq!(snap[0].label, "GET /sparql?query=slow");
        assert_eq!(snap[0].spans.len(), 1);
        assert_eq!(snap[0].spans[0].name, "join");
        assert_eq!(snap[0].spans[0].attr("seeds"), Some(7));
        assert_eq!(snap[0].spans[0].attr("missing"), None);
    }

    #[test]
    fn ring_is_bounded_and_rotates_oldest_out() {
        let tr = t(2, Duration::from_micros(1), 0);
        for _ in 0..5 {
            tr.begin().expect("active");
            tr.finish(Duration::from_micros(10)).expect("published");
        }
        let snap = tr.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(tr.published(), 5);
        // Oldest first, newest last.
        assert!(snap[0].id < snap[1].id);
        assert_eq!(snap[1].id, 5);
    }

    #[test]
    fn probabilistic_sampling_respects_the_rate() {
        // Rate 1024/1024 keeps everything; rate 0 keeps nothing.
        let all = t(2048, Duration::ZERO, 1024);
        for _ in 0..100 {
            all.begin().expect("active");
            all.finish(Duration::from_micros(1)).expect("kept");
        }
        assert_eq!(all.published(), 100);
        // A middling rate keeps *some* but not all over many ids.
        let some = t(2048, Duration::ZERO, 512);
        for _ in 0..256 {
            some.begin().expect("active");
            some.finish(Duration::from_micros(1));
        }
        let k = some.published();
        assert!(k > 64 && k < 192, "rate 512/1024 kept {k}/256");
    }

    #[test]
    fn fully_off_config_skips_collection() {
        let tr = t(4, Duration::ZERO, 0);
        assert!(tr.begin().is_none());
        assert!(!trace_active());
        span_at("plan", Instant::now(), Duration::from_micros(5), &[]);
        assert!(tr.finish(Duration::from_micros(10)).is_none());
        assert_eq!(tr.finished(), 0);
    }

    #[test]
    fn span_buffer_is_bounded_and_counts_drops() {
        let tr = t(4, Duration::from_micros(1), 0);
        tr.begin().expect("active");
        for _ in 0..(MAX_SPANS + 10) {
            span_at("join", Instant::now(), Duration::from_micros(1), &[]);
        }
        tr.finish(Duration::from_micros(10)).expect("slow → kept");
        let snap = tr.snapshot();
        assert_eq!(snap[0].spans.len(), MAX_SPANS);
        assert_eq!(snap[0].dropped_spans, 10);
    }

    #[test]
    fn attrs_beyond_the_fixed_limit_truncate() {
        let tr = t(4, Duration::from_micros(1), 0);
        tr.begin().expect("active");
        let attrs: Vec<(&'static str, u64)> =
            vec![("a", 1), ("b", 2), ("c", 3), ("d", 4), ("e", 5)];
        span_at("join", Instant::now(), Duration::from_micros(1), &attrs);
        tr.finish(Duration::from_micros(10)).expect("kept");
        let snap = tr.snapshot();
        assert_eq!(snap[0].spans[0].attrs().len(), MAX_ATTRS);
        assert_eq!(snap[0].spans[0].attr("e"), None);
    }

    #[test]
    fn append_span_attaches_to_a_published_trace() {
        let tr = t(4, Duration::from_micros(1), 0);
        let id = tr.begin().expect("active");
        tr.finish(Duration::from_micros(50)).expect("kept");
        tr.append_span(id, "write", Duration::from_micros(7), &[("bytes", 420)]);
        let snap = tr.snapshot();
        assert_eq!(snap[0].spans.len(), 1);
        assert_eq!(snap[0].spans[0].name, "write");
        assert_eq!(
            snap[0].spans[0].start_us, 50,
            "write starts after the handler"
        );
        assert_eq!(snap[0].spans[0].attr("bytes"), Some(420));
        // Unknown ids are a no-op, not a panic.
        tr.append_span(9999, "write", Duration::from_micros(1), &[]);
    }

    #[test]
    fn drain_supports_direct_consumers() {
        trace_begin(42);
        let t0 = Instant::now();
        span_at("prune_pass", t0, Duration::from_micros(30), &[("pass", 0)]);
        set_label(|s| s.push_str("explain analyze"));
        let mut spans = Vec::new();
        let mut label = String::new();
        assert_eq!(trace_drain(&mut spans, &mut label), Some(42));
        assert_eq!(spans.len(), 1);
        assert_eq!(label, "explain analyze");
        assert!(!trace_active());
        assert_eq!(trace_drain(&mut spans, &mut label), None);
    }

    #[test]
    fn traces_render_as_json() {
        let tr = t(4, Duration::from_micros(1), 0);
        tr.begin().expect("active");
        span_at(
            "join",
            Instant::now(),
            Duration::from_micros(9),
            &[("seeds", 3), ("rows", 2)],
        );
        set_label(|s| s.push_str("GET /sparql?query=\"q\"\n"));
        tr.finish(Duration::from_micros(25)).expect("kept");
        let json = render_traces_json(&tr.snapshot());
        assert!(json.starts_with("{\"traces\":[{\"id\":1,"), "{json}");
        assert!(
            json.contains("\"label\":\"GET /sparql?query=\\\"q\\\"\\n\""),
            "{json}"
        );
        assert!(json.contains("\"name\":\"join\""), "{json}");
        assert!(
            json.contains("\"attrs\":{\"seeds\":3,\"rows\":2}"),
            "{json}"
        );
        assert!(json.ends_with("]}\n"), "{json}");
    }

    /// Scans JSON structure outside string literals: every close must
    /// match its open, and the document must end balanced. (A span
    /// object was once closed with `}}` — `contains` assertions cannot
    /// see that, a structural scan can.)
    fn assert_balanced_json(json: &str) {
        let mut stack = Vec::new();
        let mut in_str = false;
        let mut escaped = false;
        for c in json.chars() {
            if in_str {
                match (escaped, c) {
                    (true, _) => escaped = false,
                    (false, '\\') => escaped = true,
                    (false, '"') => in_str = false,
                    _ => {}
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => stack.push(c),
                '}' => assert_eq!(stack.pop(), Some('{'), "unbalanced '}}' in {json}"),
                ']' => assert_eq!(stack.pop(), Some('['), "unbalanced ']' in {json}"),
                _ => {}
            }
        }
        assert!(!in_str, "unterminated string in {json}");
        assert!(stack.is_empty(), "unclosed {stack:?} in {json}");
    }

    #[test]
    fn traces_json_is_structurally_valid() {
        let tr = t(4, Duration::from_micros(1), 0);
        tr.begin().expect("active");
        // One span with attrs, one without: both close correctly.
        span_at(
            "join",
            Instant::now(),
            Duration::from_micros(9),
            &[("seeds", 3)],
        );
        span_at("serialize", Instant::now(), Duration::from_micros(2), &[]);
        tr.finish(Duration::from_micros(25)).expect("kept");
        tr.begin().expect("active");
        tr.finish(Duration::from_micros(30)).expect("kept");
        assert_balanced_json(&render_traces_json(&tr.snapshot()));
        assert_balanced_json(&render_traces_json(&[]));
    }
}
