//! The unified exposition registry: one ordered list of metrics rendered
//! two ways — Prometheus text format (`GET /metrics`) and the nested JSON
//! document `/stats` has always served.
//!
//! Each [`Metric`] carries both a Prometheus identity (family name +
//! labels; empty name = JSON-only) and a JSON identity (a dotted path
//! like `cache.hits`; empty path = Prometheus-only). The JSON renderer
//! walks the dotted paths in insertion order, opening and closing nested
//! objects as the prefix changes — so the builder's insertion order *is*
//! the JSON shape, byte-for-byte compatible with the old hand-rolled
//! `/stats`. The Prometheus renderer instead groups samples by family
//! name in first-appearance order, because families that are adjacent in
//! Prometheus (`lbr_cache_hits_total{cache="plan"|"result"}`) live in
//! different JSON groups (`cache.*` vs `result_cache.*`).

use std::fmt::Write as _;

/// Prometheus metric type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// A rendered histogram: explicit upper bounds with *cumulative* counts,
/// plus the total count and sum (same unit as the bounds).
#[derive(Debug, Clone)]
pub struct HistogramData {
    /// `(upper_bound, cumulative_count_le_bound)`, ascending. The
    /// implicit `+Inf` bucket is rendered from `count`.
    pub buckets: Vec<(u64, u64)>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

/// A metric's value.
#[derive(Debug, Clone)]
pub enum Value {
    U64(u64),
    /// Float with a fixed JSON precision (Prometheus renders full `{}`).
    F64 {
        v: f64,
        prec: usize,
    },
    Bool(bool),
    /// JSON-only string (Prometheus has no string samples; use
    /// [`Exposition::info`] for identity labels).
    Text(String),
    Histogram(HistogramData),
}

struct Metric {
    /// Prometheus family name; empty = JSON-only.
    name: &'static str,
    help: &'static str,
    kind: Kind,
    labels: Vec<(&'static str, String)>,
    /// Dotted JSON path; empty = Prometheus-only.
    json: &'static str,
    value: Value,
}

/// The ordered metric registry. Build it per scrape; order of calls
/// defines the JSON document shape.
#[derive(Default)]
pub struct Exposition {
    metrics: Vec<Metric>,
}

impl Exposition {
    pub fn new() -> Exposition {
        Exposition::default()
    }

    fn push(
        &mut self,
        name: &'static str,
        help: &'static str,
        kind: Kind,
        labels: Vec<(&'static str, String)>,
        json: &'static str,
        value: Value,
    ) {
        debug_assert!(
            !name.is_empty() || !json.is_empty(),
            "metric with no identity"
        );
        self.metrics.push(Metric {
            name,
            help,
            kind,
            labels,
            json,
            value,
        });
    }

    /// A monotonic counter visible on both surfaces.
    pub fn counter(&mut self, name: &'static str, json: &'static str, help: &'static str, v: u64) {
        self.push(name, help, Kind::Counter, Vec::new(), json, Value::U64(v));
    }

    /// A labeled counter (e.g. `{cache="plan"}`).
    pub fn counter_l(
        &mut self,
        name: &'static str,
        labels: Vec<(&'static str, String)>,
        json: &'static str,
        help: &'static str,
        v: u64,
    ) {
        self.push(name, help, Kind::Counter, labels, json, Value::U64(v));
    }

    /// A gauge visible on both surfaces.
    pub fn gauge(&mut self, name: &'static str, json: &'static str, help: &'static str, v: u64) {
        self.push(name, help, Kind::Gauge, Vec::new(), json, Value::U64(v));
    }

    /// A labeled gauge.
    pub fn gauge_l(
        &mut self,
        name: &'static str,
        labels: Vec<(&'static str, String)>,
        json: &'static str,
        help: &'static str,
        v: u64,
    ) {
        self.push(name, help, Kind::Gauge, labels, json, Value::U64(v));
    }

    /// A float gauge; `prec` fixes the JSON decimal places.
    pub fn gauge_f(
        &mut self,
        name: &'static str,
        json: &'static str,
        help: &'static str,
        v: f64,
        prec: usize,
    ) {
        self.push(
            name,
            help,
            Kind::Gauge,
            Vec::new(),
            json,
            Value::F64 { v, prec },
        );
    }

    /// A JSON-only integer field (no Prometheus family).
    pub fn json_u64(&mut self, json: &'static str, v: u64) {
        self.push("", "", Kind::Gauge, Vec::new(), json, Value::U64(v));
    }

    /// A JSON-only float field.
    pub fn json_f64(&mut self, json: &'static str, v: f64, prec: usize) {
        self.push(
            "",
            "",
            Kind::Gauge,
            Vec::new(),
            json,
            Value::F64 { v, prec },
        );
    }

    /// A JSON-only string field.
    pub fn json_text(&mut self, json: &'static str, v: String) {
        self.push("", "", Kind::Gauge, Vec::new(), json, Value::Text(v));
    }

    /// A boolean: JSON `true`/`false`, Prometheus `1`/`0` when named.
    pub fn bool_field(
        &mut self,
        name: &'static str,
        json: &'static str,
        help: &'static str,
        v: bool,
    ) {
        self.push(name, help, Kind::Gauge, Vec::new(), json, Value::Bool(v));
    }

    /// A Prometheus info-style gauge: constant `1` whose labels carry
    /// identity (`lbr_build_info{version=…,git_hash=…}`).
    pub fn info(
        &mut self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
    ) {
        self.push(name, help, Kind::Gauge, labels, "", Value::U64(1));
    }

    /// A Prometheus-only histogram family member.
    pub fn histogram(
        &mut self,
        name: &'static str,
        labels: Vec<(&'static str, String)>,
        help: &'static str,
        data: HistogramData,
    ) {
        self.push(
            name,
            help,
            Kind::Histogram,
            labels,
            "",
            Value::Histogram(data),
        );
    }

    /// Renders the Prometheus text exposition. Samples are grouped by
    /// family name in first-appearance order, each family preceded by
    /// exactly one `# HELP` / `# TYPE` pair.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        let mut families: Vec<&'static str> = Vec::new();
        for m in &self.metrics {
            if !m.name.is_empty() && !families.contains(&m.name) {
                families.push(m.name);
            }
        }
        for family in families {
            let mut first = true;
            for m in self.metrics.iter().filter(|m| m.name == family) {
                if first {
                    out.push_str("# HELP ");
                    out.push_str(family);
                    out.push(' ');
                    escape_help_into(&mut out, m.help);
                    out.push('\n');
                    out.push_str("# TYPE ");
                    out.push_str(family);
                    out.push(' ');
                    out.push_str(m.kind.as_str());
                    out.push('\n');
                    first = false;
                }
                render_sample(&mut out, m);
            }
        }
        out
    }

    /// Renders the nested JSON document: dotted paths become nested
    /// objects, opened and closed as the path prefix changes across the
    /// insertion order.
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push('{');
        let mut stack: Vec<&'static str> = Vec::new();
        let mut pending_comma = false;
        for m in &self.metrics {
            if m.json.is_empty() {
                continue;
            }
            let mut segs: Vec<&'static str> = m.json.split('.').collect();
            let key = segs.pop().expect("dotted path has a final segment");
            let mut common = 0;
            while common < stack.len() && common < segs.len() && stack[common] == segs[common] {
                common += 1;
            }
            while stack.len() > common {
                stack.pop();
                out.push('}');
                pending_comma = true;
            }
            for &seg in &segs[common..] {
                if pending_comma {
                    out.push(',');
                }
                out.push('"');
                out.push_str(seg);
                out.push_str("\":{");
                stack.push(seg);
                pending_comma = false;
            }
            if pending_comma {
                out.push(',');
            }
            out.push('"');
            out.push_str(key);
            out.push_str("\":");
            match &m.value {
                Value::U64(v) => {
                    let _ = write!(out, "{v}");
                }
                Value::F64 { v, prec } => {
                    let _ = write!(out, "{v:.prec$}");
                }
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Value::Text(s) => json_escape_into(&mut out, s),
                Value::Histogram(_) => out.push_str("null"),
            }
            pending_comma = true;
        }
        while stack.pop().is_some() {
            out.push('}');
        }
        out.push('}');
        out
    }
}

fn render_labels(out: &mut String, labels: &[(&'static str, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        escape_label_into(out, v);
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        escape_label_into(out, v);
        out.push('"');
    }
    out.push('}');
}

fn render_sample(out: &mut String, m: &Metric) {
    match &m.value {
        Value::Histogram(h) => {
            let mut le = String::new();
            for &(upper, cum) in &h.buckets {
                le.clear();
                let _ = write!(le, "{upper}");
                out.push_str(m.name);
                out.push_str("_bucket");
                render_labels(out, &m.labels, Some(("le", &le)));
                let _ = writeln!(out, " {cum}");
            }
            out.push_str(m.name);
            out.push_str("_bucket");
            render_labels(out, &m.labels, Some(("le", "+Inf")));
            let _ = writeln!(out, " {}", h.count);
            out.push_str(m.name);
            out.push_str("_sum");
            render_labels(out, &m.labels, None);
            let _ = writeln!(out, " {}", h.sum);
            out.push_str(m.name);
            out.push_str("_count");
            render_labels(out, &m.labels, None);
            let _ = writeln!(out, " {}", h.count);
        }
        v => {
            out.push_str(m.name);
            render_labels(out, &m.labels, None);
            out.push(' ');
            match v {
                Value::U64(n) => {
                    let _ = write!(out, "{n}");
                }
                Value::F64 { v, .. } => {
                    let _ = write!(out, "{v}");
                }
                Value::Bool(b) => out.push(if *b { '1' } else { '0' }),
                Value::Text(_) => out.push('1'),
                Value::Histogram(_) => unreachable!("matched above"),
            }
            out.push('\n');
        }
    }
}

/// Escapes a Prometheus label value (`\\`, `\"`, `\n`).
pub fn escape_label_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Escapes Prometheus HELP text (`\\`, `\n`).
pub fn escape_help_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Appends `s` as a quoted JSON string.
pub fn json_escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_nesting_follows_insertion_order() {
        let mut e = Exposition::new();
        e.counter("lbr_cache_hits_total", "cache.hits", "Plan cache hits.", 3);
        e.counter(
            "lbr_cache_misses_total",
            "cache.misses",
            "Plan cache misses.",
            1,
        );
        e.json_u64("net.connections", 2);
        e.json_f64("queries.avg_ms", 1.5, 3);
        e.bool_field("", "database.updatable", "", true);
        e.json_text("database.engine", "lbr".to_string());
        assert_eq!(
            e.render_json(),
            "{\"cache\":{\"hits\":3,\"misses\":1},\"net\":{\"connections\":2},\
             \"queries\":{\"avg_ms\":1.500},\"database\":{\"updatable\":true,\"engine\":\"lbr\"}}"
        );
    }

    #[test]
    fn json_handles_deep_and_sibling_paths() {
        let mut e = Exposition::new();
        e.json_u64("latency.sparql.count", 3);
        e.json_u64("latency.sparql.p50_us", 10);
        e.json_u64("latency.update.count", 1);
        e.json_u64("top", 7);
        assert_eq!(
            e.render_json(),
            "{\"latency\":{\"sparql\":{\"count\":3,\"p50_us\":10},\"update\":{\"count\":1}},\"top\":7}"
        );
    }

    #[test]
    fn prometheus_groups_families_across_interleaved_inserts() {
        let mut e = Exposition::new();
        e.counter_l(
            "lbr_cache_hits_total",
            vec![("cache", "plan".to_string())],
            "cache.hits",
            "Cache hits.",
            3,
        );
        e.gauge("lbr_cache_entries", "cache.len", "Entries.", 5);
        e.counter_l(
            "lbr_cache_hits_total",
            vec![("cache", "result".to_string())],
            "result_cache.hits",
            "Cache hits.",
            9,
        );
        let prom = e.render_prometheus();
        // One HELP/TYPE pair per family, samples adjacent despite the
        // interleaved insertion order.
        assert_eq!(
            prom.matches("# TYPE lbr_cache_hits_total counter").count(),
            1
        );
        let expected = "# HELP lbr_cache_hits_total Cache hits.\n\
                        # TYPE lbr_cache_hits_total counter\n\
                        lbr_cache_hits_total{cache=\"plan\"} 3\n\
                        lbr_cache_hits_total{cache=\"result\"} 9\n\
                        # HELP lbr_cache_entries Entries.\n\
                        # TYPE lbr_cache_entries gauge\n\
                        lbr_cache_entries 5\n";
        assert_eq!(prom, expected);
    }

    #[test]
    fn histogram_renders_cumulative_buckets_and_inf() {
        let mut e = Exposition::new();
        e.histogram(
            "lbr_request_duration_us",
            vec![("endpoint", "sparql".to_string())],
            "Request latency in microseconds.",
            HistogramData {
                buckets: vec![(1, 0), (2, 1), (4, 3)],
                count: 4,
                sum: 11,
            },
        );
        let prom = e.render_prometheus();
        assert!(
            prom.contains("# TYPE lbr_request_duration_us histogram\n"),
            "{prom}"
        );
        assert!(prom.contains("lbr_request_duration_us_bucket{endpoint=\"sparql\",le=\"2\"} 1\n"));
        assert!(
            prom.contains("lbr_request_duration_us_bucket{endpoint=\"sparql\",le=\"+Inf\"} 4\n")
        );
        assert!(prom.contains("lbr_request_duration_us_sum{endpoint=\"sparql\"} 11\n"));
        assert!(prom.contains("lbr_request_duration_us_count{endpoint=\"sparql\"} 4\n"));
    }

    #[test]
    fn zero_observation_histogram_renders_count_zero() {
        let mut e = Exposition::new();
        e.histogram(
            "lbr_request_duration_us",
            vec![("endpoint", "update".to_string())],
            "Request latency in microseconds.",
            HistogramData {
                buckets: vec![(1, 0), (2, 0)],
                count: 0,
                sum: 0,
            },
        );
        let prom = e.render_prometheus();
        assert!(
            prom.contains("lbr_request_duration_us_count{endpoint=\"update\"} 0\n"),
            "zero-observation family must still render _count 0: {prom}"
        );
        assert!(prom.contains("le=\"+Inf\"} 0\n"), "{prom}");
    }

    #[test]
    fn label_values_escape_backslash_quote_newline() {
        let mut e = Exposition::new();
        e.info(
            "lbr_build_info",
            "Build identity.",
            vec![("version", "a\\b\"c\nd".to_string())],
        );
        let prom = e.render_prometheus();
        assert!(
            prom.contains("lbr_build_info{version=\"a\\\\b\\\"c\\nd\"} 1\n"),
            "{prom}"
        );
    }

    #[test]
    fn help_text_escapes_backslash_and_newline() {
        let mut e = Exposition::new();
        e.counter("lbr_x_total", "", "line one\nline \\two", 1);
        let prom = e.render_prometheus();
        assert!(
            prom.contains("# HELP lbr_x_total line one\\nline \\\\two\n"),
            "{prom}"
        );
    }

    #[test]
    fn json_only_and_prom_only_metrics_stay_on_their_surface() {
        let mut e = Exposition::new();
        e.json_u64("uptime_secs", 12);
        e.info(
            "lbr_build_info",
            "Build identity.",
            vec![("profile", "release".to_string())],
        );
        let prom = e.render_prometheus();
        let json = e.render_json();
        assert!(!prom.contains("uptime_secs"), "{prom}");
        assert!(json.contains("\"uptime_secs\":12"), "{json}");
        assert!(!json.contains("build_info{"), "{json}");
        assert!(
            prom.contains("lbr_build_info{profile=\"release\"} 1\n"),
            "{prom}"
        );
    }

    #[test]
    fn json_string_escaping_covers_control_chars() {
        let mut out = String::new();
        json_escape_into(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }
}
