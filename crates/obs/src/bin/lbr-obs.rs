//! `lbr-obs --lint-exposition [FILE]` — validate a Prometheus text
//! exposition (from FILE or stdin). Exits 0 with a one-line summary when
//! clean, 1 with every violation on stderr otherwise. CI pipes a live
//! `/metrics` scrape through this.

#![forbid(unsafe_code)]

use std::io::Read as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--lint-exposition") => {
            let input = match args.get(1) {
                Some(path) => match std::fs::read_to_string(path) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("lbr-obs: cannot read {path}: {e}");
                        return ExitCode::from(2);
                    }
                },
                None => {
                    let mut s = String::new();
                    if let Err(e) = std::io::stdin().read_to_string(&mut s) {
                        eprintln!("lbr-obs: cannot read stdin: {e}");
                        return ExitCode::from(2);
                    }
                    s
                }
            };
            match lbr_obs::lint_exposition(&input) {
                Ok(report) => {
                    println!(
                        "exposition OK: {} families, {} samples",
                        report.families, report.samples
                    );
                    ExitCode::SUCCESS
                }
                Err(errors) => {
                    for e in &errors {
                        eprintln!("exposition error: {e}");
                    }
                    eprintln!("lbr-obs: {} violation(s)", errors.len());
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!("usage: lbr-obs --lint-exposition [FILE]   (reads stdin without FILE)");
            ExitCode::from(2)
        }
    }
}
