//! In-memory BitMat store: builds and holds all four index families.

use crate::catalog::{Catalog, CubeDims};
use crate::error::BitMatError;
use crate::matrix::BitMat;
use crate::row::BitRow;
use lbr_rdf::{EncodedGraph, EncodedTriple};

/// The complete index set of §4: `2·|Vp| + |Vs| + |Vo|` BitMats.
///
/// * `so[p]` / `os[p]` — S-O and O-S matrices per predicate,
/// * `po[s]` — P-O matrix per subject,
/// * `ps[o]` — P-S matrix per object.
#[derive(Debug, Clone)]
pub struct BitMatStore {
    dims: CubeDims,
    so: Vec<BitMat>,
    os: Vec<BitMat>,
    po: Vec<BitMat>,
    ps: Vec<BitMat>,
}

impl BitMatStore {
    /// Builds all four families from an encoded graph.
    ///
    /// The four sort-and-slice passes are independent, so they run on
    /// separate threads (std::thread::scope) — index construction is the one
    /// truly parallel phase of the system.
    pub fn build(graph: &EncodedGraph) -> Self {
        let dims = CubeDims {
            n_subjects: graph.dict.n_subjects(),
            n_predicates: graph.dict.n_predicates(),
            n_objects: graph.dict.n_objects(),
            n_shared: graph.dict.n_shared(),
            n_triples: graph.triples.len() as u64,
        };
        let t = &graph.triples;
        let mut so = Vec::new();
        let mut os = Vec::new();
        let mut po = Vec::new();
        let mut ps = Vec::new();
        std::thread::scope(|scope| {
            let h_so = scope.spawn(|| {
                family(
                    t,
                    dims.n_predicates,
                    |x| (x.p, x.s, x.o),
                    dims.n_subjects,
                    dims.n_objects,
                )
            });
            let h_os = scope.spawn(|| {
                family(
                    t,
                    dims.n_predicates,
                    |x| (x.p, x.o, x.s),
                    dims.n_objects,
                    dims.n_subjects,
                )
            });
            let h_po = scope.spawn(|| {
                family(
                    t,
                    dims.n_subjects,
                    |x| (x.s, x.p, x.o),
                    dims.n_predicates,
                    dims.n_objects,
                )
            });
            let h_ps = scope.spawn(|| {
                family(
                    t,
                    dims.n_objects,
                    |x| (x.o, x.p, x.s),
                    dims.n_predicates,
                    dims.n_subjects,
                )
            });
            so = h_so.join().expect("S-O build panicked");
            os = h_os.join().expect("O-S build panicked");
            po = h_po.join().expect("P-O build panicked");
            ps = h_ps.join().expect("P-S build panicked");
        });
        BitMatStore {
            dims,
            so,
            os,
            po,
            ps,
        }
    }

    /// Direct read access to an S-O matrix (bench/inspection use).
    pub fn so(&self, p: u32) -> Option<&BitMat> {
        self.so.get(p as usize)
    }

    /// Direct read access to an O-S matrix.
    pub fn os(&self, p: u32) -> Option<&BitMat> {
        self.os.get(p as usize)
    }

    /// Direct read access to a P-O matrix.
    pub fn po(&self, s: u32) -> Option<&BitMat> {
        self.po.get(s as usize)
    }

    /// Direct read access to a P-S matrix.
    pub fn ps(&self, o: u32) -> Option<&BitMat> {
        self.ps.get(o as usize)
    }

    /// Iterates the four families for serialization: `(family tag, key, mat)`.
    pub(crate) fn iter_families(&self) -> impl Iterator<Item = (u8, u32, &BitMat)> {
        self.so
            .iter()
            .enumerate()
            .map(|(k, m)| (0u8, k as u32, m))
            .chain(self.os.iter().enumerate().map(|(k, m)| (1u8, k as u32, m)))
            .chain(self.po.iter().enumerate().map(|(k, m)| (2u8, k as u32, m)))
            .chain(self.ps.iter().enumerate().map(|(k, m)| (3u8, k as u32, m)))
    }

    /// Total index size under the hybrid encoding vs pure RLE — the §4
    /// "hybrid compression fetches us as much as 40 % reduction" ablation.
    pub fn size_report(&self) -> SizeReport {
        let mut r = SizeReport::default();
        for (_, _, m) in self.iter_families() {
            r.hybrid_bytes += m.encoded_bytes() as u64;
            r.rle_only_bytes += m.rle_only_bytes() as u64;
        }
        r.n_matrices = (self.so.len() + self.os.len() + self.po.len() + self.ps.len()) as u64;
        r
    }
}

/// Index size comparison between the hybrid row encoding and pure RLE.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SizeReport {
    /// Total bytes with the hybrid (RLE ∪ sparse positions) encoding.
    pub hybrid_bytes: u64,
    /// Total bytes with run-length encoding forced everywhere.
    pub rle_only_bytes: u64,
    /// Number of matrices (`2|Vp| + |Vs| + |Vo|`).
    pub n_matrices: u64,
}

impl SizeReport {
    /// Fractional saving of hybrid over pure RLE (0.4 ≈ the paper's 40 %).
    pub fn saving(&self) -> f64 {
        if self.rle_only_bytes == 0 {
            0.0
        } else {
            1.0 - self.hybrid_bytes as f64 / self.rle_only_bytes as f64
        }
    }
}

/// Builds one family: group triples by `key`, emit a `(row, col)` BitMat
/// per key. `extract` maps a triple to `(key, row, col)`.
fn family(
    triples: &[EncodedTriple],
    n_keys: u32,
    extract: impl Fn(&EncodedTriple) -> (u32, u32, u32),
    n_rows: u32,
    n_cols: u32,
) -> Vec<BitMat> {
    let mut tuples: Vec<(u32, u32, u32)> = triples.iter().map(&extract).collect();
    tuples.sort_unstable();
    let mut mats: Vec<BitMat> = Vec::with_capacity(n_keys as usize);
    let mut i = 0;
    // One pair buffer reused across every key of the family (its
    // high-water mark is the largest slice, not the sum).
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for key in 0..n_keys {
        let start = i;
        while i < tuples.len() && tuples[i].0 == key {
            i += 1;
        }
        pairs.clear();
        pairs.extend(tuples[start..i].iter().map(|&(_, r, c)| (r, c)));
        mats.push(BitMat::from_sorted_pairs(n_rows, n_cols, &pairs));
    }
    debug_assert_eq!(i, tuples.len(), "triple key out of range");
    mats
}

impl Catalog for BitMatStore {
    fn dims(&self) -> CubeDims {
        self.dims
    }

    fn load_so(&self, p: u32) -> Result<Option<BitMat>, BitMatError> {
        Ok(self.so.get(p as usize).filter(|m| !m.is_empty()).cloned())
    }

    fn load_os(&self, p: u32) -> Result<Option<BitMat>, BitMatError> {
        Ok(self.os.get(p as usize).filter(|m| !m.is_empty()).cloned())
    }

    fn load_po(&self, s: u32) -> Result<Option<BitMat>, BitMatError> {
        Ok(self.po.get(s as usize).filter(|m| !m.is_empty()).cloned())
    }

    fn load_ps(&self, o: u32) -> Result<Option<BitMat>, BitMatError> {
        Ok(self.ps.get(o as usize).filter(|m| !m.is_empty()).cloned())
    }

    fn load_po_row(&self, s: u32, p: u32) -> Result<Option<BitRow>, BitMatError> {
        Ok(self.po.get(s as usize).and_then(|m| m.row(p)).cloned())
    }

    fn load_ps_row(&self, o: u32, p: u32) -> Result<Option<BitRow>, BitMatError> {
        Ok(self.ps.get(o as usize).and_then(|m| m.row(p)).cloned())
    }

    fn count_so(&self, p: u32) -> u64 {
        self.so.get(p as usize).map_or(0, |m| m.triple_count())
    }

    fn count_po(&self, s: u32) -> u64 {
        self.po.get(s as usize).map_or(0, |m| m.triple_count())
    }

    fn count_ps(&self, o: u32) -> u64 {
        self.ps.get(o as usize).map_or(0, |m| m.triple_count())
    }

    fn count_po_row(&self, s: u32, p: u32) -> u64 {
        self.po
            .get(s as usize)
            .and_then(|m| m.row(p))
            .map_or(0, |r| r.count_ones() as u64)
    }

    fn count_ps_row(&self, o: u32, p: u32) -> u64 {
        self.ps
            .get(o as usize)
            .and_then(|m| m.row(p))
            .map_or(0, |r| r.count_ones() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_rdf::{Graph, Term, Triple};

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    /// The Figure 3.2 dataset (11 triples about sitcom actors).
    pub(crate) fn figure_3_2_graph() -> EncodedGraph {
        Graph::from_triples(vec![
            t("Julia", "actedIn", "Seinfeld"),
            t("Julia", "actedIn", "Veep"),
            t("Julia", "actedIn", "NewAdvOldChristine"),
            t("Julia", "actedIn", "CurbYourEnthu"),
            t("CurbYourEnthu", "location", "LosAngeles"),
            t("Larry", "actedIn", "CurbYourEnthu"),
            t("Jerry", "hasFriend", "Julia"),
            t("Jerry", "hasFriend", "Larry"),
            t("Seinfeld", "location", "NewYorkCity"),
            t("Veep", "location", "D.C."),
            t("NewAdvOldChristine", "location", "Jersey"),
        ])
        .encode()
    }

    #[test]
    fn builds_figure_4_1_families() {
        let g = figure_3_2_graph();
        let store = BitMatStore::build(&g);
        let d = &g.dict;
        let acted = d
            .id(&Term::iri("actedIn"), lbr_rdf::Dimension::Predicate)
            .unwrap();
        let loc = d
            .id(&Term::iri("location"), lbr_rdf::Dimension::Predicate)
            .unwrap();
        let friend = d
            .id(&Term::iri("hasFriend"), lbr_rdf::Dimension::Predicate)
            .unwrap();
        assert_eq!(store.count_so(acted), 5);
        assert_eq!(store.count_so(loc), 4);
        assert_eq!(store.count_so(friend), 2);
        // O-S is the transpose of S-O.
        assert_eq!(
            store.so(acted).unwrap().transpose(),
            *store.os(acted).unwrap()
        );
        // Totals across any family equal the dataset size.
        let total: u64 = (0..g.dict.n_predicates()).map(|p| store.count_so(p)).sum();
        assert_eq!(total, 11);
        let total_po: u64 = (0..g.dict.n_subjects()).map(|s| store.count_po(s)).sum();
        assert_eq!(total_po, 11);
        let total_ps: u64 = (0..g.dict.n_objects()).map(|o| store.count_ps(o)).sum();
        assert_eq!(total_ps, 11);
    }

    #[test]
    fn single_row_loads() {
        let g = figure_3_2_graph();
        let store = BitMatStore::build(&g);
        let d = &g.dict;
        let jerry = d
            .id(&Term::iri("Jerry"), lbr_rdf::Dimension::Subject)
            .unwrap();
        let friend = d
            .id(&Term::iri("hasFriend"), lbr_rdf::Dimension::Predicate)
            .unwrap();
        // (Jerry hasFriend ?f): two candidate objects.
        let row = store.load_po_row(jerry, friend).unwrap().unwrap();
        assert_eq!(row.count_ones(), 2);
        assert_eq!(store.count_po_row(jerry, friend), 2);
        // (?sitcom location NewYorkCity): one candidate subject.
        let nyc = d
            .id(&Term::iri("NewYorkCity"), lbr_rdf::Dimension::Object)
            .unwrap();
        let loc = d
            .id(&Term::iri("location"), lbr_rdf::Dimension::Predicate)
            .unwrap();
        let row = store.load_ps_row(nyc, loc).unwrap().unwrap();
        assert_eq!(row.count_ones(), 1);
        assert_eq!(store.count_ps_row(nyc, loc), 1);
        // Missing combinations are None / zero.
        assert!(store.load_po_row(jerry, loc).unwrap().is_none());
        assert_eq!(store.count_po_row(jerry, loc), 0);
        assert_eq!(store.count_so(999), 0);
    }

    #[test]
    fn catalog_loads_are_owned_copies() {
        let g = figure_3_2_graph();
        let store = BitMatStore::build(&g);
        let mut m = store.load_so(0).unwrap().unwrap();
        let before = store.count_so(0);
        m.unfold(&crate::BitVec::zeros(m.n_cols()), crate::RetainDim::Col);
        assert!(m.is_empty());
        assert_eq!(store.count_so(0), before, "store must be unaffected");
    }

    #[test]
    fn size_report_consistency() {
        let g = figure_3_2_graph();
        let store = BitMatStore::build(&g);
        let r = store.size_report();
        assert!(r.hybrid_bytes > 0);
        assert!(r.hybrid_bytes <= r.rle_only_bytes);
        assert!(r.saving() >= 0.0);
        let dims = store.dims();
        assert_eq!(
            r.n_matrices,
            2 * dims.n_predicates as u64 + dims.n_subjects as u64 + dims.n_objects as u64
        );
    }
}
