//! In-memory BitMat store: builds and holds all four index families.

use crate::catalog::{Catalog, CubeDims};
use crate::error::BitMatError;
use crate::matrix::BitMat;
use crate::row::BitRow;
use lbr_rdf::{EncodedGraph, EncodedTriple};

/// The complete index set of §4: `2·|Vp| + |Vs| + |Vo|` BitMats.
///
/// * `so[p]` / `os[p]` — S-O and O-S matrices per predicate,
/// * `po[s]` — P-O matrix per subject,
/// * `ps[o]` — P-S matrix per object.
#[derive(Debug, Clone)]
pub struct BitMatStore {
    dims: CubeDims,
    so: Vec<BitMat>,
    os: Vec<BitMat>,
    po: Vec<BitMat>,
    ps: Vec<BitMat>,
    /// Predicate-family shards: contiguous predicate-ID ranges `[lo, hi)`
    /// balanced by triple mass. Purely a partitioning of the predicate
    /// space — matrices stay densely indexed, and queries are unaffected.
    shards: Vec<(u32, u32)>,
}

/// Default shard count for the predicate-family partitioning.
pub const DEFAULT_SHARDS: usize = 8;

impl BitMatStore {
    /// Builds all four families from an encoded graph with the default
    /// parallelism (`available_parallelism`, at least the 4 family
    /// threads of the original design).
    pub fn build(graph: &EncodedGraph) -> Self {
        Self::build_with_threads(graph, default_build_threads())
    }

    /// Builds all four families on up to `threads` workers.
    ///
    /// The four sort-and-slice family passes are independent, so they run
    /// on separate threads (std::thread::scope); with `threads > 4`, each
    /// family additionally partitions its *keys* (predicates for S-O/O-S,
    /// subjects for P-O, objects for P-S) into contiguous ranges balanced
    /// by triple mass and builds each range on its own worker. Per-key
    /// matrices are independent and ranges are concatenated in key order,
    /// so the result is identical at any thread count. `threads <= 1`
    /// builds everything serially on the calling thread (the honest
    /// baseline for load benchmarks).
    pub fn build_with_threads(graph: &EncodedGraph, threads: usize) -> Self {
        let dims = CubeDims {
            n_subjects: graph.dict.n_subjects(),
            n_predicates: graph.dict.n_predicates(),
            n_objects: graph.dict.n_objects(),
            n_shared: graph.dict.n_shared(),
            n_triples: graph.triples.len() as u64,
        };
        let t = &graph.triples;
        let mut so = Vec::new();
        let mut os = Vec::new();
        let mut po = Vec::new();
        let mut ps = Vec::new();
        if threads <= 1 {
            so = family(
                t,
                dims.n_predicates,
                |x| (x.p, x.s, x.o),
                dims.n_subjects,
                dims.n_objects,
                1,
            );
            os = family(
                t,
                dims.n_predicates,
                |x| (x.p, x.o, x.s),
                dims.n_objects,
                dims.n_subjects,
                1,
            );
            po = family(
                t,
                dims.n_subjects,
                |x| (x.s, x.p, x.o),
                dims.n_predicates,
                dims.n_objects,
                1,
            );
            ps = family(
                t,
                dims.n_objects,
                |x| (x.o, x.p, x.s),
                dims.n_predicates,
                dims.n_subjects,
                1,
            );
        } else {
            let inner = threads.div_ceil(4);
            std::thread::scope(|scope| {
                let h_so = scope.spawn(|| {
                    family(
                        t,
                        dims.n_predicates,
                        |x| (x.p, x.s, x.o),
                        dims.n_subjects,
                        dims.n_objects,
                        inner,
                    )
                });
                let h_os = scope.spawn(|| {
                    family(
                        t,
                        dims.n_predicates,
                        |x| (x.p, x.o, x.s),
                        dims.n_objects,
                        dims.n_subjects,
                        inner,
                    )
                });
                let h_po = scope.spawn(|| {
                    family(
                        t,
                        dims.n_subjects,
                        |x| (x.s, x.p, x.o),
                        dims.n_predicates,
                        dims.n_objects,
                        inner,
                    )
                });
                let h_ps = scope.spawn(|| {
                    family(
                        t,
                        dims.n_objects,
                        |x| (x.o, x.p, x.s),
                        dims.n_predicates,
                        dims.n_subjects,
                        inner,
                    )
                });
                so = h_so.join().expect("S-O build panicked");
                os = h_os.join().expect("O-S build panicked");
                po = h_po.join().expect("P-O build panicked");
                ps = h_ps.join().expect("P-S build panicked");
            });
        }
        let shards = compute_shards(&so, DEFAULT_SHARDS);
        BitMatStore {
            dims,
            so,
            os,
            po,
            ps,
            shards,
        }
    }

    /// Number of predicate-family shards (≥ 1 whenever predicates exist).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The contiguous predicate-ID ranges `[lo, hi)` of every shard.
    pub fn shard_ranges(&self) -> &[(u32, u32)] {
        &self.shards
    }

    /// The shard a predicate belongs to (`None` if `p` is out of range).
    pub fn shard_of(&self, p: u32) -> Option<usize> {
        if p >= self.dims.n_predicates {
            return None;
        }
        Some(self.shards.partition_point(|&(_, hi)| hi <= p))
    }

    /// Iterates one shard's per-predicate matrices: `(p, so, os)`.
    pub fn iter_shard(&self, shard: usize) -> impl Iterator<Item = (u32, &BitMat, &BitMat)> {
        let (lo, hi) = self.shards.get(shard).copied().unwrap_or((0, 0));
        (lo..hi).map(move |p| (p, &self.so[p as usize], &self.os[p as usize]))
    }

    /// Direct read access to an S-O matrix (bench/inspection use).
    pub fn so(&self, p: u32) -> Option<&BitMat> {
        self.so.get(p as usize)
    }

    /// Direct read access to an O-S matrix.
    pub fn os(&self, p: u32) -> Option<&BitMat> {
        self.os.get(p as usize)
    }

    /// Direct read access to a P-O matrix.
    pub fn po(&self, s: u32) -> Option<&BitMat> {
        self.po.get(s as usize)
    }

    /// Direct read access to a P-S matrix.
    pub fn ps(&self, o: u32) -> Option<&BitMat> {
        self.ps.get(o as usize)
    }

    /// Iterates the four families for serialization: `(family tag, key, mat)`.
    pub(crate) fn iter_families(&self) -> impl Iterator<Item = (u8, u32, &BitMat)> {
        self.so
            .iter()
            .enumerate()
            .map(|(k, m)| (0u8, k as u32, m))
            .chain(self.os.iter().enumerate().map(|(k, m)| (1u8, k as u32, m)))
            .chain(self.po.iter().enumerate().map(|(k, m)| (2u8, k as u32, m)))
            .chain(self.ps.iter().enumerate().map(|(k, m)| (3u8, k as u32, m)))
    }

    /// Total index size under the hybrid encoding vs pure RLE — the §4
    /// "hybrid compression fetches us as much as 40 % reduction" ablation.
    pub fn size_report(&self) -> SizeReport {
        let mut r = SizeReport::default();
        for (_, _, m) in self.iter_families() {
            r.hybrid_bytes += m.encoded_bytes() as u64;
            r.rle_only_bytes += m.rle_only_bytes() as u64;
        }
        r.n_matrices = (self.so.len() + self.os.len() + self.po.len() + self.ps.len()) as u64;
        r
    }
}

/// Index size comparison between the hybrid row encoding and pure RLE.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SizeReport {
    /// Total bytes with the hybrid (RLE ∪ sparse positions) encoding.
    pub hybrid_bytes: u64,
    /// Total bytes with run-length encoding forced everywhere.
    pub rle_only_bytes: u64,
    /// Number of matrices (`2|Vp| + |Vs| + |Vo|`).
    pub n_matrices: u64,
}

impl SizeReport {
    /// Fractional saving of hybrid over pure RLE (0.4 ≈ the paper's 40 %).
    pub fn saving(&self) -> f64 {
        if self.rle_only_bytes == 0 {
            0.0
        } else {
            1.0 - self.hybrid_bytes as f64 / self.rle_only_bytes as f64
        }
    }
}

/// Builds one family: group triples by `key`, emit a `(row, col)` BitMat
/// per key. `extract` maps a triple to `(key, row, col)`. With
/// `threads > 1`, keys are split into contiguous ranges balanced by tuple
/// mass and built on scoped workers — per-key matrices are independent and
/// ranges concatenate in key order, so output is thread-count invariant.
fn family(
    triples: &[EncodedTriple],
    n_keys: u32,
    extract: impl Fn(&EncodedTriple) -> (u32, u32, u32),
    n_rows: u32,
    n_cols: u32,
    threads: usize,
) -> Vec<BitMat> {
    let mut tuples: Vec<(u32, u32, u32)> = triples.iter().map(&extract).collect();
    tuples.sort_unstable();
    let threads = threads.max(1);
    if threads == 1 || n_keys < 2 || tuples.len() < 1 << 12 {
        return family_keys(&tuples, 0, n_keys, n_rows, n_cols);
    }
    // Key-range boundaries snapped from equal tuple-mass split points.
    let mut bounds: Vec<u32> = vec![0];
    for k in 1..threads {
        let target = tuples.len() * k / threads;
        let key = if target >= tuples.len() {
            n_keys
        } else {
            tuples[target].0
        };
        if key > *bounds.last().expect("bounds is never empty") {
            bounds.push(key);
        }
    }
    if *bounds.last().expect("bounds is never empty") < n_keys {
        bounds.push(n_keys);
    }
    std::thread::scope(|scope| {
        let tuples = &tuples;
        let handles: Vec<_> = bounds
            .windows(2)
            .map(|w| {
                let (k0, k1) = (w[0], w[1]);
                let lo = tuples.partition_point(|t| t.0 < k0);
                let hi = tuples.partition_point(|t| t.0 < k1);
                let slice = &tuples[lo..hi];
                scope.spawn(move || family_keys(slice, k0, k1, n_rows, n_cols))
            })
            .collect();
        let mut mats = Vec::with_capacity(n_keys as usize);
        for h in handles {
            mats.append(&mut h.join().expect("family worker panicked"));
        }
        mats
    })
}

/// Builds the matrices of keys `[k0, k1)` from that range's sorted tuples.
fn family_keys(
    tuples: &[(u32, u32, u32)],
    k0: u32,
    k1: u32,
    n_rows: u32,
    n_cols: u32,
) -> Vec<BitMat> {
    let mut mats: Vec<BitMat> = Vec::with_capacity((k1 - k0) as usize);
    let mut i = 0;
    // One pair buffer reused across every key of the range (its
    // high-water mark is the largest slice, not the sum).
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for key in k0..k1 {
        let start = i;
        while i < tuples.len() && tuples[i].0 == key {
            i += 1;
        }
        pairs.clear();
        pairs.extend(tuples[start..i].iter().map(|&(_, r, c)| (r, c)));
        mats.push(BitMat::from_sorted_pairs(n_rows, n_cols, &pairs));
    }
    debug_assert_eq!(i, tuples.len(), "triple key out of range");
    mats
}

/// Picks the number of build workers: everything the host offers, but at
/// least the 4 family threads of the original design.
pub(crate) fn default_build_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .max(4)
}

/// Partitions predicates into up to `target` contiguous shards balanced by
/// per-predicate triple mass (greedy accumulation toward the mean).
fn compute_shards(so: &[BitMat], target: usize) -> Vec<(u32, u32)> {
    let counts: Vec<u64> = so.iter().map(|m| m.triple_count()).collect();
    compute_shard_ranges(&counts, target)
}

/// Partitions a per-predicate triple-count histogram into up to `target`
/// contiguous shards balanced by triple mass — the same ranges
/// [`BitMatStore::shard_ranges`] carries, computable from any
/// [`Catalog`]'s `count_so` histogram (how `lbr-store` shards a mapped
/// on-disk catalog without rebuilding the heap store).
pub fn compute_shard_ranges(counts: &[u64], target: usize) -> Vec<(u32, u32)> {
    let n_preds = counts.len() as u32;
    if n_preds == 0 {
        return Vec::new();
    }
    let total: u64 = counts.iter().sum();
    let target = target.clamp(1, n_preds as usize);
    let per_shard = (total / target as u64).max(1);
    let mut shards: Vec<(u32, u32)> = Vec::with_capacity(target);
    let mut lo = 0u32;
    let mut acc = 0u64;
    for p in 0..n_preds {
        acc += counts[p as usize];
        // Close the shard once it carries its share, keeping the final
        // shard open so it absorbs the tail.
        if acc >= per_shard && shards.len() + 1 < target {
            shards.push((lo, p + 1));
            lo = p + 1;
            acc = 0;
        }
    }
    if lo < n_preds {
        shards.push((lo, n_preds));
    }
    debug_assert_eq!(shards.first().map(|s| s.0), Some(0));
    debug_assert_eq!(shards.last().map(|s| s.1), Some(n_preds));
    shards
}

impl Catalog for BitMatStore {
    fn dims(&self) -> CubeDims {
        self.dims
    }

    fn load_so(&self, p: u32) -> Result<Option<BitMat>, BitMatError> {
        Ok(self.so.get(p as usize).filter(|m| !m.is_empty()).cloned())
    }

    fn load_os(&self, p: u32) -> Result<Option<BitMat>, BitMatError> {
        Ok(self.os.get(p as usize).filter(|m| !m.is_empty()).cloned())
    }

    fn load_po(&self, s: u32) -> Result<Option<BitMat>, BitMatError> {
        Ok(self.po.get(s as usize).filter(|m| !m.is_empty()).cloned())
    }

    fn load_ps(&self, o: u32) -> Result<Option<BitMat>, BitMatError> {
        Ok(self.ps.get(o as usize).filter(|m| !m.is_empty()).cloned())
    }

    fn load_po_row(&self, s: u32, p: u32) -> Result<Option<BitRow>, BitMatError> {
        Ok(self.po.get(s as usize).and_then(|m| m.row(p)).cloned())
    }

    fn load_ps_row(&self, o: u32, p: u32) -> Result<Option<BitRow>, BitMatError> {
        Ok(self.ps.get(o as usize).and_then(|m| m.row(p)).cloned())
    }

    fn count_so(&self, p: u32) -> u64 {
        self.so.get(p as usize).map_or(0, |m| m.triple_count())
    }

    fn count_po(&self, s: u32) -> u64 {
        self.po.get(s as usize).map_or(0, |m| m.triple_count())
    }

    fn count_ps(&self, o: u32) -> u64 {
        self.ps.get(o as usize).map_or(0, |m| m.triple_count())
    }

    fn count_po_row(&self, s: u32, p: u32) -> u64 {
        self.po
            .get(s as usize)
            .and_then(|m| m.row(p))
            .map_or(0, |r| r.count_ones() as u64)
    }

    fn count_ps_row(&self, o: u32, p: u32) -> u64 {
        self.ps
            .get(o as usize)
            .and_then(|m| m.row(p))
            .map_or(0, |r| r.count_ones() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_rdf::{Graph, Term, Triple};

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    /// The Figure 3.2 dataset (11 triples about sitcom actors).
    pub(crate) fn figure_3_2_graph() -> EncodedGraph {
        Graph::from_triples(vec![
            t("Julia", "actedIn", "Seinfeld"),
            t("Julia", "actedIn", "Veep"),
            t("Julia", "actedIn", "NewAdvOldChristine"),
            t("Julia", "actedIn", "CurbYourEnthu"),
            t("CurbYourEnthu", "location", "LosAngeles"),
            t("Larry", "actedIn", "CurbYourEnthu"),
            t("Jerry", "hasFriend", "Julia"),
            t("Jerry", "hasFriend", "Larry"),
            t("Seinfeld", "location", "NewYorkCity"),
            t("Veep", "location", "D.C."),
            t("NewAdvOldChristine", "location", "Jersey"),
        ])
        .encode()
    }

    #[test]
    fn builds_figure_4_1_families() {
        let g = figure_3_2_graph();
        let store = BitMatStore::build(&g);
        let d = &g.dict;
        let acted = d
            .id(&Term::iri("actedIn"), lbr_rdf::Dimension::Predicate)
            .unwrap();
        let loc = d
            .id(&Term::iri("location"), lbr_rdf::Dimension::Predicate)
            .unwrap();
        let friend = d
            .id(&Term::iri("hasFriend"), lbr_rdf::Dimension::Predicate)
            .unwrap();
        assert_eq!(store.count_so(acted), 5);
        assert_eq!(store.count_so(loc), 4);
        assert_eq!(store.count_so(friend), 2);
        // O-S is the transpose of S-O.
        assert_eq!(
            store.so(acted).unwrap().transpose(),
            *store.os(acted).unwrap()
        );
        // Totals across any family equal the dataset size.
        let total: u64 = (0..g.dict.n_predicates()).map(|p| store.count_so(p)).sum();
        assert_eq!(total, 11);
        let total_po: u64 = (0..g.dict.n_subjects()).map(|s| store.count_po(s)).sum();
        assert_eq!(total_po, 11);
        let total_ps: u64 = (0..g.dict.n_objects()).map(|o| store.count_ps(o)).sum();
        assert_eq!(total_ps, 11);
    }

    #[test]
    fn single_row_loads() {
        let g = figure_3_2_graph();
        let store = BitMatStore::build(&g);
        let d = &g.dict;
        let jerry = d
            .id(&Term::iri("Jerry"), lbr_rdf::Dimension::Subject)
            .unwrap();
        let friend = d
            .id(&Term::iri("hasFriend"), lbr_rdf::Dimension::Predicate)
            .unwrap();
        // (Jerry hasFriend ?f): two candidate objects.
        let row = store.load_po_row(jerry, friend).unwrap().unwrap();
        assert_eq!(row.count_ones(), 2);
        assert_eq!(store.count_po_row(jerry, friend), 2);
        // (?sitcom location NewYorkCity): one candidate subject.
        let nyc = d
            .id(&Term::iri("NewYorkCity"), lbr_rdf::Dimension::Object)
            .unwrap();
        let loc = d
            .id(&Term::iri("location"), lbr_rdf::Dimension::Predicate)
            .unwrap();
        let row = store.load_ps_row(nyc, loc).unwrap().unwrap();
        assert_eq!(row.count_ones(), 1);
        assert_eq!(store.count_ps_row(nyc, loc), 1);
        // Missing combinations are None / zero.
        assert!(store.load_po_row(jerry, loc).unwrap().is_none());
        assert_eq!(store.count_po_row(jerry, loc), 0);
        assert_eq!(store.count_so(999), 0);
    }

    #[test]
    fn catalog_loads_are_owned_copies() {
        let g = figure_3_2_graph();
        let store = BitMatStore::build(&g);
        let mut m = store.load_so(0).unwrap().unwrap();
        let before = store.count_so(0);
        m.unfold(&crate::BitVec::zeros(m.n_cols()), crate::RetainDim::Col);
        assert!(m.is_empty());
        assert_eq!(store.count_so(0), before, "store must be unaffected");
    }

    #[test]
    fn parallel_build_is_thread_count_invariant() {
        // Big enough to clear the serial-fallback threshold in `family`.
        let mut triples = Vec::new();
        for i in 0..3000u32 {
            triples.push(t(
                &format!("s{}", i % 403),
                &format!("p{}", i % 17),
                &format!("o{}", (i * 7) % 811),
            ));
            triples.push(t(
                &format!("o{}", i % 811),
                "link",
                &format!("s{}", (i + 1) % 403),
            ));
        }
        let g = Graph::from_triples(triples).encode();
        let serial = BitMatStore::build_with_threads(&g, 1);
        for threads in [2, 5, 8, 32] {
            let par = BitMatStore::build_with_threads(&g, threads);
            assert_eq!(par.dims(), serial.dims());
            for p in 0..serial.dims().n_predicates {
                assert_eq!(par.so(p), serial.so(p), "so({p}) at {threads} threads");
                assert_eq!(par.os(p), serial.os(p), "os({p}) at {threads} threads");
            }
            for s in 0..serial.dims().n_subjects {
                assert_eq!(par.po(s), serial.po(s), "po({s}) at {threads} threads");
            }
            for o in 0..serial.dims().n_objects {
                assert_eq!(par.ps(o), serial.ps(o), "ps({o}) at {threads} threads");
            }
            assert_eq!(par.shard_ranges(), serial.shard_ranges());
        }
    }

    #[test]
    fn shards_partition_the_predicate_space() {
        let g = figure_3_2_graph();
        let store = BitMatStore::build(&g);
        let dims = store.dims();
        assert!(store.n_shards() >= 1);
        // Ranges are contiguous, ordered, and cover 0..n_predicates.
        let mut next = 0u32;
        for &(lo, hi) in store.shard_ranges() {
            assert_eq!(lo, next);
            assert!(hi > lo);
            next = hi;
        }
        assert_eq!(next, dims.n_predicates);
        // Every predicate maps to the shard whose range holds it, and
        // shard iteration yields exactly that range's matrices.
        let mut total = 0u64;
        for shard in 0..store.n_shards() {
            let (lo, hi) = store.shard_ranges()[shard];
            for (p, so, _os) in store.iter_shard(shard) {
                assert!((lo..hi).contains(&p));
                assert_eq!(store.shard_of(p), Some(shard));
                total += so.triple_count();
            }
        }
        assert_eq!(total, dims.n_triples);
        assert_eq!(store.shard_of(dims.n_predicates), None);
    }

    #[test]
    fn size_report_consistency() {
        let g = figure_3_2_graph();
        let store = BitMatStore::build(&g);
        let r = store.size_report();
        assert!(r.hybrid_bytes > 0);
        assert!(r.hybrid_bytes <= r.rle_only_bytes);
        assert!(r.saving() >= 0.0);
        let dims = store.dims();
        assert_eq!(
            r.n_matrices,
            2 * dims.n_predicates as u64 + dims.n_subjects as u64 + dims.n_objects as u64
        );
    }
}
