//! The [`Catalog`] abstraction: where the engine gets its BitMats from.
//!
//! §5 of the paper: *"with `init`, we load a BitMat for each TP in the
//! query that contains the triples matching that TP"* — only the matrices a
//! query touches are ever loaded, which is why a 41 GB index works on an
//! 8 GB laptop. [`crate::BitMatStore`] serves loads from memory;
//! [`crate::DiskCatalog`] reads them lazily from the on-disk index, and the
//! `count_*` methods answer selectivity questions from metadata alone
//! (Appendix D: *"condensed representation … helps us in quickly
//! determining the number of triples in each BitMat and its selectivity"*).

use crate::error::BitMatError;
use crate::matrix::BitMat;
use crate::row::BitRow;

/// Dimensions of the 3-D bitcube.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CubeDims {
    /// `|Vs|` — size of the subject dimension.
    pub n_subjects: u32,
    /// `|Vp|` — size of the predicate dimension.
    pub n_predicates: u32,
    /// `|Vo|` — size of the object dimension.
    pub n_objects: u32,
    /// `|Vso|` — size of the shared S-O prefix.
    pub n_shared: u32,
    /// Total number of triples in the dataset.
    pub n_triples: u64,
}

/// A source of BitMats and selectivity metadata.
///
/// All `load_*` methods hand out owned values because the engine prunes
/// them destructively per query. `Option::None` means "no triples" (e.g. a
/// subject that never occurs); out-of-range keys are also `None` so the
/// engine can treat unknown constants as empty patterns.
///
/// A catalog is `Sync`: every engine holds `&C` and a query service (the
/// parallel multi-way join, `lbr-server`'s worker pool) shares one catalog
/// across threads, so loads must be safe to issue concurrently.
/// [`crate::BitMatStore`] is immutable after build; [`crate::DiskCatalog`]
/// reads an immutable `mmap` region, so both are lock-free.
pub trait Catalog: Sync {
    /// Bitcube dimensions.
    fn dims(&self) -> CubeDims;

    /// S-O BitMat of predicate `p` (rows = subjects, cols = objects).
    fn load_so(&self, p: u32) -> Result<Option<BitMat>, BitMatError>;

    /// O-S BitMat of predicate `p` (rows = objects, cols = subjects).
    fn load_os(&self, p: u32) -> Result<Option<BitMat>, BitMatError>;

    /// P-O BitMat of subject `s` (rows = predicates, cols = objects).
    fn load_po(&self, s: u32) -> Result<Option<BitMat>, BitMatError>;

    /// P-S BitMat of object `o` (rows = predicates, cols = subjects).
    fn load_ps(&self, o: u32) -> Result<Option<BitMat>, BitMatError>;

    /// Single row `p` of the P-O BitMat of subject `s`: the object
    /// candidates of a `(s p ?o)` pattern (§5 loading rules).
    fn load_po_row(&self, s: u32, p: u32) -> Result<Option<BitRow>, BitMatError>;

    /// Single row `p` of the P-S BitMat of object `o`: the subject
    /// candidates of a `(?s p o)` pattern.
    fn load_ps_row(&self, o: u32, p: u32) -> Result<Option<BitRow>, BitMatError>;

    /// Triple count of the S-O BitMat of `p` without loading it.
    fn count_so(&self, p: u32) -> u64;

    /// Triple count of the P-O BitMat of subject `s` without loading it.
    fn count_po(&self, s: u32) -> u64;

    /// Triple count of the P-S BitMat of object `o` without loading it.
    fn count_ps(&self, o: u32) -> u64;

    /// Set-bit count of row `p` in the P-O BitMat of `s` (selectivity of a
    /// `(s p ?o)` pattern) without loading the matrix body.
    fn count_po_row(&self, s: u32, p: u32) -> u64;

    /// Set-bit count of row `p` in the P-S BitMat of `o`.
    fn count_ps_row(&self, o: u32, p: u32) -> u64;
}
